// Command drivolutiond runs a standalone Drivolution server (§4.1.4): a
// driver distribution service backed by an embedded database. Driver
// images are loaded from a directory of encoded image files at startup
// (and re-scanned on SIGHUP-like demand is out of scope; use drivoctl to
// build image files).
//
//	drivolutiond -addr 127.0.0.1:7070 -drivers ./drivers -lease 1h
//	drivolutiond -addr 127.0.0.1:7070 -tls            # self-signed TLS
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	drivolution "repro"
	"repro/internal/dbver"
	"repro/internal/driverimg"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir     = flag.String("drivers", "", "directory of encoded driver image files to load")
		lease   = flag.Duration("lease", time.Hour, "default lease time")
		useTLS  = flag.Bool("tls", false, "serve over TLS with a self-signed certificate")
		license = flag.Bool("license", false, "license mode: one live lease per driver")
		renew   = flag.Int("renew-policy", int(drivolution.RenewUpgrade), "default renew policy (0=RENEW 1=UPGRADE 2=REVOKE)")
		expire  = flag.Int("expiration-policy", int(drivolution.AfterCommit), "default expiration policy (0=AFTER_CLOSE 1=AFTER_COMMIT 2=IMMEDIATE)")
	)
	flag.Parse()

	opts := []drivolution.ServerOption{
		drivolution.WithDefaultLease(*lease),
		drivolution.WithDefaultPolicies(
			drivolution.RenewPolicy(*renew), drivolution.ExpirationPolicy(*expire)),
	}
	if *license {
		opts = append(opts, drivolution.WithLicenseMode())
	}
	srv, err := drivolution.NewServer("drivolutiond", drivolution.NewLocalStore(drivolution.NewDB()), opts...)
	if err != nil {
		log.Fatal(err)
	}

	if *dir != "" {
		n, err := loadDrivers(srv, *dir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d driver image(s) from %s", n, *dir)
	}

	if *useTLS {
		host, _, _ := splitHostPort(*addr)
		cert, _, err := drivolution.GenerateTLSCert(host)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.StartTLS(*addr, cert); err != nil {
			log.Fatal(err)
		}
		log.Printf("drivolutiond serving with TLS on %s", srv.Addr())
	} else {
		if err := srv.Start(*addr); err != nil {
			log.Fatal(err)
		}
		log.Printf("drivolutiond serving on %s", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	srv.Stop()
}

func splitHostPort(addr string) (host, port string, err error) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i], addr[i+1:], nil
		}
	}
	return addr, "", fmt.Errorf("no port in %q", addr)
}

// loadDrivers inserts every *.img file in dir.
func loadDrivers(srv *drivolution.Server, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.img"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			return n, fmt.Errorf("read %s: %w", p, err)
		}
		img, err := driverimg.Decode(blob)
		if err != nil {
			return n, fmt.Errorf("decode %s: %w", p, err)
		}
		id, err := srv.AddDriver(img, dbver.FormatImage)
		if err != nil {
			return n, fmt.Errorf("insert %s: %w", p, err)
		}
		log.Printf("driver %d <- %s (%s)", id, filepath.Base(p), img.Manifest.ID())
		n++
	}
	return n, nil
}
