// Command drivolutiond runs a standalone Drivolution server (§4.1.4): a
// driver distribution service backed by an embedded database. Driver
// images are loaded from a directory of encoded image files at startup
// (and re-scanned on SIGHUP-like demand is out of scope; use drivoctl to
// build image files).
//
//	drivolutiond -addr 127.0.0.1:7070 -drivers ./drivers -lease 1h
//	drivolutiond -addr 127.0.0.1:7070 -tls            # self-signed TLS
//	drivolutiond -cluster 3 -drivers ./drivers       # 3-member control plane
//
// With -cluster N (N > 1) the process runs an N-member clustered
// control plane (internal/cluster): sharded lease ownership, the
// catalog replicated to every member, heartbeat-driven failover.
// Member addresses are assigned by the kernel and logged at startup;
// probe them with `drivoctl cluster-status -server <cluster addr>`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	drivolution "repro"
	"repro/internal/cluster"
	"repro/internal/dbver"
	"repro/internal/driverimg"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir     = flag.String("drivers", "", "directory of encoded driver image files to load")
		lease   = flag.Duration("lease", time.Hour, "default lease time")
		useTLS  = flag.Bool("tls", false, "serve over TLS with a self-signed certificate")
		license = flag.Bool("license", false, "license mode: one live lease per driver")
		renew   = flag.Int("renew-policy", int(drivolution.RenewUpgrade), "default renew policy (0=RENEW 1=UPGRADE 2=REVOKE)")
		expire  = flag.Int("expiration-policy", int(drivolution.AfterCommit), "default expiration policy (0=AFTER_CLOSE 1=AFTER_COMMIT 2=IMMEDIATE)")
		members = flag.Int("cluster", 0, "run an N-member clustered control plane (0/1 = standalone)")
		shards  = flag.Int("cluster-shards", 0, "shard count for cluster mode (default 16 per member)")
		jitter  = flag.Float64("lease-jitter", 0, "± fraction smeared onto granted lease periods (e.g. 0.1)")
	)
	flag.Parse()

	opts := []drivolution.ServerOption{
		drivolution.WithDefaultLease(*lease),
		drivolution.WithDefaultPolicies(
			drivolution.RenewPolicy(*renew), drivolution.ExpirationPolicy(*expire)),
	}
	if *license {
		opts = append(opts, drivolution.WithLicenseMode())
	}
	if *jitter > 0 {
		opts = append(opts, drivolution.WithLeaseJitter(*jitter))
	}

	if *members > 1 {
		runCluster(*members, *shards, *dir, *useTLS, opts)
		return
	}
	srv, err := drivolution.NewServer("drivolutiond", drivolution.NewLocalStore(drivolution.NewDB()), opts...)
	if err != nil {
		log.Fatal(err)
	}

	if *dir != "" {
		n, err := loadDrivers(srv, *dir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d driver image(s) from %s", n, *dir)
	}

	if *useTLS {
		host, _, _ := splitHostPort(*addr)
		cert, _, err := drivolution.GenerateTLSCert(host)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.StartTLS(*addr, cert); err != nil {
			log.Fatal(err)
		}
		log.Printf("drivolutiond serving with TLS on %s", srv.Addr())
	} else {
		if err := srv.Start(*addr); err != nil {
			log.Fatal(err)
		}
		log.Printf("drivolutiond serving on %s", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	srv.Stop()
}

// runCluster boots an N-member clustered control plane in this
// process and blocks until interrupted. Driver images load through one
// member; statement replication puts them in every member's catalog.
func runCluster(members, shards int, dir string, useTLS bool, opts []drivolution.ServerOption) {
	if useTLS {
		log.Fatal("cluster mode does not serve TLS yet; drop -tls or -cluster")
	}
	f, err := cluster.NewFleet(cluster.FleetConfig{
		Members:       members,
		Shards:        shards,
		NamePrefix:    "drivolutiond",
		ServerOptions: func(int) []drivolution.ServerOption { return opts },
	})
	if err != nil {
		log.Fatal(err)
	}
	if dir != "" {
		n, err := loadDrivers(f.Servers[0], dir)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d driver image(s) from %s (replicated to %d members)", n, dir, members)
	}
	clusterAddrs := f.ClusterAddrs()
	for i, addr := range f.Addrs() {
		log.Printf("member %d (drivolutiond-%d): clients %s, cluster %s", i, i, addr, clusterAddrs[i])
	}
	log.Printf("cluster of %d serving; bootloaders take the full client address list", members)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down cluster")
	f.Stop()
}

func splitHostPort(addr string) (host, port string, err error) {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i], addr[i+1:], nil
		}
	}
	return addr, "", fmt.Errorf("no port in %q", addr)
}

// loadDrivers inserts every *.img file in dir.
func loadDrivers(srv *drivolution.Server, dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.img"))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range paths {
		blob, err := os.ReadFile(p)
		if err != nil {
			return n, fmt.Errorf("read %s: %w", p, err)
		}
		img, err := driverimg.Decode(blob)
		if err != nil {
			return n, fmt.Errorf("decode %s: %w", p, err)
		}
		id, err := srv.AddDriver(img, dbver.FormatImage)
		if err != nil {
			return n, fmt.Errorf("insert %s: %w", p, err)
		}
		log.Printf("driver %d <- %s (%s)", id, filepath.Base(p), img.Manifest.ID())
		n++
	}
	return n, nil
}
