// Command drivolint runs the repository's static-analysis suite (see
// internal/lint) over the named package patterns and exits non-zero if
// any finding survives suppression. It is wired into `make lint` and
// `make check`; the tree must be drivolint-clean to merge.
//
// Usage:
//
//	drivolint [-filter regexp] [-list] [patterns ...]
//
// Patterns default to ./... resolved in the current directory. -filter
// restricts the run to analyzers whose name matches the regexp (the
// LINT_FILTER make knob); -list prints the analyzer catalog and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/lint"
)

func main() {
	filter := flag.String("filter", "", "only run analyzers whose name matches this regexp")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drivolint: bad -filter: %v\n", err)
			os.Exit(2)
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "drivolint: -filter matched no analyzers")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "drivolint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drivolint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(prog.Pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drivolint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "drivolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
