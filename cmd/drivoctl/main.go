// Command drivoctl is the DBA's tool for Drivolution driver images:
// build encoded image files for drivolutiond, inspect them, and probe a
// running server with a DISCOVER to see which driver a client would get.
//
//	drivoctl build -kind dbms-native -api JDBC -api-version 3.0 \
//	    -version 2.1.0 -protocol 2 -opt user=app -opt password=pw \
//	    -payload 4096 -out driver.img
//	drivoctl inspect driver.img
//	drivoctl probe -server 127.0.0.1:7070 -database prod -api JDBC
//	drivoctl cluster-status -server 127.0.0.1:7171    # a member's CLUSTER address
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/driverimg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "probe":
		err = cmdProbe(os.Args[2:])
	case "cluster-status":
		err = cmdClusterStatus(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: drivoctl {build|inspect|probe|cluster-status} [flags]")
	os.Exit(2)
}

type optFlags map[string]string

func (o optFlags) String() string { return fmt.Sprint(map[string]string(o)) }
func (o optFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("option must be key=value, got %q", v)
	}
	o[k] = val
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		kind     = fs.String("kind", "dbms-native", "driver kind (dbms-native, sequoia)")
		api      = fs.String("api", "JDBC", "API name")
		apiVer   = fs.String("api-version", "", "API version, e.g. 3.0")
		version  = fs.String("version", "1.0.0", "driver version")
		protocol = fs.Uint("protocol", 1, "wire-protocol version the driver speaks")
		platform = fs.String("platform", "", "target platform (empty = portable)")
		pinned   = fs.String("pinned-url", "", "pre-configured target URL (ignores the app URL)")
		payload  = fs.Int("payload", 1024, "simulated code body size in bytes")
		out      = fs.String("out", "driver.img", "output file")
	)
	opts := optFlags{}
	fs.Var(opts, "opt", "driver option key=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ver, err := dbver.ParseVersion(*version)
	if err != nil {
		return err
	}
	apiMajor, apiMinor := -1, -1
	if *apiVer != "" {
		av, err := dbver.ParseVersion(*apiVer)
		if err != nil {
			return err
		}
		apiMajor, apiMinor = av.Major, av.Minor
	}
	body := make([]byte, *payload)
	for i := range body {
		body[i] = byte(i * 131)
	}
	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            *kind,
			API:             dbver.API{Name: *api, Major: apiMajor, Minor: apiMinor},
			Platform:        dbver.Platform(*platform),
			Version:         ver,
			ProtocolVersion: uint16(*protocol),
			PinnedURL:       *pinned,
			Options:         opts,
		},
		Payload: body,
	}
	if err := os.WriteFile(*out, img.Encode(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (checksum %s)\n", *out, img.Manifest.ID(), img.Checksum()[:16])
	return nil
}

func cmdInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: drivoctl inspect <file.img>")
	}
	blob, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	img, err := driverimg.Decode(blob)
	if err != nil {
		return err
	}
	m := img.Manifest
	fmt.Printf("kind:      %s\n", m.Kind)
	fmt.Printf("api:       %s\n", m.API)
	fmt.Printf("version:   %s\n", m.Version)
	fmt.Printf("protocol:  %d\n", m.ProtocolVersion)
	fmt.Printf("platform:  %s\n", orAny(string(m.Platform)))
	fmt.Printf("pinned:    %s\n", orAny(m.PinnedURL))
	fmt.Printf("packages:  %s\n", strings.Join(m.Packages, ", "))
	fmt.Printf("options:   %d entries\n", len(m.Options))
	for k, v := range m.Options {
		fmt.Printf("  %s = %s\n", k, v)
	}
	fmt.Printf("payload:   %d bytes\n", len(img.Payload))
	fmt.Printf("signed:    %v\n", len(img.Signature) > 0)
	fmt.Printf("checksum:  %s\n", img.Checksum())
	return nil
}

func orAny(s string) string {
	if s == "" {
		return "(any)"
	}
	return s
}

func cmdProbe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	var (
		server   = fs.String("server", "127.0.0.1:7070", "Drivolution server address")
		database = fs.String("database", "", "database name")
		user     = fs.String("user", "", "credentials user")
		password = fs.String("password", "", "credentials password")
		api      = fs.String("api", "JDBC", "API name")
		platform = fs.String("platform", string(dbver.PlatformLinuxAMD64), "client platform")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	offer, err := core.Probe(*server, core.Request{
		Database:       *database,
		User:           *user,
		Password:       *password,
		API:            dbver.AnyVersionAPI(*api),
		ClientPlatform: dbver.Platform(*platform),
		ClientID:       "drivoctl",
	}, 5*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("server:    %s\n", offer.ServerName)
	fmt.Printf("driver:    %s, %d bytes (checksum %s)\n", offer.Format, offer.Size, offer.DriverChecksum[:16])
	fmt.Printf("lease:     %v\n", offer.LeaseTime)
	fmt.Printf("policies:  renew=%s expiration=%s transfer=%s\n",
		offer.RenewPolicy, offer.ExpirationPolicy, offer.TransferMethod)
	return nil
}

// cmdClusterStatus asks one member for its membership view: who it has
// heard from, whether it is quorate (fenced members answer too — with
// Quorate false), and how the shard space is currently divided,
// including any handoff overrides in force.
func cmdClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster-status", flag.ExitOnError)
	var (
		server  = fs.String("server", "127.0.0.1:7171", "a member's cluster-protocol address")
		timeout = fs.Duration("timeout", 2*time.Second, "probe timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := cluster.FetchStatus(*server, *timeout)
	if err != nil {
		return err
	}
	fmt.Printf("member:    %s (index %d)\n", st.Name, st.Index)
	fmt.Printf("quorate:   %v\n", st.Quorate)
	fmt.Printf("epoch:     %d\n", st.Epoch)
	fmt.Printf("shards:    %d\n", st.Shards)
	fmt.Printf("peers:\n")
	for _, p := range st.Peers {
		mark, state := " ", "alive"
		if p.Self {
			mark = "*"
		}
		if !p.Alive {
			state = "DOWN"
		}
		last := "now"
		if !p.Self {
			last = p.SinceSeen.Round(time.Millisecond).String() + " ago"
		}
		fmt.Printf("  %s %-20s %-21s %-5s seen %-12s owns %d shards\n",
			mark, p.Name, p.ClientAddr, state, last, p.OwnedShards)
	}
	if len(st.Overrides) > 0 {
		fmt.Printf("overrides: %d shard(s) moved off their home member\n", len(st.Overrides))
		for _, o := range st.Overrides {
			fmt.Printf("  shard %d -> member %d\n", o.Shard, o.Member)
		}
	}
	return nil
}
