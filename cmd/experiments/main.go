// Command experiments regenerates every table and figure of the paper
// plus the quantitative measurements backing its prose claims (see
// DESIGN.md §4 for the index), and doubles as the fleet-scale load
// harness driver.
//
//	go run ./cmd/experiments            # run everything
//	go run ./cmd/experiments -exp F4    # one experiment
//	go run ./cmd/experiments -list      # list experiment ids
//
//	go run ./cmd/experiments -load steady,storm -population 100000 \
//	    -duration 20s -out BENCH_tail.json   # fleet-scale load scenarios
//	go run ./cmd/experiments -load all       # all four canonical scenarios
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/scenarios"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id to run (default: all)")
		list = flag.Bool("list", false, "list experiment ids and exit")

		load       = flag.String("load", "", "load scenarios to run, comma-separated or 'all' (steady, storm, license, restart; 'cluster' is opt-in)")
		population = flag.Int("population", 100000, "simulated bootloaders per load scenario")
		workers    = flag.Int("workers", 8, "real connections driving the fleet")
		duration   = flag.Duration("duration", 10*time.Second, "measured steady phase per load scenario")
		seed       = flag.Int64("seed", 1, "load schedule seed")
		lease      = flag.Duration("lease", 0, "lease term override (default scales with population)")
		members    = flag.Int("cluster", 0, "member count for the cluster load scenario (default 3)")
		out        = flag.String("out", "", "write load results as JSON to this file (default: stdout only)")
	)
	flag.Parse()

	if *load != "" {
		os.Exit(runLoad(*load, scenarios.LoadConfig{
			Population: *population,
			Workers:    *workers,
			Duration:   *duration,
			Seed:       *seed,
			Lease:      *lease,
			Cluster:    *members,
		}, *out))
	}

	if *list {
		for _, e := range scenarios.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []scenarios.Experiment
	if *exp == "" {
		toRun = scenarios.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e := scenarios.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, *e)
		}
	}

	failed := 0
	for _, e := range toRun {
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		rep, err := e.Run()
		if err != nil {
			fmt.Printf("ERROR: %v\n", err)
			failed++
			continue
		}
		for _, line := range rep.Lines {
			fmt.Println("  " + line)
		}
		verdict := "REPRODUCED"
		if !rep.Pass {
			verdict = "NOT REPRODUCED"
			failed++
		}
		fmt.Printf("  -> %s\n", verdict)
	}
	fmt.Printf("\n%d/%d experiments reproduced\n", len(toRun)-failed, len(toRun))
	if failed > 0 {
		os.Exit(1)
	}
}

// runLoad runs the requested load scenarios and persists their
// results; it returns the process exit code. A scenario that violates
// its own invariants (cap exceeded, fleet not converged, unbounded
// error window) still reports its numbers before the run fails.
func runLoad(names string, cfg scenarios.LoadConfig, outPath string) int {
	var toRun []string
	if names == "all" {
		toRun = scenarios.LoadScenarios()
	} else {
		toRun = strings.Split(names, ",")
		for i := range toRun {
			toRun[i] = strings.TrimSpace(toRun[i])
		}
	}

	results := make([]*scenarios.LoadResult, 0, len(toRun))
	failed := 0
	for _, name := range toRun {
		fmt.Printf("=== load %s: %d clients, %d workers, seed %d ===\n",
			name, cfg.Population, cfg.Workers, cfg.Seed)
		start := time.Now()
		res, err := scenarios.RunLoad(name, cfg)
		if res != nil {
			results = append(results, res)
			fmt.Printf("  %d reqs (%.0f/s, %.0f stmts/s), errors %d, "+
				"p50 %.0fµs p95 %.0fµs p99 %.0fµs max %.0fµs, lag %.0fms\n",
				res.Requests, res.RequestsPerSec, res.StatementsPerSec, res.Errors,
				res.P50Us, res.P95Us, res.P99Us, res.MaxUs, res.ScheduleLagMaxMs)
			if res.ConvergeMs > 0 {
				fmt.Printf("  converged in %.0fms, %d upgrades, %d transfer bytes\n",
					res.ConvergeMs, res.Upgrades, res.TransferBytes)
			}
			if res.LicenseCap > 0 {
				fmt.Printf("  licenses: peak %d of cap %d, %d denials\n",
					res.PeakLicenses, res.LicenseCap, res.Denied)
			}
		}
		if err != nil {
			fmt.Printf("  FAILED: %v\n", err)
			failed++
			continue
		}
		fmt.Printf("  -> ok in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			return 1
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", outPath, err)
			return 1
		}
		fmt.Printf("wrote %d results to %s\n", len(results), outPath)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
