// Command experiments regenerates every table and figure of the paper
// plus the quantitative measurements backing its prose claims (see
// DESIGN.md §4 for the index).
//
//	go run ./cmd/experiments            # run everything
//	go run ./cmd/experiments -exp F4    # one experiment
//	go run ./cmd/experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenarios"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id to run (default: all)")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range scenarios.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []scenarios.Experiment
	if *exp == "" {
		toRun = scenarios.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e := scenarios.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, *e)
		}
	}

	failed := 0
	for _, e := range toRun {
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		rep, err := e.Run()
		if err != nil {
			fmt.Printf("ERROR: %v\n", err)
			failed++
			continue
		}
		for _, line := range rep.Lines {
			fmt.Println("  " + line)
		}
		verdict := "REPRODUCED"
		if !rep.Pass {
			verdict = "NOT REPRODUCED"
			failed++
		}
		fmt.Printf("  -> %s\n", verdict)
	}
	fmt.Printf("\n%d/%d experiments reproduced\n", len(toRun)-failed, len(toRun))
	if failed > 0 {
		os.Exit(1)
	}
}
