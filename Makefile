# Drivolution reproduction — build/test/bench entry points.
#
#   make tier1           # the repo gate: go build ./... && go test ./...
#   make race            # grant-path packages under the race detector
#   make bench           # run the perf-tracked benchmark set
#   make bench-baseline  # tier1 + benches, refresh BENCH_baseline.json
#   make bench-compare   # tier1 + benches, diff against BENCH_baseline.json
#
# Benchmark knobs (see scripts/bench.sh): BENCH_COUNT, BENCH_TIME,
# BENCH_FILTER ('.'' = full suite, includes slow lease-traffic sweeps),
# BENCH_PKGS.

.PHONY: tier1 race bench bench-baseline bench-compare

tier1:
	go build ./...
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wire/ ./internal/sqlmini/ ./internal/driverimg/

bench:
	scripts/bench.sh run

bench-baseline:
	scripts/bench.sh baseline

bench-compare:
	scripts/bench.sh compare
