# Drivolution reproduction — build/test/bench entry points.
#
#   make check           # the tier-1 gate: build + vet + tests
#   make tier1           # build + tests only (what scripts/bench.sh gates on)
#   make race            # grant-path packages under the race detector
#   make bench           # run the perf-tracked benchmark set
#   make bench-baseline  # tier1 + benches, refresh BENCH_baseline.json
#   make bench-compare   # tier1 + benches, diff against BENCH_baseline.json
#
# Benchmark knobs (see scripts/bench.sh): BENCH_COUNT, BENCH_TIME,
# BENCH_FILTER ('.'' = full suite, includes slow lease-traffic sweeps),
# BENCH_PKGS.

.PHONY: check tier1 race bench bench-baseline bench-compare

# check is the documented tier-1 entry point: everything CI (and the
# next PR) must keep green.
check:
	go build ./...
	go vet ./...
	go test ./...

tier1:
	go build ./...
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wire/ ./internal/sqlmini/ ./internal/driverimg/

bench:
	scripts/bench.sh run

bench-baseline:
	scripts/bench.sh baseline

bench-compare:
	scripts/bench.sh compare
