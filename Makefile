# Drivolution reproduction — build/test/bench entry points.
#
#   make check           # the tier-1 gate: build + vet + lint + tests
#   make check-race      # tier-1 under the race detector (all packages)
#   make tier1           # build + tests only (what scripts/bench.sh gates on)
#   make race            # grant-path packages under the race detector
#   make lint            # vet + doclint + drivolint (LINT_FILTER narrows analyzers)
#   make doclint         # every internal/ package must have a package comment
#   make chaos           # longer fault-injection soak across several seeds
#   make bench           # run the perf-tracked benchmark set
#   make bench-baseline  # tier1 + benches, refresh BENCH_baseline.json
#   make bench-compare   # tier1 + benches, diff against BENCH_baseline.json
#   make loadtest        # fleet-scale load tier: scaled tests + tail gate vs BENCH_tail.json
#   make loadtest-baseline  # full-population load scenarios, refresh BENCH_tail.json
#
# Benchmark knobs (see scripts/README.md): BENCH_COUNT, BENCH_TIME,
# BENCH_FILTER ('.'' = full suite, includes slow lease-traffic sweeps),
# BENCH_PKGS.

.PHONY: check check-race tier1 race lint drivolint doclint chaos bench bench-baseline bench-compare loadtest loadtest-baseline

# check is the documented tier-1 entry point: everything CI (and the
# next PR) must keep green. lint folds in vet + doclint + drivolint,
# so the tree must be analyzer-clean to merge.
check: lint
	go build ./...
	go test ./...

# lint is the static-analysis gate: go vet, the package-comment lint,
# and the repo's own drivolint analyzer suite (cmd/drivolint). Narrow
# to a subset of analyzers with LINT_FILTER, a regexp over analyzer
# names, e.g. `make lint LINT_FILTER='sqlcheck|latchorder'`.
LINT_FILTER ?= .
lint:
	go vet ./...
	scripts/doclint.sh
	go run ./cmd/drivolint -filter='$(LINT_FILTER)' ./...

drivolint:
	go run ./cmd/drivolint -filter='$(LINT_FILTER)' ./...

# check-race is the tier-1 gate with the race detector on: slower, so
# it is a separate target, but it covers every package — including a
# short chaos soak (TestChaosSoak injects resets/partitions plus a
# server restart; ~2s at the default duration).
check-race:
	go build ./...
	go test -race ./...

# chaos runs the randomized fault-injection soak longer and across
# several fresh seeds (each run logs its seed; rerun one exactly with
# CHAOS_SEED=<n>). Knobs: CHAOS_SEEDS (runs), CHAOS_DURATION (storm
# length per run).
CHAOS_SEEDS ?= 5
CHAOS_DURATION ?= 5s
chaos:
	CHAOS_DURATION=$(CHAOS_DURATION) go test -race -run 'TestChaosSoak' -count=$(CHAOS_SEEDS) -v ./internal/core/

tier1:
	go build ./...
	go test ./...

race:
	go test -race ./internal/core/ ./internal/wire/ ./internal/sqlmini/ ./internal/driverimg/

doclint:
	scripts/doclint.sh

bench:
	scripts/bench.sh run

bench-baseline:
	scripts/bench.sh baseline

bench-compare:
	scripts/bench.sh compare

# loadtest is the fleet-scale tier, off the tier-1 critical path: the
# scaled-down deterministic scenario tests, then the full-population
# steady/storm scenarios gated against the committed BENCH_tail.json
# tail baseline (p50/p95/p99 + statements/sec; see scripts/README.md
# for thresholds and the refresh policy). CLUSTER=3 adds the
# multi-member tier: the scaled server-failover test plus the
# full-population "cluster" scenario (internal/cluster fleet, one
# member killed mid-run).
CLUSTER ?= 0
loadtest:
	CLUSTER="$(CLUSTER)" scripts/loadtest.sh check
	CLUSTER="$(CLUSTER)" scripts/loadtest.sh compare

loadtest-baseline:
	CLUSTER="$(CLUSTER)" scripts/loadtest.sh baseline
