// Command sequoia reproduces the paper's §5.3 case studies: a Sequoia
// replication cluster whose drivers — both the Sequoia client driver and
// the per-backend database drivers — are distributed by Drivolution.
//
//	go run ./examples/sequoia             # Figure 5: standalone server
//	go run ./examples/sequoia -embedded   # Figure 6: embedded servers
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	drivolution "repro"
	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sequoia"
	"repro/internal/sqlmini"
)

func main() {
	embedded := flag.Bool("embedded", false, "embed Drivolution servers in the controllers (Figure 6)")
	flag.Parse()
	if err := run(*embedded); err != nil {
		log.Fatal(err)
	}
}

func seqImage(v dbver.Version) *drivolution.Image {
	return &drivolution.Image{
		Manifest: drivolution.Manifest{
			Kind:            sequoia.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         v,
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "pw"},
		},
		Payload: []byte("sequoia driver " + v.String()),
	}
}

func run(embedded bool) error {
	// Build a 2-controller × 2-backend cluster over real DBMS servers.
	group := sequoia.NewGroup()
	var controllers []*sequoia.Controller
	for ci := 1; ci <= 2; ci++ {
		ctrl := sequoia.NewController(fmt.Sprintf("controller-%d", ci), "vdb", group,
			sequoia.WithControllerUser("app", "pw"))
		for bi := 1; bi <= 2; bi++ {
			name := fmt.Sprintf("db%d-%d", ci, bi)
			db := sqlmini.NewDB()
			db.MustExec("CREATE TABLE kv (k VARCHAR NOT NULL PRIMARY KEY, v INTEGER)")
			srv := dbms.NewServer(name, dbms.WithUser("seq", "seq-pw"))
			srv.AddDatabase("shard", db)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				return err
			}
			defer srv.Stop()
			ctrl.AddBackend(&sequoia.Backend{
				Name:   name,
				URL:    "dbms://" + srv.Addr() + "/shard",
				Props:  client.Props{"user": "seq", "password": "seq-pw"},
				Driver: dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
			})
			if err := ctrl.EnableBackend(name); err != nil {
				return err
			}
		}
		if err := ctrl.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer ctrl.Stop()
		controllers = append(controllers, ctrl)
	}
	clusterURL := "sequoia://" + controllers[0].Addr() + "," + controllers[1].Addr() + "/vdb"
	fmt.Println("Sequoia cluster up: 2 controllers x 2 backends")

	rt := drivolution.NewRuntime()
	rt.Register(sequoia.DriverKind, sequoia.ImageFactory())

	var servers []string
	var addDriver func(*drivolution.Image) error

	if embedded {
		fmt.Println("mode: Figure 6 — Drivolution servers embedded in each controller")
		rd, err := sequoia.EmbedDrivolution(group, drivolution.WithDefaultLease(time.Hour))
		if err != nil {
			return err
		}
		defer rd.Stop()
		servers = rd.Addrs()
		addDriver = func(img *drivolution.Image) error {
			_, err := rd.AddDriver(img, dbver.FormatImage)
			return err
		}
	} else {
		fmt.Println("mode: Figure 5 — one standalone Drivolution server for the whole cluster")
		srv, err := drivolution.NewServer("standalone", drivolution.NewLocalStore(drivolution.NewDB()))
		if err != nil {
			return err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Stop()
		servers = []string{srv.Addr()}
		addDriver = func(img *drivolution.Image) error {
			_, err := srv.AddDriver(img, dbver.FormatImage)
			return err
		}
	}

	if err := addDriver(seqImage(dbver.V(1, 0, 0))); err != nil {
		return err
	}
	fmt.Println("Sequoia driver v1.0.0 published")

	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		servers, rt, drivolution.WithCredentials("app", "pw"))
	defer bl.Close()
	c, err := bl.Connect(clusterURL, nil)
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('hello', 1)"); err != nil {
		return err
	}
	fmt.Printf("application connected through auto-provisioned Sequoia driver v%s; write replicated to all 4 backends\n", bl.Version())

	// Rolling upgrade: publish v1.1.0, stop controller-1 under load.
	if err := addDriver(seqImage(dbver.V(1, 1, 0))); err != nil {
		return err
	}
	if err := bl.ForceRenew("vdb"); err != nil {
		return err
	}
	fmt.Printf("driver upgraded centrally to v%s (zero client work)\n", bl.Version())
	// The old connection was drained by the AFTER_COMMIT policy; the
	// application's pool re-opens through the new driver.
	c2, err := bl.Connect(clusterURL, nil)
	if err != nil {
		return err
	}
	defer c2.Close()

	controllers[0].Stop()
	if _, err := c2.Query("SELECT count(*) FROM kv"); err != nil {
		return fmt.Errorf("query during controller restart: %w", err)
	}
	fmt.Println("controller-1 stopped; v1.1.0 driver failed over transparently; query OK")
	return nil
}
