// Command quickstart walks the full Drivolution lifecycle in one
// process: boot a database, store a driver *in a Drivolution server*,
// bootstrap a client application through the bootloader, then roll out a
// driver upgrade with a single insert while the application keeps
// running.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	drivolution "repro"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Drivolution quickstart ==")

	// 1. A database for the application (the simulated DBMS substrate).
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE greetings (id INTEGER NOT NULL PRIMARY KEY, msg VARCHAR)")
	appDB.MustExec("INSERT INTO greetings (id, msg) VALUES (1, 'hello from the database')")
	target := dbms.NewServer("prod-db", dbms.WithUser("app", "secret"))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer target.Stop()
	fmt.Printf("database %q up at %s\n", "prod", target.Addr())

	// 2. A standalone Drivolution server holding the drivers table.
	srv, err := drivolution.NewServer("drivolution-1", drivolution.NewLocalStore(drivolution.NewDB()),
		drivolution.WithDefaultLease(time.Hour))
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Printf("Drivolution server up at %s\n", srv.Addr())

	// 3. The DBA stores the driver in the server (Table 1 insert).
	img := &drivolution.Image{
		Manifest: drivolution.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "secret"},
		},
		Payload: []byte("driver v1 code body"),
	}
	id, err := srv.AddDriver(img, dbver.FormatImage)
	if err != nil {
		return err
	}
	fmt.Printf("driver v1.0.0 stored in the drivers table (driver_id %d)\n", id)

	// 4. The application links only the bootloader.
	rt := drivolution.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{srv.Addr()}, rt,
		drivolution.WithCredentials("app", "secret"))
	defer bl.Close()

	conn, err := bl.Connect("dbms://"+target.Addr()+"/prod", nil)
	if err != nil {
		return err
	}
	defer conn.Close()
	res, err := conn.Query("SELECT msg FROM greetings WHERE id = 1")
	if err != nil {
		return err
	}
	fmt.Printf("application query through auto-provisioned driver v%s: %s\n",
		bl.Version(), res.Rows[0][0].Str())

	// 5. The one-step upgrade: insert driver v2; the bootloader hot-swaps.
	img2 := &drivolution.Image{Manifest: img.Manifest.Clone(), Payload: []byte("driver v2 code body")}
	img2.Manifest.Version = dbver.V(2, 0, 0)
	if _, err := srv.AddDriver(img2, dbver.FormatImage); err != nil {
		return err
	}
	fmt.Println("DBA upgrade: ONE insert on the Drivolution server (no client visits)")
	if err := bl.ForceRenew("prod"); err != nil {
		return err
	}
	conn2, err := bl.Connect("dbms://"+target.Addr()+"/prod", nil)
	if err != nil {
		return err
	}
	defer conn2.Close()
	if _, err := conn2.Query("SELECT msg FROM greetings WHERE id = 1"); err != nil {
		return err
	}
	m := bl.Stats()
	fmt.Printf("application now on driver v%s (bootstraps=%d upgrades=%d, zero restarts)\n",
		bl.Version(), m.Bootstraps, m.Upgrades)
	return nil
}
