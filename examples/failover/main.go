// Command failover reproduces the paper's Figure 4 story as a narrated
// timeline: a master/slave pair, client applications running through the
// Drivolution bootloader with a pre-configured DBmaster driver, a
// maintenance failover performed entirely by swapping drivers centrally,
// and the failback when the master returns.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	drivolution "repro"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func mkDBMS(name string) (*dbms.Server, error) {
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE orders (id INTEGER NOT NULL PRIMARY KEY, item VARCHAR)")
	db.MustExec("CREATE TABLE whoami (name VARCHAR)")
	db.MustExec("INSERT INTO whoami (name) VALUES (?)", name)
	srv := dbms.NewServer(name, dbms.WithUser("app", "pw"))
	srv.AddDatabase("prod", db)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}

func pinnedDriver(ver dbver.Version, target *dbms.Server) *drivolution.Image {
	return &drivolution.Image{
		Manifest: drivolution.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         ver,
			ProtocolVersion: 1,
			PinnedURL:       "dbms://" + target.Addr() + "/prod",
			Options:         map[string]string{"user": "app", "password": "pw"},
		},
		Payload: []byte("pre-configured driver -> " + target.Name()),
	}
}

func run() error {
	fmt.Println("== Figure 4: master/slave failover by driver swap ==")

	master, err := mkDBMS("master")
	if err != nil {
		return err
	}
	defer master.Stop()
	slave, err := mkDBMS("slave")
	if err != nil {
		return err
	}
	defer slave.Stop()
	master.AttachReplica(slave)
	fmt.Println("master + slave up, statement replication attached")

	srv, err := drivolution.NewServer("drivolution", drivolution.NewLocalStore(drivolution.NewDB()))
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Stop()

	masterID, err := srv.AddDriver(pinnedDriver(dbver.V(1, 0, 0), master), dbver.FormatImage)
	if err != nil {
		return err
	}
	fmt.Println("DBmaster driver stored (pre-configured: always connects to master)")

	rt := drivolution.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{srv.Addr()}, rt, drivolution.WithCredentials("app", "pw"))
	defer bl.Close()

	// The application's URL names the master, but pre-configured drivers
	// ignore it — the URL only reaches the bootloader.
	appURL := "dbms://" + master.Addr() + "/prod"
	who := func() string {
		c, err := bl.Connect(appURL, nil)
		if err != nil {
			return "unreachable (" + err.Error() + ")"
		}
		defer c.Close()
		res, err := c.Query("SELECT name FROM whoami")
		if err != nil {
			return "unreachable"
		}
		return res.Rows[0][0].Str()
	}

	run := workload.NewRunner(bl, appURL, nil)
	run.Workers = 3
	run.Think = time.Millisecond
	run.Start()
	fmt.Printf("step 1: live workload flowing, clients see %q\n", who())

	// Failover: expire DBmaster, provide DBslave — two central ops.
	if _, err := srv.AddDriver(pinnedDriver(dbver.V(1, 0, 1), slave), dbver.FormatImage); err != nil {
		return err
	}
	if err := srv.RevokeDriverForRenewals(masterID); err != nil {
		return err
	}
	start := time.Now()
	if err := bl.ForceRenew("prod"); err != nil {
		return err
	}
	fmt.Printf("step 2: DBmaster expired, DBslave provided (2 admin ops, %v)\n",
		time.Since(start).Round(time.Microsecond))
	fmt.Printf("step 3: clients now see %q — no application reconfiguration\n", who())

	master.Stop()
	fmt.Println("master stopped for maintenance; workload continues on slave")
	//lint:sleep-ok demo pacing: let the workload run against the slave before reporting
	time.Sleep(30 * time.Millisecond)
	run.Stop()
	stats := run.Recorder().Stats()
	fmt.Printf("workload: %d requests, %d errors, client-visible window %v\n",
		stats.Total, stats.Errors, stats.ErrorWindow.Round(time.Microsecond))

	// Failback: the master returns (possibly on a new address — the
	// pre-configured driver carries it, clients never learn), and the
	// same two admin ops point everyone back.
	if err := master.Start("127.0.0.1:0"); err != nil {
		return err
	}
	if _, err := srv.AddDriver(pinnedDriver(dbver.V(1, 0, 2), master), dbver.FormatImage); err != nil {
		return err
	}
	if err := bl.ForceRenew("prod"); err != nil {
		return err
	}
	fmt.Printf("failback: master restarted at %s, clients see %q again\n", master.Addr(), who())
	return nil
}
