// Command heterogeneous reproduces Figure 3: a DBA management console
// with one bootloader installation administering four databases whose
// engines speak four different wire protocols. Each database's
// Drivolution server provides the right driver automatically; the
// console never installs or configures a driver by hand.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	drivolution "repro"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Figure 3: heterogeneous DBMSes behind one console ==")

	rt := drivolution.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	console := drivolution.NewConsole(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64, rt,
		drivolution.WithCredentials("dba", "dba-pw"))
	defer console.Close()

	type entry struct {
		url    string
		target *dbms.Server
		drv    *drivolution.Server
	}
	var entries []entry
	for i := 1; i <= 4; i++ {
		proto := uint16(i)
		db := sqlmini.NewDB()
		db.MustExec("CREATE TABLE info (k VARCHAR, v VARCHAR)")
		db.MustExec("INSERT INTO info (k, v) VALUES ('engine', ?), ('protocol', ?)",
			fmt.Sprintf("DB%d", i), fmt.Sprintf("%d", proto))
		target := dbms.NewServer(fmt.Sprintf("DB%d", i),
			dbms.WithUser("dba", "dba-pw"),
			dbms.WithProtocolVersion(proto),
			dbms.WithEngineVersion(dbver.V(int(proto), 0, 0)))
		target.AddDatabase("db", db)
		if err := target.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer target.Stop()

		// Each database's own Drivolution server holds its driver.
		srv, err := drivolution.NewServer(fmt.Sprintf("drivolution@DB%d", i),
			drivolution.NewLocalStore(drivolution.NewDB()))
		if err != nil {
			return err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Stop()
		img := &drivolution.Image{
			Manifest: drivolution.Manifest{
				Kind:            dbms.DriverKind,
				API:             dbver.APIOf("JDBC", 3, 0),
				Version:         dbver.V(int(proto), 0, 0),
				ProtocolVersion: proto,
				Options:         map[string]string{"user": "dba", "password": "dba-pw"},
			},
			Payload: []byte(fmt.Sprintf("driver implementation for DB%d", i)),
		}
		if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
			return err
		}

		url := "dbms://" + target.Addr() + "/db"
		if err := console.Register(url, []string{srv.Addr()}); err != nil {
			return err
		}
		entries = append(entries, entry{url: url, target: target, drv: srv})
	}
	fmt.Println("4 databases up, protocols 1-4; console registered with each Drivolution server")

	for i, e := range entries {
		c, err := console.Connect(e.url, nil)
		if err != nil {
			return fmt.Errorf("DB%d: %w", i+1, err)
		}
		res, err := c.Query("SELECT v FROM info WHERE k = 'engine'")
		if err != nil {
			return err
		}
		fmt.Printf("console -> DB%d: driver v%-6s loaded automatically, engine says %q\n",
			i+1, console.BootloaderFor(e.url).Version(), res.Rows[0][0].Str())
		_ = c.Close()
	}

	fmt.Println("\none bootloader install, four driver implementations coexisting:")
	for url, v := range console.DriverVersions() {
		fmt.Printf("  %-28s driver v%s\n", url, v)
	}
	fmt.Println("\nupgrading DB1's driver is one insert on DB1's Drivolution server;")
	fmt.Println("the other consoles and databases are untouched (paper Table 5).")
	return nil
}
