// Command cluster lifts the paper's Figure 4 failover story from the
// database tier to the control plane itself: three clustered
// Drivolution servers share the lease space by shard, replicate the
// driver catalog to every member, and watch each other over
// heartbeats. An application bootstraps through the member list, one
// member is killed mid-lease, and the client's renewal lands on a
// survivor — under the same lease identity (§4.1.3), with no
// application reconfiguration.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"time"

	drivolution "repro"
	"repro/internal/cluster"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Figure 4 at the server tier: control-plane failover ==")

	// Fast membership timings so the demo's failover completes in
	// under a second; production defaults detect in a few seconds.
	hb := 40 * time.Millisecond
	fleet, err := cluster.NewFleet(cluster.FleetConfig{
		Members:           3,
		NamePrefix:        "drivolution",
		DefaultLease:      2 * time.Second,
		HeartbeatInterval: hb,
		FenceAfter:        4 * hb,
		FailAfter:         8 * hb,
		DialTimeout:       time.Second,
	})
	if err != nil {
		return err
	}
	defer fleet.Stop()
	fmt.Println("step 0: 3 members up — sharded lease ownership, full-mesh catalog replication")

	// The application database the granted driver will actually reach.
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE orders (id INTEGER NOT NULL PRIMARY KEY, item VARCHAR)")
	appDB.MustExec("INSERT INTO orders (id, item) VALUES (1, 'widget')")
	target := dbms.NewServer("prod-db", dbms.WithUser("app", "pw"))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer target.Stop()

	// One admin op against ONE member; statement replication puts the
	// driver in every member's catalog, so any member answers
	// matchmaking locally.
	img := &drivolution.Image{
		Manifest: drivolution.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "pw"},
		},
		Payload: []byte("dbms driver payload"),
	}
	if _, err := fleet.Servers[0].AddDriver(img, dbver.FormatImage); err != nil {
		return err
	}
	fmt.Println("step 1: driver added through member 0, replicated to all 3 catalogs")

	rt := drivolution.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		fleet.Addrs(), rt,
		drivolution.WithCredentials("app", "pw"),
		drivolution.WithClientID("order-service"),
		drivolution.WithDialTimeout(time.Second),
		drivolution.WithRetryInterval(25*time.Millisecond))
	defer bl.Close()

	conn, err := bl.Connect("dbms://"+target.Addr()+"/prod", nil)
	if err != nil {
		return err
	}
	defer conn.Close()
	leaseID := bl.LeaseID()
	owner := memberIndex(fleet, bl.ServerAddr())
	fmt.Printf("step 2: app bootstrapped; shard owner member %d granted lease %d\n", owner, leaseID)
	printStatus(fleet, (owner+1)%3)

	fmt.Printf("step 3: killing member %d — the lease owner — mid-lease\n", owner)
	fleet.Kill(owner)

	// The client keeps renewing; once a survivor's membership view
	// expires the dead member it takes over the shard, and the renewal
	// extends the replicated lease row — same identity, new server.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := bl.ForceRenew("prod"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("renewal never converged after the kill")
		}
		//lint:sleep-ok demo retry pacing while the survivors detect the death
		time.Sleep(25 * time.Millisecond)
	}
	if bl.LeaseID() != leaseID {
		return fmt.Errorf("lease identity lost: %d -> %d", leaseID, bl.LeaseID())
	}
	fmt.Printf("step 4: renewal served by member %d — lease %d survived the owner's death\n",
		memberIndex(fleet, bl.ServerAddr()), leaseID)

	// The granted driver was never disturbed: the connection opened
	// before the kill still queries the application database.
	res, err := conn.Query("SELECT item FROM orders")
	if err != nil {
		return err
	}
	fmt.Printf("step 5: pre-failover connection still live, orders -> %q\n", res.Rows[0][0].Str())
	printStatus(fleet, (owner+1)%3)
	return nil
}

// memberIndex maps a client-facing address back to its member index.
func memberIndex(f *cluster.Fleet, addr string) int {
	for i, a := range f.Addrs() {
		if a == addr {
			return i
		}
	}
	return -1
}

// printStatus renders one member's membership view, the same picture
// `drivoctl cluster-status` gives an operator.
func printStatus(f *cluster.Fleet, via int) {
	st, err := cluster.FetchStatus(f.ClusterAddrs()[via], time.Second)
	if err != nil {
		fmt.Printf("  status probe failed: %v\n", err)
		return
	}
	fmt.Printf("  [%s] epoch %d, quorate %v:", st.Name, st.Epoch, st.Quorate)
	for _, p := range st.Peers {
		state := "alive"
		if !p.Alive {
			state = "DOWN"
		}
		fmt.Printf("  %s=%s(%d shards)", p.Name, state, p.OwnedShards)
	}
	fmt.Println()
}
