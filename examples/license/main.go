// Command license reproduces §5.4.2, "Drivolution as a License Server":
// per-user license keys distributed as single-lease drivers, with the
// database engine acting as the failure detector for crashed clients.
//
//	go run ./examples/license
package main

import (
	"fmt"
	"log"
	"time"

	drivolution "repro"
	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/license"
	"repro/internal/sqlmini"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== §5.4.2: Drivolution as a license server ==")

	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE t (x INTEGER)")
	target := dbms.NewServer("db2-like",
		dbms.WithUser("analyst1", "pw"), dbms.WithUser("analyst2", "pw"))
	target.AddDatabase("prod", db)
	if err := target.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer target.Stop()

	srv, err := drivolution.NewServer("license-server",
		drivolution.NewLocalStore(drivolution.NewDB()),
		drivolution.WithLicenseMode(),
		drivolution.WithDefaultLease(time.Hour))
	if err != nil {
		return err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Stop()

	// One license key = one driver row. Per-user licensing: one holder
	// at a time.
	img := &drivolution.Image{
		Manifest: drivolution.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
		},
		Payload: []byte("per-user license key #0001"),
	}
	if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
		return err
	}
	fmt.Println("license key stored as a single-lease driver")

	rt := drivolution.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	mk := func(user, id string) *drivolution.Bootloader {
		return drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
			[]string{srv.Addr()}, rt,
			drivolution.WithCredentials(user, "pw"),
			drivolution.WithClientID(id))
	}
	url := "dbms://" + target.Addr() + "/prod"

	b1 := mk("analyst1", "workstation-1")
	defer b1.Close()
	c1, err := b1.Connect(url, client.Props{"user": "analyst1", "password": "pw"})
	if err != nil {
		return err
	}
	fmt.Printf("analyst1 acquired the license (lease %d) and is connected\n", b1.LeaseID())

	b2 := mk("analyst2", "workstation-2")
	defer b2.Close()
	if _, err := b2.Connect(url, client.Props{"user": "analyst2", "password": "pw"}); err != nil {
		fmt.Printf("analyst2 denied while the license is held: %v\n", err)
	} else {
		return fmt.Errorf("license exclusivity broken")
	}

	// analyst1's workstation crashes without releasing.
	_ = c1.Close()
	b1.Close()
	for target.UserHasSession("analyst1") {
		//lint:sleep-ok demo pacing: waiting for the engine's session teardown, bounded by the demo itself
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("analyst1 crashed (no release sent); engine shows no active session")

	// The license manager reclaims via the DBMS failure detector.
	mgr := license.NewManager(srv, license.DetectorFromDBMS(target))
	n, err := mgr.SweepOnce()
	if err != nil {
		return err
	}
	fmt.Printf("license manager reclaimed %d license via the engine's session table\n", n)

	if _, err := b2.Connect(url, client.Props{"user": "analyst2", "password": "pw"}); err != nil {
		return err
	}
	fmt.Println("analyst2 acquired the freed license — no human intervention, no restart")
	return nil
}
