#!/usr/bin/env bash
# bench.sh — tier-1 gate + benchmark runner with baseline diffing, so
# perf PRs have a committed trajectory to compare against.
#
# Usage:
#   scripts/bench.sh baseline   # tier-1 gate, run benches, write BENCH_baseline.json
#   scripts/bench.sh compare    # tier-1 gate, run benches, diff against BENCH_baseline.json
#   scripts/bench.sh run        # just run the benches (no gate, no diff)
#
# Environment:
#   BENCH_COUNT   repetitions per benchmark (default 5; best-of is kept)
#   BENCH_TIME    go -benchtime (default 1s)
#   BENCH_FILTER  go -bench regexp (default: the perf-tracked grant/wire set;
#                 set to '.' for the full suite, which includes slow sweeps)
#   BENCH_PKGS    packages to bench (default ". ./internal/wire ./internal/cluster")
#   BENCH_CPU     go -cpu list (e.g. "1,4,8") for the GOMAXPROCS scaling
#                 study of the BenchmarkConcurrent* family. Unset = the
#                 machine's GOMAXPROCS. Baseline/compare JSON folds cpu
#                 variants best-of under one name, so record baselines
#                 with BENCH_CPU unset and read scaling curves from the
#                 raw output of `BENCH_CPU=1,4,8 scripts/bench.sh run`.
#   BASELINE      baseline path (default BENCH_baseline.json)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-compare}"
COUNT="${BENCH_COUNT:-5}"
TIME="${BENCH_TIME:-1s}"
FILTER="${BENCH_FILTER:-BenchmarkMatchmaking|BenchmarkLeaseRenewalNoChange|BenchmarkLeaseRenewalUpgrade|BenchmarkLeaseRenewalAt100Leases|BenchmarkLeaseRenewalAt10000Leases|BenchmarkLicenseCheckAt10000Leases|BenchmarkExpirySweepAt100Leases|BenchmarkExpirySweepAt10000Leases|BenchmarkLicenseUsageCountAt10000Leases|BenchmarkExternalLeaseRenewal|BenchmarkExternalReapAt1000Leases|BenchmarkExternalMatchmaking|BenchmarkExternalPreparedRenewal|BenchmarkBootstrapProtocol|BenchmarkConcurrentBootstrap|BenchmarkConcurrentMatchmaking|BenchmarkConcurrentRenewal|BenchmarkConcurrentMixed|BenchmarkClusterMatchmaking|BenchmarkClusterRenewal|BenchmarkFrameRoundTrip|BenchmarkEncoder|BenchmarkDecoder|BenchmarkFileChunkFraming}"
PKGS="${BENCH_PKGS:-. ./internal/wire ./internal/cluster}"
CPU="${BENCH_CPU:-}"
BASELINE="${BASELINE:-BENCH_baseline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

tier1() {
    echo "== tier-1 gate: go build ./... && go test ./..."
    go build ./...
    go test ./...
}

run_benches() {
    local cpuflag=()
    [ -n "$CPU" ] && cpuflag=(-cpu="$CPU")
    echo "== benchmarks: -bench='$FILTER' -benchmem -count=$COUNT -benchtime=$TIME ${cpuflag[*]}"
    # shellcheck disable=SC2086
    go test -run='^$' -bench="$FILTER" -benchmem -count="$COUNT" -benchtime="$TIME" "${cpuflag[@]}" $PKGS | tee "$RAW"
}

# emit_json RAW_FILE — best (minimum ns/op) result per benchmark name,
# as line-oriented JSON that both jq and the awk in `compare` can read.
emit_json() {
    awk -v count="$COUNT" -v benchtime="$TIME" -v filter="$FILTER" '
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = ""; bop = ""; aop = ""
        for (i = 2; i <= NF; i++) {
            if ($i == "ns/op")     ns  = $(i-1)
            if ($i == "B/op")      bop = $(i-1)
            if ($i == "allocs/op") aop = $(i-1)
        }
        if (ns == "") next
        if (!(name in best) || ns + 0 < best[name] + 0) {
            best[name] = ns; bests_b[name] = bop; bests_a[name] = aop
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
    }
    END {
        printf "{\n  \"meta\": {\"count\": %s, \"benchtime\": \"%s\", \"filter\": \"%s\", \"stat\": \"best-of\"},\n", count, benchtime, filter
        printf "  \"benchmarks\": {\n"
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
                name, best[name], bests_b[name] == "" ? 0 : bests_b[name], \
                bests_a[name] == "" ? 0 : bests_a[name], i < n ? "," : ""
        }
        printf "  }\n}\n"
    }' "$1"
}

compare() {
    [ -f "$BASELINE" ] || { echo "no $BASELINE — run 'scripts/bench.sh baseline' first" >&2; exit 1; }
    NEW="$(mktemp)"
    emit_json "$RAW" > "$NEW"
    echo
    echo "== comparison vs $BASELINE (best-of ns/op; negative delta = faster)"
    awk -v old_file="$BASELINE" -v new_file="$NEW" '
    function load(file, map, mapb,   line, name, ns, bop) {
        while ((getline line < file) > 0) {
            if (match(line, /"Benchmark[^"]*"/)) {
                name = substr(line, RSTART + 1, RLENGTH - 2)
                if (match(line, /"ns_op": [0-9.e+]+/)) {
                    ns = substr(line, RSTART + 9, RLENGTH - 9); map[name] = ns
                }
                if (match(line, /"b_op": [0-9.e+]+/)) {
                    bop = substr(line, RSTART + 8, RLENGTH - 8); mapb[name] = bop
                }
            }
        }
        close(file)
    }
    BEGIN {
        load(old_file, oldns, oldb); load(new_file, newns, newb)
        printf "%-55s %14s %14s %9s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "B/op old>new"
        for (name in newns) names[++n] = name
        asort_ok = 0
        for (i = 1; i <= n; i++) {
            # insertion sort for portability (no gawk asort dependency)
            for (j = i; j > 1 && names[j] < names[j-1]; j--) {
                t = names[j]; names[j] = names[j-1]; names[j-1] = t
            }
        }
        worst = 0
        for (i = 1; i <= n; i++) {
            name = names[i]
            if (name in oldns) {
                d = (newns[name] - oldns[name]) / oldns[name] * 100
                if (d > worst) worst = d
                printf "%-55s %14.0f %14.0f %+8.1f%% %6.0f>%-6.0f\n", \
                    name, oldns[name], newns[name], d, oldb[name], newb[name]
            } else {
                printf "%-55s %14s %14.0f %9s\n", name, "-", newns[name], "new"
            }
        }
        if (worst > 25) {
            printf "\nWARN: worst regression %+.1f%% exceeds 25%%\n", worst
        }
    }'
    rm -f "$NEW"
}

case "$MODE" in
baseline)
    tier1
    run_benches
    emit_json "$RAW" > "$BASELINE"
    echo
    echo "== wrote $BASELINE"
    ;;
compare)
    tier1
    run_benches
    compare
    ;;
run)
    run_benches
    ;;
*)
    echo "usage: scripts/bench.sh {baseline|compare|run}" >&2
    exit 2
    ;;
esac
