#!/usr/bin/env bash
# loadtest.sh — fleet-scale load harness runner with tail-latency
# baseline diffing, the BENCH_tail.json counterpart of bench.sh.
#
# Usage:
#   scripts/loadtest.sh check      # scaled-down deterministic tier (fleet + scenario tests)
#   scripts/loadtest.sh baseline   # full-population scenarios, REWRITE BENCH_tail.json
#   scripts/loadtest.sh compare    # full-population scenarios, gate against BENCH_tail.json
#   scripts/loadtest.sh run        # full-population scenarios, print only
#
# Environment:
#   LOAD_SCENARIOS   comma list (default "steady,storm"; license/restart add
#                    per-seat setup cost that doesn't belong in the tail gate)
#   LOAD_POPULATION  simulated bootloaders (default 100000; compare reads the
#                    baseline's population/workers/seed so runs stay comparable)
#   LOAD_WORKERS     real connections multiplexing the fleet (default 64: the
#                    harness is round-trip-latency-bound, so concurrency, not
#                    cores, sets its throughput ceiling)
#   LOAD_DURATION    measured steady phase (default 10s)
#   LOAD_SEED        schedule seed (default 1)
#   CLUSTER          member count >0 adds the multi-member cluster tier: the
#                    scaled failover test in check mode, the "cluster" scenario
#                    in full runs (`make loadtest CLUSTER=3`)
#   LOAD_P99_PCT     compare: max allowed p99 regression in percent (default 50)
#   LOAD_RATE_PCT    compare: max allowed statements/sec drop in percent (default 35)
#   TAIL_BASELINE    baseline path (default BENCH_tail.json)
#
# The wide default thresholds are deliberate: latency tails on a shared
# single-core CI box are noisy, and this gate exists to catch tail
# *collapse* (a renewal path that stopped being O(1), a storm that
# serializes), not 10% jitter. Tighten locally when hunting a specific
# regression.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-check}"
SCENARIOS="${LOAD_SCENARIOS:-steady,storm}"
POPULATION="${LOAD_POPULATION:-100000}"
WORKERS="${LOAD_WORKERS:-64}"
DURATION="${LOAD_DURATION:-10s}"
SEED="${LOAD_SEED:-1}"
P99_PCT="${LOAD_P99_PCT:-50}"
RATE_PCT="${LOAD_RATE_PCT:-35}"
BASELINE="${TAIL_BASELINE:-BENCH_tail.json}"
CLUSTER="${CLUSTER:-0}"

check_tier() {
    echo "== scaled-down load tier: fleet + scenario tests"
    go test -run 'TestFleet|TestHist|TestRecorder|TestStats' ./internal/workload/
    go test -run 'TestLoad' ./internal/scenarios/
    if [ "$CLUSTER" -gt 0 ] 2>/dev/null; then
        echo "== cluster tier: $CLUSTER-member failover scenario (scaled)"
        LOAD_CLUSTER="$CLUSTER" go test -run 'TestLoadClusterFailoverSmall' -v ./internal/scenarios/
    fi
}

# baseline_field FILE KEY — first record's value of KEY (run metadata).
baseline_field() {
    awk -v key="\"$2\"" '$1 == key ":" { gsub(/[,"]/, "", $2); print $2; exit }' "$1"
}

run_full() {
    local out="$1"
    # Compare against like with like: reuse the baseline's population
    # and seed when gating, so deltas mean code changes, not config.
    local pop="$POPULATION" workers="$WORKERS" seed="$SEED"
    if [ "$MODE" = compare ] && [ -f "$BASELINE" ]; then
        pop="$(baseline_field "$BASELINE" population)"; pop="${pop:-$POPULATION}"
        workers="$(baseline_field "$BASELINE" workers)"; workers="${workers:-$WORKERS}"
        seed="$(baseline_field "$BASELINE" seed)"; seed="${seed:-$SEED}"
    fi
    local scen="$SCENARIOS"
    if [ "$CLUSTER" -gt 0 ] 2>/dev/null; then
        scen="$scen,cluster"
    fi
    echo "== load scenarios '$scen': population $pop, workers $workers, duration $DURATION, seed $seed"
    go run ./cmd/experiments -load "$scen" -population "$pop" -workers "$workers" \
        -duration "$DURATION" -seed "$seed" -cluster "$CLUSTER" -out "$out"
}

# compare_tails OLD NEW — per-scenario p99/statement-rate gate. The
# JSON is the indented line-oriented shape cmd/experiments writes, so
# plain awk can walk it without jq.
compare_tails() {
    awk -v old_file="$1" -v new_file="$2" -v p99_pct="$P99_PCT" -v rate_pct="$RATE_PCT" '
    function load(file, p99s, rates,   line, scen) {
        while ((getline line < file) > 0) {
            if (match(line, /"scenario": "[^"]*"/)) {
                scen = substr(line, RSTART + 13, RLENGTH - 14)
            }
            if (match(line, /"p99_us": [0-9.e+]+/))
                p99s[scen] = substr(line, RSTART + 10, RLENGTH - 10)
            if (match(line, /"statements_per_sec": [0-9.e+]+/))
                rates[scen] = substr(line, RSTART + 22, RLENGTH - 22)
        }
        close(file)
    }
    BEGIN {
        load(old_file, oldp, oldr); load(new_file, newp, newr)
        printf "%-10s %12s %12s %9s %14s %14s %9s\n", \
            "scenario", "old p99us", "new p99us", "delta", "old stmt/s", "new stmt/s", "delta"
        bad = 0
        for (scen in newp) {
            if (!(scen in oldp)) {
                printf "%-10s %12s %12.0f %9s\n", scen, "-", newp[scen], "new"
                continue
            }
            dp = (newp[scen] - oldp[scen]) / oldp[scen] * 100
            dr = (newr[scen] - oldr[scen]) / oldr[scen] * 100
            printf "%-10s %12.0f %12.0f %+8.1f%% %14.0f %14.0f %+8.1f%%\n", \
                scen, oldp[scen], newp[scen], dp, oldr[scen], newr[scen], dr
            if (dp > p99_pct + 0) {
                printf "FAIL: %s p99 regressed %+.1f%% (limit +%s%%)\n", scen, dp, p99_pct; bad = 1
            }
            if (dr < -(rate_pct + 0)) {
                printf "FAIL: %s statement rate dropped %+.1f%% (limit -%s%%)\n", scen, dr, rate_pct; bad = 1
            }
        }
        exit bad
    }'
}

case "$MODE" in
check)
    check_tier
    ;;
baseline)
    run_full "$BASELINE"
    echo "== wrote $BASELINE"
    ;;
compare)
    [ -f "$BASELINE" ] || { echo "no $BASELINE — run 'scripts/loadtest.sh baseline' first" >&2; exit 1; }
    NEW="$(mktemp)"
    trap 'rm -f "$NEW"' EXIT
    run_full "$NEW"
    echo
    echo "== tail comparison vs $BASELINE (limits: p99 +${P99_PCT}%, stmt/s -${RATE_PCT}%)"
    compare_tails "$BASELINE" "$NEW"
    ;;
run)
    NEW="$(mktemp)"
    trap 'rm -f "$NEW"' EXIT
    run_full "$NEW"
    ;;
*)
    echo "usage: scripts/loadtest.sh {check|baseline|compare|run}" >&2
    exit 2
    ;;
esac
