#!/usr/bin/env bash
# doclint.sh — fail if any internal/ package lacks a package comment.
#
# Every package under internal/ — at any nesting depth — must carry a
# `// Package <name> ...` doc comment in at least one non-test file:
# the architecture docs (README.md, docs/ARCHITECTURE.md) lean on
# `go doc` as the canonical per-package reference, which only works if
# the comments exist. testdata trees are invisible to go tooling and
# are skipped. Run by `make lint` (and so by `make check`).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in $(find internal -type d -not -path '*/testdata*' | sort); do
    # Only directories that actually hold a Go package.
    ls "$dir"/*.go >/dev/null 2>&1 || continue
    pkg="$(basename "$dir")"
    found=0
    for f in "$dir"/*.go; do
        case "$f" in *_test.go) continue ;; esac
        if grep -qE "^// Package ${pkg}( |$)" "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "doclint: package ${pkg} (${dir}) has no '// Package ${pkg} ...' comment" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "doclint: add a package comment to each package listed above" >&2
    exit 1
fi
echo "doclint: all internal/ packages documented"
