// Package drivolution is the public API of this reproduction of
// "Drivolution: Rethinking the Database Driver Lifecycle" (Cecchet &
// Candea, Middleware 2009, Industrial Track).
//
// Drivolution stores database drivers inside the database itself and
// distributes them to client applications on demand over a DHCP-like
// lease protocol. Applications link a tiny Bootloader instead of a
// driver; the bootloader downloads, verifies, and dynamically loads the
// right driver for the database it talks to, and later upgrades,
// reconfigures, or revokes it — live, under policy, from one central
// INSERT on the Drivolution server.
//
// # Quick start
//
//	rt := drivolution.NewRuntime()
//	rt.Register(dbms.DriverKind, dbms.ImageFactory())
//
//	store := drivolution.NewLocalStore(sqlmini.NewDB())
//	srv, _ := drivolution.NewServer("drivolution-1", store)
//	srv.Start("127.0.0.1:7070")
//	srv.AddDriver(img, dbver.FormatImage) // the one-step driver rollout
//
//	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0),
//	    dbver.PlatformLinuxAMD64, []string{"127.0.0.1:7070"}, rt)
//	conn, _ := bl.Connect("dbms://db-host:9001/prod", nil)
//	conn.Query("SELECT ...")
//
// See examples/ for runnable scenarios: quickstart, master/slave
// failover via driver swap (Figure 4), a heterogeneous DBA console
// (Figure 3), Sequoia clusters with standalone and embedded Drivolution
// servers (Figures 5 and 6), and the per-user license server (§5.4.2).
//
// # Grant fast path
//
// The server keeps a versioned in-memory catalog of driver metadata and
// permission rows. Stores that can report a generation counter over the
// two schema tables (LocalStore does; the counter lives on the embedded
// database, so servers sharing one database invalidate each other)
// serve steady-state grants entirely from the catalog: no SQL, no image
// decoding, no blob materialization. Any admin mutation bumps the
// generation and is visible to the very next grant. Driver binaries are
// fetched lazily, only when a transfer will actually happen — DISCOVER
// probes and renewal-no-change round trips are blob-free — and §5.4.1
// on-demand assembly is memoized per (driver content, package set,
// options) shape. Bootloaders keep a persistent connection to their
// server, so the §3.2 steady-state lease traffic costs one framed round
// trip per renewal. ConnStore deployments (the external server, §4.1.3)
// reach the same fast path over the wire: when the legacy DBMS session
// negotiates the v2 table-versions capability, the catalog validates
// against one generation-probe frame per request — zero SQL — and
// observes writes made by any other client of that database; against
// v1 peers the store transparently keeps the per-request SQL path.
//
// # Indexed lease paths
//
// The embedded SQL engine (internal/sqlmini) executes statements whose
// WHERE clause carries a top-level equality conjunct on an indexed
// column — the primary key, or a secondary index declared with
// CREATE INDEX / DB.EnsureIndex — as an O(1) point lookup with the full
// WHERE re-applied as a residual filter; `released = FALSE`-style bool
// predicates ride along as residuals. Columns with an ORDERED index
// (CREATE INDEX ... USING ORDERED / DB.EnsureOrderedIndex) additionally
// serve range conjuncts — col > k, >=, <, <=, BETWEEN, including
// statement-stable now() bounds — as an O(log n) boundary seek plus an
// in-order walk of just the matching window; ordered indexes may span
// several columns (CREATE INDEX ... (a, b) USING ORDERED), and a plan
// that consumes every WHERE conjunct runs residual-free. The schema
// declares hash indexes on leases(driver_id) and
// driver_permission(driver_id), an ordered index on leases(expires_at),
// and a composite ordered index on leases(driver_id, expires_at), and
// the lease_id and driver_id primary keys drive execution, so renewals,
// releases, lease lookups, blob point-fetches, the §5.4.2 license-mode
// driver-free probe (one residual-free seek into a driver's unexpired
// window), the license usage count (Server.LicensesInUse,
// `expires_at > now()`), and the lease-expiry sweep
// (Server.ReapExpiredLeases, `expires_at <= $now`)
// are all flat or near-flat in the lease population
// (BenchmarkLeaseRenewalAt*Leases, BenchmarkLicenseCheckAt10000Leases,
// and BenchmarkExpirySweepAt*Leases track this at the 10k scale). The
// planner is conservative: any WHERE shape it cannot prove equivalent —
// OR at the top level, expressions that can fail row-dependently, lossy
// hash keys like id = 1.5, order-incompatible range bounds — falls back
// to the unchanged scan path with identical results, and DB.Explain
// reports which path a statement takes (docs/ARCHITECTURE.md specifies
// the full eligibility contract and Explain format). Catalog reloads
// are deltas: permission churn carries driver entries over untouched,
// and driver churn re-hashes only blobs whose bytes actually changed.
//
// # Store API v2: capability interfaces
//
// The storage boundary is Store (one Exec) plus optional capability
// interfaces detected by type assertion, mirroring the GenerationStore
// pattern: TxStore (Begin/Commit/Rollback with atomic multi-statement
// semantics), StmtStore (Prepare returning reusable handles that carry
// their cached AST and plan skeleton), and BatchStore (ExecBatch — one
// wire round trip on the external store; on the embedded one the batch
// holds every referenced table's write latch for its whole run, so it
// is atomic and isolated). LocalStore implements all three;
// ConnStore implements TxStore and BatchStore over a small connection
// pool with per-transaction connection affinity (a long transaction no
// longer head-of-line blocks unrelated statements). The RunAtomic,
// ExecBatchOn, and PrepareOn adapters give plain-Exec stores
// best-effort fallbacks, so third-party Store implementations keep
// working unchanged. On these rails the server's multi-statement
// operations — driver registration, permission updates, driver
// deletion, lease creation, and the expiry sweep — execute as single
// atomic units; the sweep is one statement regardless of lease count
// (staged-blob reclamation is in-memory: each pending transfer records
// its lease expiry at staging time). ConnStore's failure contract is explicit: a statement
// is replayed after a redial only when it provably never executed
// (never left the client) or is a read-only SELECT; anything else
// surfaces ErrExecOutcomeUnknown instead of risking double-apply.
// CountingStore pins the statement budgets in tests (renewal = 1
// statement, reap = 1).
//
// # Wire API v2: negotiated remote sessions
//
// The dbms wire protocol negotiates each session's contract at connect
// time: the client hello offers a protocol version range plus a
// capability bitmask, and the server answers with the highest shared
// version and the capability intersection. Version-pinned peers (every
// legacy driver build, servers using WithProtocolVersion) keep the
// paper's step-5 connect-time failure on mismatch; ranged peers
// negotiate down cleanly. v2 sessions carry server-side prepared
// statements (msgPrepare/msgExecStmt — the remote parses once per
// handle, semantics pinned identical to ad-hoc execution including
// transactions, replication, and the read-only gate) and table-version
// probes (msgTableVersions — the engine's generation counters in one
// round trip, zero SQL). ConnStore rides both: it implements StmtStore
// over remote handles cached per pooled connection (re-prepared
// transparently across redials, replayed only under the
// provably-unsent/read-only contract) and GenerationStore over the
// probe (gate with GenerationEnabled — the capability is negotiated,
// not static), so steady-state external matchmaking runs zero SQL
// statements against the legacy DBMS. ConnStore.Stats reports pool and
// session health (borrows, redials, live remote handles); golden-frame
// tests pin every message's byte-exact encoding.
//
// Benchmarks track these paths: see Makefile bench targets and
// BENCH_baseline.json (scripts/bench.sh compares runs against it;
// scripts/README.md documents the workflow). `make check` (build + vet
// + doc-lint + tests) is the tier-1 gate; README.md maps paper sections
// to packages.
//
// The substrates (the simulated DBMS, the embedded SQL engine, the
// Sequoia middleware, the driver-image runtime) live under internal/ and
// are documented in DESIGN.md and docs/ARCHITECTURE.md.
package drivolution
