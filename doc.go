// Package drivolution is the public API of this reproduction of
// "Drivolution: Rethinking the Database Driver Lifecycle" (Cecchet &
// Candea, Middleware 2009, Industrial Track).
//
// Drivolution stores database drivers inside the database itself and
// distributes them to client applications on demand over a DHCP-like
// lease protocol. Applications link a tiny Bootloader instead of a
// driver; the bootloader downloads, verifies, and dynamically loads the
// right driver for the database it talks to, and later upgrades,
// reconfigures, or revokes it — live, under policy, from one central
// INSERT on the Drivolution server.
//
// # Quick start
//
//	rt := drivolution.NewRuntime()
//	rt.Register(dbms.DriverKind, dbms.ImageFactory())
//
//	store := drivolution.NewLocalStore(sqlmini.NewDB())
//	srv, _ := drivolution.NewServer("drivolution-1", store)
//	srv.Start("127.0.0.1:7070")
//	srv.AddDriver(img, dbver.FormatImage) // the one-step driver rollout
//
//	bl := drivolution.NewBootloader(dbver.APIOf("JDBC", 3, 0),
//	    dbver.PlatformLinuxAMD64, []string{"127.0.0.1:7070"}, rt)
//	conn, _ := bl.Connect("dbms://db-host:9001/prod", nil)
//	conn.Query("SELECT ...")
//
// See examples/ for runnable scenarios: quickstart, master/slave
// failover via driver swap (Figure 4), a heterogeneous DBA console
// (Figure 3), Sequoia clusters with standalone and embedded Drivolution
// servers (Figures 5 and 6), and the per-user license server (§5.4.2).
//
// The substrates (the simulated DBMS, the embedded SQL engine, the
// Sequoia middleware, the driver-image runtime) live under internal/ and
// are documented in DESIGN.md.
package drivolution
