package drivolution_test

// Benchmarks regenerating the paper's artifacts (see DESIGN.md §4).
// One bench per table/figure hot path plus the ablations DESIGN.md §6
// calls out. Run: go test -bench=. -benchmem .

import (
	"crypto/ed25519"
	"crypto/tls"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/scenarios"
	"repro/internal/sqlmini"
)

func addDriverB(b *testing.B, s *scenarios.Stack, ver dbver.Version, proto uint16, payload int) int64 {
	b.Helper()
	id, err := s.Drv.AddDriver(s.Image(ver, proto, payload), dbver.FormatImage)
	if err != nil {
		b.Fatal(err)
	}
	return id
}

func newStackB(b *testing.B, cfg scenarios.StackConfig) *scenarios.Stack {
	b.Helper()
	s, err := scenarios.NewStack(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkBootstrapProtocol measures the Table 3 flow end to end:
// DISCOVER-less REQUEST → OFFER → FILE transfer → verify → load →
// connect, per fresh bootloader.
func BenchmarkBootstrapProtocol(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := s.Bootloader()
		c, err := bl.Connect(s.AppURL(), nil)
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
		bl.Close()
	}
}

// BenchmarkLeaseRenewalNoChange measures the Table 4 RENEW branch: one
// round trip, no transfer.
func BenchmarkLeaseRenewalNoChange(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 16<<10)
	bl := s.Bootloader()
	if _, err := bl.Connect(s.AppURL(), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bl.ForceRenew("prod"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if m := bl.Stats(); m.Renewals < int64(b.N) {
		b.Fatalf("renewals = %d, want >= %d", m.Renewals, b.N)
	}
}

// fillLeases bulk-inserts n synthetic lease rows so the per-request
// lease statements run against a populated table. driverIDFor spreads
// rows over driver ids (license-check benches) or pins them to one.
func fillLeases(b *testing.B, s *scenarios.Stack, n int, driverIDFor func(i int) int64) {
	b.Helper()
	st := s.Drv.Store()
	now := time.Now()
	args := sqlmini.Args{"g": now, "e": now.Add(24 * time.Hour)}
	const batch = 200
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		var sb strings.Builder
		sb.WriteString(`INSERT INTO ` + core.LeasesTable + ` (lease_id, driver_id,
			database, user, client_id, granted_at, expires_at, released, renewals) VALUES `)
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d, 'prod', 'app', 'filler-%d', $g, $e, FALSE, 0)",
				1_000_000+i, driverIDFor(i), i)
		}
		if _, err := st.Exec(sb.String(), args); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLeaseRenewalAtScale measures the Table 4 no-change renewal with
// the leases table pre-filled to a given population. With the lease_id
// PK driving the guarded UPDATE, ns/op must stay flat in the population
// (the 10000-lease run within ~1.5× of the 100-lease run).
func benchLeaseRenewalAtScale(b *testing.B, leases int) {
	s := newStackB(b, scenarios.StackConfig{})
	drvID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 16<<10)
	bl := s.Bootloader()
	if _, err := bl.Connect(s.AppURL(), nil); err != nil {
		b.Fatal(err)
	}
	fillLeases(b, s, leases-1, func(int) int64 { return drvID })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bl.ForceRenew("prod"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeaseRenewalAt100Leases(b *testing.B)   { benchLeaseRenewalAtScale(b, 100) }
func BenchmarkLeaseRenewalAt10000Leases(b *testing.B) { benchLeaseRenewalAtScale(b, 10000) }

// BenchmarkLicenseCheckAt10000Leases measures the §5.4.2 license-mode
// lease-free check (DISCOVER through the wire) with 10000 live leases
// spread over 100 foreign drivers. The driver_id index reduces the
// count(*) from a 10000-row scan to one (empty) bucket probe.
func BenchmarkLicenseCheckAt10000Leases(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{
		ServerOpts: []core.ServerOption{core.WithLicenseMode()},
	})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)
	fillLeases(b, s, 10000, func(i int) int64 { return 1000 + int64(i%100) })
	req := core.Request{
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "bench",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Probe(s.Drv.Addr(), req, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExpirySweepAtScale measures the lease-reaper sweep with the
// leases table pre-filled to a given population of live (unexpired)
// leases. With the ordered expires_at index the sweep seeks the expired
// prefix — empty here — so ns/op must stay near-flat across the 100×
// population growth instead of scanning every lease row.
func benchExpirySweepAtScale(b *testing.B, leases int) {
	s := newStackB(b, scenarios.StackConfig{})
	drvID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)
	fillLeases(b, s, leases, func(int) int64 { return drvID })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Drv.ReapExpiredLeases(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpirySweepAt100Leases(b *testing.B)   { benchExpirySweepAtScale(b, 100) }
func BenchmarkExpirySweepAt10000Leases(b *testing.B) { benchExpirySweepAtScale(b, 10000) }

// BenchmarkLicenseUsageCountAt10000Leases measures the §5.4.2 license
// accounting count with a populated lease log: half the rows released,
// half live. The ordered expires_at index narrows the count to the
// unexpired window before the released flag is filtered residually.
func BenchmarkLicenseUsageCountAt10000Leases(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	drvID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)
	fillLeases(b, s, 10000, func(int) int64 { return drvID })
	if _, err := s.Drv.Store().Exec(`UPDATE ` + core.LeasesTable + `
		SET released = TRUE, expires_at = granted_at WHERE lease_id < 1005000`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Drv.LicensesInUse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeaseRenewalUpgrade measures the Table 4 UPGRADE branch: the
// driver changed; renewal downloads, verifies, loads, and hot-swaps it.
func BenchmarkLeaseRenewalUpgrade(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	curID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 16<<10)
	bl := s.Bootloader()
	if _, err := bl.Connect(s.AppURL(), nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nextID := addDriverB(b, s, dbver.V(1, 0, i+1), 1, 16<<10)
		if err := s.Drv.DeleteDriver(curID); err != nil {
			b.Fatal(err)
		}
		curID = nextID
		b.StartTimer()
		if err := bl.ForceRenew("prod"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if m := bl.Stats(); m.Upgrades < int64(b.N) {
		b.Fatalf("upgrades = %d, want >= %d", m.Upgrades, b.N)
	}
}

// BenchmarkMatchmaking measures the Sample code 1/2 server logic through
// the wire (DISCOVER; no lease, no transfer) against a 50-driver table.
func BenchmarkMatchmaking(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	for i := 0; i < 50; i++ {
		addDriverB(b, s, dbver.V(1, i, 0), 1, 1<<10)
	}
	req := core.Request{
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "bench",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Probe(s.Drv.Addr(), req, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentMatchmaking hammers one server with parallel
// DISCOVER probes against a 50-driver table — the read-only hot path.
// Matchmaking runs entirely on lock-free catalog and MVCC snapshot
// reads (no write latch anywhere on the path), so aggregate throughput
// should scale near-linearly with GOMAXPROCS; run with -cpu=1,4,8 to
// see the curve (see scripts/bench.sh BENCH_CPU).
func BenchmarkConcurrentMatchmaking(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	for i := 0; i < 50; i++ {
		addDriverB(b, s, dbver.V(1, i, 0), 1, 1<<10)
	}
	req := core.Request{
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "bench",
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := core.Probe(s.Drv.Addr(), req, 5*time.Second); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentRenewal measures parallel no-change renewals, each
// goroutine owning its own bootloader and therefore its own lease row.
// The renewals' guarded UPDATEs all target the leases table, so the
// per-table write latch is the serialization point; everything else on
// the path (wire handling, matchmaking reads, plan binding) runs
// concurrently, which is what lets aggregate throughput grow with
// GOMAXPROCS even though the writes themselves serialize.
func BenchmarkConcurrentRenewal(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 16<<10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		bl := s.Bootloader()
		defer bl.Close()
		if _, err := bl.Connect(s.AppURL(), nil); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if err := bl.ForceRenew("prod"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentMixed is the 90/10 read/write blend: per worker,
// nine DISCOVER probes for every lease renewal — roughly the steady
// state of a fleet that renews occasionally while matchmaking traffic
// dominates. Snapshot reads never wait on the 10% writer slice, so the
// blend should track the read-only benchmark's scaling closely.
func BenchmarkConcurrentMixed(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)
	req := core.Request{
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "bench",
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		bl := s.Bootloader()
		defer bl.Close()
		if _, err := bl.Connect(s.AppURL(), nil); err != nil {
			b.Error(err)
			return
		}
		op := 0
		for pb.Next() {
			op++
			if op%10 == 0 {
				if err := bl.ForceRenew("prod"); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			if _, err := core.Probe(s.Drv.Addr(), req, 5*time.Second); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkConcurrentBootstrap hammers one server with parallel fresh
// bootstraps (the cluster-restart stampede after an outage). It
// exercises the grant path's concurrency: catalog reads are lock-free,
// and pending-transfer staging, lease-id allocation, and subscriber
// bookkeeping sit behind separate locks.
func BenchmarkConcurrentBootstrap(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 32<<10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bl := s.Bootloader()
			c, err := bl.Connect(s.AppURL(), nil)
			if err != nil {
				b.Error(err)
				return
			}
			c.Close()
			bl.Close()
		}
	})
}

// BenchmarkTransferSize sweeps driver binary sizes through the chunked
// FILE transfer (Figure 1's distribution path).
func BenchmarkTransferSize(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			s := newStackB(b, scenarios.StackConfig{})
			addDriverB(b, s, dbver.V(1, 0, 0), 1, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bl := s.Bootloader()
				if _, err := bl.Connect(s.AppURL(), nil); err != nil {
					b.Fatal(err)
				}
				bl.Close()
			}
		})
	}
}

// BenchmarkConnectOverhead is the interception-cost ablation: the same
// connect+query through the legacy driver vs through the bootloader
// (after its driver is installed).
func BenchmarkConnectOverhead(b *testing.B) {
	s := newStackB(b, scenarios.StackConfig{})
	addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)

	b.Run("legacy-driver", func(b *testing.B) {
		drv := s.LegacyDriver(1)
		for i := 0; i < b.N; i++ {
			c, err := drv.Connect(s.AppURL(), s.LegacyProps())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Query("SELECT 1"); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
	b.Run("bootloader", func(b *testing.B) {
		bl := s.Bootloader()
		if _, err := bl.Connect(s.AppURL(), nil); err != nil {
			b.Fatal(err) // install once, outside the loop
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := bl.Connect(s.AppURL(), nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Query("SELECT 1"); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkSecureTransfer is the DESIGN.md §6 ablation 4: bootstrap cost
// plaintext+unsigned vs signed vs TLS.
func BenchmarkSecureTransfer(b *testing.B) {
	const payload = 64 << 10
	b.Run("plain", func(b *testing.B) {
		s := newStackB(b, scenarios.StackConfig{})
		addDriverB(b, s, dbver.V(1, 0, 0), 1, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bl := s.Bootloader()
			if _, err := bl.Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
			bl.Close()
		}
	})
	b.Run("signed", func(b *testing.B) {
		pub, priv, err := ed25519.GenerateKey(nil)
		if err != nil {
			b.Fatal(err)
		}
		s := newStackB(b, scenarios.StackConfig{ServerOpts: []core.ServerOption{core.WithSigningKey(priv)}})
		addDriverB(b, s, dbver.V(1, 0, 0), 1, payload)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bl := s.Bootloader(core.WithTrustKey(pub))
			if _, err := bl.Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
			bl.Close()
		}
	})
	b.Run("tls", func(b *testing.B) {
		cert, roots, err := core.GenerateTLSCert("127.0.0.1")
		if err != nil {
			b.Fatal(err)
		}
		s := newStackB(b, scenarios.StackConfig{})
		addDriverB(b, s, dbver.V(1, 0, 0), 1, payload)
		tlsSrv, err := core.NewServer("tls", core.NewLocalStore(s.Drv.Store().(*core.LocalStore).DB))
		if err != nil {
			b.Fatal(err)
		}
		if err := tlsSrv.StartTLS("127.0.0.1:0", cert); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(tlsSrv.Stop)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bl := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
				[]string{tlsSrv.Addr()}, s.RT,
				core.WithCredentials("app", "app-pw"),
				core.WithTLS(&tls.Config{RootCAs: roots, ServerName: "127.0.0.1"}))
			if _, err := bl.Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
			bl.Close()
		}
	})
}

// BenchmarkExpirationPolicies measures the connection-transition sweep
// of an upgrade for each Table 2 expiration policy, with 8 idle
// connections per iteration.
func BenchmarkExpirationPolicies(b *testing.B) {
	for _, pol := range []core.ExpirationPolicy{core.AfterClose, core.AfterCommit, core.Immediate} {
		b.Run(pol.String(), func(b *testing.B) {
			s := newStackB(b, scenarios.StackConfig{
				ServerOpts: []core.ServerOption{core.WithDefaultPolicies(core.RenewUpgrade, pol)},
			})
			curID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 8<<10)
			bl := s.Bootloader()
			if _, err := bl.Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				conns := make([]client.Conn, 8)
				for j := range conns {
					c, err := bl.Connect(s.AppURL(), nil)
					if err != nil {
						b.Fatal(err)
					}
					conns[j] = c
				}
				nextID := addDriverB(b, s, dbver.V(1, 0, i+1), 1, 8<<10)
				if err := s.Drv.DeleteDriver(curID); err != nil {
					b.Fatal(err)
				}
				curID = nextID
				b.StartTimer()
				if err := bl.ForceRenew("prod"); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, c := range conns {
					c.Close()
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkUpgradePropagation compares the complete rollout of one
// driver upgrade to a fleet of 8 clients: the traditional lifecycle
// (stop app, replace driver, restart, reconnect — modelled as a full
// reconnect cycle per client plus the server bounce) vs Drivolution (one
// insert + per-client renewals). This is the paper's 10-steps-vs-1
// claim in wall-clock form (Q1).
func BenchmarkUpgradePropagation(b *testing.B) {
	const fleet = 8
	b.Run("traditional-restart", func(b *testing.B) {
		s := newStackB(b, scenarios.StackConfig{})
		drv := s.LegacyDriver(1)
		for i := 0; i < b.N; i++ {
			// Each client: stop (close), driver replaced, restart
			// (reconnect + first query).
			for cNum := 0; cNum < fleet; cNum++ {
				c, err := drv.Connect(s.AppURL(), s.LegacyProps())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Query("SELECT 1"); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		}
	})
	b.Run("drivolution-hot-swap", func(b *testing.B) {
		s := newStackB(b, scenarios.StackConfig{})
		curID := addDriverB(b, s, dbver.V(1, 0, 0), 1, 8<<10)
		bls := make([]*core.Bootloader, fleet)
		for j := range bls {
			bls[j] = s.Bootloader()
			if _, err := bls[j].Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			nextID := addDriverB(b, s, dbver.V(1, 0, i+1), 1, 8<<10)
			if err := s.Drv.DeleteDriver(curID); err != nil {
				b.Fatal(err)
			}
			curID = nextID
			b.StartTimer()
			for _, bl := range bls {
				if err := bl.ForceRenew("prod"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkLeaseTrafficSweep measures the §3.2 trade-off (Q2): server
// request rate as a function of lease time, for a fixed observation
// window per iteration. ns/op is the window; the reported metric
// renewals/s is the traffic.
func BenchmarkLeaseTrafficSweep(b *testing.B) {
	for _, lease := range []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond} {
		b.Run(lease.String(), func(b *testing.B) {
			s := newStackB(b, scenarios.StackConfig{
				ServerOpts: []core.ServerOption{core.WithDefaultLease(lease)},
			})
			addDriverB(b, s, dbver.V(1, 0, 0), 1, 4<<10)
			bl := s.Bootloader(core.WithRenewAhead(0.8))
			if _, err := bl.Connect(s.AppURL(), nil); err != nil {
				b.Fatal(err)
			}
			const window = 200 * time.Millisecond
			b.ResetTimer()
			var renewals int64
			for i := 0; i < b.N; i++ {
				before := bl.Stats().Renewals
				time.Sleep(window)
				renewals += bl.Stats().Renewals - before
			}
			b.StopTimer()
			secs := window.Seconds() * float64(b.N)
			b.ReportMetric(float64(renewals)/secs, "renewals/s")
		})
	}
}

// externalStack boots the Figure 2 shape for benchmarking: a legacy
// DBMS holding both the application data ("prod") and the Drivolution
// schema ("meta"), an external Drivolution server reaching the schema
// through a ConnStore over the legacy native driver, and a driver
// runtime.
type externalStack struct {
	legacy *dbms.Server
	store  *core.ConnStore
	drv    *core.Server
	rt     *driverimg.Runtime
}

func newExternalStackB(b *testing.B) *externalStack {
	return newExternalStackProto(b, 1)
}

// newExternalStackProto boots the external stack with the Drivolution
// server's legacy connection pinned to storeProto: 1 keeps the v1 SQL
// path (no remote prepare, no generation probes), 2 negotiates the full
// v2 session contract.
func newExternalStackProto(b *testing.B, storeProto uint16) *externalStack {
	b.Helper()
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
	appDB.MustExec("INSERT INTO items (id, name) VALUES (1, 'widget')")
	legacy := dbms.NewServer("legacy-db",
		dbms.WithUser("app", "app-pw"),
		dbms.WithUser("drivolution", "svc-pw"))
	legacy.AddDatabase("prod", appDB)
	legacy.AddDatabase("meta", sqlmini.NewDB())
	if err := legacy.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(legacy.Stop)

	legacyDriver := dbms.NewNativeDriver(dbver.V(1, 0, 0), storeProto)
	addr := legacy.Addr()
	store := core.NewConnStore(func() (client.Conn, error) {
		return legacyDriver.Connect("dbms://"+addr+"/meta",
			client.Props{"user": "drivolution", "password": "svc-pw"})
	})
	b.Cleanup(store.Close)

	drv, err := core.NewServer("external-drivolution", store)
	if err != nil {
		b.Fatal(err)
	}
	if err := drv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(drv.Stop)

	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	return &externalStack{legacy: legacy, store: store, drv: drv, rt: rt}
}

func (s *externalStack) image(payload int) *driverimg.Image {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i * 13)
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: body,
	}
}

// BenchmarkExternalLeaseRenewal measures the Table 4 no-change renewal
// against the external deployment (Figure 2): every matchmaking and
// lease statement crosses a real driver connection to the legacy DBMS
// through the pooled ConnStore, so this tracks the per-renewal wire
// cost of the SQL path (ConnStore has no generation counter, so no
// catalog shortcut applies).
func BenchmarkExternalLeaseRenewal(b *testing.B) {
	s := newExternalStackB(b)
	if _, err := s.drv.AddDriver(s.image(16<<10), dbver.FormatImage); err != nil {
		b.Fatal(err)
	}
	bl := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{s.drv.Addr()}, s.rt,
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	b.Cleanup(bl.Close)
	if _, err := bl.Connect("dbms://"+s.legacy.Addr()+"/prod", nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bl.ForceRenew("prod"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExternalReapAt1000Leases measures the expiry sweep against
// the external deployment with 1000 live leases in the remote log: the
// whole sweep is one statement on the legacy connection (staged-blob
// reclamation is in-memory), so ns/op tracks a single wire round trip
// regardless of the lease population.
func BenchmarkExternalReapAt1000Leases(b *testing.B) {
	s := newExternalStackB(b)
	if _, err := s.drv.AddDriver(s.image(4<<10), dbver.FormatImage); err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	args := sqlmini.Args{"g": now, "e": now.Add(24 * time.Hour)}
	const batch = 200
	for lo := 0; lo < 1000; lo += batch {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO ` + core.LeasesTable + ` (lease_id, driver_id,
			database, user, client_id, granted_at, expires_at, released, renewals) VALUES `)
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, 1, 'prod', 'app', 'filler-%d', $g, $e, FALSE, 0)", 1_000_000+i, i)
		}
		if _, err := s.store.Exec(sb.String(), args); err != nil {
			b.Fatal(err)
		}
	}
	queriesBefore := s.legacy.QueriesServed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.drv.ReapExpiredLeases(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := s.legacy.QueriesServed() - queriesBefore; got != int64(b.N) {
		b.Fatalf("sweeps must cost one statement each: %d statements for %d sweeps", got, b.N)
	}
}

// BenchmarkExternalMatchmaking measures steady-state matchmaking on the
// external deployment over a v2 session: the wire generation probe
// (msgTableVersions) validates the in-memory catalog, so a DISCOVER
// costs ZERO SQL statements on the legacy DBMS — the Sample code 1/2
// queries that BenchmarkExternalLeaseRenewal's v1 path still pays per
// request are gone. Pinned: the measured window must reach the legacy
// server with no statements at all.
func BenchmarkExternalMatchmaking(b *testing.B) {
	s := newExternalStackProto(b, 2)
	for i := 0; i < 50; i++ {
		if _, err := s.drv.AddDriver(s.image(1<<10), dbver.FormatImage); err != nil {
			b.Fatal(err)
		}
	}
	req := core.Request{
		Database:       "prod",
		User:           "app",
		Password:       "app-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       "bench",
	}
	// Warm: load the catalog and fix capability detection.
	if _, err := core.Probe(s.drv.Addr(), req, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	queriesBefore := s.legacy.QueriesServed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Probe(s.drv.Addr(), req, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := s.legacy.QueriesServed() - queriesBefore; got != 0 {
		b.Fatalf("steady-state external matchmaking leaked %d SQL statements for %d probes, want 0", got, b.N)
	}
}

// BenchmarkExternalPreparedRenewal measures the Table 4 no-change
// renewal on the external deployment over a v2 session: matchmaking is
// served from the catalog (generation probe only) and the single
// guarded UPDATE runs through a remote prepared handle (msgExecStmt) —
// the legacy DBMS sees exactly one pre-parsed statement per renewal.
// Compare BenchmarkExternalLeaseRenewal, the same flow over a v1
// session (full SQL matchmaking, per-call parsing).
func BenchmarkExternalPreparedRenewal(b *testing.B) {
	s := newExternalStackProto(b, 2)
	if _, err := s.drv.AddDriver(s.image(16<<10), dbver.FormatImage); err != nil {
		b.Fatal(err)
	}
	bl := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{s.drv.Addr()}, s.rt,
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	b.Cleanup(bl.Close)
	if _, err := bl.Connect("dbms://"+s.legacy.Addr()+"/prod", nil); err != nil {
		b.Fatal(err)
	}
	if err := bl.ForceRenew("prod"); err != nil { // warm catalog + handles
		b.Fatal(err)
	}
	queriesBefore := s.legacy.QueriesServed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bl.ForceRenew("prod"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := s.legacy.QueriesServed() - queriesBefore; got != int64(b.N) {
		b.Fatalf("renewals must cost one statement each: %d statements for %d renewals", got, b.N)
	}
}
