package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// startDrvServer boots a Drivolution server with one matching driver
// and returns it plus the AddDriver hook for upgrades.
func startDrvServer(t *testing.T, opts ...core.ServerOption) *core.Server {
	t.Helper()
	srv, err := core.NewServer("fleet-test", core.NewLocalStore(sqlmini.NewDB()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func fleetImage(ver dbver.Version, payload int) *driverimg.Image {
	body := make([]byte, payload)
	for i := range body {
		body[i] = byte(i * 31)
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         ver,
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: body,
	}
}

func fleetConfig(addr string, pop int) FleetConfig {
	return FleetConfig{
		Addr:          addr,
		Database:      "prod",
		User:          "app",
		Password:      "app-pw",
		Population:    pop,
		Workers:       4,
		Seed:          42,
		RampUp:        50 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond,
		OpTimeout:     2 * time.Second,
	}
}

// TestFleetSteadyState pins the harness core loop: every virtual
// client bootstraps during the ramp, renews on the jittered schedule,
// and the fleet sustains multiple renewal rounds with zero errors.
func TestFleetSteadyState(t *testing.T) {
	srv := startDrvServer(t, core.WithDefaultLease(400*time.Millisecond))
	if _, err := srv.AddDriver(fleetImage(dbver.V(1, 0, 0), 256), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	cfg := fleetConfig(srv.Addr(), 200)
	// Renew at 80% of the term: the 80ms slack between renewal cadence
	// and expiry keeps the end-of-run LicensesInUse check robust to
	// scheduler hiccups on a loaded single-core CI box.
	cfg.RenewAhead = 0.8
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.RunFor(1100 * time.Millisecond)

	if rep.Stats.Errors != 0 {
		t.Fatalf("steady state produced errors: %s", rep)
	}
	if rep.Live != 200 {
		t.Fatalf("live = %d, want 200 (every client holds a lease)", rep.Live)
	}
	// ~1.1s at a 400ms lease renewed at ~80%: at least 2 renewal
	// rounds beyond the 200 bootstraps.
	if rep.Stats.Total < 200+2*200 {
		t.Fatalf("too few requests for a renewing fleet: %s", rep)
	}
	if rep.Stats.P50 <= 0 || rep.Stats.P99 < rep.Stats.P50 || rep.Stats.Max < rep.Stats.P99 {
		t.Fatalf("latency stats inconsistent: %+v", rep.Stats)
	}
	sums := f.Checksums()
	if len(sums) != 1 {
		t.Fatalf("checksums = %v, want exactly one generation", sums)
	}
	for sum, n := range sums {
		if sum == "" || n != 200 {
			t.Fatalf("checksums = %v, want all 200 on one real driver", sums)
		}
	}
	if got, err := srv.LicensesInUse(); err != nil || got != 200 {
		t.Fatalf("server live leases = %d (%v), want 200", got, err)
	}
	c := srv.Counters()
	if c.LeasesGranted != 200 {
		t.Fatalf("leases granted = %d, want 200 (no client re-bootstrapped)", c.LeasesGranted)
	}
	if c.RenewKeeps == 0 {
		t.Fatalf("no keep-renewals recorded: %+v", c)
	}
}

// TestFleetUpgradeConverges pins upgrade handling: adding a new driver
// generation mid-run turns renewals into upgrade offers, every client
// fetches the new blob, and the fleet converges with no client left on
// the old generation.
func TestFleetUpgradeConverges(t *testing.T) {
	srv := startDrvServer(t, core.WithDefaultLease(100*time.Millisecond))
	if _, err := srv.AddDriver(fleetImage(dbver.V(1, 0, 0), 256), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	cfg := fleetConfig(srv.Addr(), 100)
	cfg.FetchOnUpgrade = true
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	// Let the fleet settle on v1, then publish v2.
	time.Sleep(250 * time.Millisecond)
	before := f.Checksums()
	if len(before) != 1 {
		t.Fatalf("fleet not settled before storm: %v", before)
	}
	if _, err := srv.AddDriver(fleetImage(dbver.V(2, 0, 0), 512), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		sums := f.Checksums()
		if len(sums) == 1 {
			converged := true
			for sum := range sums {
				if _, was := before[sum]; was {
					converged = false // still the old generation
				}
			}
			if converged {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not converge to the new driver: %v", f.Checksums())
		}
		time.Sleep(20 * time.Millisecond)
	}
	f.Stop()

	rep := f.Report()
	if rep.Upgrades < 100 {
		t.Fatalf("upgrades = %d, want >= 100 (every client swapped)", rep.Upgrades)
	}
	if rep.TransferBytes < 100*512 {
		t.Fatalf("transfer bytes = %d, want >= %d", rep.TransferBytes, 100*512)
	}
	if rep.Stats.Errors != 0 {
		t.Fatalf("upgrade storm produced errors: %s", rep)
	}
}

// TestFleetLicenseDenialAndRelease pins license-mode behavior: with
// fewer seats than clients the surplus is denied (not errored into
// oblivion), and release churn recirculates seats.
func TestFleetLicenseDenialAndRelease(t *testing.T) {
	srv := startDrvServer(t,
		core.WithDefaultLease(80*time.Millisecond),
		core.WithLicenseMode(),
		// Keep renewals on the granted seat: no upgrade churn between
		// the three license copies mid-test.
		core.WithDefaultPolicies(core.RenewKeep, core.AfterCommit))
	// 3 seats for 6 clients.
	for i := 0; i < 3; i++ {
		img := fleetImage(dbver.V(1, 0, i), 64)
		if _, err := srv.AddDriver(img, dbver.FormatImage); err != nil {
			t.Fatal(err)
		}
	}

	cfg := fleetConfig(srv.Addr(), 6)
	cfg.Workers = 2
	cfg.RampUp = 10 * time.Millisecond
	cfg.RetryInterval = 15 * time.Millisecond
	cfg.ReleaseAfterRenewals = 2
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()

	// Sample the server-side license count while churning.
	peak := 0
	for i := 0; i < 40; i++ {
		n, err := srv.LicensesInUse()
		if err != nil {
			t.Fatal(err)
		}
		if n > peak {
			peak = n
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.Stop()
	rep := f.Report()

	if peak > 3 {
		t.Fatalf("license cap exceeded: peak %d seats in use, cap 3", peak)
	}
	if rep.Denied == 0 {
		t.Fatal("no denials with 6 clients contending for 3 seats")
	}
	if rep.Releases == 0 {
		t.Fatal("release churn never released")
	}
	// Denials are clean protocol errors, recorded as failures — but
	// they must be NO_DRIVER denials, not timeouts.
	if rep.Stats.Timeouts != 0 {
		t.Fatalf("license contention should not time out: %s", rep)
	}
}

// TestFleetSeededScheduleIsDeterministic pins that the jitter schedule
// is a pure function of (seed, client, event) — same seed, same
// delays.
func TestFleetSeededScheduleIsDeterministic(t *testing.T) {
	mk := func(seed int64) *Fleet {
		f, err := NewFleet(FleetConfig{Addr: "127.0.0.1:1", Population: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b, c := mk(7), mk(7), mk(8)
	for id := int32(0); id < 8; id++ {
		for seq := uint16(0); seq < 4; seq++ {
			if a.renewDelay(time.Second, id, seq) != b.renewDelay(time.Second, id, seq) {
				t.Fatal("same seed produced different renewal schedules")
			}
			if a.retryDelay(id, seq) != b.retryDelay(id, seq) {
				t.Fatal("same seed produced different retry schedules")
			}
		}
	}
	diff := false
	for id := int32(0); id < 8 && !diff; id++ {
		if a.renewDelay(time.Second, id, 1) != c.renewDelay(time.Second, id, 1) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical schedules — jitter is not seeded")
	}
}
