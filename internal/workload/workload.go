// Package workload drives simulated client applications against a
// database through any client.Driver (a legacy driver or a Drivolution
// bootloader) and records per-request outcomes, so the paper's
// operational claims — driver upgrades are disruptive today, transparent
// under Drivolution — become measurable error windows and latencies.
package workload

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
)

// Outcome is one recorded request.
type Outcome struct {
	Start   time.Time
	Latency time.Duration
	Err     error
	// ConnectFail marks outcomes where the connection could not even be
	// established (as opposed to an established connection failing an op).
	ConnectFail bool
}

// Recorder accumulates outcomes from concurrent workers. State is
// sharded — each shard has its own lock, histogram, and counters, and
// shards merge on read — so a six-figure virtual-client fleet never
// funnels every request through one mutex. In the default mode every
// Outcome is also retained for post-hoc inspection (Outcomes); the
// histogram-only mode (NewHistRecorder) keeps just the fixed-size
// histogram and counters per shard, so memory stays flat no matter how
// many requests a run records.
type Recorder struct {
	retain bool
	shards []recShard
	next   atomic.Uint64 // round-robin shard pick for unpinned Record calls
}

// recShard is one worker's slice of the recorder. The trailing pad
// keeps adjacent shards off one cache line — shards exist precisely so
// workers don't contend.
type recShard struct {
	mu       sync.Mutex
	outcomes []Outcome
	hist     Hist // successful-request latencies
	total    uint64
	errors   uint64
	retries  uint64
	timeouts uint64
	firstFail, lastFail time.Time
	_                   [64]byte
}

// NewRecorder creates an outcome-retaining recorder (the default mode:
// full per-request history, suitable for scenario-sized runs).
func NewRecorder() *Recorder { return newRecorder(8, true) }

// NewHistRecorder creates a histogram-only recorder with one shard per
// expected worker: per-request outcomes are never retained, so memory
// is O(shards), not O(requests). This is the mode fleet-scale runs use.
func NewHistRecorder(shards int) *Recorder { return newRecorder(shards, false) }

func newRecorder(shards int, retain bool) *Recorder {
	if shards < 1 {
		shards = 1
	}
	return &Recorder{retain: retain, shards: make([]recShard, shards)}
}

// HistogramOnly reports whether the recorder retains outcomes.
func (r *Recorder) HistogramOnly() bool { return !r.retain }

// Record appends one outcome to some shard. Callers with a stable
// worker identity should prefer RecordShard, which avoids even the
// round-robin atomic.
func (r *Recorder) Record(o Outcome) {
	r.RecordShard(int(r.next.Add(1)), o)
}

// RecordShard appends one outcome to the shard owned by worker w
// (w mod shard count, so any id is safe).
func (r *Recorder) RecordShard(w int, o Outcome) {
	if w < 0 {
		w = -w
	}
	s := &r.shards[w%len(r.shards)]
	s.mu.Lock()
	s.total++
	if o.Err != nil {
		s.errors++
		if o.ConnectFail {
			s.retries++
		}
		if isTimeoutErr(o.Err) {
			s.timeouts++
		}
		end := o.Start.Add(o.Latency)
		if s.firstFail.IsZero() || end.Before(s.firstFail) {
			s.firstFail = end
		}
		if end.After(s.lastFail) {
			s.lastFail = end
		}
	} else {
		s.hist.Record(o.Latency)
	}
	if r.retain {
		s.outcomes = append(s.outcomes, o)
	}
	s.mu.Unlock()
}

// isTimeoutErr classifies deadline expiries: both transport-level
// timeouts (net.Error with Timeout() true, which includes
// os.ErrDeadlineExceeded from SetDeadline) and context deadlines
// (context.DeadlineExceeded — what a context-scoped op surfaces, which
// does NOT implement net.Error) count.
func isTimeoutErr(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Outcomes snapshots the recorded outcomes in start order. In
// histogram-only mode no outcomes are retained and Outcomes returns
// nil.
func (r *Recorder) Outcomes() []Outcome {
	if !r.retain {
		return nil
	}
	var out []Outcome
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.outcomes...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Hist returns the merged latency histogram of successful requests.
func (r *Recorder) Hist() Hist {
	var h Hist
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		h.Merge(&s.hist)
		s.mu.Unlock()
	}
	return h
}

// Stats summarizes a run.
type Stats struct {
	Total  int
	Errors int
	// ErrorWindow is the wall-clock span during which failures occurred:
	// the time between the first and the last failed request completion.
	// Concurrent workers make gap-to-recovery measures ambiguous; this
	// span is robust and still zero-ish for a one-off hiccup versus
	// ~outage-length for a real outage.
	ErrorWindow time.Duration
	// P50, P95, P99 are latency quantiles of successful requests, read
	// from the merged histogram (bucket upper bounds, ≤~3% high); Max
	// is the exact worst successful request.
	P50, P95, P99, Max time.Duration
	// Retries counts connect attempts that failed and were retried on
	// the backoff schedule.
	Retries int
	// Timeouts counts errors that were deadline expiries — transport
	// timeouts (net.Error with Timeout() true) or context deadlines
	// (context.DeadlineExceeded) — rather than hard failures.
	Timeouts int
}

// Stats computes the summary by merging every shard's counters and
// histogram; it never touches retained outcomes, so it costs the same
// in both recorder modes.
func (r *Recorder) Stats() Stats {
	var s Stats
	var h Hist
	var firstFail, lastFail time.Time
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		s.Total += int(sh.total)
		s.Errors += int(sh.errors)
		s.Retries += int(sh.retries)
		s.Timeouts += int(sh.timeouts)
		if !sh.firstFail.IsZero() && (firstFail.IsZero() || sh.firstFail.Before(firstFail)) {
			firstFail = sh.firstFail
		}
		if sh.lastFail.After(lastFail) {
			lastFail = sh.lastFail
		}
		h.Merge(&sh.hist)
		sh.mu.Unlock()
	}
	if !firstFail.IsZero() {
		s.ErrorWindow = lastFail.Sub(firstFail)
	}
	if h.Count() > 0 {
		s.P50 = h.Quantile(0.50)
		s.P95 = h.Quantile(0.95)
		s.P99 = h.Quantile(0.99)
		s.Max = h.Max()
	}
	return s
}

// Runner is a closed-loop client application: Workers goroutines, each
// holding one connection, issuing Op every Think interval, reconnecting
// after failures (what a real application's retry loop does).
type Runner struct {
	// Driver opens connections; a legacy driver or a bootloader.
	Driver client.Driver
	// URL is the application's connection URL.
	URL string
	// Props are connection properties.
	Props client.Props
	// Op issues one request on a connection. Default: SELECT 1.
	Op func(c client.Conn, worker, iter int) error
	// Workers is the number of concurrent clients (default 1).
	Workers int
	// Think is the inter-request delay per worker (default 1ms).
	Think time.Duration
	// Backoff is the reconnect schedule after connect failures. Zero
	// value derives a jittered exponential schedule from Think, so a
	// dead server is probed at the workload's own cadence at first and
	// progressively less often, never in lockstep across workers.
	Backoff faultnet.Policy

	rec    *Recorder
	stopCh chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// NewRunner builds a runner with defaults applied.
func NewRunner(drv client.Driver, url string, props client.Props) *Runner {
	return &Runner{
		Driver:  drv,
		URL:     url,
		Props:   props,
		Workers: 1,
		Think:   time.Millisecond,
		rec:     NewRecorder(),
		stopCh:  make(chan struct{}),
	}
}

// Recorder exposes the run's outcomes.
func (r *Runner) Recorder() *Recorder { return r.rec }

// Start launches the workers.
func (r *Runner) Start() {
	if r.Op == nil {
		r.Op = func(c client.Conn, _, _ int) error {
			_, err := c.Query("SELECT 1")
			return err
		}
	}
	for w := 0; w < r.Workers; w++ {
		r.wg.Add(1)
		go r.worker(w)
	}
}

// Stop halts the workers and waits for them.
func (r *Runner) Stop() {
	r.once.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

// RunFor starts the workload, lets it run for d, then stops it and
// returns the stats.
func (r *Runner) RunFor(d time.Duration) Stats {
	r.Start()
	timer := time.NewTimer(d)
	defer timer.Stop()
	<-timer.C
	r.Stop()
	return r.rec.Stats()
}

// backoffPolicy resolves the reconnect schedule, deriving one from
// Think when the Backoff field is left zero.
func (r *Runner) backoffPolicy() faultnet.Policy {
	if r.Backoff != (faultnet.Policy{}) {
		return r.Backoff
	}
	return faultnet.Policy{Initial: r.Think, Max: 32 * r.Think, Factor: 2, Jitter: 0.5}
}

func (r *Runner) worker(id int) {
	defer r.wg.Done()
	var conn client.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	bo := faultnet.NewBackoff(r.backoffPolicy())
	for iter := 0; ; iter++ {
		select {
		case <-r.stopCh:
			return
		default:
		}
		start := time.Now()
		var err error
		connectAttempt := conn == nil
		if connectAttempt {
			conn, err = r.Driver.Connect(r.URL, r.Props)
		}
		if err == nil {
			err = r.Op(conn, id, iter)
		}
		r.rec.RecordShard(id, Outcome{Start: start, Latency: time.Since(start), Err: err,
			ConnectFail: connectAttempt && conn == nil})
		if err != nil && conn != nil {
			_ = conn.Close()
			conn = nil // reconnect next loop
		}
		if err != nil && conn == nil {
			// Connect failed: back off on the shared jittered schedule so
			// a dead server isn't hammered, then go straight to the next
			// attempt (the backoff already replaces the think pause).
			if !bo.Sleep(r.stopCh) {
				return
			}
			continue
		}
		bo.Reset()
		select {
		case <-r.stopCh:
			return
		case <-time.After(r.Think):
		}
	}
}
