// Package workload drives simulated client applications against a
// database through any client.Driver (a legacy driver or a Drivolution
// bootloader) and records per-request outcomes, so the paper's
// operational claims — driver upgrades are disruptive today, transparent
// under Drivolution — become measurable error windows and latencies.
package workload

import (
	"errors"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
)

// Outcome is one recorded request.
type Outcome struct {
	Start   time.Time
	Latency time.Duration
	Err     error
	// ConnectFail marks outcomes where the connection could not even be
	// established (as opposed to an established connection failing an op).
	ConnectFail bool
}

// Recorder accumulates outcomes from concurrent workers.
type Recorder struct {
	mu       sync.Mutex
	outcomes []Outcome
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one outcome.
func (r *Recorder) Record(o Outcome) {
	r.mu.Lock()
	r.outcomes = append(r.outcomes, o)
	r.mu.Unlock()
}

// Outcomes snapshots the recorded outcomes in start order.
func (r *Recorder) Outcomes() []Outcome {
	r.mu.Lock()
	out := append([]Outcome(nil), r.outcomes...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Stats summarizes a run.
type Stats struct {
	Total  int
	Errors int
	// ErrorWindow is the wall-clock span during which failures occurred:
	// the time between the first and the last failed request completion.
	// Concurrent workers make gap-to-recovery measures ambiguous; this
	// span is robust and still zero-ish for a one-off hiccup versus
	// ~outage-length for a real outage.
	ErrorWindow time.Duration
	// P50, P95, Max are latencies of successful requests.
	P50, P95, Max time.Duration
	// Retries counts connect attempts that failed and were retried on
	// the backoff schedule.
	Retries int
	// Timeouts counts errors that were deadline expiries (net.Error
	// with Timeout() true) rather than hard failures.
	Timeouts int
}

// Stats computes the summary.
func (r *Recorder) Stats() Stats {
	outs := r.Outcomes()
	s := Stats{Total: len(outs)}
	var okLat []time.Duration
	var firstFail, lastFail time.Time
	for _, o := range outs {
		if o.Err != nil {
			s.Errors++
			if o.ConnectFail {
				s.Retries++
			}
			var ne net.Error
			if errors.As(o.Err, &ne) && ne.Timeout() {
				s.Timeouts++
			}
			end := o.Start.Add(o.Latency)
			if firstFail.IsZero() || end.Before(firstFail) {
				firstFail = end
			}
			if end.After(lastFail) {
				lastFail = end
			}
			continue
		}
		okLat = append(okLat, o.Latency)
	}
	if !firstFail.IsZero() {
		s.ErrorWindow = lastFail.Sub(firstFail)
	}
	if len(okLat) > 0 {
		sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
		s.P50 = okLat[len(okLat)/2]
		s.P95 = okLat[(len(okLat)*95)/100]
		s.Max = okLat[len(okLat)-1]
	}
	return s
}

// Runner is a closed-loop client application: Workers goroutines, each
// holding one connection, issuing Op every Think interval, reconnecting
// after failures (what a real application's retry loop does).
type Runner struct {
	// Driver opens connections; a legacy driver or a bootloader.
	Driver client.Driver
	// URL is the application's connection URL.
	URL string
	// Props are connection properties.
	Props client.Props
	// Op issues one request on a connection. Default: SELECT 1.
	Op func(c client.Conn, worker, iter int) error
	// Workers is the number of concurrent clients (default 1).
	Workers int
	// Think is the inter-request delay per worker (default 1ms).
	Think time.Duration
	// Backoff is the reconnect schedule after connect failures. Zero
	// value derives a jittered exponential schedule from Think, so a
	// dead server is probed at the workload's own cadence at first and
	// progressively less often, never in lockstep across workers.
	Backoff faultnet.Policy

	rec    *Recorder
	stopCh chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// NewRunner builds a runner with defaults applied.
func NewRunner(drv client.Driver, url string, props client.Props) *Runner {
	return &Runner{
		Driver:  drv,
		URL:     url,
		Props:   props,
		Workers: 1,
		Think:   time.Millisecond,
		rec:     NewRecorder(),
		stopCh:  make(chan struct{}),
	}
}

// Recorder exposes the run's outcomes.
func (r *Runner) Recorder() *Recorder { return r.rec }

// Start launches the workers.
func (r *Runner) Start() {
	if r.Op == nil {
		r.Op = func(c client.Conn, _, _ int) error {
			_, err := c.Query("SELECT 1")
			return err
		}
	}
	for w := 0; w < r.Workers; w++ {
		r.wg.Add(1)
		go r.worker(w)
	}
}

// Stop halts the workers and waits for them.
func (r *Runner) Stop() {
	r.once.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

// RunFor starts the workload, lets it run for d, then stops it and
// returns the stats.
func (r *Runner) RunFor(d time.Duration) Stats {
	r.Start()
	timer := time.NewTimer(d)
	defer timer.Stop()
	<-timer.C
	r.Stop()
	return r.rec.Stats()
}

// backoffPolicy resolves the reconnect schedule, deriving one from
// Think when the Backoff field is left zero.
func (r *Runner) backoffPolicy() faultnet.Policy {
	if r.Backoff != (faultnet.Policy{}) {
		return r.Backoff
	}
	return faultnet.Policy{Initial: r.Think, Max: 32 * r.Think, Factor: 2, Jitter: 0.5}
}

func (r *Runner) worker(id int) {
	defer r.wg.Done()
	var conn client.Conn
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	bo := faultnet.NewBackoff(r.backoffPolicy())
	for iter := 0; ; iter++ {
		select {
		case <-r.stopCh:
			return
		default:
		}
		start := time.Now()
		var err error
		connectAttempt := conn == nil
		if connectAttempt {
			conn, err = r.Driver.Connect(r.URL, r.Props)
		}
		if err == nil {
			err = r.Op(conn, id, iter)
		}
		r.rec.Record(Outcome{Start: start, Latency: time.Since(start), Err: err,
			ConnectFail: connectAttempt && conn == nil})
		if err != nil && conn != nil {
			_ = conn.Close()
			conn = nil // reconnect next loop
		}
		if err != nil && conn == nil {
			// Connect failed: back off on the shared jittered schedule so
			// a dead server isn't hammered, then go straight to the next
			// attempt (the backoff already replaces the think pause).
			if !bo.Sleep(r.stopCh) {
				return
			}
			continue
		}
		bo.Reset()
		select {
		case <-r.stopCh:
			return
		case <-time.After(r.Think):
		}
	}
}
