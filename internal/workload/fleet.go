package workload

import (
	"container/heap"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/faultnet"
)

// Fleet drives a six-figure population of *simulated* bootloaders
// against one Drivolution server address. Each virtual client is ~32
// bytes of state (lease id, interned checksum, schedule counters), not
// a goroutine: a shared min-heap of renewal events, ordered by due
// time, is drained by a small bounded pool of workers, each owning one
// real protocol connection (core.LeaseClient). That separation is what
// makes 100k–1M clients simulable on one box — the population scales
// the event heap, while socket count, goroutine count, and recorder
// shards scale only with Workers.
//
// Virtual clients follow the bootloader's control-plane state machine:
// bootstrap (Table 3), jittered lease renewal (Table 4), upgrade
// transfer on a new driver generation, DHCP-style rebootstrap on
// NO_LEASE, retry-with-jitter on license denial, and keep-driver retry
// on transport failure (§4.1.3 — a cut-off client keeps its lease
// identity and comes back). They do not run drivers or serve SQL; this
// harness measures the control plane under realistic populations,
// which is exactly where renewal stampedes, upgrade storms, and tail
// collapse live.
type Fleet struct {
	cfg   FleetConfig
	addrs []string // resolved server list (cfg.Addrs, or [cfg.Addr])
	rec   *Recorder

	start  time.Time
	stopCh chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	mu      sync.Mutex
	events  eventHeap
	clients []vclient
	// Checksum interning: virtual clients store a uint32 index, the
	// fleet stores each distinct checksum once plus how many clients
	// currently run it (the convergence counter scenarios assert on).
	sums    []string
	sumIDs  map[string]uint32
	sumPop  []int64
	live    int64 // clients currently holding a lease
	stopped bool

	// Flow counters (atomic: workers bump them outside f.mu).
	upgrades      atomic.Int64
	denied        atomic.Int64
	rebootstraps  atomic.Int64
	releases      atomic.Int64
	transferBytes atomic.Int64
	redirects     atomic.Int64

	workerLag []lagSlot
}

// lagSlot is a per-worker schedule-lag maximum, padded onto its own
// cache line.
type lagSlot struct {
	max int64
	_   [56]byte
}

// FleetConfig parameterizes a fleet run. Zero values get defaults
// noted per field.
type FleetConfig struct {
	// Addr is the Drivolution server (or fault proxy) address.
	Addr string
	// Addrs lists every member of a server cluster; when set it
	// supersedes Addr. Clients start spread across the members, chase
	// REDIRECT frames to their shard owners, and fail over to the next
	// member when one stops answering — the simulated analog of the
	// bootloader's multi-server list (§5.3.2).
	Addrs []string
	// Database, User, Password fill every request's credentials.
	Database string
	User     string
	Password string
	// API and Platform of the simulated bootloaders (default JDBC 3.0
	// on linux-amd64).
	API      dbver.API
	Platform dbver.Platform

	// Population is the number of virtual clients (required).
	Population int
	// Workers is the number of real connections draining the event
	// heap (default 8).
	Workers int
	// Seed makes every schedule decision — ramp spacing, renewal
	// jitter, retry jitter — a pure function of (Seed, client, event
	// counter), so a run is reproducible modulo server timing.
	Seed int64

	// RampUp spreads initial bootstraps over this window (default 1s)
	// so the fleet arrives like a deployment, not a thundering herd —
	// set it low to simulate exactly that herd.
	RampUp time.Duration
	// RenewAhead renews at this fraction of the lease term (default
	// 0.9); Jitter smears each renewal into [RenewAhead·(1−Jitter),
	// RenewAhead]·lease (default 0.2, negative disables) so a
	// synchronized fleet de-correlates instead of stampeding every
	// lease period.
	RenewAhead float64
	Jitter     float64
	// RetryInterval is the base delay before a denied or failed client
	// tries again, jittered into [1,2)·RetryInterval (default 1s).
	RetryInterval time.Duration
	// OpTimeout bounds every protocol exchange (default 5s).
	OpTimeout time.Duration

	// FetchOnBootstrap downloads the driver blob at bootstrap (a cold
	// fleet); off, clients take the lease and checksum but skip the
	// transfer (a warm fleet — the first renewal acks the checksum and
	// the server drops the staged blob).
	FetchOnBootstrap bool
	// FetchOnUpgrade downloads the blob when a renewal offers a new
	// driver (default true via NewFleet): an upgrade storm is mostly
	// transfer load, so opting out should be explicit.
	FetchOnUpgrade bool
	// ReleaseAfterRenewals, when >0, has each client release its lease
	// after that many renewals and rebootstrap after an idle period —
	// the churn that makes license capacity circulate (§5.4.2).
	ReleaseAfterRenewals int

	// Recorder defaults to a histogram-only recorder with one shard
	// per worker.
	Recorder *Recorder
}

// vclient is one simulated bootloader. It holds no goroutine and no
// connection; whichever worker pops its next event acts on its behalf.
// A client has exactly one scheduled event at any time, so after the
// pop that worker owns the struct exclusively — only the shared
// convergence/live counters need f.mu.
type vclient struct {
	leaseID  uint64
	checksum uint32 // index into Fleet.sums; 0 is ""
	renewals uint16 // renewals on the current lease (release churn)
	seq      uint16 // per-client event counter feeding the jitter prng
	state    uint8
	home     uint8 // index into Fleet.addrs this client currently talks to
}

const (
	vcBoot uint8 = iota // no lease: next event is a bootstrap attempt
	vcLive              // holds a lease: next event is a renewal
)

// event is one scheduled client action; due is nanoseconds since
// Fleet.start.
type event struct {
	due int64
	id  int32
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].due < h[j].due }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewFleet validates the config and builds the client population and
// its initial bootstrap schedule.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	addrs := cfg.Addrs
	if len(addrs) == 0 && cfg.Addr != "" {
		addrs = []string{cfg.Addr}
	}
	if len(addrs) == 0 {
		return nil, errors.New("workload: fleet needs a server address")
	}
	if len(addrs) > 256 {
		return nil, errors.New("workload: at most 256 cluster members")
	}
	if cfg.Population <= 0 {
		return nil, errors.New("workload: fleet needs a population")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.API == (dbver.API{}) {
		cfg.API = dbver.APIOf("JDBC", 3, 0)
	}
	if cfg.Platform == "" {
		cfg.Platform = dbver.PlatformLinuxAMD64
	}
	if cfg.RampUp <= 0 {
		cfg.RampUp = time.Second
	}
	if cfg.RenewAhead <= 0 || cfg.RenewAhead > 1 {
		cfg.RenewAhead = 0.9
	}
	if cfg.Jitter == 0 || cfg.Jitter >= 1 {
		cfg.Jitter = 0.2
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 5 * time.Second
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = NewHistRecorder(cfg.Workers)
	}
	f := &Fleet{
		cfg:       cfg,
		addrs:     addrs,
		rec:       rec,
		stopCh:    make(chan struct{}),
		clients:   make([]vclient, cfg.Population),
		events:    make(eventHeap, 0, cfg.Population),
		sums:      []string{""},
		sumIDs:    map[string]uint32{"": 0},
		sumPop:    []int64{0},
		workerLag: make([]lagSlot, cfg.Workers),
	}
	// Initial schedule: bootstraps spread evenly across the ramp with
	// per-client jitter, already heap-ordered by construction.
	step := float64(cfg.RampUp) / float64(cfg.Population)
	for i := range f.clients {
		// Clients start spread across the members; redirects move each
		// one to its shard owner within its first exchange.
		f.clients[i].home = uint8(i % len(addrs))
		due := int64(float64(i) * step)
		f.events = append(f.events, event{due: due, id: int32(i)})
	}
	return f, nil
}

// Recorder exposes the run's recorder.
func (f *Fleet) Recorder() *Recorder { return f.rec }

// Start launches the worker pool.
func (f *Fleet) Start() {
	f.start = time.Now()
	for w := 0; w < f.cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker(w)
	}
}

// Stop halts the workers and waits for them.
func (f *Fleet) Stop() {
	f.once.Do(func() {
		close(f.stopCh)
		f.mu.Lock()
		f.stopped = true
		f.mu.Unlock()
	})
	f.wg.Wait()
}

// RunFor starts the fleet, lets it run for d, stops it, and reports.
func (f *Fleet) RunFor(d time.Duration) FleetReport {
	f.Start()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.stopCh:
	}
	f.Stop()
	return f.Report()
}

// FleetReport summarizes a fleet run.
type FleetReport struct {
	Stats   Stats
	Elapsed time.Duration
	// RequestsPerSec is completed protocol exchanges (successes and
	// failures) per wall-clock second. Steady-state renewals cost the
	// server exactly one store statement each, so for a renewal fleet
	// this is also the statements-per-second figure.
	RequestsPerSec float64
	// Live is how many clients held a lease when the run stopped.
	Live int
	// Upgrades counts upgrade offers applied (client moved to a new
	// driver generation); TransferBytes the driver bytes downloaded.
	Upgrades      int64
	TransferBytes int64
	// Denied counts bootstrap attempts refused by the server (license
	// contention); Rebootstraps counts NO_LEASE recoveries; Releases
	// counts voluntary lease give-backs.
	Denied       int64
	Rebootstraps int64
	Releases     int64
	// Redirects counts cluster REDIRECT answers followed (clients
	// relocating to their shard owners).
	Redirects int64
	// ScheduleLagMax is the worst observed delay between an event's
	// due time and a worker starting it. When it approaches the lease
	// term the harness (or the server) is saturated and tail numbers
	// describe queueing, not service — report it rather than hide it.
	ScheduleLagMax time.Duration
}

// Report snapshots current stats; valid during and after a run.
func (f *Fleet) Report() FleetReport {
	elapsed := time.Since(f.start)
	st := f.rec.Stats()
	var lag int64
	for i := range f.workerLag {
		if m := atomic.LoadInt64(&f.workerLag[i].max); m > lag {
			lag = m
		}
	}
	f.mu.Lock()
	live := f.live
	f.mu.Unlock()
	rps := 0.0
	if elapsed > 0 {
		rps = float64(st.Total) / elapsed.Seconds()
	}
	return FleetReport{
		Stats:          st,
		Elapsed:        elapsed,
		RequestsPerSec: rps,
		Live:           int(live),
		Upgrades:       f.upgrades.Load(),
		TransferBytes:  f.transferBytes.Load(),
		Denied:         f.denied.Load(),
		Rebootstraps:   f.rebootstraps.Load(),
		Releases:       f.releases.Load(),
		Redirects:      f.redirects.Load(),
		ScheduleLagMax: time.Duration(lag),
	}
}

// OnChecksum reports how many clients currently run the driver with
// the given content checksum — the convergence count an upgrade-storm
// scenario asserts on.
func (f *Fleet) OnChecksum(sum string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	id, ok := f.sumIDs[sum]
	if !ok {
		return 0
	}
	return int(f.sumPop[id])
}

// Checksums snapshots the population per driver checksum (only
// non-zero entries; the "" key counts clients that have not yet seen
// any driver). A converged fleet has exactly one non-empty key at
// Population.
func (f *Fleet) Checksums() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int)
	for id, n := range f.sumPop {
		if n > 0 {
			out[f.sums[id]] = int(n)
		}
	}
	return out
}

// Live reports how many clients currently hold a lease.
func (f *Fleet) Live() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.live)
}

func (f *Fleet) now() int64 { return int64(time.Since(f.start)) }

// addrIndex resolves a redirect target to a member slot (-1 when the
// address is not in the configured list).
func (f *Fleet) addrIndex(addr string) int {
	for i, a := range f.addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// rand01 derives a deterministic uniform in [0,1) from (seed, client,
// event counter) via splitmix64 — no per-client rng state, no locks.
func (f *Fleet) rand01(id int32, seq uint16) float64 {
	x := uint64(f.cfg.Seed) ^ uint64(id)<<32 ^ uint64(seq)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// reschedule pushes the client's next event.
func (f *Fleet) reschedule(id int32, delay time.Duration) {
	f.mu.Lock()
	if !f.stopped {
		heap.Push(&f.events, event{due: f.now() + int64(delay), id: id})
	}
	f.mu.Unlock()
}

// renewDelay is the jittered next-renewal offset for a fresh lease
// term: within [RenewAhead·(1−Jitter), RenewAhead]·lease, i.e. always
// ahead of expiry, de-correlated across the fleet.
func (f *Fleet) renewDelay(lease time.Duration, id int32, seq uint16) time.Duration {
	frac := f.cfg.RenewAhead * (1 - f.cfg.Jitter*f.rand01(id, seq))
	return time.Duration(float64(lease) * frac)
}

// retryDelay is the jittered back-off for denied/failed clients:
// [1,2)·RetryInterval.
func (f *Fleet) retryDelay(id int32, seq uint16) time.Duration {
	return time.Duration(float64(f.cfg.RetryInterval) * (1 + f.rand01(id, seq)))
}

// setChecksum moves a client between per-checksum populations.
func (f *Fleet) setChecksum(vc *vclient, sum string) {
	f.mu.Lock()
	sid, ok := f.sumIDs[sum]
	if !ok {
		sid = uint32(len(f.sums))
		f.sums = append(f.sums, sum)
		f.sumPop = append(f.sumPop, 0)
		f.sumIDs[sum] = sid
	}
	f.sumPop[vc.checksum]--
	f.sumPop[sid]++
	vc.checksum = sid
	f.mu.Unlock()
}

func (f *Fleet) setLive(delta int64) {
	f.mu.Lock()
	f.live += delta
	f.mu.Unlock()
}

// worker drains due events with one real connection per cluster
// member (one total against a single server). A transport failure
// poisons the affected connection; the replacement dial follows a
// jittered exponential backoff so a dead server is probed, not
// hammered, and the fleet storms back de-correlated after a heal.
func (f *Fleet) worker(w int) {
	defer f.wg.Done()
	conns := make([]*core.LeaseClient, len(f.addrs))
	defer func() {
		for _, lc := range conns {
			if lc != nil {
				lc.Close()
			}
		}
	}()
	bo := faultnet.NewBackoff(faultnet.Policy{
		Initial: f.cfg.RetryInterval / 4, Max: 4 * f.cfg.RetryInterval,
		Factor: 2, Jitter: 0.5,
	})
	for {
		select {
		case <-f.stopCh:
			return
		default:
		}
		f.mu.Lock()
		if len(f.events) == 0 {
			f.mu.Unlock()
			if !sleepOrStop(time.Millisecond, f.stopCh) {
				return
			}
			continue
		}
		now := f.now()
		if top := f.events[0]; top.due > now {
			f.mu.Unlock()
			wait := time.Duration(top.due - now)
			if wait > 2*time.Millisecond {
				wait = 2 * time.Millisecond
			}
			if !sleepOrStop(wait, f.stopCh) {
				return
			}
			continue
		}
		ev := heap.Pop(&f.events).(event)
		f.mu.Unlock()

		if lag := now - ev.due; lag > atomic.LoadInt64(&f.workerLag[w].max) {
			atomic.StoreInt64(&f.workerLag[w].max, lag)
		}

		home := int(f.clients[ev.id].home)
		if conns[home] == nil {
			lc, err := core.DialLeaseClient(f.addrs[home], f.cfg.OpTimeout)
			if err != nil {
				vc := &f.clients[ev.id]
				vc.seq++
				// The member is unreachable: this client fails over to
				// the next one (no-op against a single server).
				vc.home = uint8((home + 1) % len(f.addrs))
				f.rec.RecordShard(w, Outcome{Start: time.Now(), Err: err, ConnectFail: true})
				f.reschedule(ev.id, f.retryDelay(ev.id, vc.seq))
				if !bo.Sleep(f.stopCh) {
					return
				}
				continue
			}
			bo.Reset()
			conns[home] = lc
		}
		if !f.step(w, conns[home], ev.id) {
			// Transport failure mid-exchange: drop the conn; the next
			// due event dials afresh (after backoff above if it keeps
			// failing).
			conns[home].Close()
			conns[home] = nil
		}
	}
}

func sleepOrStop(d time.Duration, stop <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}

// step runs one virtual client's due action on the worker's
// connection to the client's current home member. It returns false
// when that connection is no longer usable (transport failure).
func (f *Fleet) step(w int, lc *core.LeaseClient, id int32) bool {
	vc := &f.clients[id]
	vc.seq++
	req := core.Request{
		Database:       f.cfg.Database,
		User:           f.cfg.User,
		Password:       f.cfg.Password,
		API:            f.cfg.API,
		ClientPlatform: f.cfg.Platform,
		ClientID:       "vc-" + strconv.Itoa(int(id)),
	}
	if vc.state == vcLive {
		req.LeaseID = vc.leaseID
		req.CurrentChecksum = f.sums[vc.checksum]
	}

	start := time.Now()
	offer, err := lc.Request(req)
	lat := time.Since(start)

	if err != nil {
		var re *core.Redirect
		if errors.As(err, &re) {
			// A clean cluster redirect: the connection stays healthy.
			// A named owner moves the client there (next event runs at
			// the owner, nearly immediately); an empty redirect means
			// the member is fenced — fail over to the next one.
			f.redirects.Add(1)
			if i := f.addrIndex(re.Addr); i >= 0 {
				vc.home = uint8(i)
				f.reschedule(id, f.retryDelay(id, vc.seq)/16)
			} else {
				vc.home = uint8((int(vc.home) + 1) % len(f.addrs))
				f.reschedule(id, f.retryDelay(id, vc.seq))
			}
			return true
		}
		var pe *core.ProtocolError
		if !errors.As(err, &pe) {
			// Transport failure: record, keep the client's identity
			// (§4.1.3 keep-serving — its lease may still be live), fail
			// over, retry later, and tell the worker to redial.
			vc.home = uint8((int(vc.home) + 1) % len(f.addrs))
			f.rec.RecordShard(w, Outcome{Start: start, Latency: lat, Err: err})
			f.reschedule(id, f.retryDelay(id, vc.seq))
			return false
		}
		f.rec.RecordShard(w, Outcome{Start: start, Latency: lat, Err: err})
		switch pe.Code {
		case core.ErrCodeNoLease:
			// The server no longer knows the lease (reaped, restarted
			// peer, released): DHCP-style recovery — drop to bootstrap
			// state quickly.
			f.dropLease(vc)
			f.rebootstraps.Add(1)
			f.reschedule(id, f.retryDelay(id, vc.seq)/4)
		case core.ErrCodeNoDriver:
			if vc.state == vcBoot {
				// License denial at bootstrap: contend again later.
				f.denied.Add(1)
			} else {
				f.dropLease(vc)
			}
			f.reschedule(id, f.retryDelay(id, vc.seq))
		case core.ErrCodeRevoked:
			f.dropLease(vc)
			f.reschedule(id, f.retryDelay(id, vc.seq))
		default:
			// Internal/transfer trouble: keep state, retry later.
			f.reschedule(id, f.retryDelay(id, vc.seq))
		}
		return true
	}

	f.rec.RecordShard(w, Outcome{Start: start, Latency: lat})

	wasBoot := vc.state == vcBoot
	if wasBoot {
		vc.state = vcLive
		vc.leaseID = offer.LeaseID
		vc.renewals = 0
		f.setLive(1)
		f.setChecksum(vc, offer.DriverChecksum)
		if offer.HasDriver && f.cfg.FetchOnBootstrap {
			if !f.fetch(w, lc, vc, offer) {
				return false
			}
		}
	} else {
		vc.renewals++
		if offer.HasDriver {
			// Upgrade offered. Fetch (when configured), then adopt the
			// new generation; a failed fetch keeps the old checksum so
			// the next renewal re-offers the upgrade.
			if f.cfg.FetchOnUpgrade {
				if ok := f.fetch(w, lc, vc, offer); !ok {
					f.reschedule(id, f.retryDelay(id, vc.seq))
					return false
				}
			}
			f.setChecksum(vc, offer.DriverChecksum)
			f.upgrades.Add(1)
		}
	}

	// Voluntary release churn (license mode): give the seat back after
	// the configured number of renewals, idle, then re-contend.
	if !wasBoot && f.cfg.ReleaseAfterRenewals > 0 && int(vc.renewals) >= f.cfg.ReleaseAfterRenewals {
		rstart := time.Now()
		rerr := lc.Release(vc.leaseID)
		f.rec.RecordShard(w, Outcome{Start: rstart, Latency: time.Since(rstart), Err: rerr})
		if rerr == nil {
			f.releases.Add(1)
			f.dropLease(vc)
			f.reschedule(id, f.retryDelay(id, vc.seq))
			return true
		}
		var pe *core.ProtocolError
		if !errors.As(rerr, &pe) {
			f.reschedule(id, f.retryDelay(id, vc.seq))
			return false
		}
		// A clean protocol error on release: treat the lease as gone.
		f.dropLease(vc)
		f.reschedule(id, f.retryDelay(id, vc.seq))
		return true
	}

	f.reschedule(id, f.renewDelay(offer.LeaseTime, id, vc.seq))
	return true
}

// fetch downloads the staged blob for the client's lease, recording
// the transfer as its own outcome (a storm is mostly transfer load, so
// its latency belongs in the histogram). Returns false on transport
// failure.
func (f *Fleet) fetch(w int, lc *core.LeaseClient, vc *vclient, offer core.Offer) bool {
	start := time.Now()
	n, err := lc.FetchFile(offer.LeaseID)
	f.rec.RecordShard(w, Outcome{Start: start, Latency: time.Since(start), Err: err})
	f.transferBytes.Add(int64(n))
	if err == nil {
		return true
	}
	var pe *core.ProtocolError
	return errors.As(err, &pe)
}

// dropLease returns a client to bootstrap state.
func (f *Fleet) dropLease(vc *vclient) {
	if vc.state == vcLive {
		f.setLive(-1)
	}
	vc.state = vcBoot
	vc.leaseID = 0
	vc.renewals = 0
	// The checksum is kept: a real bootloader still has the driver
	// binary; only the lease is gone.
}

// String implements fmt.Stringer for quick scenario logging.
func (r FleetReport) String() string {
	s := r.Stats
	return fmt.Sprintf(
		"%d reqs (%.0f/s), %d errors (%d timeouts), p50 %v p95 %v p99 %v max %v, window %v, live %d, upgrades %d, denied %d, redirects %d, lag %v",
		s.Total, r.RequestsPerSec, s.Errors, s.Timeouts,
		s.P50, s.P95, s.P99, s.Max, s.ErrorWindow.Round(time.Millisecond),
		r.Live, r.Upgrades, r.Denied, r.Redirects, r.ScheduleLagMax.Round(time.Millisecond))
}
