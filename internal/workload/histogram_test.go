package workload

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistExactBelowSub pins the exact-bucket region: every value below
// histSub occupies its own bucket, so percentiles over such data are
// exact, with no bucketing error at all.
func TestHistExactBelowSub(t *testing.T) {
	var h Hist
	// 1..20 ns, one each: p50 = 10, p95 = 19, p99 = 20, max = 20.
	for v := 1; v <= 20; v++ {
		h.Record(time.Duration(v))
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 10}, {0.95, 19}, {0.99, 20}, {1.0, 20}, {0, 1},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if h.Count() != 20 || h.Max() != 20 {
		t.Fatalf("count=%d max=%v", h.Count(), h.Max())
	}
	if h.Mean() != 10 { // (1+..+20)/20 = 10.5 truncated
		t.Fatalf("mean = %v, want 10", h.Mean())
	}
}

// TestHistKnownDistribution feeds a known distribution through the
// bucketed path and requires every quantile to land within the
// histogram's documented relative error (1/histSub) of the exact
// order-statistic value.
func TestHistKnownDistribution(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Log-uniform over ~3 decades: 10µs .. 10ms, the shape of a
		// real latency distribution with a stretched tail.
		v := int64(10_000 * (1 + rng.Float64()*999))
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(q*float64(len(vals))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := vals[rank]
		got := int64(h.Quantile(q))
		// Upper-bound reporting: got must be >= a value no more than
		// one bucket below exact, and within 1/histSub above it.
		lo := exact - exact/histSub - 1
		hi := exact + exact/histSub + 1
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %d, exact %d, want within [%d,%d]", q, got, exact, lo, hi)
		}
	}
	if h.Max() != time.Duration(vals[len(vals)-1]) {
		t.Fatalf("max = %v, want exact %d", h.Max(), vals[len(vals)-1])
	}
}

// TestHistBucketEdges pins the bucket function at octave boundaries:
// histBucketBounds must be the exact inverse of histBucketOf, and
// adjacent buckets must tile the value space with no gap or overlap.
func TestHistBucketEdges(t *testing.T) {
	for _, v := range []int64{
		0, 1, histSub - 1, histSub, histSub + 1,
		2*histSub - 1, 2 * histSub, // first octave step: bucket width 2
		1<<20 - 1, 1 << 20, 1<<20 + 1,
		1<<62 - 1, 1 << 62, 1<<63 - 1,
	} {
		i := histBucketOf(v)
		lo, hi := histBucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d]", v, i, lo, hi)
		}
	}
	// Tiling: across the first few octaves every bucket's hi+1 is the
	// next bucket's lo.
	prevHi := int64(-1)
	for i := 0; i < 6*histSub; i++ {
		lo, hi := histBucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted: [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
	// Negative durations (clock weirdness) clamp to bucket 0.
	if histBucketOf(-5) != 0 {
		t.Fatal("negative value must clamp to bucket 0")
	}
	var h Hist
	h.Record(-time.Millisecond)
	if h.Quantile(1) != 0 {
		t.Fatalf("clamped negative = %v", h.Quantile(1))
	}
}

// TestHistMergeAssociative proves cross-worker merging: splitting a
// stream across k histograms and merging in any grouping yields the
// same result as recording into one.
func TestHistMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var whole Hist
	parts := make([]Hist, 4)
	for i := 0; i < 50000; i++ {
		v := time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
		whole.Record(v)
		parts[i%4].Record(v)
	}
	// Left fold: ((0+1)+2)+3.
	var left Hist
	for i := range parts {
		left.Merge(&parts[i])
	}
	// Tree fold: (0+1)+(2+3).
	var a, b, tree Hist
	a.Merge(&parts[0])
	a.Merge(&parts[1])
	b.Merge(&parts[2])
	b.Merge(&parts[3])
	tree.Merge(&a)
	tree.Merge(&b)
	for _, m := range []*Hist{&left, &tree} {
		if m.count != whole.count || m.sum != whole.sum || m.max != whole.max {
			t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %d/%d",
				m.count, whole.count, m.sum, whole.sum, m.max, whole.max)
		}
		if m.counts != whole.counts {
			t.Fatal("merged bucket counts differ from whole-stream counts")
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if m.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("Quantile(%v) differs after merge", q)
			}
		}
	}
}

// TestHistEmpty pins zero-value behavior.
func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}
