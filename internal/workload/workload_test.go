package workload

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func startTarget(t *testing.T) *dbms.Server {
	t.Helper()
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE t (x INTEGER)")
	db.MustExec("INSERT INTO t (x) VALUES (1)")
	s := dbms.NewServer("wl", dbms.WithUser("u", "p"))
	s.AddDatabase("d", db)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestRunnerHappyPath(t *testing.T) {
	s := startTarget(t)
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
	r.Workers = 4
	r.Think = 100 * time.Microsecond
	stats := r.RunFor(300 * time.Millisecond)
	if stats.Total == 0 {
		t.Fatal("no requests recorded")
	}
	if stats.Errors != 0 {
		t.Fatalf("errors = %d", stats.Errors)
	}
	if stats.ErrorWindow != 0 {
		t.Fatalf("error window = %v, want 0", stats.ErrorWindow)
	}
	if stats.P50 <= 0 || stats.Max < stats.P95 || stats.P95 < stats.P50 {
		t.Fatalf("latency stats inconsistent: %+v", stats)
	}
}

func TestRunnerMeasuresOutageWindow(t *testing.T) {
	s := startTarget(t)
	addr := s.Addr()
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+addr+"/d", client.Props{"user": "u", "password": "p"})
	r.Workers = 2
	r.Think = time.Millisecond
	r.Start()
	time.Sleep(50 * time.Millisecond)

	// Hard outage: restart-based upgrade.
	s.Stop()
	time.Sleep(100 * time.Millisecond)
	if err := s.Start(addr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	r.Stop()

	stats := r.rec.Stats()
	if stats.Errors == 0 {
		t.Fatal("outage produced no errors — measurement is broken")
	}
	if stats.ErrorWindow < 50*time.Millisecond {
		t.Fatalf("error window = %v, want >= ~100ms outage", stats.ErrorWindow)
	}
	// Recovery happened: last outcomes are successes.
	outs := r.rec.Outcomes()
	if outs[len(outs)-1].Err != nil {
		t.Fatal("workload did not recover after restart")
	}
}

func TestRecorderStatsEdgeCases(t *testing.T) {
	r := NewRecorder()
	if s := r.Stats(); s.Total != 0 || s.ErrorWindow != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	base := time.Now()
	boom := errors.New("x")
	// Window spans first to last failure completion.
	r.Record(Outcome{Start: base, Err: boom})
	r.Record(Outcome{Start: base.Add(10 * time.Millisecond), Err: boom})
	s := r.Stats()
	if s.Errors != 2 || s.ErrorWindow != 10*time.Millisecond {
		t.Fatalf("stats = %+v", s)
	}
	// Successes don't widen the failure window.
	r.Record(Outcome{Start: base.Add(30 * time.Millisecond), Latency: time.Millisecond})
	s = r.Stats()
	if s.ErrorWindow != 10*time.Millisecond {
		t.Fatalf("window = %v, want 10ms", s.ErrorWindow)
	}
	// A later failure (including its latency) extends it.
	r.Record(Outcome{Start: base.Add(40 * time.Millisecond), Latency: 5 * time.Millisecond, Err: boom})
	s = r.Stats()
	if s.ErrorWindow != 45*time.Millisecond {
		t.Fatalf("window = %v, want 45ms", s.ErrorWindow)
	}
	// A single failure is a zero-width window.
	r2 := NewRecorder()
	r2.Record(Outcome{Start: base, Err: boom})
	if s := r2.Stats(); s.ErrorWindow != 0 {
		t.Fatalf("single-failure window = %v", s.ErrorWindow)
	}
}

// TestStatsTimeoutClassification pins both timeout paths (the
// net.Error path and the context.DeadlineExceeded path, which does NOT
// implement net.Error) plus the hard-failure negative.
func TestStatsTimeoutClassification(t *testing.T) {
	// A real transport deadline error: read from a net.Pipe with an
	// expired deadline.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	_ = c1.SetReadDeadline(time.Now().Add(-time.Second))
	_, netErr := c1.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(netErr, &ne) || !ne.Timeout() {
		t.Fatalf("fixture broken: %v is not a net timeout", netErr)
	}

	// A wrapped context deadline. context.DeadlineExceeded itself
	// happens to implement net.Error today (an implementation detail),
	// so ALSO pin an error that matches only errors.Is — classification
	// must not lean on that accident.
	ctxErr := fmt.Errorf("op: %w", context.DeadlineExceeded)
	bare := deadlineIsErr{}
	if errors.As(bare, &ne) {
		t.Fatal("fixture broken: deadlineIsErr must not be a net.Error")
	}

	r := NewRecorder()
	base := time.Now()
	r.Record(Outcome{Start: base, Err: netErr})
	r.Record(Outcome{Start: base, Err: ctxErr})
	r.Record(Outcome{Start: base, Err: bare})
	r.Record(Outcome{Start: base, Err: errors.New("hard failure")})
	s := r.Stats()
	if s.Timeouts != 3 {
		t.Fatalf("timeouts = %d, want 3 (net timeout + wrapped and bare context deadlines)", s.Timeouts)
	}
	if s.Errors != 4 {
		t.Fatalf("errors = %d, want 4", s.Errors)
	}
}

// deadlineIsErr reports itself as a context deadline via errors.Is but
// implements neither Timeout() nor Temporary() — the shape of an
// application-level deadline error.
type deadlineIsErr struct{}

func (deadlineIsErr) Error() string        { return "renewal budget exhausted" }
func (deadlineIsErr) Is(target error) bool { return target == context.DeadlineExceeded }

// TestHistRecorderRetainsNothing pins the fleet-scale mode: stats and
// histograms work, per-request outcomes are never kept.
func TestHistRecorderRetainsNothing(t *testing.T) {
	r := NewHistRecorder(4)
	if !r.HistogramOnly() {
		t.Fatal("NewHistRecorder must be histogram-only")
	}
	base := time.Now()
	for w := 0; w < 4; w++ {
		for i := 1; i <= 1000; i++ {
			r.RecordShard(w, Outcome{Start: base, Latency: time.Duration(i) * time.Microsecond})
		}
	}
	r.RecordShard(1, Outcome{Start: base.Add(time.Second), Latency: time.Millisecond, Err: errors.New("x")})
	r.RecordShard(3, Outcome{Start: base.Add(3 * time.Second), Latency: time.Millisecond, Err: errors.New("y")})
	if got := r.Outcomes(); got != nil {
		t.Fatalf("histogram-only recorder retained %d outcomes", len(got))
	}
	s := r.Stats()
	if s.Total != 4002 || s.Errors != 2 {
		t.Fatalf("stats = %+v", s)
	}
	// The error window spans shards: first fail on shard 1, last on 3.
	if want := 2 * time.Second; s.ErrorWindow != want {
		t.Fatalf("window = %v, want %v", s.ErrorWindow, want)
	}
	if s.Max != time.Millisecond || s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 || s.Max < s.P99 {
		t.Fatalf("latency stats inconsistent: %+v", s)
	}
	if h := r.Hist(); h.Count() != 4000 {
		t.Fatalf("hist count = %d, want 4000 successes", h.Count())
	}
}

// TestRecorderShardMerge pins that per-shard recording merges into the
// same stats regardless of which shard took which outcome.
func TestRecorderShardMerge(t *testing.T) {
	base := time.Now()
	mk := func(r *Recorder, spread bool) Stats {
		for i := 0; i < 900; i++ {
			w := 0
			if spread {
				w = i
			}
			r.RecordShard(w, Outcome{Start: base, Latency: time.Duration(i+1) * time.Microsecond})
		}
		return r.Stats()
	}
	one := mk(NewHistRecorder(1), false)
	many := mk(NewHistRecorder(16), true)
	if one != many {
		t.Fatalf("sharded stats diverge:\none:  %+v\nmany: %+v", one, many)
	}
}

func TestRunnerCustomOp(t *testing.T) {
	s := startTarget(t)
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
	r.Op = func(c client.Conn, worker, iter int) error {
		_, err := c.Exec("INSERT INTO t (x) VALUES (?)", worker*1000+iter)
		return err
	}
	r.Think = 200 * time.Microsecond
	stats := r.RunFor(100 * time.Millisecond)
	if stats.Errors != 0 || stats.Total == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	res, err := s.Database("d").Query("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got < int64(stats.Total) {
		t.Fatalf("rows = %d, recorded = %d", got, stats.Total)
	}
}
