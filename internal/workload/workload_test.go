package workload

import (
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func startTarget(t *testing.T) *dbms.Server {
	t.Helper()
	db := sqlmini.NewDB()
	db.MustExec("CREATE TABLE t (x INTEGER)")
	db.MustExec("INSERT INTO t (x) VALUES (1)")
	s := dbms.NewServer("wl", dbms.WithUser("u", "p"))
	s.AddDatabase("d", db)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestRunnerHappyPath(t *testing.T) {
	s := startTarget(t)
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
	r.Workers = 4
	r.Think = 100 * time.Microsecond
	stats := r.RunFor(300 * time.Millisecond)
	if stats.Total == 0 {
		t.Fatal("no requests recorded")
	}
	if stats.Errors != 0 {
		t.Fatalf("errors = %d", stats.Errors)
	}
	if stats.ErrorWindow != 0 {
		t.Fatalf("error window = %v, want 0", stats.ErrorWindow)
	}
	if stats.P50 <= 0 || stats.Max < stats.P95 || stats.P95 < stats.P50 {
		t.Fatalf("latency stats inconsistent: %+v", stats)
	}
}

func TestRunnerMeasuresOutageWindow(t *testing.T) {
	s := startTarget(t)
	addr := s.Addr()
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+addr+"/d", client.Props{"user": "u", "password": "p"})
	r.Workers = 2
	r.Think = time.Millisecond
	r.Start()
	time.Sleep(50 * time.Millisecond)

	// Hard outage: restart-based upgrade.
	s.Stop()
	time.Sleep(100 * time.Millisecond)
	if err := s.Start(addr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	r.Stop()

	stats := r.rec.Stats()
	if stats.Errors == 0 {
		t.Fatal("outage produced no errors — measurement is broken")
	}
	if stats.ErrorWindow < 50*time.Millisecond {
		t.Fatalf("error window = %v, want >= ~100ms outage", stats.ErrorWindow)
	}
	// Recovery happened: last outcomes are successes.
	outs := r.rec.Outcomes()
	if outs[len(outs)-1].Err != nil {
		t.Fatal("workload did not recover after restart")
	}
}

func TestRecorderStatsEdgeCases(t *testing.T) {
	r := NewRecorder()
	if s := r.Stats(); s.Total != 0 || s.ErrorWindow != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	base := time.Now()
	boom := errors.New("x")
	// Window spans first to last failure completion.
	r.Record(Outcome{Start: base, Err: boom})
	r.Record(Outcome{Start: base.Add(10 * time.Millisecond), Err: boom})
	s := r.Stats()
	if s.Errors != 2 || s.ErrorWindow != 10*time.Millisecond {
		t.Fatalf("stats = %+v", s)
	}
	// Successes don't widen the failure window.
	r.Record(Outcome{Start: base.Add(30 * time.Millisecond), Latency: time.Millisecond})
	s = r.Stats()
	if s.ErrorWindow != 10*time.Millisecond {
		t.Fatalf("window = %v, want 10ms", s.ErrorWindow)
	}
	// A later failure (including its latency) extends it.
	r.Record(Outcome{Start: base.Add(40 * time.Millisecond), Latency: 5 * time.Millisecond, Err: boom})
	s = r.Stats()
	if s.ErrorWindow != 45*time.Millisecond {
		t.Fatalf("window = %v, want 45ms", s.ErrorWindow)
	}
	// A single failure is a zero-width window.
	r2 := NewRecorder()
	r2.Record(Outcome{Start: base, Err: boom})
	if s := r2.Stats(); s.ErrorWindow != 0 {
		t.Fatalf("single-failure window = %v", s.ErrorWindow)
	}
}

func TestRunnerCustomOp(t *testing.T) {
	s := startTarget(t)
	r := NewRunner(dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
		"dbms://"+s.Addr()+"/d", client.Props{"user": "u", "password": "p"})
	r.Op = func(c client.Conn, worker, iter int) error {
		_, err := c.Exec("INSERT INTO t (x) VALUES (?)", worker*1000+iter)
		return err
	}
	r.Think = 200 * time.Microsecond
	stats := r.RunFor(100 * time.Millisecond)
	if stats.Errors != 0 || stats.Total == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	res, err := s.Database("d").Query("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got < int64(stats.Total) {
		t.Fatalf("rows = %d, recorded = %d", got, stats.Total)
	}
}
