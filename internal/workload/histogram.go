package workload

import (
	"math/bits"
	"time"
)

// Hist is a fixed-bucket latency histogram in the HDR style: bucket
// boundaries are a pure function of the value (one octave per power of
// two, histSub linear sub-buckets inside each octave), so histograms
// recorded independently — one per worker, one per run — merge by
// adding counts, and merging is associative and commutative. The
// worst-case relative quantile error is 1/histSub (~3%); the exact
// maximum is tracked separately so tail reports never under-state the
// worst request.
//
// The layout is fixed at compile time (no dynamic resizing, no
// allocation after creation), which is what lets a six-figure fleet
// record latencies without the recorder becoming the bottleneck: one
// Record is a bucket-index computation and two adds.
//
// Hist is NOT safe for concurrent use; give each worker its own and
// merge on read (Recorder does exactly that).
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	max    int64
}

const (
	// histSubBits fixes the sub-bucket resolution: 2^histSubBits
	// linear buckets per octave, bounding relative error by
	// 1/2^histSubBits.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets covers every non-negative int64 nanosecond value:
	// values below histSub are exact; each of the (63-histSubBits)
	// remaining octave positions contributes histSub buckets.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// histBucketOf maps a nanosecond value to its bucket index. Values
// < histSub map exactly; larger values share a bucket with all values
// having the same top histSubBits+1 bits.
func histBucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histSub {
		return int(u)
	}
	shift := bits.Len64(u) - 1 - histSubBits
	return shift<<histSubBits + int((u>>shift)&(histSub-1)) + histSub
}

// histBucketBounds returns the closed value range [lo, hi] collapsed
// into bucket i — the exact inverse of histBucketOf (tests pin this).
func histBucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	shift := (i - histSub) >> histSubBits
	off := int64(i-histSub) & (histSub - 1)
	lo = (histSub + off) << shift
	hi = lo + (1 << shift) - 1
	return lo, hi
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	h.counts[histBucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Merge folds o into h. Merging is associative: any grouping of
// per-worker histograms yields identical counts, sums, and maxima.
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count reports the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Max reports the exact largest recorded value (not a bucket bound).
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean reports the exact arithmetic mean of recorded values.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns the value at or below which a fraction q of the
// recorded observations fall, reported as the upper bound of the
// containing bucket (conservative for tail quantiles) and clamped to
// the exact maximum. q outside [0,1] is clamped; an empty histogram
// reports 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based position of the quantile observation in the
	// sorted stream: ceil(q·count), at least 1, so Quantile(0) is the
	// minimum bucket and Quantile(1) the maximum one.
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) || rank == 0 {
		rank++
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			_, hi := histBucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max)
}
