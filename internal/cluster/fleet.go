package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// FleetConfig describes an in-process cluster of Drivolution servers.
type FleetConfig struct {
	Members int // cluster size; must be ≥ 1
	Shards  int // default 16 per member

	Database    string // replicated database name; default "drivolution"
	NamePrefix  string // member names are <prefix>-<i>; default "drivolution"
	LicenseMode bool   // license servers (§5.4); forces driver-keyed shards

	LeaseJitter  float64       // ± fraction applied to granted lease periods
	DefaultLease time.Duration // passed to core.WithDefaultLease when set

	HeartbeatInterval time.Duration // membership cadence; default 250ms
	FailAfter         time.Duration // takeover deadline; default 8× heartbeat
	FenceAfter        time.Duration // self-fencing deadline; default 4× heartbeat
	DialTimeout       time.Duration

	ReapInterval  time.Duration // expired-lease reaping; 0 disables
	SweepInterval time.Duration // MVCC background sweep per store; 0 disables

	// ClusterDial lets tests interpose faultnet proxies on the
	// member-to-member links (client links are untouched).
	ClusterDial func(from, to int, addr string, timeout time.Duration) (*wire.Conn, error)

	// ServerOptions appends extra core.ServerOption values per member.
	ServerOptions func(i int) []core.ServerOption

	Logf func(format string, args ...any)
}

// Fleet assembles N members in one process: per-member store, a
// full-mesh replication hub, the core server, and the membership
// layer. Tests, benchmarks and examples drive whole clusters through
// it; cmd/drivolutiond assembles single members out of the same parts.
type Fleet struct {
	DBs     []*sqlmini.DB
	Hubs    []*dbms.Server
	Servers []*core.Server
	Members []*Member

	cfg        FleetConfig
	slots      []atomic.Pointer[Member]
	killed     []atomic.Bool
	sweepStops []func()
	stopCh     chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup
}

// NewFleet builds and starts the whole cluster. On return every member
// is serving clients and heartbeating its peers.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	n := cfg.Members
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one member, got %d", n)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16 * n
	}
	if cfg.Database == "" {
		cfg.Database = "drivolution"
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "drivolution"
	}
	f := &Fleet{
		cfg:     cfg,
		DBs:     make([]*sqlmini.DB, n),
		Hubs:    make([]*dbms.Server, n),
		Servers: make([]*core.Server, n),
		Members: make([]*Member, n),
		slots:   make([]atomic.Pointer[Member], n),
		killed:  make([]atomic.Bool, n),
		stopCh:  make(chan struct{}),
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s-%d", cfg.NamePrefix, i)
	}

	// Stores first: each member owns a database carrying the full
	// schema. Schema DDL runs locally per member, before the mesh
	// exists, so it is never replicated (replicating CREATE TABLE to a
	// peer that already ran its own would fail).
	for i := 0; i < n; i++ {
		db := sqlmini.NewDB()
		if err := core.EnsureSchema(core.NewLocalStore(db)); err != nil {
			return nil, fmt.Errorf("cluster: schema on %s: %w", names[i], err)
		}
		f.DBs[i] = db
		hub := dbms.NewServer(names[i] + "-hub")
		hub.AddDatabase(cfg.Database, db)
		f.Hubs[i] = hub
	}
	// Full-mesh statement replication: a mutation on any member
	// re-executes synchronously on every other, so each store holds
	// the complete catalog and lease table at all times.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				f.Hubs[i].AttachReplica(f.Hubs[j])
			}
		}
	}

	// Core servers. The router indirects through an atomic slot: the
	// membership layer needs the servers' client addresses to exist,
	// so until the slot is filled everything routes locally.
	for i := 0; i < n; i++ {
		slot := &f.slots[i]
		router := func(driverID int64, clientID string) core.Route {
			if mem := slot.Load(); mem != nil {
				return mem.Route(driverID, clientID)
			}
			return core.Route{Local: true}
		}
		opts := []core.ServerOption{
			core.WithShardRouter(router),
			// Distinct id residues per member: concurrent grants on
			// different members can never collide on a lease id.
			core.WithIDStride(uint64(i), uint64(n)),
		}
		if cfg.LicenseMode {
			opts = append(opts, core.WithLicenseMode())
		}
		if cfg.LeaseJitter > 0 {
			opts = append(opts, core.WithLeaseJitter(cfg.LeaseJitter))
		}
		if cfg.DefaultLease > 0 {
			opts = append(opts, core.WithDefaultLease(cfg.DefaultLease))
		}
		if cfg.ServerOptions != nil {
			opts = append(opts, cfg.ServerOptions(i)...)
		}
		srv, err := core.NewServer(names[i], &replicatedStore{
			db: f.DBs[i], hub: f.Hubs[i], name: cfg.Database,
		}, opts...)
		if err != nil {
			f.Stop()
			return nil, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			f.Stop()
			return nil, err
		}
		f.Servers[i] = srv
	}

	clientAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		clientAddrs[i] = f.Servers[i].Addr()
	}
	for i := 0; i < n; i++ {
		i := i
		mcfg := MemberConfig{
			Index:             i,
			Names:             names,
			ClientAddrs:       clientAddrs,
			Shards:            cfg.Shards,
			ByDriver:          cfg.LicenseMode,
			HeartbeatInterval: cfg.HeartbeatInterval,
			FailAfter:         cfg.FailAfter,
			FenceAfter:        cfg.FenceAfter,
			DialTimeout:       cfg.DialTimeout,
			Logf:              cfg.Logf,
		}
		if cfg.ClusterDial != nil {
			mcfg.Dial = func(to int, addr string, timeout time.Duration) (*wire.Conn, error) {
				return cfg.ClusterDial(i, to, addr, timeout)
			}
		}
		mem, err := NewMember(mcfg)
		if err != nil {
			f.Stop()
			return nil, err
		}
		f.Members[i] = mem
	}
	clusterAddrs := make([]string, n)
	for i := 0; i < n; i++ {
		clusterAddrs[i] = f.Members[i].ClusterAddr()
	}
	for i := 0; i < n; i++ {
		if err := f.Members[i].Start(clusterAddrs); err != nil {
			f.Stop()
			return nil, err
		}
		f.slots[i].Store(f.Members[i])
	}

	if cfg.SweepInterval > 0 {
		for _, db := range f.DBs {
			f.sweepStops = append(f.sweepStops, db.StartSweeper(cfg.SweepInterval))
		}
	}
	if cfg.ReapInterval > 0 {
		f.wg.Add(1)
		go f.reapLoop()
	}
	return f, nil
}

// replicatedStore is the member-local Store: reads and generation
// probes hit the local database directly, mutations funnel through
// the replication hub so every peer applies them too. It deliberately
// implements none of the v2 capabilities (Tx/Stmt/Batch) — those
// would bypass replication.
type replicatedStore struct {
	db   *sqlmini.DB
	hub  *dbms.Server
	name string
}

func (s *replicatedStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.hub.Execute(s.name, sql, args...)
}

// Generation implements core.GenerationStore over the local database;
// replicated peer mutations bump the same counters as local ones, so
// the catalog cache invalidates cluster-wide.
func (s *replicatedStore) Generation() uint64 {
	return s.db.TableVersions(core.DriversTable, core.PermissionTable)
}

// TableVersion implements core.TableVersionStore.
func (s *replicatedStore) TableVersion(name string) uint64 {
	return s.db.TableVersion(name)
}

// reapLoop expires leases once per interval on the first live member;
// the deleting statements replicate, so one reaper covers the fleet.
func (f *Fleet) reapLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
		}
		for i := range f.Servers {
			if f.killed[i].Load() {
				continue
			}
			if _, err := f.Servers[i].ReapExpiredLeases(); err != nil && f.cfg.Logf != nil {
				f.cfg.Logf("cluster: reap on member %d: %v", i, err)
			}
			break
		}
	}
}

// Addrs lists the members' client-facing addresses — the server list a
// multi-server bootloader is configured with (§5.3.2).
func (f *Fleet) Addrs() []string {
	addrs := make([]string, len(f.Servers))
	for i, s := range f.Servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

// ClusterAddrs lists the members' cluster-protocol addresses (status
// probes, transfers).
func (f *Fleet) ClusterAddrs() []string {
	addrs := make([]string, len(f.Members))
	for i, m := range f.Members {
		addrs[i] = m.ClusterAddr()
	}
	return addrs
}

// HomeOf reports which member a (driver, client) grant routes to when
// every member is alive and no overrides are in force.
func (f *Fleet) HomeOf(driverID int64, clientID string) int {
	sm := ShardMap{Shards: f.cfg.Shards, ByDriver: f.cfg.LicenseMode}
	return sm.Home(sm.Shard(driverID, clientID), len(f.Servers))
}

// Kill simulates the death of one member: its client listener,
// cluster listener and heartbeats stop, and its hub is detached from
// the mesh in both directions so nothing reaches its store anymore.
// Peers notice through missed heartbeats and take over its shards.
func (f *Fleet) Kill(i int) {
	if f.killed[i].Swap(true) {
		return
	}
	f.Members[i].Stop()
	f.Servers[i].Stop()
	for j := range f.Hubs {
		if j != i {
			f.Hubs[j].DetachReplica(f.Hubs[i])
			f.Hubs[i].DetachReplica(f.Hubs[j])
		}
	}
}

// Stop tears the whole fleet down.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
	for _, stop := range f.sweepStops {
		stop()
	}
	f.sweepStops = nil
	for _, m := range f.Members {
		if m != nil {
			m.Stop()
		}
	}
	for _, s := range f.Servers {
		if s != nil {
			s.Stop()
		}
	}
}
