// Package cluster turns N core.Server instances into one Drivolution
// control plane (paper §5.3: replicated Drivolution servers so that
// "the failure of a Drivolution server does not prevent bootloaders
// from operating").
//
// Three mechanisms compose:
//
//   - Sharded lease ownership. A static shard map hashes every grant
//     to one of cfg.Shards shards; each shard has a home member on a
//     fixed ring. In license mode the key is the driver id — a driver's
//     licenses must be counted by exactly one grantor or a partition
//     could hand out the same license twice — otherwise it is the
//     client id, which spreads a fleet of bootloaders evenly. A member
//     asked to grant a shard it does not own answers with a REDIRECT
//     frame naming the owner; it never proxies, so the data path stays
//     one hop.
//
//   - Replicated catalog. Every member embeds its own sqlmini database
//     carrying the full Drivolution schema and a non-listening dbms
//     replication hub; hubs are attached in a full mesh, so each
//     catalog or lease mutation re-executes synchronously on every
//     peer. Any member answers matchmaking (DISCOVER) from its local,
//     versioned catalog without touching the network, and a survivor
//     renews a dead member's lease under the same lease id because the
//     lease row is already in its own store.
//
//   - Membership and failover. Members heartbeat over wire with
//     piggybacked gossip. A peer silent for FailAfter is treated as
//     dead and its shards fall to the next live member on the ring. A
//     member that cannot see a majority within FenceAfter fences
//     itself: it stops claiming ownership (declining grants rather
//     than risking a split-brain double grant) until the partition
//     heals. The fencing deadline is deliberately earlier than the
//     takeover deadline — FenceAfter + 2·heartbeat < FailAfter — so a
//     cut-off member has stopped granting before any survivor starts.
//
// Shard moves use the same epoch-stamped override table that failover
// reads: Transfer bumps the epoch, records the override, and pushes
// the whole table to every reachable peer; gossip carries it to the
// rest. Higher epoch wins wholesale, so members converge on one
// assignment without per-shard merge rules.
package cluster

// The shard map is pure arithmetic shared by every member: no
// coordination is needed to agree on a grant's home, only on which
// members are alive and which overrides are in force.

// ShardMap hashes grants onto shards and shards onto home members.
type ShardMap struct {
	// Shards is the number of shards; more shards than members keeps
	// reassignment granular when membership changes.
	Shards int
	// ByDriver keys shards by driver id instead of client id. License
	// mode requires it: the per-driver license count is only safe when
	// a single member grants for that driver.
	ByDriver bool
}

// Shard maps one grant to its shard.
func (m ShardMap) Shard(driverID int64, clientID string) uint32 {
	var key uint64
	if m.ByDriver || clientID == "" {
		key = mix64(uint64(driverID))
	} else {
		key = mix64(fnv1a(clientID))
	}
	return uint32(key % uint64(m.Shards))
}

// Home returns the shard's home member on a ring of n members; the
// owner may differ when the home is dead or an override moved the
// shard.
func (m ShardMap) Home(shard uint32, n int) int { return int(shard) % n }

// fnv1a hashes a string (FNV-1a 64).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: driver ids are small sequential
// integers, and without a bijective scrambler `id % shards` would pile
// consecutive drivers onto consecutive shards.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
