package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Membership timings for tests: fast enough that failover completes
// in well under a second, with the fencing invariant
// (FenceAfter + 2×heartbeat < FailAfter) intact.
const (
	tHeartbeat = 40 * time.Millisecond
	tFence     = 160 * time.Millisecond
	tFail      = 600 * time.Millisecond
	tDial      = 250 * time.Millisecond
)

func testFleetConfig(members int) FleetConfig {
	return FleetConfig{
		Members:           members,
		HeartbeatInterval: tHeartbeat,
		FenceAfter:        tFence,
		FailAfter:         tFail,
		DialTimeout:       tDial,
	}
}

func newTestFleet(t testing.TB, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

// newTarget starts the application DBMS the driver images point at.
func newTarget(t testing.TB) *dbms.Server {
	t.Helper()
	appDB := sqlmini.NewDB()
	appDB.MustExec("CREATE TABLE items (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR)")
	appDB.MustExec("INSERT INTO items (id, name) VALUES (1, 'widget')")
	target := dbms.NewServer("prod-db", dbms.WithUser("app", "app-pw"))
	target.AddDatabase("prod", appDB)
	if err := target.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(target.Stop)
	return target
}

func testImage(version dbver.Version) *driverimg.Image {
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i)
	}
	return &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            dbms.DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         version,
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
			Packages:        []string{"core"},
		},
		Payload: payload,
	}
}

func newRuntime() *driverimg.Runtime {
	rt := driverimg.NewRuntime()
	rt.Register(dbms.DriverKind, dbms.ImageFactory())
	return rt
}

// seedDriver inserts one driver plus a permission for user through one
// member; replication carries both to every peer.
func seedDriver(t testing.TB, f *Fleet, via int, user string, lease time.Duration) int64 {
	t.Helper()
	id, err := f.Servers[via].AddDriver(testImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Servers[via].SetPermission(core.Permission{
		User: user, DriverID: id, LeaseTime: lease,
		RenewPolicy: core.RenewUpgrade, ExpirationPolicy: core.AfterClose,
		TransferMethod: core.TransferAny,
	}); err != nil {
		t.Fatal(err)
	}
	return id
}

func testRequest(user, clientID string) core.Request {
	return core.Request{
		Database: "prod", User: user, Password: user + "-pw",
		API:            dbver.APIOf("JDBC", 3, 0),
		ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID:       clientID,
	}
}

// clientOwnedBy searches for a client id whose shard (in client-keyed
// mode, every member alive) is homed on the wanted member.
func clientOwnedBy(t testing.TB, f *Fleet, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("client-%d", i)
		if f.HomeOf(0, id) == want {
			return id
		}
	}
	t.Fatal("no client id hashes to the wanted member")
	return ""
}

// TestCatalogReplication pins the replicated-catalog half of the
// design: a driver added through one member is answerable — from the
// local store, via DISCOVER — by every member, and the row physically
// exists in each member's own database.
func TestCatalogReplication(t *testing.T) {
	f := newTestFleet(t, testFleetConfig(3))
	seedDriver(t, f, 0, "", time.Hour)

	for i, db := range f.DBs {
		//lint:scan-ok test introspection: counting rows in a 1-row table
		res, err := db.Query("SELECT driver_id FROM " + core.DriversTable)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("member %d store has %d driver rows, want 1 (replication)", i, len(res.Rows))
		}
	}
	for i, addr := range f.Addrs() {
		lc, err := core.DialLeaseClient(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		offer, err := lc.Discover(testRequest("app", fmt.Sprintf("probe-%d", i)))
		lc.Close()
		if err != nil {
			t.Fatalf("member %d declined discover: %v", i, err)
		}
		if !offer.HasDriver || offer.DriverChecksum == "" {
			t.Fatalf("member %d offered no driver: %+v", i, offer)
		}
	}
}

// TestRedirectToOwner pins the sharded-ownership half: a REQUEST sent
// to a non-owning member comes back as a REDIRECT frame naming the
// owner — no proxying — and the same request succeeds at the owner.
func TestRedirectToOwner(t *testing.T) {
	f := newTestFleet(t, testFleetConfig(3))
	seedDriver(t, f, 0, "", time.Hour)

	clientID := clientOwnedBy(t, f, 1)
	lc0, err := core.DialLeaseClient(f.Servers[0].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc0.Close()
	_, err = lc0.Request(testRequest("app", clientID))
	var re *core.Redirect
	if !errors.As(err, &re) {
		t.Fatalf("non-owner answered %v, want redirect", err)
	}
	if re.Addr != f.Servers[1].Addr() {
		t.Fatalf("redirect names %q, want owner %q", re.Addr, f.Servers[1].Addr())
	}
	if got := f.Servers[0].Counters().Redirects; got != 1 {
		t.Fatalf("redirect counter = %d, want 1", got)
	}

	// The connection survived the redirect (it is a clean exchange)…
	if _, err := lc0.Discover(testRequest("app", clientID)); err != nil {
		t.Fatalf("connection poisoned by redirect: %v", err)
	}
	// …and the owner grants.
	lc1, err := core.DialLeaseClient(re.Addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc1.Close()
	offer, err := lc1.Request(testRequest("app", clientID))
	if err != nil {
		t.Fatalf("owner declined: %v", err)
	}
	if offer.LeaseID == 0 {
		t.Fatal("owner granted no lease")
	}
}

// TestTransferMovesShard pins the handoff protocol: an epoch-bumped
// override pushed by Transfer moves a shard's grants to the new owner
// on every member at once.
func TestTransferMovesShard(t *testing.T) {
	f := newTestFleet(t, testFleetConfig(3))
	seedDriver(t, f, 0, "", time.Hour)

	clientID := clientOwnedBy(t, f, 1)
	shard := ShardMap{Shards: f.cfg.Shards}.Shard(0, clientID)
	if err := f.Members[0].Transfer(shard, 2); err != nil {
		t.Fatal(err)
	}

	// The old owner now redirects to the new one.
	lc1, err := core.DialLeaseClient(f.Servers[1].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc1.Close()
	_, err = lc1.Request(testRequest("app", clientID))
	var re *core.Redirect
	if !errors.As(err, &re) || re.Addr != f.Servers[2].Addr() {
		t.Fatalf("old owner answered (%v, %v), want redirect to member 2", err, re)
	}
	// The new owner serves.
	lc2, err := core.DialLeaseClient(f.Servers[2].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()
	if _, err := lc2.Request(testRequest("app", clientID)); err != nil {
		t.Fatalf("transfer target declined: %v", err)
	}
	// The override is visible in status, at a bumped epoch.
	st, err := FetchStatus(f.Members[1].ClusterAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch == 0 || len(st.Overrides) != 1 || st.Overrides[0] != (OverrideEntry{Shard: shard, Member: 2}) {
		t.Fatalf("override not gossiped: %+v", st)
	}
}

// TestOwnerDeathKeepsLease is the §4.1.3 keep-serving pin at cluster
// scope: the member holding a bootloader's lease dies mid-lease; the
// bootloader fails over, a survivor renews from its replicated lease
// row, and the lease keeps its identity — same id, no revocation, no
// re-bootstrap.
func TestOwnerDeathKeepsLease(t *testing.T) {
	f := newTestFleet(t, testFleetConfig(3))
	target := newTarget(t)
	seedDriver(t, f, 0, "", time.Hour)

	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		f.Addrs(), newRuntime(),
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(time.Second),
		core.WithRetryInterval(20*time.Millisecond))
	defer b.Close()
	conn, err := b.Connect("dbms://"+target.Addr()+"/prod", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	leaseID := b.LeaseID()
	owner := b.ServerAddr()
	victim := -1
	for i, addr := range f.Addrs() {
		if addr == owner {
			victim = i
		}
	}
	if leaseID == 0 || victim < 0 {
		t.Fatalf("no lease established (id %d, owner %q)", leaseID, owner)
	}

	f.Kill(victim)

	// Until the survivors' failure detector fires, renewals bounce
	// (dead owner, or redirects back to it); the bootloader must keep
	// the driver through all of it. Poll until a renewal lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := b.ForceRenew("prod"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no survivor took over the dead member's shard")
		}
		time.Sleep(25 * time.Millisecond)
	}
	if got := b.LeaseID(); got != leaseID {
		t.Fatalf("lease lost its identity across failover: %d -> %d", leaseID, got)
	}
	if m := b.Stats(); m.Revocations != 0 || m.Bootstraps != 1 {
		t.Fatalf("failover was not seamless: %+v", m)
	}
	if b.ServerAddr() == owner {
		t.Fatal("renewal still pinned to the dead member")
	}
	// The connection opened before the failure kept serving throughout
	// (§4.1.3: applications never notice a control-plane death).
	if _, err := conn.Exec("SELECT id FROM items", nil); err != nil {
		t.Fatalf("data path broke during failover: %v", err)
	}
}

// linkCutter partitions a member's cluster links on demand: new dials
// fail and established heartbeat connections are severed, while
// client-facing links stay up — exactly the asymmetry fencing exists
// for.
type linkCutter struct {
	mu    sync.Mutex
	cut   bool
	conns []*wire.Conn
}

func (lc *linkCutter) dial(addr string, timeout time.Duration) (*wire.Conn, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.cut {
		return nil, errors.New("cluster link partitioned")
	}
	c, err := wire.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	c.SetWriteTimeout(timeout)
	lc.conns = append(lc.conns, c)
	return c, nil
}

func (lc *linkCutter) Cut() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.cut = true
	for _, c := range lc.conns {
		c.Close()
	}
	lc.conns = nil
}

func (lc *linkCutter) Heal() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.cut = false
}

// grantVia sends one REQUEST to addr, chasing up to two redirects.
func grantVia(addr string, req core.Request) (core.Offer, error) {
	for hop := 0; hop < 3; hop++ {
		lc, err := core.DialLeaseClient(addr, 2*time.Second)
		if err != nil {
			return core.Offer{}, err
		}
		offer, err := lc.Request(req)
		lc.Close()
		var re *core.Redirect
		if errors.As(err, &re) && re.Addr != "" && re.Addr != addr {
			addr = re.Addr
			continue
		}
		return offer, err
	}
	return core.Offer{}, errors.New("redirect loop")
}

// TestFencingBlocksMinority pins split-brain protection: a member cut
// off from the majority declines grants (empty redirect) instead of
// serving shards the survivors are about to take over — and rejoins
// cleanly when the partition heals.
func TestFencingBlocksMinority(t *testing.T) {
	cutter := &linkCutter{}
	cfg := testFleetConfig(3)
	cfg.ClusterDial = func(from, to int, addr string, timeout time.Duration) (*wire.Conn, error) {
		if from == 2 || to == 2 {
			return cutter.dial(addr, timeout)
		}
		c, err := wire.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		c.SetWriteTimeout(timeout)
		return c, nil
	}
	f := newTestFleet(t, cfg)
	seedDriver(t, f, 0, "", time.Hour)
	clientID := clientOwnedBy(t, f, 2)

	// Sanity: before the partition the minority-to-be serves its shard.
	if _, err := grantVia(f.Servers[2].Addr(), testRequest("app", clientID)); err != nil {
		t.Fatalf("member 2 declined its own shard pre-partition: %v", err)
	}

	cutter.Cut()
	waitFor(t, 5*time.Second, "member 2 did not fence", func() bool {
		return !f.Members[2].Quorate()
	})

	// The fenced member declines: an empty redirect, naming no owner.
	lc, err := core.DialLeaseClient(f.Servers[2].Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lc.Request(testRequest("app", clientID+"-fenced"))
	lc.Close()
	var re *core.Redirect
	if !errors.As(err, &re) || re.Addr != "" {
		t.Fatalf("fenced member answered %v, want empty redirect", err)
	}

	// The majority takes the shard over once the failure detector fires.
	waitFor(t, 5*time.Second, "survivors never took over member 2's shard", func() bool {
		_, err := grantVia(f.Servers[0].Addr(), testRequest("app", clientID+"-over"))
		return err == nil
	})

	cutter.Heal()
	waitFor(t, 5*time.Second, "member 2 did not rejoin after heal", func() bool {
		return f.Members[2].Quorate()
	})
	waitFor(t, 5*time.Second, "shard never returned home after heal", func() bool {
		_, err := grantVia(f.Servers[2].Addr(), testRequest("app", clientID+"-back"))
		return err == nil
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
