package cluster

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

// clusterChaosSeed mirrors the core soak's contract: CHAOS_SEED
// reproduces a run, otherwise the schedule is fresh and the seed is
// logged for replay.
func clusterChaosSeed(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		t.Logf("cluster chaos seed %d (from CHAOS_SEED)", s)
		return s
	}
	s := time.Now().UnixNano()
	t.Logf("cluster chaos seed %d (rerun with CHAOS_SEED=%d)", s, s)
	return s
}

// TestClusterChaosMemberDeath kills 1 of 3 license-mode members in the
// middle of a renewal storm. TestClusterChaosPartition does the same
// with a faultnet partition of the victim's cluster links (heartbeats
// stall, client links stay up) that later heals. Both pin the Issue's
// cluster-wide safety contract:
//
//   - the §5.4.2 license cap holds at every sampled instant: no driver
//     ever carries two live leases, across all members;
//   - no bootloader drops its held driver (zero revocations, checksum
//     stays installed) — §4.1.3 at cluster scope;
//   - leases survive with their identity: after convergence every
//     bootloader renews successfully under its original lease id.
func TestClusterChaosMemberDeath(t *testing.T) {
	runClusterChaos(t, false)
}

func TestClusterChaosPartition(t *testing.T) {
	runClusterChaos(t, true)
}

func runClusterChaos(t *testing.T, partition bool) {
	seed := clusterChaosSeed(t)
	const victim = 2

	// Victim cluster links run through seeded faultnet proxies so the
	// partition behaves like a real one: traffic stalls, connections
	// stay "established", and only deadlines fire.
	var proxyMu sync.Mutex
	proxies := map[string]*faultnet.Proxy{}
	proxyFor := func(link string, target string) (*faultnet.Proxy, error) {
		proxyMu.Lock()
		defer proxyMu.Unlock()
		if p, ok := proxies[link]; ok {
			return p, nil
		}
		p, err := faultnet.NewProxy(target, seed+int64(len(proxies)))
		if err != nil {
			return nil, err
		}
		proxies[link] = p
		return p, nil
	}
	defer func() {
		proxyMu.Lock()
		defer proxyMu.Unlock()
		for _, p := range proxies {
			p.Close()
		}
	}()

	cfg := testFleetConfig(3)
	cfg.LicenseMode = true
	cfg.ReapInterval = 100 * time.Millisecond
	cfg.SweepInterval = 50 * time.Millisecond
	cfg.ClusterDial = func(from, to int, addr string, timeout time.Duration) (*wire.Conn, error) {
		if from == victim || to == victim {
			p, err := proxyFor(fmt.Sprintf("%d-%d", from, to), addr)
			if err != nil {
				return nil, err
			}
			addr = p.Addr()
		}
		c, err := wire.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		c.SetWriteTimeout(timeout)
		return c, nil
	}
	f := newTestFleet(t, cfg)
	target := newTarget(t)

	// License mode: one live lease per driver, so the fleet gets one
	// driver (and one per-user permission) per bootloader. Driver-keyed
	// sharding spreads them across all three members.
	const clients = 9
	for i := 0; i < clients; i++ {
		seedDriver(t, f, 0, fmt.Sprintf("u%d", i), 2*time.Second)
	}

	boots := make([]*core.Bootloader, clients)
	leaseIDs := make([]uint64, clients)
	rt := newRuntime()
	for i := 0; i < clients; i++ {
		b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
			f.Addrs(), rt,
			core.WithCredentials(fmt.Sprintf("u%d", i), fmt.Sprintf("u%d-pw", i)),
			core.WithClientID(fmt.Sprintf("chaos-client-%d", i)),
			core.WithDialTimeout(time.Second),
			core.WithRetryInterval(20*time.Millisecond))
		defer b.Close()
		conn, err := b.Connect("dbms://"+target.Addr()+"/prod", nil)
		if err != nil {
			t.Fatalf("bootstrap %d: %v", i, err)
		}
		defer conn.Close()
		boots[i] = b
		if leaseIDs[i] = b.LeaseID(); leaseIDs[i] == 0 {
			t.Fatalf("bootloader %d holds no lease", i)
		}
	}

	// The storm: every bootloader hammers renewals while a sampler
	// continuously audits the cluster-wide license cap on a survivor's
	// replicated store.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var capViolation atomic.Value // string
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(b *core.Bootloader) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = b.ForceRenew("prod") // failures mid-outage are expected; revocations are not
				time.Sleep(20 * time.Millisecond)
			}
		}(boots[i])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			leases, err := f.Servers[0].Leases()
			if err == nil {
				now := time.Now()
				live := map[int64]int{}
				for _, l := range leases {
					if !l.Released && l.ExpiresAt.After(now) {
						live[l.DriverID]++
					}
				}
				for drv, n := range live {
					if n > 1 {
						capViolation.Store(fmt.Sprintf("driver %d carries %d live leases", drv, n))
					}
				}
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond) // steady-state traffic first
	if partition {
		proxyMu.Lock()
		for _, p := range proxies {
			p.Partition()
		}
		proxyMu.Unlock()
		time.Sleep(1200 * time.Millisecond) // fences, survivors take over
		proxyMu.Lock()
		for _, p := range proxies {
			p.Heal()
		}
		proxyMu.Unlock()
		time.Sleep(800 * time.Millisecond) // victim rejoins
	} else {
		f.Kill(victim)
		time.Sleep(1500 * time.Millisecond) // survivors absorb the shards
	}
	close(stop)
	wg.Wait()

	if v := capViolation.Load(); v != nil {
		t.Fatalf("license cap exceeded cluster-wide: %s", v)
	}

	// Convergence: every lease still renews, under its original id,
	// with the driver still installed and never revoked.
	for i, b := range boots {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := b.ForceRenew("prod"); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("bootloader %d never converged after the fault", i)
			}
			time.Sleep(25 * time.Millisecond)
		}
		if got := b.LeaseID(); got != leaseIDs[i] {
			t.Errorf("bootloader %d lost lease identity: %d -> %d", i, leaseIDs[i], got)
		}
		if b.CurrentChecksum() == "" {
			t.Errorf("bootloader %d dropped its held driver", i)
		}
		if m := b.Stats(); m.Revocations != 0 {
			t.Errorf("bootloader %d was revoked mid-storm: %+v", i, m)
		}
	}
}
