package cluster

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Cluster-internal frames ride the same length-prefixed wire framing
// as the bootstrap protocol but live in their own 0x03xx range so a
// misdirected client is rejected instead of misparsed.
const (
	msgPing       uint16 = 0x0301 // gossip ping            (member → member)
	msgPong       uint16 = 0x0302 // gossip reply           (member → member)
	msgTransfer   uint16 = 0x0303 // shard override push    (member → member)
	msgTransferOK uint16 = 0x0304 // override acknowledged  (member → member)
	msgStatusReq  uint16 = 0x0305 // status probe           (operator → member)
	msgStatus     uint16 = 0x0306 // status report          (member → operator)
)

// OverrideEntry pins one shard to one member, superseding the ring.
type OverrideEntry struct {
	Shard  uint32
	Member uint32
}

// gossipMsg is the payload of PING, PONG and TRANSFER. Alive carries
// the sender's view of recently-heard-from members (so liveness
// spreads transitively even across a half-broken mesh); Epoch and
// Overrides carry the shard override table, replaced wholesale on a
// higher epoch. TRANSFER sends an empty Alive set: it asserts
// ownership, not liveness.
type gossipMsg struct {
	From      uint32
	Epoch     uint64
	Alive     []uint32
	Overrides []OverrideEntry
}

func (g gossipMsg) encode() []byte {
	e := wire.GetEncoder(16 + 4*len(g.Alive) + 8*len(g.Overrides))
	defer wire.PutEncoder(e)
	e.Uint32(g.From)
	e.Uint64(g.Epoch)
	e.Uint32(uint32(len(g.Alive)))
	for _, a := range g.Alive {
		e.Uint32(a)
	}
	e.Uint32(uint32(len(g.Overrides)))
	for _, o := range g.Overrides {
		e.Uint32(o.Shard)
		e.Uint32(o.Member)
	}
	return append([]byte(nil), e.Bytes()...)
}

func decodeGossip(b []byte) (gossipMsg, error) {
	d := wire.NewDecoder(b)
	g := gossipMsg{From: d.Uint32(), Epoch: d.Uint64()}
	n := d.Uint32()
	if n > maxClusterSize {
		return gossipMsg{}, fmt.Errorf("cluster: gossip names %d members", n)
	}
	for i := uint32(0); i < n; i++ {
		g.Alive = append(g.Alive, d.Uint32())
	}
	n = d.Uint32()
	if n > maxShards {
		return gossipMsg{}, fmt.Errorf("cluster: gossip carries %d overrides", n)
	}
	for i := uint32(0); i < n; i++ {
		g.Overrides = append(g.Overrides, OverrideEntry{Shard: d.Uint32(), Member: d.Uint32()})
	}
	if err := d.Err(); err != nil {
		return gossipMsg{}, err
	}
	return g, nil
}

// Sanity bounds on decoded sizes: a corrupt length prefix must not
// turn into a multi-gigabyte allocation.
const (
	maxClusterSize = 1 << 10
	maxShards      = 1 << 20
)

// PeerStatus is one member's view of one peer (or of itself).
type PeerStatus struct {
	Name        string
	ClientAddr  string
	Self        bool
	Alive       bool          // heard from within FailAfter
	SinceSeen   time.Duration // time since last contact; 0 for self
	OwnedShards uint32        // shards this peer owns in the reporter's view
}

// Status is a member's self-report, served to drivoctl and examples.
type Status struct {
	Name      string
	Index     uint32
	Epoch     uint64
	Quorate   bool
	Shards    uint32
	Peers     []PeerStatus
	Overrides []OverrideEntry
}

func (s Status) encode() []byte {
	e := wire.GetEncoder(64)
	defer wire.PutEncoder(e)
	e.String(s.Name)
	e.Uint32(s.Index)
	e.Uint64(s.Epoch)
	e.Bool(s.Quorate)
	e.Uint32(s.Shards)
	e.Uint32(uint32(len(s.Peers)))
	for _, p := range s.Peers {
		e.String(p.Name)
		e.String(p.ClientAddr)
		e.Bool(p.Self)
		e.Bool(p.Alive)
		e.Duration(p.SinceSeen)
		e.Uint32(p.OwnedShards)
	}
	e.Uint32(uint32(len(s.Overrides)))
	for _, o := range s.Overrides {
		e.Uint32(o.Shard)
		e.Uint32(o.Member)
	}
	return append([]byte(nil), e.Bytes()...)
}

func decodeStatus(b []byte) (Status, error) {
	d := wire.NewDecoder(b)
	s := Status{Name: d.String(), Index: d.Uint32(), Epoch: d.Uint64(),
		Quorate: d.Bool(), Shards: d.Uint32()}
	n := d.Uint32()
	if n > maxClusterSize {
		return Status{}, fmt.Errorf("cluster: status names %d peers", n)
	}
	for i := uint32(0); i < n; i++ {
		s.Peers = append(s.Peers, PeerStatus{
			Name: d.String(), ClientAddr: d.String(), Self: d.Bool(),
			Alive: d.Bool(), SinceSeen: d.Duration(), OwnedShards: d.Uint32(),
		})
	}
	n = d.Uint32()
	if n > maxShards {
		return Status{}, fmt.Errorf("cluster: status carries %d overrides", n)
	}
	for i := uint32(0); i < n; i++ {
		s.Overrides = append(s.Overrides, OverrideEntry{Shard: d.Uint32(), Member: d.Uint32()})
	}
	if err := d.Err(); err != nil {
		return Status{}, err
	}
	return s, nil
}

// FetchStatus asks the member listening on the given cluster address
// for its Status. It is the probe behind `drivoctl cluster-status`.
func FetchStatus(addr string, timeout time.Duration) (Status, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := wire.Dial(addr, timeout)
	if err != nil {
		return Status{}, err
	}
	defer conn.Close()
	conn.SetWriteTimeout(timeout)
	if err := conn.Send(msgStatusReq, nil); err != nil {
		return Status{}, err
	}
	f, err := conn.RecvTimeout(timeout)
	if err != nil {
		return Status{}, err
	}
	if f.Type != msgStatus {
		return Status{}, fmt.Errorf("cluster: unexpected frame 0x%04x to status probe", f.Type)
	}
	return decodeStatus(f.Payload)
}
