package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

//lint:latch-leaf Member.mu

// MemberConfig describes one member's place in the cluster. Names and
// ClientAddrs are indexed by member and identical on every member —
// the map is static; only liveness and overrides are dynamic.
type MemberConfig struct {
	Index       int      // this member's slot
	Names       []string // display names, one per member
	ClientAddrs []string // bootstrap-protocol addresses, one per member

	Shards   int  // shard count; default 16 per member
	ByDriver bool // shard by driver id (required in license mode)

	ListenAddr string // cluster listener; default 127.0.0.1:0

	// HeartbeatInterval paces pings to every peer (default 250ms).
	// FailAfter is the takeover deadline: a peer silent this long is
	// dead and its shards move (default 8× heartbeat). FenceAfter is
	// the self-fencing deadline: without majority contact this recent,
	// the member stops claiming ownership (default 4× heartbeat). The
	// constructor enforces FenceAfter + 2×heartbeat < FailAfter so a
	// cut-off member fences before any peer takes over.
	HeartbeatInterval time.Duration
	FailAfter         time.Duration
	FenceAfter        time.Duration

	DialTimeout time.Duration   // per-exchange deadline; default 2s
	Backoff     faultnet.Policy // pacing after failed peer exchanges

	// Dial overrides how cluster links are opened; chaos tests route
	// them through faultnet proxies. Nil means wire.Dial.
	Dial func(to int, addr string, timeout time.Duration) (*wire.Conn, error)

	Logf func(format string, args ...any)
}

// Member is the membership/health half of a cluster node: it
// heartbeats peers, tracks who is alive, carries the shard override
// table, and turns all of that into routing decisions for the
// colocated core.Server via Route.
type Member struct {
	cfg   MemberConfig
	n     int
	ln    *listener
	start sync.Once
	stop  sync.Once

	stopCh chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	peers     []string // cluster addresses, fixed at Start
	seen      []time.Time
	epoch     uint64
	overrides map[uint32]uint32
}

// NewMember validates the config and binds the cluster listener, so
// the member's ClusterAddr is known before any peer starts.
func NewMember(cfg MemberConfig) (*Member, error) {
	n := len(cfg.Names)
	if n == 0 || len(cfg.ClientAddrs) != n {
		return nil, fmt.Errorf("cluster: need matching Names and ClientAddrs, got %d/%d",
			n, len(cfg.ClientAddrs))
	}
	if cfg.Index < 0 || cfg.Index >= n {
		return nil, fmt.Errorf("cluster: member index %d outside [0,%d)", cfg.Index, n)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16 * n
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.FenceAfter <= 0 {
		cfg.FenceAfter = 4 * cfg.HeartbeatInterval
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 8 * cfg.HeartbeatInterval
	}
	if cfg.FenceAfter+2*cfg.HeartbeatInterval >= cfg.FailAfter {
		return nil, fmt.Errorf(
			"cluster: fencing must precede takeover: FenceAfter(%v) + 2×heartbeat(%v) must stay below FailAfter(%v)",
			cfg.FenceAfter, cfg.HeartbeatInterval, cfg.FailAfter)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	m := &Member{
		cfg:       cfg,
		n:         n,
		stopCh:    make(chan struct{}),
		seen:      make([]time.Time, n),
		overrides: make(map[uint32]uint32),
	}
	ln, err := m.bind(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	m.ln = ln
	return m, nil
}

// ClusterAddr is the member's cluster-protocol address (heartbeats,
// transfers, status probes) — distinct from its client address.
func (m *Member) ClusterAddr() string { return m.ln.addr() }

// Name returns the member's own display name.
func (m *Member) Name() string { return m.cfg.Names[m.cfg.Index] }

// Start records the peers' cluster addresses (indexed like Names) and
// launches the accept loop plus one heartbeat loop per peer.
func (m *Member) Start(clusterAddrs []string) error {
	if len(clusterAddrs) != m.n {
		return fmt.Errorf("cluster: %d cluster addrs for %d members", len(clusterAddrs), m.n)
	}
	m.start.Do(func() {
		now := time.Now()
		m.mu.Lock()
		m.peers = append([]string(nil), clusterAddrs...)
		// Grace period: every peer starts "just seen" so a booting
		// cluster is quorate immediately instead of fencing until the
		// first full heartbeat round completes.
		for i := range m.seen {
			m.seen[i] = now
		}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.acceptLoop()
		for p := 0; p < m.n; p++ {
			if p == m.cfg.Index {
				continue
			}
			m.wg.Add(1)
			go m.heartbeatLoop(p)
		}
	})
	return nil
}

// Stop halts heartbeats and the listener and waits for both.
func (m *Member) Stop() {
	m.stop.Do(func() {
		close(m.stopCh)
		m.ln.close()
		m.wg.Wait()
	})
}

// Route implements core.ShardRouter: it decides, per grant, whether
// this member serves it, redirects to the owner, or — fenced — returns
// the zero Route so the server declines and the bootloader fails over.
func (m *Member) Route(driverID int64, clientID string) core.Route {
	shard := ShardMap{Shards: m.cfg.Shards, ByDriver: m.cfg.ByDriver}.Shard(driverID, clientID)
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.quorateLocked(now) {
		return core.Route{}
	}
	owner := m.ownerLocked(shard, now)
	if owner == m.cfg.Index {
		return core.Route{Local: true}
	}
	return core.Route{Addr: m.cfg.ClientAddrs[owner], Server: m.cfg.Names[owner]}
}

// Transfer moves a shard to another member by pushing an epoch-bumped
// override to every reachable peer; gossip carries it to the rest. A
// non-quorate member refuses: it might be the minority side of a
// partition asserting an assignment the majority has already changed.
func (m *Member) Transfer(shard uint32, to int) error {
	if to < 0 || to >= m.n {
		return fmt.Errorf("cluster: no member %d", to)
	}
	if int(shard) >= m.cfg.Shards {
		return fmt.Errorf("cluster: no shard %d", shard)
	}
	m.mu.Lock()
	if m.peers == nil {
		m.mu.Unlock()
		return fmt.Errorf("cluster: %s not started", m.Name())
	}
	if !m.quorateLocked(time.Now()) {
		m.mu.Unlock()
		return fmt.Errorf("cluster: %s is not quorate; refusing shard transfer", m.Name())
	}
	m.epoch++
	m.overrides[shard] = uint32(to)
	msg := m.gossipLocked(time.Now())
	msg.Alive = nil
	m.mu.Unlock()
	payload := msg.encode()
	for p := 0; p < m.n; p++ {
		if p == m.cfg.Index {
			continue
		}
		if err := m.pushTransfer(p, payload); err != nil {
			m.logf("cluster %s: transfer push to %s: %v", m.Name(), m.cfg.Names[p], err)
		}
	}
	return nil
}

func (m *Member) pushTransfer(peer int, payload []byte) error {
	conn, err := m.dialPeer(peer)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(msgTransfer, payload); err != nil {
		return err
	}
	f, err := conn.RecvTimeout(m.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if f.Type != msgTransferOK {
		return fmt.Errorf("cluster: unexpected frame 0x%04x to transfer", f.Type)
	}
	return nil
}

// Quorate reports whether the member currently sees a majority.
func (m *Member) Quorate() bool {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.quorateLocked(now)
}

// Status snapshots the member's view for operators.
func (m *Member) Status() Status {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Name:    m.Name(),
		Index:   uint32(m.cfg.Index),
		Epoch:   m.epoch,
		Quorate: m.quorateLocked(now),
		Shards:  uint32(m.cfg.Shards),
	}
	owned := make([]uint32, m.n)
	for s := 0; s < m.cfg.Shards; s++ {
		owned[m.ownerLocked(uint32(s), now)]++
	}
	for i := 0; i < m.n; i++ {
		p := PeerStatus{
			Name:        m.cfg.Names[i],
			ClientAddr:  m.cfg.ClientAddrs[i],
			Self:        i == m.cfg.Index,
			Alive:       m.aliveLocked(i, now),
			OwnedShards: owned[i],
		}
		if !p.Self {
			p.SinceSeen = now.Sub(m.seen[i])
		}
		st.Peers = append(st.Peers, p)
	}
	for s, o := range m.overrides {
		st.Overrides = append(st.Overrides, OverrideEntry{Shard: s, Member: o})
	}
	return st
}

// ownerLocked resolves a shard to its current owner: the override
// target if alive, else the first live member walking the ring from
// the shard's home.
func (m *Member) ownerLocked(shard uint32, now time.Time) int {
	if o, ok := m.overrides[shard]; ok && m.aliveLocked(int(o), now) {
		return int(o)
	}
	home := ShardMap{Shards: m.cfg.Shards}.Home(shard, m.n)
	for i := 0; i < m.n; i++ {
		cand := (home + i) % m.n
		if m.aliveLocked(cand, now) {
			return cand
		}
	}
	return m.cfg.Index // everyone looks dead; moot, the member is fenced
}

func (m *Member) aliveLocked(i int, now time.Time) bool {
	return i == m.cfg.Index || now.Sub(m.seen[i]) < m.cfg.FailAfter
}

// quorateLocked: majority contact within FenceAfter, counting self.
func (m *Member) quorateLocked(now time.Time) bool {
	fresh := 1
	for i := range m.seen {
		if i != m.cfg.Index && now.Sub(m.seen[i]) < m.cfg.FenceAfter {
			fresh++
		}
	}
	return 2*fresh > m.n
}

// gossipLocked builds the sender's liveness+override advertisement.
// Only peers heard from very recently (2×heartbeat) are advertised, so
// staleness gains at most one gossip window per relay hop.
func (m *Member) gossipLocked(now time.Time) gossipMsg {
	g := gossipMsg{From: uint32(m.cfg.Index), Epoch: m.epoch}
	for i := range m.seen {
		if i != m.cfg.Index && now.Sub(m.seen[i]) < 2*m.cfg.HeartbeatInterval {
			g.Alive = append(g.Alive, uint32(i))
		}
	}
	for s, o := range m.overrides {
		g.Overrides = append(g.Overrides, OverrideEntry{Shard: s, Member: o})
	}
	return g
}

// merge folds a received gossip payload in. direct marks payloads read
// off a connection from the sender itself: only those update the
// sender's seen time to now. Relayed liveness is backdated by the
// gossip window, so it can keep a reachable-via-relay member alive but
// can never outrank direct contact.
func (m *Member) merge(g gossipMsg, direct bool) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(g.From) < m.n && int(g.From) != m.cfg.Index && direct {
		m.seen[g.From] = now
	}
	relayed := now.Add(-2 * m.cfg.HeartbeatInterval)
	for _, a := range g.Alive {
		i := int(a)
		if i >= m.n || i == m.cfg.Index {
			continue
		}
		if m.seen[i].Before(relayed) {
			m.seen[i] = relayed
		}
	}
	if g.Epoch > m.epoch {
		m.epoch = g.Epoch
		m.overrides = make(map[uint32]uint32, len(g.Overrides))
		for _, o := range g.Overrides {
			if int(o.Member) < m.n && int(o.Shard) < m.cfg.Shards {
				m.overrides[o.Shard] = o.Member
			}
		}
	}
}

// heartbeatLoop pings one peer every HeartbeatInterval over a cached
// connection. Failed exchanges drop the connection and consult the
// backoff schedule: ticks inside the backoff window are skipped, so a
// dead peer is probed at the (jittered, growing) backoff cadence
// instead of every interval.
func (m *Member) heartbeatLoop(peer int) {
	defer m.wg.Done()
	pol := m.cfg.Backoff
	if pol == (faultnet.Policy{}) {
		pol = faultnet.Policy{Initial: m.cfg.HeartbeatInterval,
			Max: 4 * m.cfg.HeartbeatInterval, Factor: 2, Jitter: 0.5}
	}
	pol.MaxAttempts, pol.Budget = 0, 0 // probing a dead peer never gives up
	bo := faultnet.NewBackoff(pol)
	t := time.NewTicker(m.cfg.HeartbeatInterval)
	defer t.Stop()
	var conn *wire.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	var holdUntil time.Time
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
		}
		if !holdUntil.IsZero() && time.Now().Before(holdUntil) {
			continue
		}
		if conn == nil {
			c, err := m.dialPeer(peer)
			if err != nil {
				if d, ok := bo.Next(); ok {
					holdUntil = time.Now().Add(d)
				}
				continue
			}
			conn = c
		}
		if err := m.exchange(conn, peer); err != nil {
			conn.Close()
			conn = nil
			if d, ok := bo.Next(); ok {
				holdUntil = time.Now().Add(d)
			}
			continue
		}
		bo.Reset()
		holdUntil = time.Time{}
	}
}

// exchange runs one PING→PONG round and merges the reply.
func (m *Member) exchange(conn *wire.Conn, peer int) error {
	m.mu.Lock()
	g := m.gossipLocked(time.Now())
	m.mu.Unlock()
	if err := conn.Send(msgPing, g.encode()); err != nil {
		return err
	}
	f, err := conn.RecvTimeout(m.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if f.Type != msgPong {
		return fmt.Errorf("cluster: unexpected frame 0x%04x to ping", f.Type)
	}
	reply, err := decodeGossip(f.Payload)
	if err != nil {
		return err
	}
	m.merge(reply, int(reply.From) == peer)
	return nil
}

func (m *Member) dialPeer(peer int) (*wire.Conn, error) {
	m.mu.Lock()
	var addr string
	if m.peers != nil {
		addr = m.peers[peer]
	}
	m.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("cluster: no address for member %d", peer)
	}
	if m.cfg.Dial != nil {
		return m.cfg.Dial(peer, addr, m.cfg.DialTimeout)
	}
	conn, err := wire.Dial(addr, m.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetWriteTimeout(m.cfg.DialTimeout)
	return conn, nil
}

func (m *Member) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
