package cluster

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// listener wraps the cluster-protocol listener so close is idempotent
// (Stop can race the accept loop's own error path).
type listener struct {
	ln   net.Listener
	once sync.Once
}

func (m *Member) bind(addr string) (*listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &listener{ln: ln}, nil
}

func (l *listener) addr() string { return l.ln.Addr().String() }

func (l *listener) close() { l.once.Do(func() { _ = l.ln.Close() }) }

// acceptLoop serves cluster-protocol connections: peer heartbeats,
// transfer pushes, and operator status probes.
func (m *Member) acceptLoop() {
	defer m.wg.Done()
	for {
		nc, err := m.ln.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-m.stopCh:
				return
			default:
				m.logf("cluster %s: accept: %v", m.Name(), err)
				continue
			}
		}
		m.wg.Add(1)
		go m.serveConn(nc)
	}
}

func (m *Member) serveConn(nc net.Conn) {
	defer m.wg.Done()
	conn := wire.NewConn(nc)
	defer conn.Close()
	conn.SetWriteTimeout(m.cfg.DialTimeout)
	// A healthy peer pings every HeartbeatInterval; a connection idle
	// for several FailAfter windows is abandoned (the peer will redial).
	idle := 4 * m.cfg.FailAfter
	for {
		select {
		case <-m.stopCh:
			return
		default:
		}
		f, err := conn.RecvTimeout(idle)
		if err != nil {
			return
		}
		switch f.Type {
		case msgPing:
			g, derr := decodeGossip(f.Payload)
			if derr != nil {
				return
			}
			m.merge(g, true)
			m.mu.Lock()
			reply := m.gossipLocked(time.Now())
			m.mu.Unlock()
			if err := conn.Send(msgPong, reply.encode()); err != nil {
				return
			}
		case msgTransfer:
			g, derr := decodeGossip(f.Payload)
			if derr != nil {
				return
			}
			m.merge(g, true)
			if err := conn.Send(msgTransferOK, nil); err != nil {
				return
			}
		case msgStatusReq:
			if err := conn.Send(msgStatus, m.Status().encode()); err != nil {
				return
			}
		default:
			return
		}
	}
}
