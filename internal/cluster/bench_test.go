package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// The cluster benchmarks compare the paper's two control-plane shapes
// under identical client traffic:
//
//   - single-external: one Drivolution server whose schema lives in a
//     legacy DBMS behind a ConnStore (Figure 2) — every matchmaking
//     probe and renewal pays store round-trips on top of the client's;
//   - cluster-3: three members, each answering from its own replicated
//     store — matchmaking is a local catalog hit and a renewal is a
//     local UPDATE fanned out to peers in-process.
//
// The win is structural (fewer network round-trips per operation), so
// it shows on a single-core box; on real hardware the three members
// also spread CPU.

func benchSeedAny(b *testing.B, srv *core.Server) {
	b.Helper()
	id, err := srv.AddDriver(testImage(dbver.V(1, 0, 0)), dbver.FormatImage)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.SetPermission(core.Permission{
		DriverID: id, LeaseTime: time.Hour,
		RenewPolicy: core.RenewUpgrade, ExpirationPolicy: core.AfterClose,
		TransferMethod: core.TransferAny,
	}); err != nil {
		b.Fatal(err)
	}
}

// newSingleExternal stands up the Figure 2 baseline: Drivolution
// schema in a legacy DBMS, one server reaching it through a driver
// connection.
func newSingleExternal(b *testing.B) *core.Server {
	b.Helper()
	legacyDB := sqlmini.NewDB()
	legacy := dbms.NewServer("legacy-db", dbms.WithUser("drivolution", "svc-pw"))
	legacy.AddDatabase("meta", legacyDB)
	if err := legacy.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(legacy.Stop)
	drv := dbms.NewNativeDriver(dbver.V(1, 0, 0), 1)
	store := core.NewConnStore(func() (client.Conn, error) {
		return drv.Connect("dbms://"+legacy.Addr()+"/meta",
			client.Props{"user": "drivolution", "password": "svc-pw"})
	})
	b.Cleanup(store.Close)
	srv, err := core.NewServer("drivolution-single", store)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Stop)
	benchSeedAny(b, srv)
	return srv
}

func newBenchFleet(b *testing.B) *Fleet {
	b.Helper()
	f, err := NewFleet(FleetConfig{Members: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Stop)
	benchSeedAny(b, f.Servers[0])
	return f
}

func dialBench(b *testing.B, addr string) *core.LeaseClient {
	b.Helper()
	lc, err := core.DialLeaseClient(addr, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(lc.Close)
	return lc
}

// BenchmarkClusterMatchmaking measures DISCOVER throughput: the
// matchmaking a bootloader fleet generates when probing for drivers.
func BenchmarkClusterMatchmaking(b *testing.B) {
	b.Run("single-external", func(b *testing.B) {
		srv := newSingleExternal(b)
		lc := dialBench(b, srv.Addr())
		req := testRequest("app", "bench-client")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lc.Discover(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cluster-3", func(b *testing.B) {
		f := newBenchFleet(b)
		lcs := make([]*core.LeaseClient, len(f.Servers))
		for i, srv := range f.Servers {
			lcs[i] = dialBench(b, srv.Addr())
		}
		req := testRequest("app", "bench-client")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lcs[i%len(lcs)].Discover(req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// leaseOn obtains a lease starting at addr, chasing redirects, and
// returns the offer plus the address that granted it.
func leaseOn(addr string, req core.Request) (core.Offer, string, error) {
	for hop := 0; hop < 3; hop++ {
		lc, err := core.DialLeaseClient(addr, 5*time.Second)
		if err != nil {
			return core.Offer{}, "", err
		}
		offer, err := lc.Request(req)
		lc.Close()
		var re *core.Redirect
		if errors.As(err, &re) && re.Addr != "" && re.Addr != addr {
			addr = re.Addr
			continue
		}
		return offer, addr, err
	}
	return core.Offer{}, "", errors.New("redirect loop")
}

type benchLease struct {
	lc  *core.LeaseClient
	req core.Request
}

// prepLeases grants one lease per simulated client and pairs it with a
// connection to its owning member, so the benchmark loop measures
// steady-state renewals (no redirects).
func prepLeases(b *testing.B, firstAddr string, n int) []benchLease {
	b.Helper()
	conns := map[string]*core.LeaseClient{}
	leases := make([]benchLease, n)
	for i := 0; i < n; i++ {
		req := testRequest("app", fmt.Sprintf("bench-client-%d", i))
		offer, addr, err := leaseOn(firstAddr, req)
		if err != nil {
			b.Fatal(err)
		}
		if conns[addr] == nil {
			conns[addr] = dialBench(b, addr)
		}
		req.LeaseID = offer.LeaseID
		req.CurrentChecksum = offer.DriverChecksum
		leases[i] = benchLease{lc: conns[addr], req: req}
	}
	return leases
}

// BenchmarkClusterRenewal measures RENEW throughput — the dominant
// steady-state traffic of a large bootloader fleet (Table 4).
func BenchmarkClusterRenewal(b *testing.B) {
	const fleet = 32
	b.Run("single-external", func(b *testing.B) {
		srv := newSingleExternal(b)
		leases := prepLeases(b, srv.Addr(), fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := leases[i%len(leases)]
			if _, err := l.lc.Request(l.req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cluster-3", func(b *testing.B) {
		f := newBenchFleet(b)
		leases := prepLeases(b, f.Servers[0].Addr(), fleet)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := leases[i%len(leases)]
			if _, err := l.lc.Request(l.req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
