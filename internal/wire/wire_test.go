package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		f    Frame
	}{
		{name: "empty payload", f: Frame{Type: 1}},
		{name: "small payload", f: Frame{Type: 42, Payload: []byte("hello")}},
		{name: "binary payload", f: Frame{Type: 0xFFFF, Payload: []byte{0, 1, 2, 255}}},
		{name: "large payload", f: Frame{Type: 7, Payload: bytes.Repeat([]byte{0xAB}, 1<<20)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tt.f); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if got.Type != tt.f.Type {
				t.Errorf("Type = %d, want %d", got.Type, tt.f.Type)
			}
			if !bytes.Equal(got.Payload, tt.f.Payload) {
				t.Errorf("payload mismatch: got %d bytes, want %d", len(got.Payload), len(tt.f.Payload))
			}
		})
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 100; i++ {
		f := Frame{Type: uint16(i), Payload: bytes.Repeat([]byte{byte(i)}, i)}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if f.Type != uint16(i) || len(f.Payload) != i {
			t.Fatalf("frame %d: got type=%d len=%d", i, f.Type, len(f.Payload))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF after last frame, got %v", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	buf := []byte{0xDE, 0xAD, 0, 1, 0, 0, 0, 0}
	_, err := ReadFrame(bytes.NewReader(buf))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xD1, 0x7A, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	_, err := ReadFrame(&buf)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	f := Frame{Type: 1, Payload: make([]byte, MaxPayload+1)}
	if err := WriteFrame(io.Discard, f); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("expected ErrFrameTooLarge, got %v", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: 1, Payload: []byte("full payload")}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated payload")
	}
}

func TestEncoderDecoderAllFields(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Nanosecond)
	e := NewEncoder(256)
	e.Uint8(200)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(65000)
	e.Uint32(4000000000)
	e.Uint64(math.MaxUint64)
	e.Int32(-12345)
	e.Int64(math.MinInt64 + 1)
	e.Float64(3.14159)
	e.Duration(90 * time.Minute)
	e.Time(now)
	e.Time(time.Time{})
	e.String("drivolution")
	e.String("")
	e.Bytes32([]byte{9, 8, 7})
	e.StringSlice([]string{"a", "bb", ""})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 200 {
		t.Errorf("Uint8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Uint16(); got != 65000 {
		t.Errorf("Uint16 = %d", got)
	}
	if got := d.Uint32(); got != 4000000000 {
		t.Errorf("Uint32 = %d", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int32(); got != -12345 {
		t.Errorf("Int32 = %d", got)
	}
	if got := d.Int64(); got != math.MinInt64+1 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Duration(); got != 90*time.Minute {
		t.Errorf("Duration = %v", got)
	}
	if got := d.Time(); !got.Equal(now) {
		t.Errorf("Time = %v, want %v", got, now)
	}
	if got := d.Time(); !got.IsZero() {
		t.Errorf("zero Time = %v, want zero", got)
	}
	if got := d.String(); got != "drivolution" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := d.Bytes32(); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := d.StringSlice(); !reflect.DeepEqual(got, []string{"a", "bb", ""}) {
		t.Errorf("StringSlice = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decoder error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.Uint32() // short: 1 byte available, 4 needed
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads return zero values without panicking.
	if got := d.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
	if got := d.Uint64(); got != 0 {
		t.Errorf("Uint64 after error = %d", got)
	}
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Errorf("Err = %v, want ErrShortBuffer", d.Err())
	}
}

func TestDecoderMaliciousStringSliceCount(t *testing.T) {
	e := NewEncoder(8)
	e.Uint32(0xFFFFFFFF) // absurd element count with no data behind it
	d := NewDecoder(e.Bytes())
	if got := d.StringSlice(); got != nil {
		t.Fatalf("StringSlice = %v, want nil", got)
	}
	if !errors.Is(d.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", d.Err())
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	prop := func(s string, b []byte, v uint64) bool {
		e := NewEncoder(64)
		e.String(s)
		e.Bytes32(b)
		e.Uint64(v)
		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.Bytes32()
		gv := d.Uint64()
		if d.Err() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) && gv == v && d.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(typ uint16, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, Frame{Type: typ, Payload: payload}); err != nil {
			return false
		}
		f, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return f.Type == typ && bytes.Equal(f.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConnSendRecv(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		c := NewConn(nc)
		defer c.Close()
		f, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(f.Type+1, append([]byte("echo:"), f.Payload...))
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(10, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	f, err := c.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != 11 || string(f.Payload) != "echo:ping" {
		t.Fatalf("got type=%d payload=%q", f.Type, f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestConnRecvTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		time.Sleep(500 * time.Millisecond) // never send
	}()
	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.RecvTimeout(50 * time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("timeout took %v, expected ~50ms", elapsed)
	}
}

func TestConnConcurrentSends(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const n = 64
	recvDone := make(chan int, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			recvDone <- -1
			return
		}
		c := NewConn(nc)
		defer c.Close()
		count := 0
		for count < n {
			f, err := c.Recv()
			if err != nil {
				recvDone <- -1
				return
			}
			if len(f.Payload) != 100 {
				recvDone <- -1
				return
			}
			count++
		}
		recvDone <- count
	}()

	c, err := Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			errc <- c.Send(uint16(i), bytes.Repeat([]byte{byte(i)}, 100))
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := <-recvDone; got != n {
		t.Fatalf("server received %d frames, want %d", got, n)
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	e := GetEncoder(64)
	e.String("hello")
	if len(e.Bytes()) == 0 {
		t.Fatal("encoder did not accumulate")
	}
	PutEncoder(e)
	e2 := GetEncoder(64)
	if len(e2.Bytes()) != 0 {
		t.Fatal("pooled encoder returned non-empty")
	}
	e2.Uint32(42)
	if len(e2.Bytes()) != 4 {
		t.Fatalf("payload = %d bytes", len(e2.Bytes()))
	}
	PutEncoder(e2)

	// Oversized buffers are dropped rather than pinned in the pool.
	big := GetEncoder(2 << 20)
	PutEncoder(big)
	small := GetEncoder(16)
	if cap(small.buf) > 1<<20 && &small.buf[:1][0] == &big.buf[:1][0] {
		t.Fatal("oversized buffer was retained by the pool")
	}
}

func TestConnSendWriteTimeout(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	conn := NewConn(c1)
	defer conn.Close()
	conn.SetWriteTimeout(50 * time.Millisecond)
	// c2 never reads and net.Pipe has no buffering: the flush can only
	// end by deadline.
	err := conn.Send(1, make([]byte, 64<<10))
	if err == nil {
		t.Fatal("Send to a never-reading peer returned nil")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a timeout error, got %v", err)
	}
}
