// Package wire implements the framed binary message transport shared by
// every network protocol in this repository: the simulated DBMS protocol,
// the Sequoia controller protocol, and the Drivolution bootstrap protocol.
//
// A frame on the wire is:
//
//	+----------------+----------------+----------------------+
//	| magic (2B)     | type (2B)      | length (4B, payload) |
//	+----------------+----------------+----------------------+
//	| payload (length bytes)                                 |
//	+--------------------------------------------------------+
//
// Payloads are encoded with the field primitives in this package
// (length-prefixed strings and byte slices, fixed-width integers,
// big-endian throughout). The codec is deliberately simple and allocation
// conscious; it has no reflection and no external dependencies.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Magic is the two-byte frame preamble. Frames not starting with Magic are
// rejected, which catches cross-protocol connections (e.g. a legacy
// database driver accidentally pointed at a Drivolution port).
const Magic uint16 = 0xD17A

// MaxPayload bounds a single frame payload. Driver binaries are chunked by
// the file-transfer layer, so no legitimate frame approaches this limit.
const MaxPayload = 64 << 20 // 64 MiB

// Frame is a single protocol message: a numeric type plus an opaque
// payload to be decoded by the owning protocol.
type Frame struct {
	Type    uint16
	Payload []byte
}

// Codec-level errors.
var (
	// ErrBadMagic indicates the peer is not speaking this framing.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrFrameTooLarge indicates a frame advertised a payload above MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum payload size")
	// ErrShortBuffer indicates a truncated payload during field decoding.
	ErrShortBuffer = errors.New("wire: short buffer")
)

// WriteFrame writes one frame to w. It is not safe for concurrent use on
// the same writer; callers serialize with their own mutex.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	binary.BigEndian.PutUint16(hdr[2:4], f.Type)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(f.Payload) == 0 {
		return nil
	}
	if _, err := w.Write(f.Payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame from r. io.EOF is returned unwrapped when the
// connection closes cleanly between frames.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: read header: %w", err)
	}
	if m := binary.BigEndian.Uint16(hdr[0:2]); m != Magic {
		return Frame{}, fmt.Errorf("%w: 0x%04x", ErrBadMagic, m)
	}
	f := Frame{Type: binary.BigEndian.Uint16(hdr[2:4])}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("wire: read payload: %w", err)
		}
	}
	return f, nil
}

// Encoder accumulates payload fields for one frame. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for frames of
// roughly n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// encoderPool recycles encoder backing arrays between frames; chunked
// file streaming sends thousands of frames per transfer and should not
// allocate one payload buffer each.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// maxPooledEncoder bounds the backing array a returned encoder may keep,
// so one oversized frame doesn't pin its buffer in the pool forever.
const maxPooledEncoder = 1 << 20

// GetEncoder returns a pooled encoder, empty, with capacity for roughly
// n bytes. Pair with PutEncoder once the payload has been handed to
// Conn.Send (Send flushes before returning, so the buffer is free for
// reuse immediately after).
func GetEncoder(n int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	if cap(e.buf) < n {
		e.buf = make([]byte, 0, n)
	}
	return e
}

// PutEncoder recycles an encoder obtained from GetEncoder. The encoder
// (and any []byte obtained from its Bytes) must not be used afterwards.
func PutEncoder(e *Encoder) {
	if cap(e.buf) > maxPooledEncoder {
		return
	}
	e.Reset()
	encoderPool.Put(e)
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset discards the accumulated payload, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
		return
	}
	e.Uint8(0)
}

// Uint16 appends a big-endian 16-bit integer.
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// Uint32 appends a big-endian 32-bit integer.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a big-endian 64-bit integer.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int32 appends a big-endian signed 32-bit integer.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Int64 appends a big-endian signed 64-bit integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Float64 appends an IEEE-754 double.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Duration appends a time.Duration as nanoseconds.
func (e *Encoder) Duration(d time.Duration) { e.Int64(int64(d)) }

// Time appends a time.Time as Unix nanoseconds (UTC). The zero time is
// encoded as math.MinInt64 so it round-trips exactly.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.Int64(math.MinInt64)
		return
	}
	e.Int64(t.UnixNano())
}

// String appends a length-prefixed UTF-8 string (4-byte length).
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes32 appends a length-prefixed byte slice (4-byte length).
func (e *Encoder) Bytes32(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Uint32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Decoder consumes payload fields from one frame. Decoding errors are
// sticky: after the first error every subsequent call returns the zero
// value and Err reports the original failure, so message decoders can
// read all fields and check Err once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder over payload b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unconsumed payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 consumes one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool consumes one byte as a boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 consumes a big-endian 16-bit integer.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// Uint32 consumes a big-endian 32-bit integer.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 consumes a big-endian 64-bit integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int32 consumes a big-endian signed 32-bit integer.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Int64 consumes a big-endian signed 64-bit integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Float64 consumes an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Duration consumes a time.Duration encoded as nanoseconds.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Int64()) }

// Time consumes a time.Time encoded as Unix nanoseconds.
func (d *Decoder) Time() time.Time {
	v := d.Int64()
	if d.err != nil || v == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, v).UTC()
}

// String consumes a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes32 consumes a length-prefixed byte slice. The returned slice is a
// copy and safe to retain.
func (d *Decoder) Bytes32() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// StringSlice consumes a count-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if int(n) > d.Remaining() { // each string needs at least its 4-byte length
		d.err = fmt.Errorf("%w: string slice count %d exceeds remaining payload", ErrShortBuffer, n)
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}
