package wire

import (
	"bufio"
	"crypto/tls"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with buffered, mutex-serialized frame I/O. Writes
// from multiple goroutines are safe; reads must come from a single
// goroutine (the usual pattern: one reader loop per connection).
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu      sync.Mutex
	bw       *bufio.Writer
	wtimeout time.Duration // per-Send write deadline; 0 = none
	warmed   bool          // a write deadline is currently set on nc
}

// connBufSize sizes the per-connection bufio buffers. Frames larger
// than the buffer bypass it in both directions (bufio reads/writes go
// straight to the socket once the buffer is empty/flushed), so big
// FILE_DATA chunks lose nothing while short-lived protocol connections
// stop allocating 64 KiB each.
const connBufSize = 8 << 10

// NewConn wraps nc for frame I/O. It is the repo's deadline trust
// root: the returned Conn arms per-operation deadlines lazily — Send
// under SetWriteTimeout, RecvTimeout per receive — so raw conns are
// bounded the moment they are wrapped.
//
//lint:deadline-arming
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, connBufSize),
		bw: bufio.NewWriterSize(nc, connBufSize),
	}
}

// SetWriteTimeout bounds every subsequent Send: the frame must be
// fully flushed to the socket within d or the Send fails with a
// timeout error. Zero disables the bound. Servers set this on every
// accepted connection so a stalled reader (a black-holed peer, a
// full receive window that never drains) cannot wedge broadcast or
// transfer paths; a timed-out connection must be closed — the stream
// position after a partial flush is unknown.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.wtimeout = d
	c.wmu.Unlock()
}

// Send writes and flushes one frame.
func (c *Conn) Send(typ uint16, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wtimeout > 0 {
		if err := c.nc.SetWriteDeadline(time.Now().Add(c.wtimeout)); err != nil {
			return fmt.Errorf("wire: set write deadline: %w", err)
		}
		c.warmed = true
	} else if c.warmed {
		_ = c.nc.SetWriteDeadline(time.Time{})
		c.warmed = false
	}
	if err := WriteFrame(c.bw, Frame{Type: typ, Payload: payload}); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv reads one frame.
func (c *Conn) Recv() (Frame, error) {
	return ReadFrame(c.br)
}

// RecvTimeout reads one frame, failing if none arrives within d. A zero
// duration means no deadline.
func (c *Conn) RecvTimeout(d time.Duration) (Frame, error) {
	if d > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(d)); err != nil {
			return Frame{}, fmt.Errorf("wire: set read deadline: %w", err)
		}
		defer c.nc.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	return c.Recv()
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// IsTLS reports whether the connection runs over TLS; protocol layers
// use it to enforce secure-transfer policies.
func (c *Conn) IsTLS() bool {
	_, ok := c.nc.(*tls.Conn)
	return ok
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// Dial connects to addr over TCP and wraps the connection. timeout bounds
// connection establishment; zero means the OS default.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewConn(nc), nil
}
