package wire

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, Frame{Type: 7, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderTypicalMessage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEncoder(256)
		e.String("prod")
		e.String("app")
		e.String("secret")
		e.String("JDBC")
		e.Int32(3)
		e.Int32(0)
		e.String("linux-x86_64")
		e.Uint64(uint64(i))
		_ = e.Bytes()
	}
}

// BenchmarkEncoderPooledMessage is BenchmarkEncoderTypicalMessage
// through the encoder pool; steady state must be allocation-free.
func BenchmarkEncoderPooledMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder(256)
		e.String("prod")
		e.String("app")
		e.String("secret")
		e.String("JDBC")
		e.Int32(3)
		e.Int32(0)
		e.String("linux-x86_64")
		e.Uint64(uint64(i))
		_ = e.Bytes()
		PutEncoder(e)
	}
}

// BenchmarkFileChunkFraming mimics the server's FILE_DATA streaming
// loop: one 256 KiB chunk payload framed per iteration. The pooled
// variant is what the Drivolution transfer path uses — it must not
// allocate a fresh payload buffer per frame.
func BenchmarkFileChunkFraming(b *testing.B) {
	data := bytes.Repeat([]byte{0x5A}, 256<<10)
	b.Run("fresh-encoder", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			e := NewEncoder(16 + len(data))
			e.Uint32(0)
			e.Uint32(uint32(len(data)))
			e.Bool(true)
			e.Bytes32(data)
			if err := WriteFrame(io.Discard, Frame{Type: 7, Payload: e.Bytes()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-encoder", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		e := GetEncoder(16 + len(data))
		defer PutEncoder(e)
		for i := 0; i < b.N; i++ {
			e.Reset()
			e.Uint32(0)
			e.Uint32(uint32(len(data)))
			e.Bool(true)
			e.Bytes32(data)
			if err := WriteFrame(io.Discard, Frame{Type: 7, Payload: e.Bytes()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecoderTypicalMessage(b *testing.B) {
	e := NewEncoder(256)
	e.String("prod")
	e.String("app")
	e.String("secret")
	e.String("JDBC")
	e.Int32(3)
	e.Int32(0)
	e.String("linux-x86_64")
	e.Uint64(42)
	payload := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(payload)
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.Int32()
		_ = d.Int32()
		_ = d.String()
		_ = d.Uint64()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}
