package wire

import (
	"bytes"
	"testing"
)

func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 1024)
	var buf bytes.Buffer
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, Frame{Type: 7, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderTypicalMessage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEncoder(256)
		e.String("prod")
		e.String("app")
		e.String("secret")
		e.String("JDBC")
		e.Int32(3)
		e.Int32(0)
		e.String("linux-x86_64")
		e.Uint64(uint64(i))
		_ = e.Bytes()
	}
}

func BenchmarkDecoderTypicalMessage(b *testing.B) {
	e := NewEncoder(256)
	e.String("prod")
	e.String("app")
	e.String("secret")
	e.String("JDBC")
	e.Int32(3)
	e.Int32(0)
	e.String("linux-x86_64")
	e.Uint64(42)
	payload := e.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(payload)
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.String()
		_ = d.Int32()
		_ = d.Int32()
		_ = d.String()
		_ = d.Uint64()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}
