// Package sequoia reimplements the slice of the Sequoia database
// clustering middleware the paper builds on (§5.3): controllers that
// expose a virtual database over their own wire protocol, replicate
// writes across every backend of every controller in a group, load-
// balance reads, support backend disable/enable with journal-based
// resynchronization, and optionally embed a Drivolution server
// replicated across controllers (Figure 6).
//
// Simplifications relative to the real Sequoia (documented in
// DESIGN.md): total ordering of writes uses an in-process group
// sequencer rather than a group communication stack, and cross-
// controller replication applies statements in autocommit.
package sequoia

import (
	"fmt"

	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Frame types of the Sequoia controller protocol. Deliberately distinct
// from the DBMS protocol: Sequoia has its own driver with its own
// compatibility axis ("Sequoia uses its own wire protocol between
// drivers and controllers", §5.3.1).
const (
	msgHello   uint16 = 0x0301
	msgHelloOK uint16 = 0x0302
	msgExec    uint16 = 0x0303
	msgResult  uint16 = 0x0304
	msgPing    uint16 = 0x0305
	msgPong    uint16 = 0x0306
	msgError   uint16 = 0x03FF
)

// Error codes.
const (
	codeProtocolMismatch uint16 = iota + 1
	codeAuthFailed
	codeNoDatabase
	codeQueryError
	codeNoBackends
)

type helloMsg struct {
	ProtocolVersion uint16
	Database        string
	User            string
	Password        string
	ClientInfo      string
}

func (h helloMsg) encode() []byte {
	e := wire.NewEncoder(128)
	e.Uint16(h.ProtocolVersion)
	e.String(h.Database)
	e.String(h.User)
	e.String(h.Password)
	e.String(h.ClientInfo)
	return e.Bytes()
}

func decodeHello(b []byte) (helloMsg, error) {
	d := wire.NewDecoder(b)
	h := helloMsg{
		ProtocolVersion: d.Uint16(),
		Database:        d.String(),
		User:            d.String(),
		Password:        d.String(),
		ClientInfo:      d.String(),
	}
	return h, d.Err()
}

type execMsg struct {
	SQL        string
	Named      map[string]sqlmini.Value
	Positional []sqlmini.Value
}

func (m execMsg) encode() []byte {
	e := wire.NewEncoder(256)
	e.String(m.SQL)
	e.Uint32(uint32(len(m.Named)))
	for k, v := range m.Named {
		e.String(k)
		sqlmini.EncodeValue(e, v)
	}
	e.Uint32(uint32(len(m.Positional)))
	for _, v := range m.Positional {
		sqlmini.EncodeValue(e, v)
	}
	return e.Bytes()
}

func decodeExec(b []byte) (execMsg, error) {
	d := wire.NewDecoder(b)
	m := execMsg{SQL: d.String()}
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	if n > 0 {
		m.Named = make(map[string]sqlmini.Value, n)
		for i := uint32(0); i < n; i++ {
			k := d.String()
			v, err := sqlmini.DecodeValue(d)
			if err != nil {
				return m, err
			}
			m.Named[k] = v
		}
	}
	np := d.Uint32()
	if err := d.Err(); err != nil {
		return m, err
	}
	for i := uint32(0); i < np; i++ {
		v, err := sqlmini.DecodeValue(d)
		if err != nil {
			return m, err
		}
		m.Positional = append(m.Positional, v)
	}
	return m, d.Err()
}

func encodeResult(cols []string, rows [][]sqlmini.Value, affected int) []byte {
	e := wire.NewEncoder(256)
	e.StringSlice(cols)
	e.Uint32(uint32(len(rows)))
	for _, row := range rows {
		e.Uint32(uint32(len(row)))
		for _, v := range row {
			sqlmini.EncodeValue(e, v)
		}
	}
	e.Int64(int64(affected))
	return e.Bytes()
}

func decodeResult(b []byte) (cols []string, rows [][]sqlmini.Value, affected int, err error) {
	d := wire.NewDecoder(b)
	cols = d.StringSlice()
	n := d.Uint32()
	if e := d.Err(); e != nil {
		return nil, nil, 0, e
	}
	for i := uint32(0); i < n; i++ {
		nc := d.Uint32()
		if e := d.Err(); e != nil {
			return nil, nil, 0, e
		}
		row := make([]sqlmini.Value, 0, nc)
		for j := uint32(0); j < nc; j++ {
			v, e := sqlmini.DecodeValue(d)
			if e != nil {
				return nil, nil, 0, e
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	affected = int(d.Int64())
	return cols, rows, affected, d.Err()
}

func encodeError(code uint16, msg string) []byte {
	e := wire.NewEncoder(len(msg) + 8)
	e.Uint16(code)
	e.String(msg)
	return e.Bytes()
}

func decodeError(b []byte) (uint16, string, error) {
	d := wire.NewDecoder(b)
	c := d.Uint16()
	m := d.String()
	return c, m, d.Err()
}

func fmtCode(code uint16, msg string) string {
	return fmt.Sprintf("sequoia: [%d] %s", code, msg)
}
