package sequoia

import (
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

func benchCluster(b *testing.B, controllers, backendsPer int) (string, func()) {
	b.Helper()
	group := NewGroup()
	var closers []func()
	var hosts string
	for ci := 0; ci < controllers; ci++ {
		ctrl := NewController(fmt.Sprintf("c%d", ci), "vdb", group,
			WithControllerUser("u", "p"))
		for bi := 0; bi < backendsPer; bi++ {
			db := sqlmini.NewDB()
			db.MustExec("CREATE TABLE kv (k VARCHAR NOT NULL PRIMARY KEY, v INTEGER)")
			srv := dbms.NewServer(fmt.Sprintf("b%d-%d", ci, bi), dbms.WithUser("s", "s"))
			srv.AddDatabase("shard", db)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				b.Fatal(err)
			}
			closers = append(closers, srv.Stop)
			name := fmt.Sprintf("b%d-%d", ci, bi)
			ctrl.AddBackend(&Backend{
				Name:   name,
				URL:    "dbms://" + srv.Addr() + "/shard",
				Props:  client.Props{"user": "s", "password": "s"},
				Driver: dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
			})
			if err := ctrl.EnableBackend(name); err != nil {
				b.Fatal(err)
			}
		}
		if err := ctrl.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		closers = append(closers, ctrl.Stop)
		if hosts != "" {
			hosts += ","
		}
		hosts += ctrl.Addr()
	}
	return "sequoia://" + hosts + "/vdb", func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

func BenchmarkReplicatedWrite(b *testing.B) {
	for _, backends := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends-%d", backends), func(b *testing.B) {
			url, cleanup := benchCluster(b, 1, backends)
			defer cleanup()
			d := NewDriver(dbver.V(1, 0, 0), 1)
			c, err := d.Connect(url, client.Props{"user": "u", "password": "p"})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("k%d", i), i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLoadBalancedRead(b *testing.B) {
	url, cleanup := benchCluster(b, 1, 2)
	defer cleanup()
	d := NewDriver(dbver.V(1, 0, 0), 1)
	c, err := d.Connect(url, client.Props{"user": "u", "password": "p"})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('x', 1)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT v FROM kv WHERE k = 'x'"); err != nil {
			b.Fatal(err)
		}
	}
}
