package sequoia

import (
	"testing"
	"testing/quick"

	"repro/internal/sqlmini"
)

func TestHelloRoundTripProperty(t *testing.T) {
	prop := func(proto uint16, db, user, pw, info string) bool {
		in := helloMsg{ProtocolVersion: proto, Database: db, User: user, Password: pw, ClientInfo: info}
		out, err := decodeHello(in.encode())
		return err == nil && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExecRoundTrip(t *testing.T) {
	in := execMsg{
		SQL: "INSERT INTO kv (k, v) VALUES ($k, $v)",
		Named: map[string]sqlmini.Value{
			"k": sqlmini.NewString("key"),
			"v": sqlmini.NewInt(42),
		},
	}
	out, err := decodeExec(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.SQL != in.SQL || len(out.Named) != 2 {
		t.Fatalf("out = %+v", out)
	}
	if out.Named["k"].Str() != "key" || out.Named["v"].Int() != 42 {
		t.Fatalf("named = %v", out.Named)
	}

	in2 := execMsg{SQL: "SELECT 1", Positional: []sqlmini.Value{sqlmini.NewBool(true), sqlmini.Null}}
	out2, err := decodeExec(in2.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out2.Positional) != 2 || !out2.Positional[0].Bool() || !out2.Positional[1].IsNull() {
		t.Fatalf("positional = %v", out2.Positional)
	}
}

func TestResultRoundTrip(t *testing.T) {
	cols := []string{"a", "b"}
	rows := [][]sqlmini.Value{
		{sqlmini.NewInt(1), sqlmini.NewString("x")},
		{sqlmini.Null, sqlmini.NewFloat(2.5)},
	}
	gc, gr, aff, err := decodeResult(encodeResult(cols, rows, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(gc) != 2 || gc[0] != "a" || aff != 7 || len(gr) != 2 {
		t.Fatalf("cols=%v aff=%d rows=%d", gc, aff, len(gr))
	}
	if gr[0][0].Int() != 1 || gr[1][1].Float() != 2.5 || !gr[1][0].IsNull() {
		t.Fatalf("rows = %v", gr)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	code, msg, err := decodeError(encodeError(codeNoBackends, "none left"))
	if err != nil || code != codeNoBackends || msg != "none left" {
		t.Fatalf("code=%d msg=%q err=%v", code, msg, err)
	}
	if fmtCode(codeQueryError, "boom") == "" {
		t.Fatal("fmtCode empty")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := helloMsg{ProtocolVersion: 1, Database: "db"}.encode()
	if _, err := decodeHello(full[:3]); err == nil {
		t.Fatal("truncated hello accepted")
	}
	e := execMsg{SQL: "SELECT 1"}.encode()
	if _, err := decodeExec(e[:2]); err == nil {
		t.Fatal("truncated exec accepted")
	}
}
