package sequoia

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// This file implements Figure 6: "Drivolution servers embedded in
// Sequoia controllers". Each controller hosts its own Drivolution server
// over its own store; admin operations go through the group so every
// embedded server converges to the same driver set ("When a new driver
// is added to a Drivolution server, it is instantly replicated to other
// Drivolution servers").

// EmbeddedDrivolution is the per-controller Drivolution server handle.
type EmbeddedDrivolution struct {
	Controller *Controller
	Server     *core.Server
}

// ReplicatedDrivolution fans admin operations out to every embedded
// server in a controller group.
type ReplicatedDrivolution struct {
	members []EmbeddedDrivolution
}

// EmbedDrivolution creates one Drivolution server per controller in the
// group, each listening on its own port, and returns the replicated
// admin handle. Extra core.ServerOptions apply to every member.
//
// The members share one replicated store — the in-process equivalent of
// the paper's "this implementation leverages the Sequoia replication
// infrastructure to synchronize Drivolution servers so as to always
// provide a consistent state" — so a lease granted by one member renews
// against any other.
func EmbedDrivolution(g *Group, opts ...core.ServerOption) (*ReplicatedDrivolution, error) {
	rd := &ReplicatedDrivolution{}
	shared := sqlmini.NewDB()
	for _, ctrl := range g.Controllers() {
		store := core.NewLocalStore(shared)
		srv, err := core.NewServer("drivolution@"+ctrl.Name(), store, opts...)
		if err != nil {
			rd.Stop()
			return nil, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			rd.Stop()
			return nil, err
		}
		rd.members = append(rd.members, EmbeddedDrivolution{Controller: ctrl, Server: srv})
	}
	return rd, nil
}

// Addrs lists the embedded servers' addresses (bootloaders get the full
// list, mirroring the multi-host Sequoia URL).
func (rd *ReplicatedDrivolution) Addrs() []string {
	out := make([]string, 0, len(rd.members))
	for _, m := range rd.members {
		if a := m.Server.Addr(); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// ServerFor returns the embedded server of the named controller.
func (rd *ReplicatedDrivolution) ServerFor(controllerName string) *core.Server {
	for _, m := range rd.members {
		if m.Controller.Name() == controllerName {
			return m.Server
		}
	}
	return nil
}

// anyRunning returns a member whose server is still listening.
func (rd *ReplicatedDrivolution) anyRunning() (*core.Server, error) {
	for _, m := range rd.members {
		if m.Server.Addr() != "" {
			return m.Server, nil
		}
	}
	return nil, fmt.Errorf("sequoia: no embedded Drivolution server running")
}

// notifyAll pushes an update notification through every running member
// so dedicated-channel subscribers hear it no matter which replica they
// subscribed to.
func (rd *ReplicatedDrivolution) notifyAll(database, api string) {
	for _, m := range rd.members {
		if m.Server.Addr() != "" {
			m.Server.NotifyUpdate(database, api)
		}
	}
}

// AddDriver inserts the driver once; the shared replicated store makes
// it visible to every member instantly.
func (rd *ReplicatedDrivolution) AddDriver(img *driverimg.Image, format dbver.BinaryFormat) (int64, error) {
	srv, err := rd.anyRunning()
	if err != nil {
		return 0, err
	}
	id, err := srv.AddDriver(img, format)
	if err != nil {
		return 0, err
	}
	rd.notifyAll("", img.Manifest.API.Name)
	return id, nil
}

// SetPermission inserts a permission row once, visible to every member.
func (rd *ReplicatedDrivolution) SetPermission(p core.Permission) (int64, error) {
	srv, err := rd.anyRunning()
	if err != nil {
		return 0, err
	}
	id, err := srv.SetPermission(p)
	if err != nil {
		return 0, err
	}
	rd.notifyAll(p.Database, "")
	return id, nil
}

// DeleteDriver removes a driver once, visible to every member.
func (rd *ReplicatedDrivolution) DeleteDriver(id int64) error {
	srv, err := rd.anyRunning()
	if err != nil {
		return err
	}
	if err := srv.DeleteDriver(id); err != nil {
		return err
	}
	rd.notifyAll("", "")
	return nil
}

// StopFor stops the embedded server of one controller (simulating that
// controller's failure together with Controller.Stop).
func (rd *ReplicatedDrivolution) StopFor(controllerName string) {
	if s := rd.ServerFor(controllerName); s != nil {
		s.Stop()
	}
}

// Stop stops every embedded server.
func (rd *ReplicatedDrivolution) Stop() {
	for _, m := range rd.members {
		m.Server.Stop()
	}
}
