package sequoia

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
)

// TestRollingRestartUnderLoad reproduces the F5 maintenance flow: stop a
// controller under write load, restart it on the same address, and
// resynchronize its backends from the journal while writes continue.
func TestRollingRestartUnderLoad(t *testing.T) {
	cl := newCluster(t, 2, 2)
	ctrl1 := cl.controllers[0]
	addr1 := ctrl1.Addr()

	// Constant writes through controller 2 (stable during the restart).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	d := NewDriver(dbver.V(1, 0, 0), 1)
	c2, err := d.Connect("sequoia://"+cl.controllers[1].Addr()+"/vdb",
		client.Props{"user": "app", "password": "app-pw"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = c2.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("load-%d", i), i)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(20 * time.Millisecond)
	ctrl1.Stop()
	time.Sleep(30 * time.Millisecond)
	if err := ctrl1.Start(addr1); err != nil {
		t.Fatal(err)
	}
	for name := range ctrl1.Backends() {
		if err := ctrl1.EnableBackend(name); err != nil {
			t.Fatalf("EnableBackend(%s): %v", name, err)
		}
	}
	close(stop)
	wg.Wait()

	// All four backends converge.
	var counts []int64
	for _, srv := range cl.backends {
		res, err := srv.Database("shard").Query("SELECT count(*) FROM kv")
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Rows[0][0].Int())
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("backends diverged: %v", counts)
		}
	}
}
