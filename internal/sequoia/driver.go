package sequoia

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// DriverKind is the driver-image kind for Sequoia drivers.
const DriverKind = "sequoia"

// Driver is the Sequoia client driver: it accepts multi-host URLs
// ('sequoia://controller1,controller2/db', §5.3.2), load-balances
// connection establishment across controllers, and fails over — both at
// connect time and transparently mid-connection — so that "drivers ...
// always end up connecting to a compatible controller, as long as one is
// available" (§5.3.1).
type Driver struct {
	version      dbver.Version
	protoVersion uint16
	dialTimeout  time.Duration
}

// NewDriver builds a Sequoia driver speaking the given controller
// protocol version.
func NewDriver(version dbver.Version, protoVersion uint16) *Driver {
	return &Driver{version: version, protoVersion: protoVersion, dialTimeout: 5 * time.Second}
}

// Name implements client.Driver.
func (d *Driver) Name() string { return DriverKind }

// Version implements client.Driver.
func (d *Driver) Version() dbver.Version { return d.version }

// Connect implements client.Driver.
func (d *Driver) Connect(rawURL string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "sequoia" {
		return nil, fmt.Errorf("sequoia: driver cannot handle scheme %q", u.Scheme)
	}
	opts := u.Options.Merge(props)
	sc := &seqConn{
		driver:   d,
		hosts:    u.Hosts,
		database: u.Database,
		user:     opts["user"],
		password: opts["password"],
	}
	if err := sc.reconnect(nil); err != nil {
		return nil, err
	}
	return sc, nil
}

// seqConn is one virtual connection that silently re-homes onto another
// controller when its current one dies.
type seqConn struct {
	driver   *Driver
	hosts    []string
	database string
	user     string
	password string

	mu     sync.Mutex
	conn   *wire.Conn
	host   string
	inTx   bool
	closed bool
}

// reconnect dials controllers in order, skipping skipHost (the one that
// just failed). Caller must NOT hold mu.
func (sc *seqConn) reconnect(skip map[string]bool) error {
	var firstErr error
	for _, h := range sc.hosts {
		if skip[h] {
			continue
		}
		conn, err := wire.Dial(h, sc.driver.dialTimeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		hello := helloMsg{
			ProtocolVersion: sc.driver.protoVersion,
			Database:        sc.database,
			User:            sc.user,
			Password:        sc.password,
			ClientInfo:      fmt.Sprintf("sequoia-driver %s", sc.driver.version),
		}
		if err := conn.Send(msgHello, hello.encode()); err != nil {
			conn.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f, err := conn.RecvTimeout(sc.driver.dialTimeout)
		if err != nil {
			conn.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if f.Type == msgError {
			code, msg, _ := decodeError(f.Payload)
			conn.Close()
			err := mapError(code, msg)
			// Protocol/auth errors are not transient: stop here.
			return err
		}
		if f.Type != msgHelloOK {
			conn.Close()
			continue
		}
		sc.mu.Lock()
		sc.conn = conn
		sc.host = h
		sc.mu.Unlock()
		return nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("sequoia: no controller reachable among %v", sc.hosts)
	}
	return firstErr
}

func mapError(code uint16, msg string) error {
	switch code {
	case codeProtocolMismatch:
		return fmt.Errorf("%w: %s", client.ErrProtocolMismatch, msg)
	case codeAuthFailed:
		return fmt.Errorf("%w: %s", client.ErrAuth, msg)
	case codeNoDatabase:
		return fmt.Errorf("%w: %s", client.ErrNoDatabase, msg)
	default:
		return fmt.Errorf("%s", fmtCode(code, msg))
	}
}

// roundTrip sends a frame and reads the reply, failing over to another
// controller and retrying once if the connection died.
func (sc *seqConn) roundTrip(typ uint16, payload []byte) (wire.Frame, error) {
	for attempt := 0; attempt < 2; attempt++ {
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			return wire.Frame{}, client.ErrClosed
		}
		conn := sc.conn
		host := sc.host
		sc.mu.Unlock()
		if conn == nil {
			if err := sc.reconnect(nil); err != nil {
				return wire.Frame{}, err
			}
			continue
		}
		if err := conn.Send(typ, payload); err == nil {
			f, rerr := conn.Recv()
			if rerr == nil {
				return f, nil
			}
		}
		// Connection failed: drop it and fail over away from this host.
		conn.Close()
		sc.mu.Lock()
		sc.conn = nil
		sc.mu.Unlock()
		if err := sc.reconnect(map[string]bool{host: true}); err != nil {
			// Last resort: maybe the failed host came back.
			if err2 := sc.reconnect(nil); err2 != nil {
				return wire.Frame{}, fmt.Errorf("%w: failover exhausted: %v", client.ErrClosed, err)
			}
		}
	}
	return wire.Frame{}, fmt.Errorf("%w: failover retry exhausted", client.ErrClosed)
}

func (sc *seqConn) exec(sql string, args []any) (*client.Result, error) {
	m := execMsg{SQL: sql}
	if len(args) == 1 {
		if named, ok := args[0].(sqlmini.Args); ok {
			m.Named = make(map[string]sqlmini.Value, len(named))
			for k, v := range named {
				val, err := sqlmini.FromGo(v)
				if err != nil {
					return nil, err
				}
				m.Named[k] = val
			}
		}
	}
	if m.Named == nil {
		for _, a := range args {
			v, err := sqlmini.FromGo(a)
			if err != nil {
				return nil, err
			}
			m.Positional = append(m.Positional, v)
		}
	}
	f, err := sc.roundTrip(msgExec, m.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgResult:
		cols, rows, affected, err := decodeResult(f.Payload)
		if err != nil {
			return nil, err
		}
		return &client.Result{Cols: cols, Rows: rows, Affected: affected}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, mapError(code, msg)
	default:
		return nil, fmt.Errorf("sequoia: unexpected frame 0x%04x", f.Type)
	}
}

// Exec implements client.Conn.
func (sc *seqConn) Exec(sql string, args ...any) (*client.Result, error) {
	return sc.exec(sql, args)
}

// Query implements client.Conn.
func (sc *seqConn) Query(sql string, args ...any) (*client.Result, error) {
	return sc.exec(sql, args)
}

// Begin implements client.Conn; the controller substrate is
// replicated-autocommit, so transactions are rejected.
func (sc *seqConn) Begin() error {
	_, err := sc.exec("BEGIN", nil)
	return err
}

// Commit implements client.Conn.
func (sc *seqConn) Commit() error {
	_, err := sc.exec("COMMIT", nil)
	return err
}

// Rollback implements client.Conn.
func (sc *seqConn) Rollback() error {
	_, err := sc.exec("ROLLBACK", nil)
	return err
}

// InTx implements client.Conn.
func (sc *seqConn) InTx() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.inTx
}

// Ping implements client.Conn.
func (sc *seqConn) Ping() error {
	f, err := sc.roundTrip(msgPing, nil)
	if err != nil {
		return err
	}
	if f.Type != msgPong {
		return fmt.Errorf("sequoia: unexpected ping reply 0x%04x", f.Type)
	}
	return nil
}

// Close implements client.Conn.
func (sc *seqConn) Close() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return nil
	}
	sc.closed = true
	if sc.conn != nil {
		return sc.conn.Close()
	}
	return nil
}

// Host reports which controller the connection currently uses
// (experiments observe failover with it).
func (sc *seqConn) Host() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.host
}

// ImageFactory returns the driverimg factory for Sequoia drivers, so
// Sequoia driver upgrades flow through Drivolution like any other driver
// (§5.3.1 "Sequoia driver upgrade").
func ImageFactory() driverimg.Factory {
	return func(img *driverimg.Image) (client.Driver, error) {
		inner := NewDriver(img.Manifest.Version, img.Manifest.ProtocolVersion)
		return driverimg.WrapDriver(inner, img), nil
	}
}
