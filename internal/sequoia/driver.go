package sequoia

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// DriverKind is the driver-image kind for Sequoia drivers.
const DriverKind = "sequoia"

// Driver is the Sequoia client driver: it accepts multi-host URLs
// ('sequoia://controller1,controller2/db', §5.3.2), load-balances
// connection establishment across controllers, and fails over — both at
// connect time and transparently mid-connection — so that "drivers ...
// always end up connecting to a compatible controller, as long as one is
// available" (§5.3.1).
type Driver struct {
	version      dbver.Version
	protoVersion uint16
	dialTimeout  time.Duration
	opTimeout    time.Duration   // per-exchange reply deadline
	retry        faultnet.Policy // mid-connection failover schedule
}

// DriverOption configures a Driver.
type DriverOption func(*Driver)

// WithDriverDialTimeout bounds controller dials (and the handshake
// reply during reconnect).
func WithDriverDialTimeout(d time.Duration) DriverOption {
	return func(drv *Driver) { drv.dialTimeout = d }
}

// WithDriverOpTimeout bounds each request/response exchange; default
// faultnet.DefaultOpTimeout.
func WithDriverOpTimeout(d time.Duration) DriverOption {
	return func(drv *Driver) { drv.opTimeout = d }
}

// WithDriverRetry sets the transparent-failover schedule: how many
// times a failed exchange is retried against surviving controllers
// (Policy.MaxAttempts, 0 = until the connection is closed) and the
// jittered delays between retries. The default makes three attempts
// starting at 25ms.
func WithDriverRetry(p faultnet.Policy) DriverOption {
	return func(drv *Driver) { drv.retry = p }
}

// NewDriver builds a Sequoia driver speaking the given controller
// protocol version.
func NewDriver(version dbver.Version, protoVersion uint16, opts ...DriverOption) *Driver {
	d := &Driver{
		version:      version,
		protoVersion: protoVersion,
		dialTimeout:  5 * time.Second,
		opTimeout:    faultnet.DefaultOpTimeout,
		retry: faultnet.Policy{Initial: 25 * time.Millisecond, Max: 500 * time.Millisecond,
			Factor: 2, Jitter: 0.5, MaxAttempts: 3},
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Name implements client.Driver.
func (d *Driver) Name() string { return DriverKind }

// Version implements client.Driver.
func (d *Driver) Version() dbver.Version { return d.version }

// Connect implements client.Driver.
func (d *Driver) Connect(rawURL string, props client.Props) (client.Conn, error) {
	u, err := client.ParseURL(rawURL)
	if err != nil {
		return nil, err
	}
	if u.Scheme != "sequoia" {
		return nil, fmt.Errorf("sequoia: driver cannot handle scheme %q", u.Scheme)
	}
	opts := u.Options.Merge(props)
	sc := &seqConn{
		driver:   d,
		hosts:    u.Hosts,
		database: u.Database,
		user:     opts["user"],
		password: opts["password"],
	}
	if err := sc.reconnect(nil); err != nil {
		return nil, err
	}
	return sc, nil
}

// seqConn is one virtual connection that silently re-homes onto another
// controller when its current one dies.
type seqConn struct {
	driver   *Driver
	hosts    []string
	database string
	user     string
	password string

	mu     sync.Mutex
	conn   *wire.Conn
	host   string
	inTx   bool
	closed bool
}

// reconnect dials controllers in order, skipping skipHost (the one that
// just failed). Caller must NOT hold mu.
func (sc *seqConn) reconnect(skip map[string]bool) error {
	var firstErr error
	for _, h := range sc.hosts {
		if skip[h] {
			continue
		}
		conn, err := wire.Dial(h, sc.driver.dialTimeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		hello := helloMsg{
			ProtocolVersion: sc.driver.protoVersion,
			Database:        sc.database,
			User:            sc.user,
			Password:        sc.password,
			ClientInfo:      fmt.Sprintf("sequoia-driver %s", sc.driver.version),
		}
		if err := conn.Send(msgHello, hello.encode()); err != nil {
			conn.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f, err := conn.RecvTimeout(sc.driver.dialTimeout)
		if err != nil {
			conn.Close()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if f.Type == msgError {
			code, msg, _ := decodeError(f.Payload)
			conn.Close()
			err := mapError(code, msg)
			// Protocol/auth errors are not transient: stop here.
			return err
		}
		if f.Type != msgHelloOK {
			conn.Close()
			continue
		}
		sc.mu.Lock()
		sc.conn = conn
		sc.host = h
		sc.mu.Unlock()
		return nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("sequoia: no controller reachable among %v", sc.hosts)
	}
	return firstErr
}

func mapError(code uint16, msg string) error {
	switch code {
	case codeProtocolMismatch:
		return fmt.Errorf("%w: %s", client.ErrProtocolMismatch, msg)
	case codeAuthFailed:
		return fmt.Errorf("%w: %s", client.ErrAuth, msg)
	case codeNoDatabase:
		return fmt.Errorf("%w: %s", client.ErrNoDatabase, msg)
	default:
		return fmt.Errorf("%s", fmtCode(code, msg))
	}
}

// fatalConnectErr reports connect errors that retrying cannot fix —
// the controller answered and said no (auth, protocol, wrong
// database), as opposed to not answering at all.
func fatalConnectErr(err error) bool {
	return errors.Is(err, client.ErrProtocolMismatch) ||
		errors.Is(err, client.ErrAuth) ||
		errors.Is(err, client.ErrNoDatabase)
}

// roundTrip sends a frame and reads the reply (bounded by the op
// timeout), transparently failing over to surviving controllers on
// transport failure. Retries follow the driver's shared backoff
// policy: jittered delays between attempts, bounded by
// Policy.MaxAttempts.
func (sc *seqConn) roundTrip(typ uint16, payload []byte) (wire.Frame, error) {
	bo := faultnet.NewBackoff(sc.driver.retry)
	tries := sc.driver.retry.MaxAttempts
	var lastErr error
	for attempt := 0; tries <= 0 || attempt < tries; attempt++ {
		if attempt > 0 && !bo.Sleep(nil) {
			break
		}
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			return wire.Frame{}, client.ErrClosed
		}
		conn := sc.conn
		host := sc.host
		sc.mu.Unlock()
		if conn == nil {
			if err := sc.reconnect(nil); err != nil {
				if fatalConnectErr(err) {
					return wire.Frame{}, err
				}
				lastErr = err
			}
			continue
		}
		if err := conn.Send(typ, payload); err == nil {
			f, rerr := conn.RecvTimeout(sc.driver.opTimeout)
			if rerr == nil {
				return f, nil
			}
			lastErr = rerr
		} else {
			lastErr = err
		}
		// Connection failed: drop it and fail over away from this host.
		conn.Close()
		sc.mu.Lock()
		sc.conn = nil
		sc.mu.Unlock()
		if err := sc.reconnect(map[string]bool{host: true}); err != nil {
			// Last resort: maybe the failed host came back.
			if err2 := sc.reconnect(nil); err2 != nil && fatalConnectErr(err2) {
				return wire.Frame{}, err2
			}
		}
	}
	return wire.Frame{}, fmt.Errorf("%w: failover retry budget exhausted: %v", client.ErrClosed, lastErr)
}

func (sc *seqConn) exec(sql string, args []any) (*client.Result, error) {
	m := execMsg{SQL: sql}
	if len(args) == 1 {
		if named, ok := args[0].(sqlmini.Args); ok {
			m.Named = make(map[string]sqlmini.Value, len(named))
			for k, v := range named {
				val, err := sqlmini.FromGo(v)
				if err != nil {
					return nil, err
				}
				m.Named[k] = val
			}
		}
	}
	if m.Named == nil {
		for _, a := range args {
			v, err := sqlmini.FromGo(a)
			if err != nil {
				return nil, err
			}
			m.Positional = append(m.Positional, v)
		}
	}
	f, err := sc.roundTrip(msgExec, m.encode())
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case msgResult:
		cols, rows, affected, err := decodeResult(f.Payload)
		if err != nil {
			return nil, err
		}
		return &client.Result{Cols: cols, Rows: rows, Affected: affected}, nil
	case msgError:
		code, msg, derr := decodeError(f.Payload)
		if derr != nil {
			return nil, derr
		}
		return nil, mapError(code, msg)
	default:
		return nil, fmt.Errorf("sequoia: unexpected frame 0x%04x", f.Type)
	}
}

// Exec implements client.Conn.
func (sc *seqConn) Exec(sql string, args ...any) (*client.Result, error) {
	return sc.exec(sql, args)
}

// Query implements client.Conn.
func (sc *seqConn) Query(sql string, args ...any) (*client.Result, error) {
	return sc.exec(sql, args)
}

// Begin implements client.Conn; the controller substrate is
// replicated-autocommit, so transactions are rejected.
func (sc *seqConn) Begin() error {
	_, err := sc.exec("BEGIN", nil)
	return err
}

// Commit implements client.Conn.
func (sc *seqConn) Commit() error {
	_, err := sc.exec("COMMIT", nil)
	return err
}

// Rollback implements client.Conn.
func (sc *seqConn) Rollback() error {
	_, err := sc.exec("ROLLBACK", nil)
	return err
}

// InTx implements client.Conn.
func (sc *seqConn) InTx() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.inTx
}

// Ping implements client.Conn.
func (sc *seqConn) Ping() error {
	f, err := sc.roundTrip(msgPing, nil)
	if err != nil {
		return err
	}
	if f.Type != msgPong {
		return fmt.Errorf("sequoia: unexpected ping reply 0x%04x", f.Type)
	}
	return nil
}

// Close implements client.Conn.
func (sc *seqConn) Close() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return nil
	}
	sc.closed = true
	if sc.conn != nil {
		return sc.conn.Close()
	}
	return nil
}

// Host reports which controller the connection currently uses
// (experiments observe failover with it).
func (sc *seqConn) Host() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.host
}

// ImageFactory returns the driverimg factory for Sequoia drivers, so
// Sequoia driver upgrades flow through Drivolution like any other driver
// (§5.3.1 "Sequoia driver upgrade").
func ImageFactory() driverimg.Factory {
	return func(img *driverimg.Image) (client.Driver, error) {
		inner := NewDriver(img.Manifest.Version, img.Manifest.ProtocolVersion)
		return driverimg.WrapDriver(inner, img), nil
	}
}
