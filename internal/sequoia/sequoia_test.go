package sequoia

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// cluster is a 2-controller × 2-backend Sequoia deployment over real
// dbms servers, the Figure 5/6 topology.
type cluster struct {
	group       *Group
	controllers []*Controller
	backends    []*dbms.Server
}

func newCluster(t *testing.T, controllers, backendsPer int) *cluster {
	t.Helper()
	cl := &cluster{group: NewGroup()}
	for ci := 0; ci < controllers; ci++ {
		ctrl := NewController(fmt.Sprintf("controller-%d", ci+1), "vdb", cl.group,
			WithControllerUser("app", "app-pw"))
		for bi := 0; bi < backendsPer; bi++ {
			name := fmt.Sprintf("db%d-%d", ci+1, bi+1)
			db := sqlmini.NewDB()
			db.MustExec("CREATE TABLE kv (k VARCHAR NOT NULL PRIMARY KEY, v INTEGER)")
			srv := dbms.NewServer(name, dbms.WithUser("seq", "seq-pw"))
			srv.AddDatabase("shard", db)
			if err := srv.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(srv.Stop)
			cl.backends = append(cl.backends, srv)

			b := &Backend{
				Name:   name,
				URL:    "dbms://" + srv.Addr() + "/shard",
				Props:  client.Props{"user": "seq", "password": "seq-pw"},
				Driver: dbms.NewNativeDriver(dbver.V(1, 0, 0), 1),
			}
			ctrl.AddBackend(b)
			if err := ctrl.EnableBackend(name); err != nil {
				t.Fatal(err)
			}
		}
		if err := ctrl.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ctrl.Stop)
		cl.controllers = append(cl.controllers, ctrl)
	}
	return cl
}

func (cl *cluster) url() string {
	hosts := cl.controllers[0].Addr()
	for _, c := range cl.controllers[1:] {
		hosts += "," + c.Addr()
	}
	return "sequoia://" + hosts + "/vdb"
}

func (cl *cluster) connect(t *testing.T) client.Conn {
	t.Helper()
	d := NewDriver(dbver.V(1, 0, 0), 1)
	c, err := d.Connect(cl.url(), client.Props{"user": "app", "password": "app-pw"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestWriteReplicatesToAllBackends(t *testing.T) {
	cl := newCluster(t, 2, 2)
	c := cl.connect(t)

	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('a', 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE kv SET v = v + 41 WHERE k = 'a'"); err != nil {
		t.Fatal(err)
	}
	// Every one of the 4 backends holds the row.
	for _, srv := range cl.backends {
		res, err := srv.Database("shard").Query("SELECT v FROM kv WHERE k = 'a'")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
			t.Fatalf("backend %s: rows = %+v", srv.Name(), res.Rows)
		}
	}
}

func TestReadsLoadBalance(t *testing.T) {
	cl := newCluster(t, 1, 2)
	c := cl.connect(t)
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('x', 7)"); err != nil {
		t.Fatal(err)
	}
	before0 := cl.backends[0].QueriesServed()
	before1 := cl.backends[1].QueriesServed()
	for i := 0; i < 10; i++ {
		if _, err := c.Query("SELECT v FROM kv WHERE k = 'x'"); err != nil {
			t.Fatal(err)
		}
	}
	d0 := cl.backends[0].QueriesServed() - before0
	d1 := cl.backends[1].QueriesServed() - before1
	if d0 == 0 || d1 == 0 {
		t.Fatalf("reads not balanced: %d vs %d", d0, d1)
	}
}

func TestDriverFailoverAcrossControllers(t *testing.T) {
	cl := newCluster(t, 2, 1)
	c := cl.connect(t)
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('f', 1)"); err != nil {
		t.Fatal(err)
	}
	// Kill whichever controller the connection currently uses.
	host := c.(*seqConn).Host()
	for _, ctrl := range cl.controllers {
		if ctrl.Addr() == host {
			ctrl.Stop()
		}
	}
	// The very next statement succeeds via the surviving controller.
	res, err := c.Query("SELECT v FROM kv WHERE k = 'f'")
	if err != nil {
		t.Fatalf("failover failed: %v", err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if got := c.(*seqConn).Host(); got == host {
		t.Fatal("connection did not move to the other controller")
	}
}

func TestConnectTimeFailover(t *testing.T) {
	cl := newCluster(t, 2, 1)
	cl.controllers[0].Stop()
	c := cl.connect(t) // first host dead; connect must succeed via second
	if _, err := c.Query("SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
}

func TestBackendDisableEnableResync(t *testing.T) {
	cl := newCluster(t, 1, 2)
	ctrl := cl.controllers[0]
	c := cl.connect(t)

	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('pre', 1)"); err != nil {
		t.Fatal(err)
	}
	// Take backend db1-2 down for maintenance.
	if err := ctrl.DisableBackend("db1-2"); err != nil {
		t.Fatal(err)
	}
	// Writes continue on the remaining backend.
	for i := 0; i < 5; i++ {
		if _, err := c.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("during-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	// The disabled backend is stale.
	res, _ := cl.backends[1].Database("shard").Query("SELECT count(*) FROM kv")
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("disabled backend saw writes: count = %d", res.Rows[0][0].Int())
	}
	// Re-enable: journal replay catches it up from its checkpoint.
	if err := ctrl.EnableBackend("db1-2"); err != nil {
		t.Fatal(err)
	}
	res, _ = cl.backends[1].Database("shard").Query("SELECT count(*) FROM kv")
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("resync incomplete: count = %d", res.Rows[0][0].Int())
	}
	// And it serves subsequent writes.
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('post', 9)"); err != nil {
		t.Fatal(err)
	}
	res, _ = cl.backends[1].Database("shard").Query("SELECT count(*) FROM kv")
	if res.Rows[0][0].Int() != 7 {
		t.Fatalf("post-resync write missing: count = %d", res.Rows[0][0].Int())
	}
}

func TestControllerProtocolMismatch(t *testing.T) {
	cl := newCluster(t, 1, 1)
	d := NewDriver(dbver.V(1, 0, 0), 2) // wrong protocol
	_, err := d.Connect(cl.url(), client.Props{"user": "app", "password": "app-pw"})
	if !errors.Is(err, client.ErrProtocolMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestControllerAuthAndDatabaseChecks(t *testing.T) {
	cl := newCluster(t, 1, 1)
	d := NewDriver(dbver.V(1, 0, 0), 1)
	if _, err := d.Connect(cl.url(), client.Props{"user": "app", "password": "nope"}); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("err = %v", err)
	}
	badDB := "sequoia://" + cl.controllers[0].Addr() + "/other"
	if _, err := d.Connect(badDB, client.Props{"user": "app", "password": "app-pw"}); !errors.Is(err, client.ErrNoDatabase) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransactionsRejected(t *testing.T) {
	cl := newCluster(t, 1, 1)
	c := cl.connect(t)
	if err := c.Begin(); err == nil {
		t.Fatal("controller must reject explicit transactions")
	}
}

// TestSequoiaDriverThroughDrivolution wires Figure 5's client side: the
// Sequoia driver itself is distributed by a standalone Drivolution
// server, and a rolling controller restart doesn't interrupt clients.
func TestSequoiaDriverThroughDrivolution(t *testing.T) {
	cl := newCluster(t, 2, 1)

	// Standalone Drivolution service holding the Sequoia driver.
	store := core.NewLocalStore(sqlmini.NewDB())
	dsrv, err := core.NewServer("standalone", store)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsrv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dsrv.Stop)

	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:            DriverKind,
			API:             dbver.APIOf("JDBC", 3, 0),
			Version:         dbver.V(1, 0, 0),
			ProtocolVersion: 1,
			Options:         map[string]string{"user": "app", "password": "app-pw"},
		},
		Payload: []byte("sequoia driver body"),
	}
	if _, err := dsrv.AddDriver(img, dbver.FormatImage); err != nil {
		t.Fatal(err)
	}

	rt := driverimg.NewRuntime()
	rt.Register(DriverKind, ImageFactory())
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{dsrv.Addr()}, rt,
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(2*time.Second))
	t.Cleanup(b.Close)

	c, err := b.Connect(cl.url(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('d', 4)"); err != nil {
		t.Fatal(err)
	}

	// Rolling restart: stop controller 1; the driver fails over, no
	// client-visible error.
	cl.controllers[0].Stop()
	if _, err := c.Query("SELECT v FROM kv WHERE k = 'd'"); err != nil {
		t.Fatalf("query during rolling restart: %v", err)
	}
}

// TestEmbeddedDrivolution wires Figure 6: embedded, replicated servers;
// one controller dies; clients keep upgrading via the survivor.
func TestEmbeddedDrivolution(t *testing.T) {
	cl := newCluster(t, 2, 1)
	rd, err := EmbedDrivolution(cl.group, core.WithDefaultLease(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rd.Stop)

	mkImg := func(v dbver.Version) *driverimg.Image {
		return &driverimg.Image{
			Manifest: driverimg.Manifest{
				Kind:            DriverKind,
				API:             dbver.APIOf("JDBC", 3, 0),
				Version:         v,
				ProtocolVersion: 1,
				Options:         map[string]string{"user": "app", "password": "app-pw"},
			},
		}
	}
	if _, err := rd.AddDriver(mkImg(dbver.V(1, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	// Both embedded servers hold the driver.
	for _, name := range []string{"controller-1", "controller-2"} {
		drvs, err := rd.ServerFor(name).Drivers()
		if err != nil {
			t.Fatal(err)
		}
		if len(drvs) != 1 {
			t.Fatalf("%s has %d drivers", name, len(drvs))
		}
	}

	rt := driverimg.NewRuntime()
	rt.Register(DriverKind, ImageFactory())
	b := core.NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		rd.Addrs(), rt,
		core.WithCredentials("app", "app-pw"),
		core.WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	c, err := b.Connect(cl.url(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Kill controller-1 and its embedded Drivolution server.
	cl.controllers[0].Stop()
	rd.StopFor("controller-1")

	// An upgrade added to the survivor still reaches the client.
	if _, err := rd.ServerFor("controller-2").AddDriver(mkImg(dbver.V(2, 0, 0)), dbver.FormatImage); err != nil {
		t.Fatal(err)
	}
	if err := b.ForceRenew("vdb"); err != nil {
		t.Fatalf("renew via surviving embedded server: %v", err)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("Version = %v", b.Version())
	}
	// And the upgraded driver still reaches the cluster.
	c2, err := b.Connect(cl.url(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Query("SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSeqAndJournal(t *testing.T) {
	cl := newCluster(t, 1, 1)
	c := cl.connect(t)
	before := cl.group.Seq()
	if _, err := c.Exec("INSERT INTO kv (k, v) VALUES ('j', 1)"); err != nil {
		t.Fatal(err)
	}
	if cl.group.Seq() != before+1 {
		t.Fatalf("seq = %d, want %d", cl.group.Seq(), before+1)
	}
	// Reads don't advance the journal.
	if _, err := c.Query("SELECT count(*) FROM kv"); err != nil {
		t.Fatal(err)
	}
	if cl.group.Seq() != before+1 {
		t.Fatal("read advanced the journal")
	}
}
