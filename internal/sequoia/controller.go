package sequoia

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// Backend is one database replica behind a controller, reached through a
// conventional driver — or through a Drivolution bootloader (Figure 6),
// since both implement client.Driver.
type Backend struct {
	Name   string
	URL    string
	Props  client.Props
	Driver client.Driver

	mu          sync.Mutex
	enabled     bool
	conn        client.Conn // applier connection (replication + reads)
	lastApplied uint64      // group journal position
}

func (b *Backend) connLocked() (client.Conn, error) {
	if b.conn != nil {
		if b.conn.Ping() == nil {
			return b.conn, nil
		}
		_ = b.conn.Close()
		b.conn = nil
	}
	c, err := b.Driver.Connect(b.URL, b.Props)
	if err != nil {
		return nil, err
	}
	b.conn = c
	return c, nil
}

// exec runs one statement on the backend's applier connection.
func (b *Backend) exec(m execMsg) (*client.Result, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, err := b.connLocked()
	if err != nil {
		return nil, err
	}
	res, err := execOnConn(c, m)
	if err != nil && c.Ping() != nil {
		// Dead connection: redial once.
		_ = c.Close()
		b.conn = nil
		c, derr := b.connLocked()
		if derr != nil {
			return nil, err
		}
		return execOnConn(c, m)
	}
	return res, err
}

func execOnConn(c client.Conn, m execMsg) (*client.Result, error) {
	if len(m.Named) > 0 {
		args := sqlmini.Args{}
		for k, v := range m.Named {
			args[k] = v
		}
		return c.Exec(m.SQL, args)
	}
	args := make([]any, len(m.Positional))
	for i, v := range m.Positional {
		args[i] = v
	}
	return c.Exec(m.SQL, args...)
}

// Group totally orders writes across a set of controllers and keeps the
// write journal used to resynchronize re-enabled backends around a
// checkpoint (§5.3.1).
type Group struct {
	mu      sync.Mutex
	members []*Controller
	journal []execMsg
	seq     uint64
}

// NewGroup creates an empty controller group.
func NewGroup() *Group { return &Group{} }

// Seq returns the current journal sequence number.
func (g *Group) Seq() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// Controllers returns the current members.
func (g *Group) Controllers() []*Controller {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Controller(nil), g.members...)
}

// broadcastWrite applies m to every enabled backend of every running
// controller, in total order, and journals it. It returns the result
// from the first backend (all replicas execute the same statement).
// Statements that fail on every backend — e.g. a driver-failover retry
// of a write that already committed, hitting its own duplicate key — are
// NOT journaled, so journal replay stays clean for resynchronization.
func (g *Group) broadcastWrite(m execMsg) (*client.Result, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	seq := g.seq

	var first *client.Result
	var firstErr error
	applied := 0
	for _, ctrl := range g.members {
		if !ctrl.running() {
			continue
		}
		for _, b := range ctrl.enabledBackends() {
			res, err := b.exec(m)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("sequoia: backend %s: %w", b.Name, err)
				}
				continue
			}
			b.mu.Lock()
			b.lastApplied = seq
			b.mu.Unlock()
			if first == nil {
				first = res
			}
			applied++
		}
	}
	if applied == 0 {
		g.seq-- // nothing applied: rewind, don't journal
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("sequoia: no enabled backends in group")
	}
	g.journal = append(g.journal, m)
	return first, nil
}

// replaySince returns journal entries after position pos.
func (g *Group) replaySince(pos uint64) []execMsg {
	g.mu.Lock()
	defer g.mu.Unlock()
	if pos >= g.seq {
		return nil
	}
	// journal[i] has sequence i+1.
	out := make([]execMsg, g.seq-pos)
	copy(out, g.journal[pos:])
	return out
}

// Controller is one Sequoia controller: a TCP endpoint speaking the
// Sequoia protocol, fronting its backends, and participating in the
// group's write replication.
type Controller struct {
	name         string
	protoVersion uint16
	group        *Group
	users        map[string]string
	database     string // virtual database name served to clients

	handshakeTimeout time.Duration // first-frame deadline per connection
	writeTimeout     time.Duration // per-frame send deadline

	mu       sync.Mutex
	backends []*Backend
	rr       int
	ln       net.Listener
	stopped  bool
	sessions map[*wire.Conn]struct{}

	wg      sync.WaitGroup
	queries atomic.Int64
}

// ControllerOption configures a Controller.
type ControllerOption func(*Controller)

// WithControllerProtocolVersion sets the Sequoia wire-protocol version.
func WithControllerProtocolVersion(v uint16) ControllerOption {
	return func(c *Controller) { c.protoVersion = v }
}

// WithControllerUser adds an authentication entry.
func WithControllerUser(user, password string) ControllerOption {
	return func(c *Controller) { c.users[user] = password }
}

// WithControllerHandshakeTimeout bounds how long an accepted
// connection may take to deliver its hello; default
// faultnet.DefaultHandshakeTimeout.
func WithControllerHandshakeTimeout(d time.Duration) ControllerOption {
	return func(c *Controller) { c.handshakeTimeout = d }
}

// WithControllerWriteTimeout bounds every frame the controller sends;
// default faultnet.DefaultWriteTimeout.
func WithControllerWriteTimeout(d time.Duration) ControllerOption {
	return func(c *Controller) { c.writeTimeout = d }
}

// NewController creates a controller serving the named virtual database
// and joins it to the group.
func NewController(name, database string, group *Group, opts ...ControllerOption) *Controller {
	c := &Controller{
		name:             name,
		protoVersion:     1,
		group:            group,
		users:            map[string]string{},
		database:         database,
		sessions:         map[*wire.Conn]struct{}{},
		handshakeTimeout: faultnet.DefaultHandshakeTimeout,
		writeTimeout:     faultnet.DefaultWriteTimeout,
	}
	for _, o := range opts {
		o(c)
	}
	group.mu.Lock()
	group.members = append(group.members, c)
	group.mu.Unlock()
	return c
}

// Name returns the controller name.
func (c *Controller) Name() string { return c.name }

// QueriesServed counts statements handled by this controller.
func (c *Controller) QueriesServed() int64 { return c.queries.Load() }

// AddBackend registers a backend replica. New backends start disabled;
// call EnableBackend to bring them in (resynchronizing from the journal).
func (c *Controller) AddBackend(b *Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backends = append(c.backends, b)
}

// Backends lists backend names and enabled state.
func (c *Controller) Backends() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.backends))
	for _, b := range c.backends {
		b.mu.Lock()
		out[b.Name] = b.enabled
		b.mu.Unlock()
	}
	return out
}

func (c *Controller) backend(name string) *Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range c.backends {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// EnableBackend brings a backend online, replaying the group journal
// from the backend's checkpoint first (the paper's "re-enabled and
// resynchronized from its checkpoint by the Sequoia controller"). The
// bulk of the replay runs without blocking the write stream; the final
// catch-up and the enable flip happen atomically under the group's write
// order so no statement is missed or applied twice.
func (c *Controller) EnableBackend(name string) error {
	b := c.backend(name)
	if b == nil {
		return fmt.Errorf("sequoia: no backend %q on %s", name, c.name)
	}
	// Phase 1: bulk catch-up while writes continue elsewhere. Rounds are
	// bounded: if write ingress keeps pace with the replay (which would
	// otherwise livelock this loop), the remainder is finished in phase
	// 2 under the group lock, briefly pausing writers.
	for round := 0; round < 64; round++ {
		b.mu.Lock()
		pos := b.lastApplied
		b.mu.Unlock()
		entries := c.group.replaySince(pos)
		if len(entries) == 0 {
			break
		}
		for _, m := range entries {
			if _, err := b.exec(m); err != nil {
				return fmt.Errorf("sequoia: resync backend %s: %w", name, err)
			}
			pos++
			b.mu.Lock()
			b.lastApplied = pos
			b.mu.Unlock()
		}
	}
	// Phase 2: final catch-up + enable, atomic w.r.t. broadcastWrite.
	g := c.group
	g.mu.Lock()
	defer g.mu.Unlock()
	b.mu.Lock()
	pos := b.lastApplied
	b.mu.Unlock()
	for i := pos; i < g.seq; i++ {
		if _, err := b.exec(g.journal[i]); err != nil {
			return fmt.Errorf("sequoia: resync backend %s: %w", name, err)
		}
		b.mu.Lock()
		b.lastApplied = i + 1
		b.mu.Unlock()
	}
	b.mu.Lock()
	b.enabled = true
	b.mu.Unlock()
	return nil
}

// DisableBackend takes a backend out of rotation (maintenance), closing
// its applier connection. Its journal position is the checkpoint.
func (c *Controller) DisableBackend(name string) error {
	b := c.backend(name)
	if b == nil {
		return fmt.Errorf("sequoia: no backend %q on %s", name, c.name)
	}
	b.mu.Lock()
	b.enabled = false
	if b.conn != nil {
		_ = b.conn.Close()
		b.conn = nil
	}
	b.mu.Unlock()
	return nil
}

func (c *Controller) enabledBackends() []*Backend {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Backend, 0, len(c.backends))
	for _, b := range c.backends {
		b.mu.Lock()
		if b.enabled {
			out = append(out, b)
		}
		b.mu.Unlock()
	}
	return out
}

// pickRead round-robins across enabled backends.
func (c *Controller) pickRead() (*Backend, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.backends)
	for i := 0; i < n; i++ {
		b := c.backends[(c.rr+i)%n]
		b.mu.Lock()
		ok := b.enabled
		b.mu.Unlock()
		if ok {
			c.rr = (c.rr + i + 1) % n
			return b, nil
		}
	}
	return nil, errors.New("sequoia: no enabled backends")
}

func (c *Controller) running() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ln != nil && !c.stopped
}

// Start listens for Sequoia driver connections.
func (c *Controller) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("sequoia: listen: %w", err)
	}
	c.mu.Lock()
	if c.ln != nil {
		c.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("sequoia: controller %s already started", c.name)
	}
	c.ln = ln
	c.stopped = false
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveConn(nc)
			}()
		}
	}()
	return nil
}

// Addr returns the listen address.
func (c *Controller) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Stop closes the listener and every client session, and disables the
// controller's backends around a consistent checkpoint (their journal
// positions), so a later Start + EnableBackend resynchronizes them
// exactly — the §5.3.1 maintenance workflow. Controllers can thus be
// stopped, upgraded, and restarted one-by-one while drivers fail over.
func (c *Controller) Stop() {
	c.mu.Lock()
	if c.ln != nil {
		_ = c.ln.Close()
		c.ln = nil
	}
	c.stopped = true
	for s := range c.sessions {
		_ = s.Close()
	}
	backends := append([]*Backend(nil), c.backends...)
	c.mu.Unlock()
	for _, b := range backends {
		b.mu.Lock()
		b.enabled = false
		if b.conn != nil {
			_ = b.conn.Close()
			b.conn = nil
		}
		b.mu.Unlock()
	}
	c.wg.Wait()
	c.mu.Lock()
	c.sessions = map[*wire.Conn]struct{}{}
	c.mu.Unlock()
}

func (c *Controller) serveConn(nc net.Conn) {
	conn := wire.NewConn(nc)
	defer conn.Close()
	conn.SetWriteTimeout(c.writeTimeout)

	f, err := conn.RecvTimeout(c.handshakeTimeout)
	if err != nil || f.Type != msgHello {
		return
	}
	hello, err := decodeHello(f.Payload)
	if err != nil {
		return
	}
	if hello.ProtocolVersion != c.protoVersion {
		_ = conn.Send(msgError, encodeError(codeProtocolMismatch,
			fmt.Sprintf("controller %s speaks protocol %d, driver sent %d",
				c.name, c.protoVersion, hello.ProtocolVersion)))
		return
	}
	if pw, ok := c.users[hello.User]; !ok || pw != hello.Password {
		_ = conn.Send(msgError, encodeError(codeAuthFailed, "authentication failed"))
		return
	}
	if hello.Database != c.database {
		_ = conn.Send(msgError, encodeError(codeNoDatabase,
			fmt.Sprintf("controller serves %q, not %q", c.database, hello.Database)))
		return
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.sessions[conn] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.sessions, conn)
		c.mu.Unlock()
	}()

	if err := conn.Send(msgHelloOK, helloMsg{ProtocolVersion: c.protoVersion, Database: c.database}.encode()); err != nil {
		return
	}

	for {
		f, err := conn.Recv()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				_ = err
			}
			return
		}
		switch f.Type {
		case msgPing:
			if err := conn.Send(msgPong, nil); err != nil {
				return
			}
		case msgExec:
			m, err := decodeExec(f.Payload)
			if err != nil {
				_ = conn.Send(msgError, encodeError(codeQueryError, "malformed exec"))
				continue
			}
			c.queries.Add(1)
			res, execErr := c.execute(m)
			if execErr != nil {
				_ = conn.Send(msgError, encodeError(codeQueryError, execErr.Error()))
				continue
			}
			if err := conn.Send(msgResult, encodeResult(res.Cols, res.Rows, res.Affected)); err != nil {
				return
			}
		default:
			_ = conn.Send(msgError, encodeError(codeQueryError,
				fmt.Sprintf("unexpected frame 0x%04x", f.Type)))
		}
	}
}

// execute routes one statement: writes through the group's total order,
// reads to a round-robin backend. Explicit transactions are not
// supported through the controller (replicated-autocommit substrate;
// see package doc).
func (c *Controller) execute(m execMsg) (*client.Result, error) {
	mutating, err := isMutating(m.SQL)
	if err != nil {
		return nil, err
	}
	if mutating {
		return c.group.broadcastWrite(m)
	}
	b, err := c.pickRead()
	if err != nil {
		return nil, err
	}
	return b.exec(m)
}

func isMutating(sql string) (bool, error) {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return false, err
	}
	switch st.(type) {
	case *sqlmini.InsertStmt, *sqlmini.UpdateStmt, *sqlmini.DeleteStmt,
		*sqlmini.CreateTableStmt, *sqlmini.CreateIndexStmt, *sqlmini.DropTableStmt:
		return true, nil
	case *sqlmini.BeginStmt, *sqlmini.CommitStmt, *sqlmini.RollbackStmt:
		return false, errors.New("sequoia: explicit transactions are not supported through the controller")
	default:
		return false, nil
	}
}
