package sqlmini

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// Randomized concurrent-mutation suite for the MVCC engine. Every
// scenario is seed-reproducible: the workload each goroutine runs is a
// pure function of (seed, worker id), so a failure under
// `go test -race -run TestConcurrentRandomized` recurs with the same
// seed list. The suite leans on three invariants that hold under any
// interleaving:
//
//  1. Balance conservation — atomic batches transfer amounts between
//     rows, so SUM(amount) is constant in every snapshot read and in
//     every Snapshot() blob (a consistent cut).
//  2. Parity — a table whose committed values are always even, briefly
//     perturbed only by even deltas inside rolled-back transactions.
//  3. Settled-state structure — after the storm, a forced GC must leave
//     every index exactly consistent with a full scan, and the balance
//     total intact.

const (
	concAccounts = 16
	concTotal    = concAccounts * 1000
)

func concurrentSeedDB(t testing.TB) *DB {
	db := NewDB()
	db.MustExec("CREATE TABLE bal (id INTEGER NOT NULL PRIMARY KEY, amount INTEGER NOT NULL, tag VARCHAR)")
	db.MustExec("CREATE INDEX bal_tag ON bal (tag)")
	db.MustExec("CREATE TABLE parity (id INTEGER NOT NULL PRIMARY KEY, v INTEGER NOT NULL)")
	db.MustExec("CREATE TABLE scratch (id INTEGER NOT NULL PRIMARY KEY, owner INTEGER, score INTEGER)")
	db.MustExec("CREATE INDEX scratch_owner_score ON scratch (owner, score) USING ORDERED")
	for i := 0; i < concAccounts; i++ {
		db.MustExec("INSERT INTO bal (id, amount, tag) VALUES (?, ?, ?)", i, concTotal/concAccounts, fmt.Sprintf("g%d", i%4))
		db.MustExec("INSERT INTO parity (id, v) VALUES (?, ?)", i, 2*i)
	}
	return db
}

func checkBalanceTotal(t *testing.T, res *Result, where string) {
	t.Helper()
	if len(res.Rows) != 1 || res.Rows[0][0].IsNull() {
		t.Errorf("%s: sum query returned %v", where, res.Rows)
		return
	}
	if got := res.Rows[0][0].Int(); got != concTotal {
		t.Errorf("%s: balance sum = %d, want %d (torn read)", where, got, concTotal)
	}
}

func TestConcurrentRandomized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runConcurrentStorm(t, seed)
		})
	}
}

func runConcurrentStorm(t *testing.T, seed int64) {
	db := concurrentSeedDB(t)
	const (
		writers = 4
		readers = 4
		opsPer  = 300
	)
	renew, err := db.Prepare("UPDATE bal SET tag = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	// Writers: balance transfers via atomic batch, parity churn via
	// rolled-back transactions, insert/delete churn in an owned scratch
	// id range, occasional prepared updates and index-driven deletes.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			base := (w + 1) * 100000 // owned scratch id range
			next := base
			for op := 0; op < opsPer; op++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // balance transfer, atomic and isolated
					a, b := rng.Intn(concAccounts), rng.Intn(concAccounts)
					d := rng.Intn(50)
					_, err := db.ExecBatchAtomic([]BatchStmt{
						{SQL: "UPDATE bal SET amount = amount - ? WHERE id = ?", Args: []any{d, a}},
						{SQL: "UPDATE bal SET amount = amount + ? WHERE id = ?", Args: []any{d, b}},
					})
					if err != nil {
						t.Errorf("writer %d: transfer: %v", w, err)
						return
					}
				case 3, 4: // parity churn that always rolls back
					s := db.NewSession()
					s.Exec("BEGIN")                                                            //nolint:errcheck
					s.Exec("UPDATE parity SET v = v + 2 WHERE id = ?", rng.Intn(concAccounts)) //nolint:errcheck
					s.Exec("INSERT INTO parity (id, v) VALUES (?, ?)", 10000+w, rng.Intn(4)*2) //nolint:errcheck
					s.Exec("DELETE FROM parity WHERE id = ?", rng.Intn(concAccounts))          //nolint:errcheck
					// Odd deltas only ever target a row that doesn't exist:
					// committed state must stay even at every instant, because
					// session transactions publish per statement.
					s.Exec("UPDATE parity SET v = v + 1 WHERE id = ?", -1) //nolint:errcheck
					s.Exec("ROLLBACK")                                     //nolint:errcheck
					s.Close()
				case 5, 6: // scratch insert
					next++
					db.MustExec("INSERT INTO scratch (id, owner, score) VALUES (?, ?, ?)", next, w, rng.Intn(100))
				case 7: // scratch delete through the composite index
					db.MustExec("DELETE FROM scratch WHERE owner = ? AND score >= ?", w, rng.Intn(100))
				case 8: // prepared update, concurrent use of one handle
					if _, err := renew.Exec(fmt.Sprintf("g%d", rng.Intn(4)), rng.Intn(concAccounts)); err != nil {
						t.Errorf("writer %d: prepared: %v", w, err)
						return
					}
				case 9: // failing batch must revert its applied prefix
					_, err := db.ExecBatchAtomic([]BatchStmt{
						{SQL: "UPDATE bal SET amount = amount - 7 WHERE id = ?", Args: []any{rng.Intn(concAccounts)}},
						{SQL: "UPDATE bal SET amount = amount / 0 WHERE id = ?", Args: []any{rng.Intn(concAccounts)}},
					})
					if err == nil {
						t.Errorf("writer %d: division-by-zero batch succeeded", w)
						return
					}
				}
			}
		}(w)
	}

	// Readers: snapshot reads that must never tear, index probes,
	// Explain (lock-free planner), generation probes, and periodic
	// Snapshot() consistency cuts verified via a restore into a fresh DB.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed*2000 + int64(r)))
			for !stop.Load() {
				switch rng.Intn(8) {
				case 0, 1, 2:
					res, err := db.Query("SELECT sum(amount) FROM bal")
					if err != nil {
						t.Errorf("reader %d: sum: %v", r, err)
						return
					}
					checkBalanceTotal(t, res, "reader")
				case 3:
					res, err := db.Query("SELECT v FROM parity WHERE id >= 0")
					if err != nil {
						t.Errorf("reader %d: parity: %v", r, err)
						return
					}
					for _, row := range res.Rows {
						if row[0].Int()%2 != 0 {
							t.Errorf("reader %d: odd committed parity value %d", r, row[0].Int())
							return
						}
					}
				case 4:
					if _, err := db.Query("SELECT count(*) FROM bal WHERE tag = ?", fmt.Sprintf("g%d", rng.Intn(4))); err != nil {
						t.Errorf("reader %d: tag count: %v", r, err)
						return
					}
				case 5:
					if _, err := db.Query("SELECT id FROM scratch WHERE owner = ? AND score > ?", rng.Intn(4)+1, rng.Intn(100)); err != nil {
						t.Errorf("reader %d: scratch probe: %v", r, err)
						return
					}
				case 6:
					if _, err := db.Explain("SELECT id FROM scratch WHERE owner = 1 AND score > 5"); err != nil {
						t.Errorf("reader %d: explain: %v", r, err)
						return
					}
					db.TableVersion("bal")
					db.TableVersions("bal", "parity", "scratch")
					db.ChangeSeq()
				case 7:
					blob := db.Snapshot()
					db2 := NewDB()
					if err := db2.Restore(blob); err != nil {
						t.Errorf("reader %d: restore: %v", r, err)
						return
					}
					res, err := db2.Query("SELECT sum(amount) FROM bal")
					if err != nil {
						t.Errorf("reader %d: snapshot sum: %v", r, err)
						return
					}
					checkBalanceTotal(t, res, "snapshot cut")
				}
			}
		}(r)
	}

	// Writers are op-bounded; readers loop until told the storm is over.
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()

	// Settled-state checks.
	db.gcAll()
	res := db.MustExec("SELECT sum(amount) FROM bal")
	checkBalanceTotal(t, res, "final")
	for _, tab := range []string{"bal", "parity", "scratch"} {
		indexConsistent(t, db, tab)
	}
	// Parity rollbacks must have left the table exactly as seeded.
	res = db.MustExec("SELECT count(*) FROM parity")
	if res.Rows[0][0].Int() != concAccounts {
		t.Fatalf("parity row count %d after rollback storm, want %d", res.Rows[0][0].Int(), concAccounts)
	}
}
