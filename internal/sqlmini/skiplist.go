package sqlmini

import (
	"sync/atomic"
)

// skipList is the ordered-index backing structure: nodes are key
// groups (all rows whose indexed tuple compares equal), sorted by
// tuple key. A single writer mutates it under the owning table's
// latch; readers traverse lock-free. Node links and per-node row
// slices are atomic pointers to immutable state: an insert links a
// fully built node bottom-up, a removal unlinks top-down, and a row
// change publishes a fresh rows slice — a reader mid-traversal always
// sees a consistent (possibly slightly stale) list, which MVCC
// execution tolerates because candidates are filtered by version
// visibility and the statement's predicate anyway.
//
// Grouping invariant (inherited from the slice-based predecessor):
// rows are grouped by Compare == 0 over the stored tuple. Stored
// values are uniformly typed per column (post-coercion), where Compare
// is a total order, so all rows of one group compare identically
// against any probe — the planner can treat a group as one unit when
// cutting range boundaries.

const skipMaxLevel = 24

type skipNode struct {
	key  []Value // immutable tuple
	rows atomic.Pointer[[]*Row]
	next []atomic.Pointer[skipNode] // len = node level
}

func (n *skipNode) loadRows() []*Row { return *n.rows.Load() }

func (n *skipNode) storeRows(rs []*Row) { n.rows.Store(&rs) }

type skipList struct {
	cols []int // indexed column positions (tuple order)
	head *skipNode
	rnd  uint64 // xorshift64 state; writer-only (under the latch)
	size int    // group count; writer-only
}

func newSkipList(cols []int) *skipList {
	head := &skipNode{next: make([]atomic.Pointer[skipNode], skipMaxLevel)}
	return &skipList{cols: cols, head: head, rnd: 0x9e3779b97f4a7c15}
}

// randLevel draws a geometric level in [1, skipMaxLevel] from a
// deterministic xorshift stream (reproducible structure across
// replicas fed the same statement stream).
func (sl *skipList) randLevel() int {
	x := sl.rnd
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	sl.rnd = x
	lvl := 1
	for x&3 == 0 && lvl < skipMaxLevel { // p = 1/4
		lvl++
		x >>= 2
	}
	return lvl
}

// cmpKey orders a node key against a probe tuple, comparing only the
// probe's positions (a shorter probe matches on its prefix). Caller
// guarantees per-position order compatibility (orderedProbeOK), so a
// failed Compare cannot occur between a stored key and a vetted probe;
// it is treated as equal-rank which keeps the walk safe regardless.
func cmpKey(nodeKey, probe []Value) int {
	for i := range probe {
		c, ok := Compare(nodeKey[i], probe[i])
		if !ok {
			return 0
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// seekGE returns the first node whose key compares >= probe on the
// probe's prefix. Lock-free.
func (sl *skipList) seekGE(probe []Value) *skipNode {
	x := sl.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || cmpKey(nxt.key, probe) >= 0 {
				break
			}
			x = nxt
		}
	}
	return x.next[0].Load()
}

// seekGT returns the first node whose key compares > probe on the
// probe's prefix. Lock-free.
func (sl *skipList) seekGT(probe []Value) *skipNode {
	x := sl.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || cmpKey(nxt.key, probe) > 0 {
				break
			}
			x = nxt
		}
	}
	return x.next[0].Load()
}

// predecessors fills update with the rightmost node before key at each
// level. Writer-only (exact key compare over the full tuple).
func (sl *skipList) predecessors(key []Value, update *[skipMaxLevel]*skipNode) {
	x := sl.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || cmpKey(nxt.key, key) >= 0 {
				break
			}
			x = nxt
		}
		update[lvl] = x
	}
}

// insert adds r under key, creating the group if needed. insert is a
// no-op if the group already contains r (rollback re-registration and
// A→B→A key cycles must not duplicate). Caller holds the latch.
func (sl *skipList) insert(key []Value, r *Row) {
	var update [skipMaxLevel]*skipNode
	sl.predecessors(key, &update)
	if n := update[0].next[0].Load(); n != nil && cmpKey(n.key, key) == 0 {
		rows := n.loadRows()
		for _, br := range rows {
			if br == r {
				return
			}
		}
		grown := make([]*Row, len(rows)+1)
		copy(grown, rows)
		grown[len(rows)] = r
		n.storeRows(grown)
		return
	}
	lvl := sl.randLevel()
	n := &skipNode{key: key, next: make([]atomic.Pointer[skipNode], lvl)}
	n.storeRows([]*Row{r})
	for i := 0; i < lvl; i++ {
		n.next[i].Store(update[i].next[i].Load())
	}
	for i := 0; i < lvl; i++ { // link bottom-up: readers above always find the levels below
		update[i].next[i].Store(n)
	}
	sl.size++
}

// remove drops r from key's group, unlinking the group when it
// empties. Caller holds the latch.
func (sl *skipList) remove(key []Value, r *Row) {
	var update [skipMaxLevel]*skipNode
	sl.predecessors(key, &update)
	n := update[0].next[0].Load()
	if n == nil || cmpKey(n.key, key) != 0 {
		return
	}
	rows := n.loadRows()
	for i, br := range rows {
		if br != r {
			continue
		}
		if len(rows) == 1 {
			for lvl := len(n.next) - 1; lvl >= 0; lvl-- { // unlink top-down
				if update[lvl].next[lvl].Load() == n {
					update[lvl].next[lvl].Store(n.next[lvl].Load())
				}
			}
			sl.size--
			return
		}
		rest := make([]*Row, 0, len(rows)-1)
		rest = append(rest, rows[:i]...)
		rest = append(rest, rows[i+1:]...)
		n.storeRows(rest)
		return
	}
}

// lookupEqual gathers the rows of every group comparing equal to probe
// (a cross-typed probe can project several adjacent stored keys onto
// one value, e.g. a 2^53 DOUBLE against two adjacent BIGINTs).
// Lock-free; out is appended to and returned.
func (sl *skipList) lookupEqual(probe []Value, out []*Row) []*Row {
	for n := sl.seekGE(probe); n != nil && cmpKey(n.key, probe) == 0; n = n.next[0].Load() {
		out = append(out, n.loadRows()...)
	}
	return out
}

// rangeRows gathers rows from every group within the window: prefix is
// an equality tuple over the leading columns (may be empty), and
// lo/hi optionally bound the next column with exact strictness
// (loStrict: > vs >=; hiStrict: < vs <=). NULL bounds mean unbounded.
// Lock-free.
func (sl *skipList) rangeRows(prefix []Value, lo Value, loStrict bool, hi Value, hiStrict bool, out []*Row) []*Row {
	var start *skipNode
	switch {
	case !lo.IsNull():
		probe := append(append(make([]Value, 0, len(prefix)+1), prefix...), lo)
		if loStrict {
			start = sl.seekGT(probe)
		} else {
			start = sl.seekGE(probe)
		}
	case len(prefix) > 0:
		start = sl.seekGE(prefix)
	default:
		start = sl.head.next[0].Load()
	}
	var hiProbe []Value
	if !hi.IsNull() {
		hiProbe = append(append(make([]Value, 0, len(prefix)+1), prefix...), hi)
	}
	for n := start; n != nil; n = n.next[0].Load() {
		if len(prefix) > 0 && cmpKey(n.key, prefix) != 0 {
			break
		}
		if hiProbe != nil {
			c := cmpKey(n.key, hiProbe)
			if c > 0 || (hiStrict && c == 0) {
				break
			}
		}
		out = append(out, n.loadRows()...)
	}
	return out
}

// each visits every (key, rows) group in order; writer-side helper for
// consistency checks and rebuilds.
func (sl *skipList) each(fn func(key []Value, rows []*Row)) {
	for n := sl.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		fn(n.key, n.loadRows())
	}
}
