package sqlmini

import (
	"testing"
	"testing/quick"
	"time"
)

// TestInsertSelectRoundTripProperty: values written through INSERT with
// parameters come back identical through SELECT.
func TestInsertSelectRoundTripProperty(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE rt (id INTEGER NOT NULL PRIMARY KEY, s VARCHAR, n BIGINT, f DOUBLE, b BLOB)")
	id := 0
	prop := func(s string, n int64, f float64, blob []byte) bool {
		id++
		if _, err := db.Exec("INSERT INTO rt (id, s, n, f, b) VALUES (?, ?, ?, ?, ?)",
			id, s, n, f, blob); err != nil {
			return false
		}
		res, err := db.Query("SELECT s, n, f, b FROM rt WHERE id = ?", id)
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		row := res.Rows[0]
		if row[0].Str() != s || row[1].Int() != n {
			return false
		}
		if f == f && row[2].Float() != f { // skip NaN identity
			return false
		}
		got := row[3].Bytes()
		if blob == nil {
			// nil slice stores as an empty blob
			return len(got) == 0
		}
		if len(got) != len(blob) {
			return false
		}
		for i := range blob {
			if got[i] != blob[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderByMultipleKeysWithParams(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (a INTEGER, b VARCHAR)")
	db.MustExec("INSERT INTO t (a, b) VALUES (2, 'x'), (1, 'y'), (2, 'a'), (1, 'b')")
	res, err := db.Query("SELECT a, b FROM t WHERE a <= ? ORDER BY a, b DESC", 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"1", "y"}, {"1", "b"}, {"2", "x"}, {"2", "a"}}
	for i, w := range want {
		if res.Rows[i][0].Str() != w[0] || res.Rows[i][1].Str() != w[1] {
			t.Fatalf("row %d = %v,%v want %v", i, res.Rows[i][0], res.Rows[i][1], w)
		}
	}
}

func TestUpdateCoercionFailureLeavesRowIntact(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER, b BLOB)")
	db.MustExec("INSERT INTO t (id, b) VALUES (1, ?)", []byte{1, 2})
	// Coercing an INTEGER into BLOB fails; the row must be unchanged.
	if _, err := db.Exec("UPDATE t SET b = 5 WHERE id = 1"); err == nil {
		t.Fatal("expected coercion error")
	}
	res, _ := db.Query("SELECT b FROM t WHERE id = 1")
	if got := res.Rows[0][0].Bytes(); len(got) != 2 {
		t.Fatalf("row mutated by failed update: %v", got)
	}
}

func TestTimestampComparisonsViaParams(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE ev (id INTEGER, at TIMESTAMP)")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		db.MustExec("INSERT INTO ev (id, at) VALUES (?, ?)", i, base.Add(time.Duration(i)*time.Hour))
	}
	res, err := db.Query("SELECT count(*) FROM ev WHERE at >= ? AND at < ?",
		base.Add(time.Hour), base.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
}

func TestInsertDefaultsOmittedColumnsToNull(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE)")
	db.MustExec("INSERT INTO t (a) VALUES (1)")
	res, _ := db.Query("SELECT b, c FROM t")
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("omitted columns should be NULL: %v", res.Rows[0])
	}
}

func TestSelectStarColumnOrderStable(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (z INTEGER, a VARCHAR, m DOUBLE)")
	res, err := db.Query("SELECT * FROM t LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0] != "z" || res.Cols[1] != "a" || res.Cols[2] != "m" {
		t.Fatalf("cols = %v (must preserve DDL order)", res.Cols)
	}
}

func TestChangeSeqAdvancesOnMutationsOnly(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (a INTEGER)")
	s0 := db.ChangeSeq()
	db.MustExec("INSERT INTO t (a) VALUES (1)")
	s1 := db.ChangeSeq()
	if s1 <= s0 {
		t.Fatal("insert must advance ChangeSeq")
	}
	if _, err := db.Query("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if db.ChangeSeq() != s1 {
		t.Fatal("reads must not advance ChangeSeq")
	}
	// No-op update (0 rows) does not advance.
	db.MustExec("UPDATE t SET a = 9 WHERE a = 12345")
	if db.ChangeSeq() != s1 {
		t.Fatal("0-row update must not advance ChangeSeq")
	}
}

func TestInExprWithNulls(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (a INTEGER)")
	db.MustExec("INSERT INTO t (a) VALUES (1), (2), (NULL)")
	// a IN (1, NULL): matches a=1; a=2 yields unknown (excluded); NULL
	// row excluded.
	res, err := db.Query("SELECT count(*) FROM t WHERE a IN (1, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
}
