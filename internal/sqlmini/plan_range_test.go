package sqlmini

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// rangeBase is the fixed clock instant the range-planner suites run at;
// lease rows are seeded relative to it so `expires_at > now()` splits
// the table deterministically.
var rangeBase = time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)

// rangeDB builds a leases-shaped table with an ordered index on the
// expiry timestamp and an ordered index on an integer score; rows mix
// expired/live, released flags, duplicate keys, and NULLs.
func rangeDB(t testing.TB, indexed bool) *DB {
	t.Helper()
	db := NewDB(WithClock(func() time.Time { return rangeBase }))
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		score INTEGER,
		expires_at TIMESTAMP,
		released BOOLEAN NOT NULL,
		note VARCHAR)`)
	if indexed {
		db.MustExec("CREATE INDEX leases_score ON leases (score) USING ORDERED")
		db.MustExec("CREATE INDEX leases_exp ON leases (expires_at) USING ORDERED")
	}
	for i := 1; i <= 60; i++ {
		var score any = i % 7 // duplicates across groups
		if i%11 == 0 {
			score = nil
		}
		var exp any = rangeBase.Add(time.Duration(i-30) * time.Minute) // half expired, half live
		if i%13 == 0 {
			exp = nil
		}
		db.MustExec("INSERT INTO leases (lease_id, score, expires_at, released, note) VALUES (?, ?, ?, ?, ?)",
			i, score, exp, i%3 == 0, fmt.Sprintf("n%d", i))
	}
	return db
}

// TestRangePlannerMatchesScan runs the same statements against an
// ordered-indexed and an unindexed copy of the data: results must be
// identical whether the planner claims the range or falls back.
func TestRangePlannerMatchesScan(t *testing.T) {
	queries := []struct {
		sql  string
		args []any
	}{
		// Range-eligible shapes.
		{"SELECT * FROM leases WHERE score > ?", []any{3}},
		{"SELECT * FROM leases WHERE score >= ?", []any{3}},
		{"SELECT * FROM leases WHERE score < ?", []any{2}},
		{"SELECT * FROM leases WHERE score <= ?", []any{2}},
		{"SELECT * FROM leases WHERE score > ? AND score < ?", []any{1, 5}},
		{"SELECT * FROM leases WHERE score >= ? AND score <= ?", []any{2, 2}},
		{"SELECT * FROM leases WHERE score BETWEEN ? AND ?", []any{1, 4}},
		{"SELECT * FROM leases WHERE ? < score", []any{3}},          // reversed operands
		{"SELECT * FROM leases WHERE ? >= score AND ? < score", []any{5, 1}},
		{"SELECT * FROM leases WHERE score > ? AND released = FALSE", []any{2}},
		{"SELECT count(*) FROM leases WHERE score > ? AND note LIKE ?", []any{2, "n%"}},
		{"SELECT * FROM leases WHERE expires_at > now()", nil},
		{"SELECT * FROM leases WHERE expires_at <= now() AND released = FALSE", nil},
		{"SELECT count(*) FROM leases WHERE released = FALSE AND expires_at > now()", nil},
		{"SELECT * FROM leases WHERE expires_at BETWEEN ? AND ?",
			[]any{rangeBase.Add(-10 * time.Minute), rangeBase.Add(10 * time.Minute)}},
		// Empty windows and out-of-domain bounds.
		{"SELECT * FROM leases WHERE score > ?", []any{100}},
		{"SELECT * FROM leases WHERE score < ?", []any{-5}},
		{"SELECT * FROM leases WHERE score > ? AND score < ?", []any{5, 1}},
		{"SELECT * FROM leases WHERE score BETWEEN ? AND ?", []any{4, 1}},
		// Equality beats range when both are present (plan differs, results must not).
		{"SELECT * FROM leases WHERE score = ? AND score > ?", []any{3, 1}},
		{"SELECT * FROM leases WHERE lease_id = ? AND score > ?", []any{10, 0}},
		// Equality on an ordered column, including keys a hash index
		// would have to reject (lossy coercions seek empty windows).
		{"SELECT * FROM leases WHERE score = ?", []any{4}},
		{"SELECT * FROM leases WHERE score = ?", []any{3.5}},
		{"SELECT * FROM leases WHERE score = ?", []any{4.0}},
		{"SELECT * FROM leases WHERE score > ?", []any{2.5}}, // float bound on int column
		// NULL keys/bounds: provably empty either way.
		{"SELECT * FROM leases WHERE score > ?", []any{nil}},
		{"SELECT * FROM leases WHERE score BETWEEN ? AND ?", []any{nil, 5}},
		{"SELECT * FROM leases WHERE expires_at > ?", []any{nil}},
		// Planner-ineligible shapes: must scan, identically.
		{"SELECT * FROM leases WHERE score > ? OR released = TRUE", []any{4}},
		{"SELECT * FROM leases WHERE score > lease_id", nil},
		{"SELECT * FROM leases WHERE score + 0 > ?", []any{3}},
		{"SELECT * FROM leases WHERE NOT score > ?", []any{3}},
		{"SELECT * FROM leases WHERE score NOT BETWEEN ? AND ?", []any{1, 4}},
		{"SELECT * FROM leases WHERE score <> ?", []any{3}},
		{"SELECT * FROM leases WHERE score > ? ORDER BY lease_id LIMIT 3", []any{1}},
		// Order-incompatible bound types: planner must decline the bound.
		{"SELECT * FROM leases WHERE note > ?", []any{5}},
		{"SELECT * FROM leases WHERE expires_at > ?", []any{"not-a-time"}},
	}
	idb, sdb := rangeDB(t, true), rangeDB(t, false)
	for _, q := range queries {
		got, err := idb.Query(q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q.sql, err)
		}
		want, err := sdb.Query(q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (scan): %v", q.sql, err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("%s %v:\nindexed:\n%s\nscan:\n%s", q.sql, q.args, canon(got), canon(want))
		}
	}
}

// TestRangePlannerMutationsMatchScan applies the same range-shaped
// UPDATE/DELETE stream to both copies and compares the full table —
// the expiry-sweep UPDATE shape included.
func TestRangePlannerMutationsMatchScan(t *testing.T) {
	idb, sdb := rangeDB(t, true), rangeDB(t, false)
	apply := func(sql string, args ...any) {
		t.Helper()
		ri, ei := idb.Exec(sql, args...)
		rs, es := sdb.Exec(sql, args...)
		if (ei == nil) != (es == nil) {
			t.Fatalf("%s: indexed err=%v scan err=%v", sql, ei, es)
		}
		if ei == nil && ri.Affected != rs.Affected {
			t.Fatalf("%s: affected %d (indexed) vs %d (scan)", sql, ri.Affected, rs.Affected)
		}
	}
	apply("UPDATE leases SET released = TRUE WHERE expires_at <= now() AND released = FALSE")
	apply("UPDATE leases SET released = TRUE WHERE expires_at <= now() AND released = FALSE") // second sweep: 0 rows
	apply("UPDATE leases SET score = score + 10 WHERE score > ?", 4) // moves rows across its own index
	apply("UPDATE leases SET expires_at = ? WHERE score BETWEEN ? AND ?", rangeBase.Add(time.Hour), 1, 2)
	apply("DELETE FROM leases WHERE score >= ? AND released = TRUE", 12)
	apply("DELETE FROM leases WHERE expires_at < ?", rangeBase.Add(-20*time.Minute))
	got := idb.MustExec("SELECT * FROM leases")
	want := sdb.MustExec("SELECT * FROM leases")
	if canon(got) != canon(want) {
		t.Fatalf("tables diverged:\nindexed:\n%s\nscan:\n%s", canon(got), canon(want))
	}
	indexConsistent(t, idb, "leases")
}

// TestRangePlannerRandomized fires randomized range statements (random
// ops, bounds, operand order, residual conjuncts, occasional mutations)
// at an indexed and an unindexed copy, comparing every result.
func TestRangePlannerRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	idb, sdb := rangeDB(t, true), rangeDB(t, false)
	ops := []string{">", ">=", "<", "<="}
	nextID := 1000
	for step := 0; step < 400; step++ {
		var sql string
		var args []any
		switch rng.Intn(6) {
		case 0: // single bound on score
			sql = fmt.Sprintf("SELECT * FROM leases WHERE score %s ?", ops[rng.Intn(4)])
			args = []any{rng.Intn(10) - 1}
		case 1: // double bound, sometimes inverted window
			sql = fmt.Sprintf("SELECT * FROM leases WHERE score %s ? AND score %s ?",
				ops[rng.Intn(2)], ops[2+rng.Intn(2)])
			args = []any{rng.Intn(8), rng.Intn(8)}
		case 2: // BETWEEN with residual
			sql = "SELECT count(*) FROM leases WHERE score BETWEEN ? AND ? AND released = FALSE"
			args = []any{rng.Intn(8), rng.Intn(8)}
		case 3: // timestamp window around now()
			sql = "SELECT lease_id FROM leases WHERE expires_at > ? AND expires_at <= ?"
			lo := rangeBase.Add(time.Duration(rng.Intn(80)-40) * time.Minute)
			args = []any{lo, lo.Add(time.Duration(rng.Intn(30)) * time.Minute)}
		case 4: // reversed operand order
			sql = fmt.Sprintf("SELECT * FROM leases WHERE ? %s score", ops[rng.Intn(4)])
			args = []any{rng.Intn(10) - 1}
		case 5: // mutation: insert then sweep-shaped update
			nextID++
			ins := "INSERT INTO leases (lease_id, score, expires_at, released, note) VALUES (?, ?, ?, FALSE, 'r')"
			insArgs := []any{nextID, rng.Intn(7), rangeBase.Add(time.Duration(rng.Intn(60)-30) * time.Minute)}
			idb.MustExec(ins, insArgs...)
			sdb.MustExec(ins, insArgs...)
			sql = "UPDATE leases SET released = TRUE WHERE expires_at <= ? AND released = FALSE"
			args = []any{rangeBase.Add(time.Duration(rng.Intn(40)-35) * time.Minute)}
		}
		gi, ei := idb.Exec(sql, args...)
		gs, es := sdb.Exec(sql, args...)
		if (ei == nil) != (es == nil) {
			t.Fatalf("step %d %s %v: indexed err=%v scan err=%v", step, sql, args, ei, es)
		}
		if ei != nil {
			continue
		}
		if gi.Affected != gs.Affected || canon(gi) != canon(gs) {
			t.Fatalf("step %d %s %v:\nindexed(%d):\n%s\nscan(%d):\n%s",
				step, sql, args, gi.Affected, canon(gi), gs.Affected, canon(gs))
		}
	}
	indexConsistent(t, idb, "leases")
}

func TestExplainRange(t *testing.T) {
	db := rangeDB(t, true)
	for _, tc := range []struct {
		sql  string
		args []any
		want string
	}{
		{"SELECT * FROM leases WHERE score > ?", []any{3},
			"range scan on leases(score) [leases_score] (score > 3)"},
		{"SELECT * FROM leases WHERE ? <= score", []any{2},
			"range scan on leases(score) [leases_score] (score >= 2)"},
		{"SELECT * FROM leases WHERE score > ? AND score <= ? AND released = FALSE", []any{1, 5},
			"range scan on leases(score) [leases_score] (score > 1 AND score <= 5)"},
		{"SELECT * FROM leases WHERE score BETWEEN ? AND ?", []any{1, 4},
			"range scan on leases(score) [leases_score] (score >= 1 AND score <= 4)"},
		{"SELECT count(*) FROM leases WHERE released = FALSE AND expires_at > now()", nil,
			"range scan on leases(expires_at) [leases_exp] (expires_at > 2026-07-30T12:00:00Z)"},
		{"UPDATE leases SET released = TRUE WHERE expires_at <= now() AND released = FALSE", nil,
			"range scan on leases(expires_at) [leases_exp] (expires_at <= 2026-07-30T12:00:00Z)"},
		// Equality beats range; PK beats everything.
		{"SELECT * FROM leases WHERE score = ? AND score > ?", []any{3, 1},
			"index lookup on leases(score) [leases_score]"},
		{"SELECT * FROM leases WHERE lease_id = ? AND score > ?", []any{7, 1},
			"point lookup on leases(lease_id) [primary key]"},
		// NULL bound: provably empty.
		{"SELECT * FROM leases WHERE score > ?", []any{nil},
			"empty result (NULL key) on leases(score)"},
		// Order-incompatible bound or LIMIT: scan.
		{"SELECT * FROM leases WHERE note > ?", []any{5},
			"full scan on leases"},
		{"SELECT * FROM leases WHERE score > ? LIMIT 3", []any{1},
			"full scan on leases (LIMIT)"},
		{"SELECT * FROM leases WHERE score NOT BETWEEN ? AND ?", []any{1, 4},
			"full scan on leases"},
	} {
		got, err := db.Explain(tc.sql, tc.args...)
		if err != nil {
			t.Fatalf("Explain(%s): %v", tc.sql, err)
		}
		if got != tc.want {
			t.Fatalf("Explain(%s) = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

// BenchmarkRangeSeekAt10k measures the expiry-sweep shape directly on
// the engine: a window probe over 10k rows must seek, not scan.
func BenchmarkRangeSeekAt10k(b *testing.B) {
	db := NewDB(WithClock(func() time.Time { return rangeBase }))
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		expires_at TIMESTAMP,
		released BOOLEAN NOT NULL)`)
	db.MustExec("CREATE INDEX leases_exp ON leases (expires_at) USING ORDERED")
	for i := 0; i < 10000; i++ {
		db.MustExec("INSERT INTO leases (lease_id, expires_at, released) VALUES (?, ?, FALSE)",
			i, rangeBase.Add(time.Duration(i)*time.Second))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The window below now() is empty: all rows expire in the future.
		if _, err := db.Query("SELECT count(*) FROM leases WHERE expires_at <= now() AND released = FALSE"); err != nil {
			b.Fatal(err)
		}
	}
}
