package sqlmini

import (
	"sync/atomic"
)

// MVCC storage: every row is an immutable version chain. Writers (under
// the owning table's latch) push a new version stamped with a commit
// number from the engine-wide clock; snapshot readers walk the chain to
// the newest version at or below their snapshot and never block. A
// deleted row is a version too — a tombstone — which makes rollback
// uniform (undo always pushes another version) and lets readers that
// predate the delete keep seeing the row.
//
// Visibility contract: a statement's snapshot s is the owning table's
// published watermark. A row is visible iff the newest version with
// from <= s exists and is not a tombstone. Writers publish the
// watermark once, at statement end, so multi-row statements become
// visible atomically.

// rowVersion is one immutable version of a row. vals is nil exactly
// when dead (a tombstone). prev links to the version it superseded;
// the garbage collector cuts the link once no reader can need it, so
// readers load it atomically.
type rowVersion struct {
	vals []Value
	from uint64 // commit number that created this version
	dead bool
	prev atomic.Pointer[rowVersion]
}

// Row is a stored row. Identity (the pointer) is stable for the row's
// lifetime, which the undo log relies on. The version chain head is the
// current (writer-visible) state.
type Row struct {
	v atomic.Pointer[rowVersion]

	// unlinked marks a row physically removed from the table's row list
	// and indexes by GC; guarded by the table latch. Rollback checks it
	// to re-link a row it must resurrect.
	unlinked bool
}

// newRow allocates a live row created at commit from.
func newRow(vals []Value, from uint64) *Row {
	r := &Row{}
	r.v.Store(&rowVersion{vals: vals, from: from})
	return r
}

// cur returns the chain head (writer view). Callers on the write path
// hold the table latch; readers use visible instead.
func (r *Row) cur() *rowVersion { return r.v.Load() }

// curVals returns the current values, nil if the row is dead.
func (r *Row) curVals() []Value {
	v := r.v.Load()
	if v.dead {
		return nil
	}
	return v.vals
}

// push prepends a new version. Caller holds the table latch.
func (r *Row) push(vals []Value, from uint64, dead bool) {
	nv := &rowVersion{vals: vals, from: from, dead: dead}
	nv.prev.Store(r.v.Load())
	r.v.Store(nv)
}

// visible returns the values of the newest version at or below snapshot
// s, or nil if the row is invisible at s (not yet inserted, or deleted).
func (r *Row) visible(s uint64) []Value {
	v := r.v.Load()
	for v != nil && v.from > s {
		v = v.prev.Load()
	}
	if v == nil || v.dead {
		return nil
	}
	return v.vals
}

// rowArr is a table's published row list: a slice whose first n entries
// are valid. Appends (under the table latch) write the slot first and
// then publish the new length, so lock-free readers that observe the
// length also observe the slot. Slots are never overwritten once
// published; compaction builds and publishes a fresh rowArr.
type rowArr struct {
	slots []*Row
	n     atomic.Int64
}

func newRowArr(capHint int) *rowArr {
	if capHint < 8 {
		capHint = 8
	}
	return &rowArr{slots: make([]*Row, capHint)}
}

// snapshot returns the published prefix. The returned slice is
// immutable: entries below the published length never change.
func (a *rowArr) snapshot() []*Row {
	return a.slots[:a.n.Load()]
}

// append adds a row under the table latch, returning the (possibly
// replacement) rowArr the caller must publish if it changed.
func (a *rowArr) append(r *Row) *rowArr {
	n := int(a.n.Load())
	if n < len(a.slots) {
		a.slots[n] = r
		a.n.Store(int64(n + 1))
		return a
	}
	b := newRowArr(2 * len(a.slots))
	copy(b.slots, a.slots[:n])
	b.slots[n] = r
	b.n.Store(int64(n + 1))
	return b
}

// readerSlotCount bounds concurrently registered snapshot readers;
// excess readers fall back to reading under the table latch.
const readerSlotCount = 128

const slotPending = 1 // claimed, snapshot not yet published

// readerSlots registers active snapshot readers so the garbage
// collector can compute a safe reclamation floor. A slot holds 0
// (free), slotPending (claimed; the reader is about to publish its
// snapshot), or snapshot+2. The two-phase claim (CAS to pending, then
// store the snapshot) closes the race where a reader picks a snapshot,
// stalls, and GC — not yet seeing the registration — reclaims versions
// the reader needs: a pending slot forces the floor to zero, making
// that GC round a no-op.
type readerSlots struct {
	slots [readerSlotCount]atomic.Uint64
	hint  atomic.Uint32
}

// acquire claims a slot, returning its id or -1 if all are taken.
func (rs *readerSlots) acquire() int {
	h := int(rs.hint.Add(1))
	for i := 0; i < readerSlotCount; i++ {
		idx := (h + i) % readerSlotCount
		if rs.slots[idx].CompareAndSwap(0, slotPending) {
			return idx
		}
	}
	return -1
}

// publish records the claimed slot's snapshot.
func (rs *readerSlots) publish(idx int, s uint64) { rs.slots[idx].Store(s + 2) }

// release frees the slot.
func (rs *readerSlots) release(idx int) { rs.slots[idx].Store(0) }

// floor returns the oldest snapshot any registered reader may use,
// bounded above by the current commit clock. A pending slot returns 0:
// nothing may be reclaimed until it publishes.
func (rs *readerSlots) floor(clock uint64) uint64 {
	m := clock
	for i := range rs.slots {
		v := rs.slots[i].Load()
		if v == 0 {
			continue
		}
		if v == slotPending {
			return 0
		}
		if s := v - 2; s < m {
			m = s
		}
	}
	return m
}

// gcItem is one deferred-reclamation hint, enqueued by the write paths
// under the table latch. Items are enqueued in commit order, so the
// queue prefix with c <= floor is exactly the mature work. Each item is
// a hint, not a command: GC revalidates against the row's chain before
// acting, because a later rollback may have restored the state the item
// proposed to reclaim.
type gcItem struct {
	c   uint64
	row *Row

	// Entry-removal hint: the row may no longer need its entry under key
	// in this index (hash or skip, matching the index kind).
	hash *hashIndex
	skip *skipList
	key  []Value

	// unlink: the row may be fully dead (newest version a tombstone) and
	// eligible for physical removal from the row list and all indexes.
	unlink bool
}

// gcState is a table's deferred-reclamation queue; guarded by the
// table latch.
type gcState struct {
	queue []gcItem
}

func (g *gcState) enqueue(it gcItem) { g.queue = append(g.queue, it) }

// gcTableLocked processes the mature queue prefix for t. Caller holds
// t's latch; floor is a safe reclamation floor (readerSlots.floor).
func (t *Table) gcTableLocked(floor uint64) {
	g := &t.gc
	if len(g.queue) == 0 || g.queue[0].c > floor {
		return
	}
	i := 0
	unlinkedAny := false
	for ; i < len(g.queue) && g.queue[i].c <= floor; i++ {
		it := g.queue[i]
		switch {
		case it.unlink:
			if t.gcUnlink(it.row, floor) {
				unlinkedAny = true
			}
		case it.hash != nil || it.skip != nil:
			// Prune before revalidating the entry: the version that carried
			// the stale key must leave the chain first, or chainHasKey keeps
			// every entry alive forever. Prune only cuts below the newest
			// version at or below floor, so anything a registered reader
			// might still need survives — and with it, its index entries.
			t.gcPrune(it.row, floor)
			t.gcDropEntry(it)
		default:
			t.gcPrune(it.row, floor)
		}
	}
	g.queue = append(g.queue[:0], g.queue[i:]...)
	if unlinkedAny {
		t.compactRowsLocked()
	}
}

// gcPrune cuts a row's version chain below the newest version at or
// below floor. A chain headed by a mature tombstone is left intact:
// the pending unlink item needs the older versions' keys to clean the
// indexes.
func (t *Table) gcPrune(r *Row, floor uint64) {
	v := r.v.Load()
	for v.from > floor {
		p := v.prev.Load()
		if p == nil {
			return
		}
		v = p
	}
	if v.dead {
		return
	}
	v.prev.Store(nil)
}

// chainHasKey reports whether any live version of r carries tuple key
// under the index columns cols.
func chainHasKey(r *Row, cols []int, key []Value) bool {
	for v := r.v.Load(); v != nil; v = v.prev.Load() {
		if v.dead {
			continue
		}
		if tupleEqualAt(v.vals, cols, key) {
			return true
		}
	}
	return false
}

// gcDropEntry removes a stale index entry if no live version still
// carries the key.
func (t *Table) gcDropEntry(it gcItem) {
	if it.hash != nil {
		if !chainHasKey(it.row, it.hash.cols, it.key) {
			it.hash.remove(it.key, it.row)
		}
		return
	}
	if !chainHasKey(it.row, it.skip.cols, it.key) {
		it.skip.remove(it.key, it.row)
	}
}

// gcUnlink physically removes a fully dead row: every index entry any
// of its versions created is dropped, and the row is marked unlinked so
// compaction excludes it. Returns false when the row was resurrected
// (rollback) after the hint was enqueued.
func (t *Table) gcUnlink(r *Row, floor uint64) bool {
	head := r.v.Load()
	if !head.dead || head.from > floor || r.unlinked {
		return r.unlinked && head.dead
	}
	if t.pkIx != nil {
		seen := make(map[string]bool, 1)
		for v := head; v != nil; v = v.prev.Load() {
			if v.dead {
				continue
			}
			key := v.vals[t.pk : t.pk+1]
			ks := tupleKey(key)
			if !seen[ks] {
				seen[ks] = true
				t.pkIx.remove(key, r)
			}
		}
	}
	for _, ix := range t.loadIndexes() {
		for v := head; v != nil; v = v.prev.Load() {
			if v.dead {
				continue
			}
			ix.removeFor(v.vals, r)
		}
	}
	r.unlinked = true
	return true
}

// compactRowsLocked rebuilds the row list without unlinked rows and
// publishes it. Caller holds the latch.
func (t *Table) compactRowsLocked() {
	old := t.rows.Load().snapshot()
	b := newRowArr(len(old))
	n := 0
	for _, r := range old {
		if !r.unlinked {
			b.slots[n] = r
			n++
		}
	}
	b.n.Store(int64(n))
	t.rows.Store(b)
}

// maybeGCLocked runs a GC round when enough deferred work has queued.
// Caller holds the latch. Computing the floor costs a readerSlots scan,
// so small queues wait.
func (t *Table) maybeGCLocked(db *DB) {
	if len(t.gc.queue) < 128 {
		return
	}
	t.gcTableLocked(db.readers.floor(db.commits.Load()))
}

// gcAll forces a full GC round on every table; tests use it to bring
// indexes and row lists to their settled state before invariant checks.
func (db *DB) gcAll() {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	for _, t := range db.sortedTables() {
		t.latch.Lock()
		t.gcTableLocked(db.readers.floor(db.commits.Load()))
		t.latch.Unlock()
	}
}
