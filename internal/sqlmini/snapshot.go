package sqlmini

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// snapshotVersion guards the snapshot wire format. Version 2 added the
// per-table secondary-index declarations; version 3 added the per-index
// kind byte (hash vs ordered). Older blobs still restore: version 1 has
// no index section (indexes are re-declared by the schema layer) and
// version-2 indexes restore as hash, the only kind that format knew.
const snapshotVersion = 3

// Snapshot serializes the entire database (schema + rows) into a
// self-describing byte blob. Replication layers use it for backend
// resynchronization around a checkpoint (Sequoia, §5.3.1 of the paper)
// and for master/slave initial sync.
func (db *DB) Snapshot() []byte {
	db.mu.Lock()
	defer db.mu.Unlock()

	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	e := wire.NewEncoder(4096)
	e.Uint8(snapshotVersion)
	e.Uint64(db.changeSeq)
	e.Uint32(uint32(len(names)))
	for _, n := range names {
		t := db.tables[n]
		e.String(t.Name)
		e.Uint32(uint32(len(t.Cols)))
		for _, c := range t.Cols {
			e.String(c.Name)
			e.Uint8(uint8(c.Type))
			e.Bool(c.NotNull)
			e.Bool(c.PrimaryKey)
			e.String(c.RefTable)
			e.String(c.RefColumn)
		}
		e.Uint32(uint32(len(t.indexes)))
		for _, ix := range t.indexes {
			e.String(ix.name)
			e.String(t.Cols[ix.col].Name)
			e.Uint8(uint8(ix.kind))
		}
		e.Uint32(uint32(len(t.Rows)))
		for _, r := range t.Rows {
			for _, v := range r.Vals {
				encodeValue(e, v)
			}
		}
	}
	return e.Bytes()
}

// Restore replaces the database contents with a snapshot produced by
// Snapshot.
func (db *DB) Restore(blob []byte) error {
	d := wire.NewDecoder(blob)
	ver := d.Uint8()
	if ver < 1 || ver > snapshotVersion {
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		return fmt.Errorf("sqlmini: restore: unsupported snapshot version %d", ver)
	}
	seq := d.Uint64()
	nTables := d.Uint32()
	tables := make(map[string]*Table, nTables)
	for i := uint32(0); i < nTables; i++ {
		t := &Table{Name: d.String()}
		nCols := d.Uint32()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		t.Cols = make([]ColumnDef, nCols)
		t.colIdx = make(map[string]int, nCols)
		for j := uint32(0); j < nCols; j++ {
			c := ColumnDef{
				Name:       d.String(),
				Type:       Type(d.Uint8()),
				NotNull:    d.Bool(),
				PrimaryKey: d.Bool(),
				RefTable:   d.String(),
				RefColumn:  d.String(),
			}
			t.Cols[j] = c
			t.colIdx[c.Name] = int(j)
		}
		if ver >= 2 {
			nIdx := d.Uint32()
			if err := d.Err(); err != nil {
				return fmt.Errorf("sqlmini: restore: %w", err)
			}
			for j := uint32(0); j < nIdx; j++ {
				name, colName := d.String(), d.String()
				kind := IndexHash // the only kind the v2 format knew
				if ver >= 3 {
					kind = IndexKind(d.Uint8())
					if kind != IndexHash && kind != IndexOrdered {
						if err := d.Err(); err != nil {
							return fmt.Errorf("sqlmini: restore: %w", err)
						}
						return fmt.Errorf("sqlmini: restore: index %q has unknown kind %d", name, kind)
					}
				}
				ci, ok := t.colIdx[colName]
				if !ok {
					if err := d.Err(); err != nil {
						return fmt.Errorf("sqlmini: restore: %w", err)
					}
					return fmt.Errorf("sqlmini: restore: index %q on unknown column %q of %s", name, colName, t.Name)
				}
				t.indexes = append(t.indexes, newSecondaryIndex(name, ci, kind))
			}
		}
		nRows := d.Uint32()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		t.Rows = make([]*Row, 0, nRows)
		for j := uint32(0); j < nRows; j++ {
			vals := make([]Value, len(t.Cols))
			for k := range vals {
				v, err := decodeValue(d)
				if err != nil {
					return fmt.Errorf("sqlmini: restore: table %s: %w", t.Name, err)
				}
				vals[k] = v
			}
			t.Rows = append(t.Rows, &Row{Vals: vals})
		}
		t.rebuildIndex()
		tables[t.Name] = t
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("sqlmini: restore: %w", err)
	}

	db.mu.Lock()
	// Every table that existed before or exists after counts as mutated:
	// caches keyed on TableVersion must see a resync as a change (the
	// GenerationStore contract in core/store.go rests on this).
	for name := range db.tables {
		db.bumpTable(name)
	}
	for name := range tables {
		if _, existed := db.tables[name]; !existed {
			db.bumpTable(name)
		}
	}
	db.tables = tables
	db.changeSeq = seq
	db.schemaSeq++
	db.mu.Unlock()
	return nil
}

// EncodeValue appends v to e in the snapshot value format; network
// protocols reuse it for statement arguments and result rows.
func EncodeValue(e *wire.Encoder, v Value) { encodeValue(e, v) }

// DecodeValue reads one value in the snapshot value format.
func DecodeValue(d *wire.Decoder) (Value, error) { return decodeValue(d) }

func encodeValue(e *wire.Encoder, v Value) {
	e.Uint8(uint8(v.Type()))
	switch v.Type() {
	case TypeNull:
	case TypeInteger, TypeBigint, TypeBoolean:
		e.Int64(v.Int())
	case TypeDouble:
		e.Float64(v.Float())
	case TypeVarchar:
		e.String(v.Str())
	case TypeBlob:
		e.Bytes32(v.Bytes())
	case TypeTimestamp:
		e.Time(v.Time())
	}
}

func decodeValue(d *wire.Decoder) (Value, error) {
	t := Type(d.Uint8())
	if err := d.Err(); err != nil {
		return Null, err
	}
	switch t {
	case TypeNull:
		return Null, nil
	case TypeInteger, TypeBigint:
		return Coerce(NewInt(d.Int64()), t)
	case TypeBoolean:
		return NewBool(d.Int64() != 0), nil
	case TypeDouble:
		return NewFloat(d.Float64()), nil
	case TypeVarchar:
		return NewString(d.String()), nil
	case TypeBlob:
		return NewBytes(d.Bytes32()), nil
	case TypeTimestamp:
		return NewTime(d.Time()), nil
	default:
		return Null, fmt.Errorf("unknown value type %d", t)
	}
}
