package sqlmini

import (
	"fmt"

	"repro/internal/wire"
)

// snapshotVersion guards the snapshot wire format. Version 2 added the
// per-table secondary-index declarations; version 3 added the per-index
// kind byte (hash vs ordered); version 4 added multi-column index
// declarations. Older blobs still restore: version 1 has no index
// section (indexes are re-declared by the schema layer) and version-2
// indexes restore as hash, the only kind that format knew. Snapshot
// writes version 3 — byte-identical to earlier releases — whenever
// every index is single-column, and only escalates to 4 when a
// composite index exists.
const snapshotVersion = 4

// Snapshot serializes the entire database (schema + rows) into a
// self-describing byte blob. Replication layers use it for backend
// resynchronization around a checkpoint (Sequoia, §5.3.1 of the paper)
// and for master/slave initial sync.
//
// It runs under ddlMu plus every table latch (acquired in sorted name
// order), so the blob is a consistent cut: it contains exactly the
// committed state, with no torn multi-table batch.
func (db *DB) Snapshot() []byte {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	tables := db.sortedTables()
	for _, t := range tables {
		//lint:latch-ok canonical sorted-name multi-latch: sortedTables() fixes the order
		t.latch.Lock()
	}
	defer func() {
		for _, t := range tables {
			t.latch.Unlock()
		}
	}()

	ver := uint8(3)
	for _, t := range tables {
		for _, ix := range t.loadIndexes() {
			if len(ix.cols) > 1 {
				ver = snapshotVersion
			}
		}
	}

	e := wire.NewEncoder(4096)
	e.Uint8(ver)
	e.Uint64(db.changeSeq.Load())
	e.Uint32(uint32(len(tables)))
	for _, t := range tables {
		e.String(t.Name)
		e.Uint32(uint32(len(t.Cols)))
		for _, c := range t.Cols {
			e.String(c.Name)
			e.Uint8(uint8(c.Type))
			e.Bool(c.NotNull)
			e.Bool(c.PrimaryKey)
			e.String(c.RefTable)
			e.String(c.RefColumn)
		}
		ixs := t.loadIndexes()
		e.Uint32(uint32(len(ixs)))
		for _, ix := range ixs {
			if ver >= 4 {
				e.String(ix.name)
				e.Uint8(uint8(ix.kind))
				e.Uint8(uint8(len(ix.cols)))
				for _, ci := range ix.cols {
					e.String(t.Cols[ci].Name)
				}
			} else {
				e.String(ix.name)
				e.String(t.Cols[ix.cols[0]].Name)
				e.Uint8(uint8(ix.kind))
			}
		}
		// Only rows alive in the committed state are serialized: a
		// tombstoned chain head means the row is deleted, however many
		// prior versions GC has yet to reclaim.
		rows := t.rowsSnapshot()
		live := make([][]Value, 0, len(rows))
		for _, r := range rows {
			if vals := r.curVals(); vals != nil {
				live = append(live, vals)
			}
		}
		e.Uint32(uint32(len(live)))
		for _, vals := range live {
			for _, v := range vals {
				encodeValue(e, v)
			}
		}
	}
	return e.Bytes()
}

// Restore replaces the database contents with a snapshot produced by
// Snapshot. The replacement tables are built entirely off to the side;
// the swap itself holds ddlMu plus every pre-restore table latch, so
// in-flight statements complete against the old state and every
// statement starting after the swap sees only the new one.
func (db *DB) Restore(blob []byte) error {
	d := wire.NewDecoder(blob)
	ver := d.Uint8()
	if ver < 1 || ver > snapshotVersion {
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		return fmt.Errorf("sqlmini: restore: unsupported snapshot version %d", ver)
	}
	seq := d.Uint64()
	nTables := d.Uint32()
	tables := make(map[string]*Table, nTables)
	for i := uint32(0); i < nTables; i++ {
		t := &Table{Name: d.String(), tid: tableIDs.Add(1)}
		nCols := d.Uint32()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		t.Cols = make([]ColumnDef, nCols)
		t.colIdx = make(map[string]int, nCols)
		for j := uint32(0); j < nCols; j++ {
			c := ColumnDef{
				Name:       d.String(),
				Type:       Type(d.Uint8()),
				NotNull:    d.Bool(),
				PrimaryKey: d.Bool(),
				RefTable:   d.String(),
				RefColumn:  d.String(),
			}
			t.Cols[j] = c
			t.colIdx[c.Name] = int(j)
		}
		var decls []*secondaryIndex
		if ver >= 2 {
			nIdx := d.Uint32()
			if err := d.Err(); err != nil {
				return fmt.Errorf("sqlmini: restore: %w", err)
			}
			for j := uint32(0); j < nIdx; j++ {
				var (
					name string
					kind IndexKind
					cols []int
				)
				if ver >= 4 {
					name = d.String()
					kind = IndexKind(d.Uint8())
					nc := int(d.Uint8())
					for k := 0; k < nc; k++ {
						colName := d.String()
						ci, ok := t.colIdx[colName]
						if !ok {
							if err := d.Err(); err != nil {
								return fmt.Errorf("sqlmini: restore: %w", err)
							}
							return fmt.Errorf("sqlmini: restore: index %q on unknown column %q of %s", name, colName, t.Name)
						}
						cols = append(cols, ci)
					}
				} else {
					name = d.String()
					colName := d.String()
					kind = IndexHash // the only kind the v2 format knew
					if ver >= 3 {
						kind = IndexKind(d.Uint8())
					}
					ci, ok := t.colIdx[colName]
					if !ok {
						if err := d.Err(); err != nil {
							return fmt.Errorf("sqlmini: restore: %w", err)
						}
						return fmt.Errorf("sqlmini: restore: index %q on unknown column %q of %s", name, colName, t.Name)
					}
					cols = []int{ci}
				}
				if kind != IndexHash && kind != IndexOrdered {
					if err := d.Err(); err != nil {
						return fmt.Errorf("sqlmini: restore: %w", err)
					}
					return fmt.Errorf("sqlmini: restore: index %q has unknown kind %d", name, kind)
				}
				if len(cols) == 0 {
					return fmt.Errorf("sqlmini: restore: index %q of %s has no columns", name, t.Name)
				}
				decls = append(decls, newSecondaryIndex(name, cols, kind))
			}
		}
		nRows := d.Uint32()
		if err := d.Err(); err != nil {
			return fmt.Errorf("sqlmini: restore: %w", err)
		}
		arr := newRowArr(int(nRows))
		for j := uint32(0); j < nRows; j++ {
			vals := make([]Value, len(t.Cols))
			for k := range vals {
				v, err := decodeValue(d)
				if err != nil {
					return fmt.Errorf("sqlmini: restore: table %s: %w", t.Name, err)
				}
				vals[k] = v
			}
			// Version 0 is below every possible snapshot point, so
			// restored rows are visible to any reader immediately.
			arr = arr.append(newRow(vals, 0))
		}
		t.rows.Store(arr)
		t.initIndex()
		if decls != nil {
			t.storeIndexes(decls)
		}
		t.rebuildIndex()
		t.watermark.Store(seq)
		t.vers = db.tableCounter(t.Name)
		tables[t.Name] = t
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("sqlmini: restore: %w", err)
	}

	db.ddlMu.Lock()
	old := db.sortedTables()
	for _, t := range old {
		//lint:latch-ok canonical sorted-name multi-latch: sortedTables() fixes the order
		t.latch.Lock()
	}
	oldMap := *db.schema.Load()
	// The commit clock never moves backwards (reader snapshots taken
	// against the old state must stay well-formed numbers); it only
	// catches up when the snapshot's sequence is ahead.
	if db.commits.Load() < seq {
		db.commits.Store(seq)
	}
	db.changeSeq.Store(seq)
	db.schema.Store(&tables)
	db.schemaSeq.Add(1)
	// Every table that existed before or exists after counts as mutated:
	// caches keyed on TableVersion must see a resync as a change (the
	// GenerationStore contract in core/store.go rests on this). Bumps
	// come after the schema swap so a generation probe can never observe
	// the new version before the new data is resolvable.
	for name := range oldMap {
		db.tableCounter(name).Add(1)
	}
	for name := range tables {
		if _, existed := oldMap[name]; !existed {
			db.tableCounter(name).Add(1)
		}
	}
	for _, t := range old {
		t.latch.Unlock()
	}
	db.ddlMu.Unlock()
	return nil
}

// EncodeValue appends v to e in the snapshot value format; network
// protocols reuse it for statement arguments and result rows.
func EncodeValue(e *wire.Encoder, v Value) { encodeValue(e, v) }

// DecodeValue reads one value in the snapshot value format.
func DecodeValue(d *wire.Decoder) (Value, error) { return decodeValue(d) }

func encodeValue(e *wire.Encoder, v Value) {
	e.Uint8(uint8(v.Type()))
	switch v.Type() {
	case TypeNull:
	case TypeInteger, TypeBigint, TypeBoolean:
		e.Int64(v.Int())
	case TypeDouble:
		e.Float64(v.Float())
	case TypeVarchar:
		e.String(v.Str())
	case TypeBlob:
		e.Bytes32(v.Bytes())
	case TypeTimestamp:
		e.Time(v.Time())
	}
}

func decodeValue(d *wire.Decoder) (Value, error) {
	t := Type(d.Uint8())
	if err := d.Err(); err != nil {
		return Null, err
	}
	switch t {
	case TypeNull:
		return Null, nil
	case TypeInteger, TypeBigint:
		return Coerce(NewInt(d.Int64()), t)
	case TypeBoolean:
		return NewBool(d.Int64() != 0), nil
	case TypeDouble:
		return NewFloat(d.Float64()), nil
	case TypeVarchar:
		return NewString(d.String()), nil
	case TypeBlob:
		return NewBytes(d.Bytes32()), nil
	case TypeTimestamp:
		return NewTime(d.Time()), nil
	default:
		return Null, fmt.Errorf("unknown value type %d", t)
	}
}
