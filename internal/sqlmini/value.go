// Package sqlmini is a small embedded relational engine: typed tables, a
// SQL-subset parser and executor, expression evaluation, and undo-log
// transactions. It exists to give the reproduction a real SQL substrate —
// the Drivolution paper stores drivers in regular database tables and its
// server logic is literally SQL (Sample code 1 and 2), so the server in
// internal/core executes those statements against this engine.
//
// The dialect covers what the paper needs plus the usual administrative
// surface: CREATE/DROP TABLE, INSERT, SELECT (with WHERE, ORDER BY,
// LIMIT, aggregates), UPDATE, DELETE, BEGIN/COMMIT/ROLLBACK, LIKE,
// IS [NOT] NULL, BETWEEN, IN, now(), and named ($name) plus positional
// (?) parameters. Concurrency model: MVCC. Rows are immutable version
// chains; read-only statements run lock-free against a stable snapshot
// and never block writers, while writers serialize per table behind
// short latches (there is no engine-wide lock) and publish each
// statement's versions atomically. Multi-statement transactions use an
// undo log and are read-uncommitted at transaction granularity — each
// statement publishes when it completes, before COMMIT (sufficient for
// the substrate; documented trade-off). See the "Engine concurrency"
// section of docs/ARCHITECTURE.md for the full contract.
package sqlmini

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates column/value types. The set mirrors the ANSI SQL types
// used by the paper's Table 1 and 2 definitions.
type Type int

// Supported SQL types.
const (
	TypeNull Type = iota + 1
	TypeInteger
	TypeBigint
	TypeDouble
	TypeVarchar
	TypeBlob
	TypeTimestamp
	TypeBoolean
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInteger:
		return "INTEGER"
	case TypeBigint:
		return "BIGINT"
	case TypeDouble:
		return "DOUBLE"
	case TypeVarchar:
		return "VARCHAR"
	case TypeBlob:
		return "BLOB"
	case TypeTimestamp:
		return "TIMESTAMP"
	case TypeBoolean:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a dynamically typed SQL value. The zero Value is SQL NULL.
type Value struct {
	typ   Type
	i     int64
	f     float64
	s     string
	b     []byte
	t     time.Time
	isSet bool
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER/BIGINT value.
func NewInt(v int64) Value { return Value{typ: TypeBigint, i: v, isSet: true} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{typ: TypeDouble, f: v, isSet: true} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{typ: TypeVarchar, s: v, isSet: true} }

// NewBytes returns a BLOB value. The slice is retained, not copied.
func NewBytes(v []byte) Value { return Value{typ: TypeBlob, b: v, isSet: true} }

// NewTime returns a TIMESTAMP value.
func NewTime(v time.Time) Value { return Value{typ: TypeTimestamp, t: v, isSet: true} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	i := int64(0)
	if v {
		i = 1
	}
	return Value{typ: TypeBoolean, i: i, isSet: true}
}

// FromGo converts a native Go value into a Value. Supported kinds:
// nil, bool, integers, float64, string, []byte, time.Time, time.Duration
// (as nanoseconds), and Value itself.
func FromGo(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case Value:
		return x, nil
	case bool:
		return NewBool(x), nil
	case int:
		return NewInt(int64(x)), nil
	case int32:
		return NewInt(int64(x)), nil
	case int64:
		return NewInt(x), nil
	case uint32:
		return NewInt(int64(x)), nil
	case float64:
		return NewFloat(x), nil
	case string:
		return NewString(x), nil
	case []byte:
		return NewBytes(x), nil
	case time.Time:
		return NewTime(x), nil
	case time.Duration:
		return NewInt(int64(x)), nil
	default:
		return Null, fmt.Errorf("sqlmini: unsupported Go type %T", v)
	}
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return !v.isSet }

// Type returns the value's type; NULL values report TypeNull.
func (v Value) Type() Type {
	if !v.isSet {
		return TypeNull
	}
	return v.typ
}

// Int returns the value as int64 (0 for NULL). Floats truncate; strings
// parse best-effort.
func (v Value) Int() int64 {
	switch v.Type() {
	case TypeInteger, TypeBigint, TypeBoolean:
		return v.i
	case TypeDouble:
		return int64(v.f)
	case TypeVarchar:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n
	case TypeTimestamp:
		return v.t.UnixNano()
	default:
		return 0
	}
}

// Float returns the value as float64 (0 for NULL).
func (v Value) Float() float64 {
	switch v.Type() {
	case TypeInteger, TypeBigint, TypeBoolean:
		return float64(v.i)
	case TypeDouble:
		return v.f
	case TypeVarchar:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f
	default:
		return 0
	}
}

// Str returns the value as a string ("" for NULL).
func (v Value) Str() string {
	switch v.Type() {
	case TypeVarchar:
		return v.s
	case TypeInteger, TypeBigint:
		return strconv.FormatInt(v.i, 10)
	case TypeBoolean:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case TypeDouble:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeBlob:
		return string(v.b)
	case TypeTimestamp:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return ""
	}
}

// Bytes returns the value as a byte slice (nil for NULL).
func (v Value) Bytes() []byte {
	switch v.Type() {
	case TypeBlob:
		return v.b
	case TypeVarchar:
		return []byte(v.s)
	default:
		return nil
	}
}

// Time returns the value as a time.Time (zero for NULL). Integer values
// are interpreted as Unix nanoseconds.
func (v Value) Time() time.Time {
	switch v.Type() {
	case TypeTimestamp:
		return v.t
	case TypeInteger, TypeBigint:
		return time.Unix(0, v.i).UTC()
	case TypeVarchar:
		if t, err := time.Parse(time.RFC3339Nano, v.s); err == nil {
			return t
		}
		return time.Time{}
	default:
		return time.Time{}
	}
}

// Bool returns the value as a boolean. NULL is false.
func (v Value) Bool() bool {
	switch v.Type() {
	case TypeBoolean, TypeInteger, TypeBigint:
		return v.i != 0
	case TypeDouble:
		return v.f != 0
	case TypeVarchar:
		return strings.EqualFold(v.s, "true")
	default:
		return false
	}
}

// String implements fmt.Stringer for diagnostics.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.typ {
	case TypeVarchar:
		return "'" + v.s + "'"
	case TypeBlob:
		return fmt.Sprintf("x'%d bytes'", len(v.b))
	default:
		return v.Str()
	}
}

// numericType reports whether t participates in numeric comparison.
func numericType(t Type) bool {
	switch t {
	case TypeInteger, TypeBigint, TypeDouble, TypeBoolean:
		return true
	default:
		return false
	}
}

// Compare orders two non-NULL values: -1, 0, +1. Comparing NULL with
// anything returns unknown=false via the (cmp, ok) second result.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	at, bt := a.Type(), b.Type()
	switch {
	case numericType(at) && numericType(bt):
		if at == TypeDouble || bt == TypeDouble {
			return cmpFloat(a.Float(), b.Float()), true
		}
		return cmpInt(a.Int(), b.Int()), true
	case at == TypeTimestamp || bt == TypeTimestamp:
		ta, tb := a.Time(), b.Time()
		switch {
		case ta.Before(tb):
			return -1, true
		case ta.After(tb):
			return 1, true
		default:
			return 0, true
		}
	case at == TypeBlob && bt == TypeBlob:
		return strings.Compare(string(a.b), string(b.b)), true
	default:
		// String-ish comparison, with numeric coercion when one side is a
		// number literal stored as text.
		if numericType(at) || numericType(bt) {
			return cmpFloat(a.Float(), b.Float()), true
		}
		return strings.Compare(a.Str(), b.Str()), true
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b || (math.IsNaN(a) && !math.IsNaN(b)):
		return -1
	case a > b || (!math.IsNaN(a) && math.IsNaN(b)):
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality; NULL = anything is false.
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Like evaluates the SQL LIKE predicate with % (any run) and _ (any one
// rune) wildcards. Matching is case-insensitive, which matches how the
// paper uses LIKE for api/platform names ("JDBC" should match "jdbc").
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer matcher with backtracking on the last '%'.
	var si, pi int
	star, sBack := -1, 0
	rs, rp := []rune(s), []rune(p)
	for si < len(rs) {
		switch {
		case pi < len(rp) && (rp[pi] == '_' || rp[pi] == rs[si]):
			si++
			pi++
		case pi < len(rp) && rp[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star != -1:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(rp) && rp[pi] == '%' {
		pi++
	}
	return pi == len(rp)
}

// Coerce converts v to column type t, used on INSERT/UPDATE so stored
// rows are uniformly typed. NULL passes through.
func Coerce(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t {
	case TypeInteger, TypeBigint:
		return Value{typ: t, i: v.Int(), isSet: true}, nil
	case TypeDouble:
		return NewFloat(v.Float()), nil
	case TypeVarchar:
		return NewString(v.Str()), nil
	case TypeBlob:
		b := v.Bytes()
		if b == nil {
			return Null, fmt.Errorf("sqlmini: cannot coerce %s to BLOB", v.Type())
		}
		return NewBytes(b), nil
	case TypeTimestamp:
		ts := v.Time()
		if ts.IsZero() && v.Type() == TypeVarchar {
			return Null, fmt.Errorf("sqlmini: cannot parse %q as TIMESTAMP", v.Str())
		}
		return NewTime(ts), nil
	case TypeBoolean:
		return NewBool(v.Bool()), nil
	default:
		return Null, fmt.Errorf("sqlmini: unknown column type %v", t)
	}
}
