package sqlmini

// Hash indexes. Every table with a PRIMARY KEY column keeps a map from
// the key's canonical string to its row, so uniqueness checks and
// equality point-lookups are O(1) instead of a full scan. Tables may
// additionally carry secondary hash indexes (declared with CREATE INDEX
// or DB.EnsureIndex) mapping a column's canonical key to the bucket of
// rows holding that value, in insertion order. All indexes are
// maintained by every mutation path — INSERT, UPDATE, DELETE,
// transaction rollback, and snapshot restore; `go test
// ./internal/sqlmini -run 'TestPK|TestSecondary'` and the property
// suites cover the invariants. The query planner (plan.go) drives
// SELECT/UPDATE/DELETE off these indexes when the WHERE clause has a
// usable equality conjunct.

// pkCol returns the index of the table's PRIMARY KEY column, or -1.
func (t *Table) pkCol() int {
	for i, c := range t.Cols {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// initIndex prepares the PK index structures; call after Cols are set.
// Secondary indexes are added separately (addIndex) and survive this
// call.
func (t *Table) initIndex() {
	t.pk = t.pkCol()
	if t.pk >= 0 {
		t.pkIdx = make(map[string]*Row)
	}
}

// pkKey canonicalizes a key value for hashing. Values are stored
// post-coercion, so one column holds one type and Str() is injective
// within it — except the DOUBLE zeroes, which compare equal but format
// differently, so negative zero is folded into "0".
func pkKey(v Value) string {
	if v.Type() == TypeDouble && v.f == 0 {
		return "0"
	}
	return v.Str()
}

// secondaryIndex is one non-unique hash index over a single column.
// Buckets keep rows in insertion order; removal preserves it.
type secondaryIndex struct {
	name    string
	col     int
	buckets map[string][]*Row
}

// indexOn returns the secondary index covering column col, if any.
func (t *Table) indexOn(col int) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// indexNamed returns the secondary index with the given name, if any.
func (t *Table) indexNamed(name string) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.name == name {
			return ix
		}
	}
	return nil
}

// addIndex creates a secondary index over column col and backfills it
// from the existing rows. Caller has validated name/column.
func (t *Table) addIndex(name string, col int) {
	ix := &secondaryIndex{name: name, col: col, buckets: make(map[string][]*Row)}
	for _, r := range t.Rows {
		ix.insert(r)
	}
	t.indexes = append(t.indexes, ix)
}

func (ix *secondaryIndex) insert(r *Row) {
	v := r.Vals[ix.col]
	if v.IsNull() {
		return // NULLs are not indexed; col = NULL never matches anyway
	}
	key := pkKey(v)
	ix.buckets[key] = append(ix.buckets[key], r)
}

func (ix *secondaryIndex) remove(r *Row, v Value) {
	if v.IsNull() {
		return
	}
	key := pkKey(v)
	bucket := ix.buckets[key]
	for i, br := range bucket {
		if br == r {
			if len(bucket) == 1 {
				delete(ix.buckets, key)
				return
			}
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = nil // drop the tail's row reference
			ix.buckets[key] = bucket[:len(bucket)-1]
			return
		}
	}
}

// lookup returns the bucket for the canonical key, in insertion order.
// The returned slice aliases the index; callers that mutate rows while
// iterating must copy it first (plan.go does).
func (ix *secondaryIndex) lookup(v Value) []*Row {
	if v.IsNull() {
		return nil
	}
	return ix.buckets[pkKey(v)]
}

// indexInsert registers a row in the PK and all secondary indexes;
// caller has already checked uniqueness.
func (t *Table) indexInsert(r *Row) {
	if t.pk >= 0 {
		if v := r.Vals[t.pk]; !v.IsNull() {
			t.pkIdx[pkKey(v)] = r
		}
	}
	for _, ix := range t.indexes {
		ix.insert(r)
	}
}

// indexRemove unregisters a row from all indexes.
func (t *Table) indexRemove(r *Row) {
	if t.pk >= 0 {
		if v := r.Vals[t.pk]; !v.IsNull() {
			key := pkKey(v)
			// Only remove if the slot still points at this row (a
			// concurrent re-insert of the same key after a delete must not
			// be clobbered by a late undo).
			if t.pkIdx[key] == r {
				delete(t.pkIdx, key)
			}
		}
	}
	for _, ix := range t.indexes {
		ix.remove(r, r.Vals[ix.col])
	}
}

// indexUpdate moves a row's registrations for keys that changed.
func (t *Table) indexUpdate(r *Row, oldVals []Value) {
	if t.pk >= 0 {
		oldV, newV := oldVals[t.pk], r.Vals[t.pk]
		if !Equal(oldV, newV) && !(oldV.IsNull() && newV.IsNull()) {
			if !oldV.IsNull() {
				key := pkKey(oldV)
				if t.pkIdx[key] == r {
					delete(t.pkIdx, key)
				}
			}
			if !newV.IsNull() {
				t.pkIdx[pkKey(newV)] = r
			}
		}
	}
	for _, ix := range t.indexes {
		oldV, newV := oldVals[ix.col], r.Vals[ix.col]
		switch {
		case oldV.IsNull() && newV.IsNull():
		case !oldV.IsNull() && !newV.IsNull() && pkKey(oldV) == pkKey(newV):
		default:
			ix.remove(r, oldV)
			ix.insert(r)
		}
	}
}

// lookupPK finds the row holding the given PK value, if any.
func (t *Table) lookupPK(v Value) (*Row, bool) {
	if t.pk < 0 || v.IsNull() {
		return nil, false
	}
	r, ok := t.pkIdx[pkKey(v)]
	return r, ok
}

// rebuildIndex reconstructs the PK index and every secondary index from
// the rows (snapshot restore).
func (t *Table) rebuildIndex() {
	t.initIndex()
	for _, ix := range t.indexes {
		ix.buckets = make(map[string][]*Row)
	}
	for _, r := range t.Rows {
		t.indexInsert(r)
	}
}
