package sqlmini

// Primary-key hash index. Every table with a PRIMARY KEY column keeps a
// map from the key's canonical string to its row, so uniqueness checks
// and equality point-lookups are O(1) instead of a full scan. The index
// is maintained by every mutation path, including transaction rollback
// and snapshot restore; `go test ./internal/sqlmini -run TestPK` and the
// property suite cover the invariants.

// pkCol returns the index of the table's PRIMARY KEY column, or -1.
func (t *Table) pkCol() int {
	for i, c := range t.Cols {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// initIndex prepares the PK index structures; call after Cols are set.
func (t *Table) initIndex() {
	t.pk = t.pkCol()
	if t.pk >= 0 {
		t.pkIdx = make(map[string]*Row)
	}
}

// pkKey canonicalizes a PK value for indexing. Values are stored
// post-coercion, so one column holds one type and Str() is injective
// within it.
func pkKey(v Value) string { return v.Str() }

// indexInsert registers a row; caller has already checked uniqueness.
func (t *Table) indexInsert(r *Row) {
	if t.pk < 0 {
		return
	}
	v := r.Vals[t.pk]
	if v.IsNull() {
		return
	}
	t.pkIdx[pkKey(v)] = r
}

// indexRemove unregisters a row.
func (t *Table) indexRemove(r *Row) {
	if t.pk < 0 {
		return
	}
	v := r.Vals[t.pk]
	if v.IsNull() {
		return
	}
	key := pkKey(v)
	// Only remove if the slot still points at this row (a concurrent
	// re-insert of the same key after a delete must not be clobbered by
	// a late undo).
	if t.pkIdx[key] == r {
		delete(t.pkIdx, key)
	}
}

// indexUpdate moves a row's registration when its key changed.
func (t *Table) indexUpdate(r *Row, oldVals []Value) {
	if t.pk < 0 {
		return
	}
	oldV, newV := oldVals[t.pk], r.Vals[t.pk]
	if Equal(oldV, newV) || (oldV.IsNull() && newV.IsNull()) {
		return
	}
	if !oldV.IsNull() {
		key := pkKey(oldV)
		if t.pkIdx[key] == r {
			delete(t.pkIdx, key)
		}
	}
	if !newV.IsNull() {
		t.pkIdx[pkKey(newV)] = r
	}
}

// lookupPK finds the row holding the given PK value, if any.
func (t *Table) lookupPK(v Value) (*Row, bool) {
	if t.pk < 0 || v.IsNull() {
		return nil, false
	}
	r, ok := t.pkIdx[pkKey(v)]
	return r, ok
}

// rebuildIndex reconstructs the PK index from the rows (snapshot
// restore).
func (t *Table) rebuildIndex() {
	t.initIndex()
	if t.pk < 0 {
		return
	}
	for _, r := range t.Rows {
		t.indexInsert(r)
	}
}
