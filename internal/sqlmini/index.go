package sqlmini

import "sort"

// Indexes. Every table with a PRIMARY KEY column keeps a map from the
// key's canonical string to its row, so uniqueness checks and equality
// point-lookups are O(1) instead of a full scan. Tables may additionally
// carry secondary indexes (declared with CREATE INDEX or
// DB.EnsureIndex/EnsureOrderedIndex) in one of two kinds:
//
//   - hash (the default): a map from a column's canonical key to the
//     bucket of rows holding that value, in insertion order. Serves
//     equality point-lookups.
//   - ordered: a sorted list of key groups over the column, each group
//     holding its rows in insertion order. Serves equality seeks in
//     O(log n) and, through the planner, range scans (col > k, BETWEEN,
//     expiry sweeps) by seeking the boundary and walking groups in key
//     order. Inserting into the middle is O(groups) due to the slice
//     shift; lease-style workloads append near the end.
//
// All indexes are maintained by every mutation path — INSERT, UPDATE,
// DELETE, transaction rollback, and snapshot restore; `go test
// ./internal/sqlmini -run 'TestPK|TestSecondary|TestOrdered'` and the
// property suites cover the invariants. The query planner (plan.go)
// drives SELECT/UPDATE/DELETE off these indexes when the WHERE clause
// has a usable equality or range conjunct.
//
// Ordered-index grouping invariant: rows are grouped by Compare == 0
// over the stored column values. Stored values are uniformly typed
// (post-coercion), where Compare is a total order, so all rows of one
// group compare identically against any probe key — which is what lets
// the planner treat a group as one unit when cutting range boundaries.

// pkCol returns the index of the table's PRIMARY KEY column, or -1.
func (t *Table) pkCol() int {
	for i, c := range t.Cols {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// initIndex prepares the PK index structures; call after Cols are set.
// Secondary indexes are added separately (addIndex) and survive this
// call.
func (t *Table) initIndex() {
	t.pk = t.pkCol()
	if t.pk >= 0 {
		t.pkIdx = make(map[string]*Row)
	}
}

// pkKey canonicalizes a key value for hashing. Values are stored
// post-coercion, so one column holds one type and Str() is injective
// within it — except the DOUBLE zeroes, which compare equal but format
// differently, so negative zero is folded into "0".
func pkKey(v Value) string {
	if v.Type() == TypeDouble && v.f == 0 {
		return "0"
	}
	return v.Str()
}

// orderedGroup is one key group of an ordered index: the rows whose
// column value compares equal to key, in insertion order. key is the
// value of the first row that opened the group.
type orderedGroup struct {
	key  Value
	rows []*Row
}

// secondaryIndex is one non-unique single-column index, hash or ordered
// (kind). Exactly one of buckets/groups is live. Buckets and groups keep
// rows in insertion order; removal preserves it. groups holds pointers
// so the O(n) slice shifts of group insertion/removal move 8-byte
// words, not Value-carrying structs.
type secondaryIndex struct {
	name string
	col  int
	kind IndexKind

	buckets map[string][]*Row // kind == IndexHash
	groups  []*orderedGroup   // kind == IndexOrdered, sorted by key
}

// newSecondaryIndex allocates the backing structure for the given kind.
func newSecondaryIndex(name string, col int, kind IndexKind) *secondaryIndex {
	ix := &secondaryIndex{name: name, col: col, kind: kind}
	ix.reset()
	return ix
}

// reset clears the index to empty (rebuildIndex repopulates it).
func (ix *secondaryIndex) reset() {
	if ix.kind == IndexOrdered {
		ix.groups = nil
		return
	}
	ix.buckets = make(map[string][]*Row)
}

// indexOn returns the secondary index covering column col, if any.
func (t *Table) indexOn(col int) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// removeIndex drops one secondary index (the hash→ordered upgrade path).
func (t *Table) removeIndex(target *secondaryIndex) {
	for i, ix := range t.indexes {
		if ix == target {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return
		}
	}
}

// indexNamed returns the secondary index with the given name, if any.
func (t *Table) indexNamed(name string) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.name == name {
			return ix
		}
	}
	return nil
}

// addIndex creates a secondary index over column col and backfills it
// from the existing rows. Caller has validated name/column.
func (t *Table) addIndex(name string, col int, kind IndexKind) {
	ix := newSecondaryIndex(name, col, kind)
	for _, r := range t.Rows {
		ix.insert(r)
	}
	t.indexes = append(t.indexes, ix)
}

// seek returns the position of the first group whose key compares >= v
// (== v exists iff the returned found is true). Caller guarantees v is
// order-compatible with the column type (see orderedProbeOK).
func (ix *secondaryIndex) seek(v Value) (pos int, found bool) {
	pos = sort.Search(len(ix.groups), func(i int) bool {
		c, _ := Compare(ix.groups[i].key, v)
		return c >= 0
	})
	if pos < len(ix.groups) {
		if c, ok := Compare(ix.groups[pos].key, v); ok && c == 0 {
			found = true
		}
	}
	return pos, found
}

func (ix *secondaryIndex) insert(r *Row) {
	v := r.Vals[ix.col]
	if v.IsNull() {
		return // NULLs are not indexed; no predicate on the column matches them
	}
	if ix.kind == IndexHash {
		key := pkKey(v)
		ix.buckets[key] = append(ix.buckets[key], r)
		return
	}
	pos, found := ix.seek(v)
	if found {
		ix.groups[pos].rows = append(ix.groups[pos].rows, r)
		return
	}
	ix.groups = append(ix.groups, nil)
	copy(ix.groups[pos+1:], ix.groups[pos:])
	ix.groups[pos] = &orderedGroup{key: v, rows: []*Row{r}}
}

func (ix *secondaryIndex) remove(r *Row, v Value) {
	if v.IsNull() {
		return
	}
	if ix.kind == IndexHash {
		key := pkKey(v)
		removeRowFrom(ix.buckets[key], r, func(rest []*Row) {
			if len(rest) == 0 {
				delete(ix.buckets, key)
			} else {
				ix.buckets[key] = rest
			}
		})
		return
	}
	pos, found := ix.seek(v)
	if !found {
		return
	}
	removeRowFrom(ix.groups[pos].rows, r, func(rest []*Row) {
		if len(rest) == 0 {
			n := len(ix.groups)
			copy(ix.groups[pos:], ix.groups[pos+1:])
			ix.groups[n-1] = nil // drop the tail's group reference
			ix.groups = ix.groups[:n-1]
		} else {
			ix.groups[pos].rows = rest
		}
	})
}

// removeRowFrom deletes the pointer r from rows in place, preserving
// order, and hands the shortened slice to commit. No-op if r is absent.
func removeRowFrom(rows []*Row, r *Row, commit func([]*Row)) {
	for i, br := range rows {
		if br == r {
			copy(rows[i:], rows[i+1:])
			rows[len(rows)-1] = nil // drop the tail's row reference
			commit(rows[:len(rows)-1])
			return
		}
	}
}

// lookup returns the rows holding a value equal to v, in insertion
// order. The returned slice may alias the index; callers that mutate
// rows while iterating must copy it first (plan.go does). For ordered
// indexes the caller must have checked orderedProbeOK.
func (ix *secondaryIndex) lookup(v Value) []*Row {
	if v.IsNull() {
		return nil
	}
	if ix.kind == IndexHash {
		return ix.buckets[pkKey(v)]
	}
	pos, found := ix.seek(v)
	if !found {
		return nil
	}
	// Groups are distinct under the stored type's Compare, but a probe
	// of another type can project several adjacent groups onto one value
	// (a 2^53 DOUBLE equals two adjacent BIGINT keys), and the scan
	// would match them all — so gather every Compare==0 group.
	end := pos + 1
	for end < len(ix.groups) {
		if c, ok := Compare(ix.groups[end].key, v); !ok || c != 0 {
			break
		}
		end++
	}
	if end == pos+1 {
		return ix.groups[pos].rows
	}
	var out []*Row
	for i := pos; i < end; i++ {
		out = append(out, ix.groups[i].rows...)
	}
	return out
}

// rangeRows returns a fresh slice of all rows in groups within
// [lo, hi], where a NULL bound means unbounded on that side. Bounds are
// inclusive: the planner widens strict bounds to their group boundary
// and lets the residual WHERE cut the exact edge, so candidate
// completeness never depends on strictness handling here. Caller must
// have checked orderedProbeOK for each non-NULL bound.
func (ix *secondaryIndex) rangeRows(lo, hi Value) []*Row {
	start := 0
	if !lo.IsNull() {
		start, _ = ix.seek(lo)
	}
	end := len(ix.groups)
	if !hi.IsNull() {
		end = sort.Search(len(ix.groups), func(i int) bool {
			c, _ := Compare(ix.groups[i].key, hi)
			return c > 0
		})
	}
	var out []*Row
	for i := start; i < end; i++ {
		out = append(out, ix.groups[i].rows...)
	}
	return out
}

// indexInsert registers a row in the PK and all secondary indexes;
// caller has already checked uniqueness.
func (t *Table) indexInsert(r *Row) {
	if t.pk >= 0 {
		if v := r.Vals[t.pk]; !v.IsNull() {
			t.pkIdx[pkKey(v)] = r
		}
	}
	for _, ix := range t.indexes {
		ix.insert(r)
	}
}

// indexRemove unregisters a row from all indexes.
func (t *Table) indexRemove(r *Row) {
	if t.pk >= 0 {
		if v := r.Vals[t.pk]; !v.IsNull() {
			key := pkKey(v)
			// Only remove if the slot still points at this row (a
			// concurrent re-insert of the same key after a delete must not
			// be clobbered by a late undo).
			if t.pkIdx[key] == r {
				delete(t.pkIdx, key)
			}
		}
	}
	for _, ix := range t.indexes {
		ix.remove(r, r.Vals[ix.col])
	}
}

// indexUpdate moves a row's registrations for keys that changed.
func (t *Table) indexUpdate(r *Row, oldVals []Value) {
	if t.pk >= 0 {
		oldV, newV := oldVals[t.pk], r.Vals[t.pk]
		if !Equal(oldV, newV) && !(oldV.IsNull() && newV.IsNull()) {
			if !oldV.IsNull() {
				key := pkKey(oldV)
				if t.pkIdx[key] == r {
					delete(t.pkIdx, key)
				}
			}
			if !newV.IsNull() {
				t.pkIdx[pkKey(newV)] = r
			}
		}
	}
	for _, ix := range t.indexes {
		oldV, newV := oldVals[ix.col], r.Vals[ix.col]
		switch {
		case oldV.IsNull() && newV.IsNull():
		case !oldV.IsNull() && !newV.IsNull() && sameIndexKey(ix.kind, oldV, newV):
		default:
			ix.remove(r, oldV)
			ix.insert(r)
		}
	}
}

// sameIndexKey reports whether old and new (both non-NULL) land in the
// same bucket/group, i.e. no index movement is needed. Hash buckets key
// on the canonical string; ordered groups key on Compare equality.
func sameIndexKey(kind IndexKind, oldV, newV Value) bool {
	if kind == IndexHash {
		return pkKey(oldV) == pkKey(newV)
	}
	return Equal(oldV, newV)
}

// lookupPK finds the row holding the given PK value, if any.
func (t *Table) lookupPK(v Value) (*Row, bool) {
	if t.pk < 0 || v.IsNull() {
		return nil, false
	}
	r, ok := t.pkIdx[pkKey(v)]
	return r, ok
}

// rebuildIndex reconstructs the PK index and every secondary index from
// the rows (snapshot restore).
func (t *Table) rebuildIndex() {
	t.initIndex()
	for _, ix := range t.indexes {
		ix.reset()
	}
	for _, r := range t.Rows {
		t.indexInsert(r)
	}
}
