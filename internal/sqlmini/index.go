package sqlmini

import (
	"strconv"
	"strings"
	"sync"
)

// Indexes. Every table with a PRIMARY KEY column keeps a hash index
// from the key's canonical string to the rows that ever held it, so
// uniqueness checks and equality point-lookups are O(1) instead of a
// full scan. Tables may additionally carry secondary indexes (declared
// with CREATE INDEX or DB.EnsureIndex/EnsureOrderedIndex) in one of
// two kinds:
//
//   - hash (the default, single-column): a concurrent map from a
//     column's canonical key to the bucket of rows holding that value,
//     in insertion order. Serves equality point-lookups.
//   - ordered (single- or multi-column): a skiplist of key groups over
//     the column tuple, each group holding its rows in insertion
//     order. Serves equality seeks in O(log n) and, through the
//     planner, range scans — including composite plans that pin a
//     prefix of the columns by equality and range over the next one.
//
// MVCC index contract: entries are inserted eagerly (INSERT, UPDATE
// key moves, rollback re-registration) but removed lazily — a key
// change keeps the old entry because readers at older snapshots still
// reach the row through it. Index lookups therefore return a superset
// of the matching rows; execution always filters candidates by version
// visibility and the statement's predicate, and range/multi-group
// gathers deduplicate (one row can legitimately sit in two groups).
// The deferred-GC queue (mvcc.go) drops entries once no live version
// carries the key and no registered reader can need them.
//
// Ordered-index grouping invariant: rows are grouped by Compare == 0
// over the stored tuples. Stored values are uniformly typed per column
// (post-coercion), where Compare is a total order, so all rows of one
// group compare identically against any probe key — which is what lets
// the planner treat a group as one unit when cutting range boundaries.

// pkCol returns the index of the table's PRIMARY KEY column, or -1.
func (t *Table) pkCol() int {
	for i, c := range t.Cols {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// initIndex prepares the PK index structures; call after Cols are set.
// Secondary indexes are added separately (addIndex) and survive this
// call.
func (t *Table) initIndex() {
	t.pk = t.pkCol()
	if t.pk >= 0 {
		t.pkIx = newHashIndex([]int{t.pk})
	}
	if t.rows.Load() == nil {
		t.rows.Store(newRowArr(8))
	}
	if t.indexes.Load() == nil {
		empty := []*secondaryIndex{}
		t.indexes.Store(&empty)
	}
}

// loadIndexes returns the published secondary-index set.
func (t *Table) loadIndexes() []*secondaryIndex { return *t.indexes.Load() }

// storeIndexes publishes a new secondary-index set (DDL only).
func (t *Table) storeIndexes(ixs []*secondaryIndex) { t.indexes.Store(&ixs) }

// pkKey canonicalizes a key value for hashing. Values are stored
// post-coercion, so one column holds one type and Str() is injective
// within it — except the DOUBLE zeroes, which compare equal but format
// differently, so negative zero is folded into "0".
func pkKey(v Value) string {
	if v.Type() == TypeDouble && v.f == 0 {
		return "0"
	}
	return v.Str()
}

// tupleKey canonicalizes a key tuple: single-column keys use pkKey
// directly (the hot path), longer tuples length-prefix each part so no
// byte sequence is ambiguous.
func tupleKey(key []Value) string {
	if len(key) == 1 {
		return pkKey(key[0])
	}
	var sb strings.Builder
	for _, v := range key {
		p := pkKey(v)
		sb.WriteString(strconv.Itoa(len(p)))
		sb.WriteByte(':')
		sb.WriteString(p)
	}
	return sb.String()
}

// tupleEqualAt reports whether vals projected through cols equals key
// by Compare (NULL components never match).
func tupleEqualAt(vals []Value, cols []int, key []Value) bool {
	for i, ci := range cols {
		v := vals[ci]
		if v.IsNull() || key[i].IsNull() {
			return false
		}
		c, ok := Compare(v, key[i])
		if !ok || c != 0 {
			return false
		}
	}
	return true
}

// hashIndex is a concurrent non-unique hash index: a sync.Map from the
// canonical tuple key to an immutable bucket slice. Readers Load
// lock-free; the single writer (table latch held) replaces buckets
// copy-on-write.
type hashIndex struct {
	cols []int
	m    sync.Map // string -> []*Row (immutable)
}

func newHashIndex(cols []int) *hashIndex { return &hashIndex{cols: cols} }

// lookup returns the bucket for key; the slice is immutable.
func (h *hashIndex) lookup(key []Value) []*Row {
	v, ok := h.m.Load(tupleKey(key))
	if !ok {
		return nil
	}
	return v.([]*Row)
}

// insert adds r to key's bucket if absent. Caller holds the latch.
func (h *hashIndex) insert(key []Value, r *Row) {
	ks := tupleKey(key)
	var old []*Row
	if v, ok := h.m.Load(ks); ok {
		old = v.([]*Row)
	}
	for _, br := range old {
		if br == r {
			return
		}
	}
	grown := make([]*Row, len(old)+1)
	copy(grown, old)
	grown[len(old)] = r
	h.m.Store(ks, grown)
}

// remove drops r from key's bucket. Caller holds the latch.
func (h *hashIndex) remove(key []Value, r *Row) {
	ks := tupleKey(key)
	v, ok := h.m.Load(ks)
	if !ok {
		return
	}
	old := v.([]*Row)
	for i, br := range old {
		if br != r {
			continue
		}
		if len(old) == 1 {
			h.m.Delete(ks)
			return
		}
		rest := make([]*Row, 0, len(old)-1)
		rest = append(rest, old[:i]...)
		rest = append(rest, old[i+1:]...)
		h.m.Store(ks, rest)
		return
	}
}

// each visits every (key, bucket) pair; writer-side helper for
// consistency checks.
func (h *hashIndex) each(fn func(key string, rows []*Row)) {
	h.m.Range(func(k, v any) bool {
		fn(k.(string), v.([]*Row))
		return true
	})
}

// secondaryIndex is one non-unique index, hash (single-column) or
// ordered (single- or multi-column skiplist).
type secondaryIndex struct {
	name string
	cols []int
	kind IndexKind

	hash *hashIndex // kind == IndexHash
	skip *skipList  // kind == IndexOrdered

	// shadow is the hash structure this ordered index superseded via the
	// in-place upgrade path (declareIndex). A prepared plan bound just
	// before the upgrade may still probe it, so inserts keep feeding it;
	// entries are never GC'd from a shadow (lookups tolerate supersets,
	// and upgrades are rare enough that the leak is acceptable).
	shadow *hashIndex
}

// newSecondaryIndex allocates the backing structure for the given kind.
func newSecondaryIndex(name string, cols []int, kind IndexKind) *secondaryIndex {
	ix := &secondaryIndex{name: name, cols: append([]int(nil), cols...), kind: kind}
	if kind == IndexOrdered {
		ix.skip = newSkipList(ix.cols)
	} else {
		ix.hash = newHashIndex(ix.cols)
	}
	return ix
}

// colNames renders the indexed column list for Explain and snapshots.
func (ix *secondaryIndex) colNames(t *Table) []string {
	out := make([]string, len(ix.cols))
	for i, ci := range ix.cols {
		out[i] = t.Cols[ci].Name
	}
	return out
}

// keyFor projects a row's values into the index's tuple key; ok=false
// when any component is NULL (NULL tuples are not indexed — no
// equality or range predicate matches them).
func (ix *secondaryIndex) keyFor(vals []Value) ([]Value, bool) {
	key := make([]Value, len(ix.cols))
	for i, ci := range ix.cols {
		v := vals[ci]
		if v.IsNull() {
			return nil, false
		}
		key[i] = v
	}
	return key, true
}

// insertFor registers vals' key for r (no-op on a NULL component or if
// already present). Caller holds the latch.
func (ix *secondaryIndex) insertFor(vals []Value, r *Row) {
	key, ok := ix.keyFor(vals)
	if !ok {
		return
	}
	if ix.kind == IndexHash {
		ix.hash.insert(key, r)
		return
	}
	ix.skip.insert(key, r)
	if ix.shadow != nil {
		ix.shadow.insert(key, r)
	}
}

// removeFor unregisters vals' key for r. Caller holds the latch (GC
// paths only; normal key changes are deferred via the GC queue).
func (ix *secondaryIndex) removeFor(vals []Value, r *Row) {
	key, ok := ix.keyFor(vals)
	if !ok {
		return
	}
	if ix.kind == IndexHash {
		ix.hash.remove(key, r)
		return
	}
	ix.skip.remove(key, r)
}

// lookup returns the candidate rows for an equality probe on the full
// tuple. The result may be a superset (stale entries) and, for ordered
// indexes, may contain duplicates across adjacent groups; callers
// filter and deduplicate. Lock-free.
func (ix *secondaryIndex) lookup(key []Value) []*Row {
	if ix.kind == IndexHash {
		return ix.hash.lookup(key)
	}
	return ix.skip.lookupEqual(key, nil)
}

// sameKey reports whether two keys land in the same bucket/group, i.e.
// no index movement is needed. Hash buckets key on the canonical
// string; ordered groups key on Compare equality (Equal suffices for
// uniformly typed stored values).
func (ix *secondaryIndex) sameKey(a, b []Value) bool {
	if ix.kind == IndexHash {
		return tupleKey(a) == tupleKey(b)
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// indexOn returns the first secondary index whose leading column is
// col; exact=true restricts to single-column indexes (hash candidates
// must cover the whole tuple).
func (t *Table) indexOn(col int) *secondaryIndex {
	for _, ix := range t.loadIndexes() {
		if ix.cols[0] == col {
			return ix
		}
	}
	return nil
}

// indexNamed returns the secondary index with the given name, if any.
func (t *Table) indexNamed(name string) *secondaryIndex {
	for _, ix := range t.loadIndexes() {
		if ix.name == name {
			return ix
		}
	}
	return nil
}

// indexWithCols returns the secondary index over exactly cols, if any.
func (t *Table) indexWithCols(cols []int) *secondaryIndex {
	for _, ix := range t.loadIndexes() {
		if len(ix.cols) != len(cols) {
			continue
		}
		same := true
		for i := range cols {
			if ix.cols[i] != cols[i] {
				same = false
				break
			}
		}
		if same {
			return ix
		}
	}
	return nil
}

// removeIndex drops one secondary index (the hash→ordered upgrade
// path). Caller holds ddlMu and the table latch.
func (t *Table) removeIndex(target *secondaryIndex) {
	old := t.loadIndexes()
	out := make([]*secondaryIndex, 0, len(old))
	for _, ix := range old {
		if ix != target {
			out = append(out, ix)
		}
	}
	t.storeIndexes(out)
}

// addIndex creates a secondary index over cols and backfills it from
// every live version of every row — not just the current ones — so
// readers at older snapshots can still find rows whose key has since
// moved. Caller holds ddlMu and the table latch; name/columns are
// validated.
func (t *Table) addIndex(name string, cols []int, kind IndexKind) {
	ix := newSecondaryIndex(name, cols, kind)
	for _, r := range t.rows.Load().snapshot() {
		for v := r.v.Load(); v != nil; v = v.prev.Load() {
			if !v.dead {
				ix.insertFor(v.vals, r)
			}
		}
	}
	t.storeIndexes(append(append([]*secondaryIndex{}, t.loadIndexes()...), ix))
}

// indexInsert registers a freshly inserted row in the PK and all
// secondary indexes; caller holds the latch and has checked
// uniqueness.
func (t *Table) indexInsert(r *Row, vals []Value) {
	if t.pk >= 0 {
		if v := vals[t.pk]; !v.IsNull() {
			t.pkIx.insert(vals[t.pk:t.pk+1], r)
		}
	}
	for _, ix := range t.loadIndexes() {
		ix.insertFor(vals, r)
	}
}

// indexEnsure re-registers a row under vals' keys if absent (rollback
// restoring values whose entries GC may have dropped). Caller holds
// the latch.
func (t *Table) indexEnsure(r *Row, vals []Value) {
	t.indexInsert(r, vals) // insert paths are add-if-absent
}

// indexUpdate registers a row's new keys after an update. Old entries
// stay for older snapshots; each changed key enqueues a deferred
// removal hint for GC. Caller holds the latch; c is the statement's
// commit number.
func (t *Table) indexUpdate(r *Row, oldVals, newVals []Value, c uint64) {
	if t.pk >= 0 {
		oldV, newV := oldVals[t.pk], newVals[t.pk]
		oldOK, newOK := !oldV.IsNull(), !newV.IsNull()
		moved := oldOK != newOK || (oldOK && newOK && tupleKey(oldVals[t.pk:t.pk+1]) != tupleKey(newVals[t.pk:t.pk+1]))
		if moved {
			if newOK {
				t.pkIx.insert(newVals[t.pk:t.pk+1], r)
			}
			if oldOK {
				t.gc.enqueue(gcItem{c: c, row: r, hash: t.pkIx, key: []Value{oldV}})
			}
		}
	}
	for _, ix := range t.loadIndexes() {
		oldKey, oldOK := ix.keyFor(oldVals)
		newKey, newOK := ix.keyFor(newVals)
		if oldOK && newOK && ix.sameKey(oldKey, newKey) {
			continue
		}
		if newOK {
			ix.insertFor(newVals, r)
		}
		if oldOK {
			it := gcItem{c: c, row: r, key: oldKey}
			if ix.kind == IndexHash {
				it.hash = ix.hash
			} else {
				it.skip = ix.skip
			}
			t.gc.enqueue(it)
		}
	}
}

// lookupPKCurrent finds the live row currently holding the given PK
// value, if any. Caller holds the latch (uniqueness checks) or accepts
// latest-committed semantics (FK existence checks).
func (t *Table) lookupPKCurrent(v Value) (*Row, bool) {
	if t.pk < 0 || v.IsNull() {
		return nil, false
	}
	for _, r := range t.pkIx.lookup([]Value{v}) {
		vals := r.curVals()
		if vals != nil && Equal(vals[t.pk], v) {
			return r, true
		}
	}
	return nil, false
}

// pkCandidates returns the PK bucket for a probe (a superset: stale
// entries and dead rows filter out downstream). Lock-free.
func (t *Table) pkCandidates(v Value) []*Row {
	if t.pk < 0 || v.IsNull() {
		return nil
	}
	return t.pkIx.lookup([]Value{v})
}

// rebuildIndex reconstructs the PK index and every secondary index
// from the current rows (snapshot restore, on fresh tables).
func (t *Table) rebuildIndex() {
	t.pk = t.pkCol()
	if t.pk >= 0 {
		t.pkIx = newHashIndex([]int{t.pk})
	}
	ixs := t.loadIndexes()
	fresh := make([]*secondaryIndex, len(ixs))
	for i, ix := range ixs {
		fresh[i] = newSecondaryIndex(ix.name, ix.cols, ix.kind)
	}
	t.storeIndexes(fresh)
	for _, r := range t.rows.Load().snapshot() {
		vals := r.curVals()
		if vals != nil {
			t.indexInsert(r, vals)
		}
	}
}
