package sqlmini

import (
	"errors"
	"testing"
	"time"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE users (
		id INTEGER NOT NULL PRIMARY KEY,
		name VARCHAR NOT NULL,
		age INTEGER,
		email VARCHAR
	)`)
	db.MustExec(`INSERT INTO users (id, name, age, email) VALUES
		(1, 'alice', 30, 'alice@example.com'),
		(2, 'bob', 25, NULL),
		(3, 'carol', 35, 'carol@example.com'),
		(4, 'dave', NULL, 'dave@example.com')`)
	return db
}

func TestSelectAll(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT * FROM users ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || len(res.Cols) != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Cols))
	}
	if res.Rows[0][1].Str() != "alice" {
		t.Errorf("first row name = %s", res.Rows[0][1])
	}
}

func TestSelectWhere(t *testing.T) {
	db := newTestDB(t)
	tests := []struct {
		name  string
		sql   string
		args  []any
		wants []string // expected names in order
	}{
		{name: "gt", sql: "SELECT name FROM users WHERE age > 26 ORDER BY name", wants: []string{"alice", "carol"}},
		{name: "eq", sql: "SELECT name FROM users WHERE name = 'bob'", wants: []string{"bob"}},
		{name: "neq", sql: "SELECT name FROM users WHERE id <> 1 ORDER BY name", wants: []string{"bob", "carol", "dave"}},
		{name: "null cmp excluded", sql: "SELECT name FROM users WHERE age < 100 ORDER BY name", wants: []string{"alice", "bob", "carol"}},
		{name: "is null", sql: "SELECT name FROM users WHERE age IS NULL", wants: []string{"dave"}},
		{name: "is not null", sql: "SELECT name FROM users WHERE email IS NOT NULL AND age IS NOT NULL ORDER BY name", wants: []string{"alice", "carol"}},
		{name: "like", sql: "SELECT name FROM users WHERE email LIKE '%example.com' ORDER BY name", wants: []string{"alice", "carol", "dave"}},
		{name: "like case-insensitive", sql: "SELECT name FROM users WHERE name LIKE 'ALICE'", wants: []string{"alice"}},
		{name: "not like", sql: "SELECT name FROM users WHERE name NOT LIKE '%a%' ORDER BY name", wants: []string{"bob"}},
		{name: "between", sql: "SELECT name FROM users WHERE age BETWEEN 25 AND 30 ORDER BY name", wants: []string{"alice", "bob"}},
		{name: "not between", sql: "SELECT name FROM users WHERE age NOT BETWEEN 25 AND 30", wants: []string{"carol"}},
		{name: "in", sql: "SELECT name FROM users WHERE id IN (1, 3) ORDER BY name", wants: []string{"alice", "carol"}},
		{name: "not in", sql: "SELECT name FROM users WHERE id NOT IN (1, 2, 3)", wants: []string{"dave"}},
		{name: "positional param", sql: "SELECT name FROM users WHERE id = ?", args: []any{2}, wants: []string{"bob"}},
		{name: "named param", sql: "SELECT name FROM users WHERE name LIKE $pat ORDER BY name", args: []any{Args{"pat": "%o%"}}, wants: []string{"bob", "carol"}},
		{name: "and or", sql: "SELECT name FROM users WHERE (age > 30 OR age < 26) AND email IS NOT NULL", wants: []string{"carol"}},
		{name: "not", sql: "SELECT name FROM users WHERE NOT (id = 1) AND age IS NOT NULL ORDER BY name", wants: []string{"bob", "carol"}},
		{name: "limit", sql: "SELECT name FROM users ORDER BY id LIMIT 2", wants: []string{"alice", "bob"}},
		{name: "arith in where", sql: "SELECT name FROM users WHERE age * 2 = 50", wants: []string{"bob"}},
		{name: "lower fn", sql: "SELECT name FROM users WHERE LOWER(name) = 'alice'", wants: []string{"alice"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := db.Query(tt.sql, tt.args...)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, r := range res.Rows {
				got = append(got, r[0].Str())
			}
			if len(got) != len(tt.wants) {
				t.Fatalf("got %v, want %v", got, tt.wants)
			}
			for i := range got {
				if got[i] != tt.wants[i] {
					t.Fatalf("got %v, want %v", got, tt.wants)
				}
			}
		})
	}
}

func TestOrderByDescAndNulls(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT name FROM users ORDER BY age DESC, name")
	if err != nil {
		t.Fatal(err)
	}
	// Descending: NULL sorts last when DESC (NULLs first ascending).
	want := []string{"carol", "alice", "bob", "dave"}
	for i, w := range want {
		if res.Rows[i][0].Str() != w {
			t.Fatalf("row %d = %s, want %s", i, res.Rows[i][0], w)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT count(*), count(age), min(age), max(age), sum(age), avg(age) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 4 {
		t.Errorf("count(*) = %d", r[0].Int())
	}
	if r[1].Int() != 3 {
		t.Errorf("count(age) = %d (NULL should not count)", r[1].Int())
	}
	if r[2].Int() != 25 || r[3].Int() != 35 {
		t.Errorf("min/max = %d/%d", r[2].Int(), r[3].Int())
	}
	if r[4].Int() != 90 {
		t.Errorf("sum = %d", r[4].Int())
	}
	if got := r[5].Float(); got != 30 {
		t.Errorf("avg = %v", got)
	}
}

func TestAggregateWithWhereEmptyResult(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT count(*), max(age) FROM users WHERE id > 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("count = %d", res.Rows[0][0].Int())
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("max over empty set should be NULL, got %s", res.Rows[0][1])
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("UPDATE users SET age = age + 1 WHERE age IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Fatalf("affected = %d", res.Affected)
	}
	r, err := db.Query("SELECT age FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != 31 {
		t.Errorf("age = %d", r.Rows[0][0].Int())
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("DELETE FROM users WHERE age IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	r, _ := db.Query("SELECT count(*) FROM users")
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("remaining = %d", r.Rows[0][0].Int())
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
	// Update into a conflicting key must also fail.
	_, err = db.Exec("UPDATE users SET id = 2 WHERE id = 1")
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("update err = %v, want ErrDuplicateKey", err)
	}
	// Updating a row's key to itself is fine.
	if _, err := db.Exec("UPDATE users SET id = 1 WHERE id = 1"); err != nil {
		t.Fatalf("self-update: %v", err)
	}
}

func TestNotNullViolation(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("INSERT INTO users (id, name) VALUES (99, NULL)")
	if !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v, want ErrNotNull", err)
	}
	// Omitted NOT NULL column defaults to NULL and must fail too.
	_, err = db.Exec("INSERT INTO users (id) VALUES (99)")
	if !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v, want ErrNotNull", err)
	}
}

func TestForeignKey(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE driver (driver_id INTEGER NOT NULL PRIMARY KEY)")
	db.MustExec("CREATE TABLE perm (id INTEGER, driver_id INTEGER NOT NULL REFERENCES driver(driver_id))")
	db.MustExec("INSERT INTO driver (driver_id) VALUES (7)")
	if _, err := db.Exec("INSERT INTO perm (id, driver_id) VALUES (1, 7)"); err != nil {
		t.Fatalf("valid FK insert: %v", err)
	}
	_, err := db.Exec("INSERT INTO perm (id, driver_id) VALUES (2, 8)")
	if !errors.Is(err, ErrForeignKey) {
		t.Fatalf("err = %v, want ErrForeignKey", err)
	}
}

func TestNoSuchTableAndColumn(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT * FROM missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Query("SELECT nope FROM users"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Exec("INSERT INTO users (nope) VALUES (1)"); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingParam(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("SELECT * FROM users WHERE id = $missing", Args{}); !errors.Is(err, ErrMissingParam) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Query("SELECT * FROM users WHERE id = ?"); !errors.Is(err, ErrMissingParam) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	db.MustExec("DROP TABLE users")
	if _, err := db.Query("SELECT * FROM users"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("table should be gone")
	}
	if _, err := db.Exec("DROP TABLE users"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("double drop should fail")
	}
	db.MustExec("DROP TABLE IF EXISTS users") // no error
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := newTestDB(t)
	db.MustExec("CREATE TABLE IF NOT EXISTS users (x INTEGER)")
	// Original schema preserved.
	if _, err := db.Query("SELECT name FROM users LIMIT 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE users (x INTEGER)"); err == nil {
		t.Fatal("duplicate CREATE should fail without IF NOT EXISTS")
	}
}

func TestNowWithClock(t *testing.T) {
	fixed := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	db := NewDB(WithClock(func() time.Time { return fixed }))
	res, err := db.Query("SELECT now()")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Time().Equal(fixed) {
		t.Errorf("now() = %v", res.Rows[0][0].Time())
	}
}

func TestTimestampBetweenNow(t *testing.T) {
	cur := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	db := NewDB(WithClock(func() time.Time { return cur }))
	db.MustExec("CREATE TABLE windows (id INTEGER, start_date TIMESTAMP, end_date TIMESTAMP)")
	db.MustExec("INSERT INTO windows (id, start_date, end_date) VALUES (1, ?, ?)",
		cur.Add(-time.Hour), cur.Add(time.Hour))
	db.MustExec("INSERT INTO windows (id, start_date, end_date) VALUES (2, ?, ?)",
		cur.Add(time.Hour), cur.Add(2*time.Hour))
	res, err := db.Query("SELECT id FROM windows WHERE now() BETWEEN start_date AND end_date")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestTransactionCommitAndRollback(t *testing.T) {
	db := newTestDB(t)
	s := db.NewSession()
	defer s.Close()

	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if !s.InTx() {
		t.Fatal("should be in tx")
	}
	s.Exec("INSERT INTO users (id, name) VALUES (10, 'eve')") //nolint:errcheck
	s.Exec("UPDATE users SET age = 99 WHERE id = 1")          //nolint:errcheck
	s.Exec("DELETE FROM users WHERE id = 2")                  //nolint:errcheck
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}

	r, _ := db.Query("SELECT count(*) FROM users")
	if r.Rows[0][0].Int() != 4 {
		t.Fatalf("rollback failed: count = %d", r.Rows[0][0].Int())
	}
	r, _ = db.Query("SELECT age FROM users WHERE id = 1")
	if r.Rows[0][0].Int() != 30 {
		t.Fatalf("rollback failed: age = %d", r.Rows[0][0].Int())
	}
	r, _ = db.Query("SELECT count(*) FROM users WHERE id = 2")
	if r.Rows[0][0].Int() != 1 {
		t.Fatal("rollback failed: deleted row not restored")
	}

	// Now commit a change.
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	s.Exec("INSERT INTO users (id, name) VALUES (11, 'frank')") //nolint:errcheck
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Query("SELECT count(*) FROM users")
	if r.Rows[0][0].Int() != 5 {
		t.Fatalf("commit failed: count = %d", r.Rows[0][0].Int())
	}
}

func TestTransactionErrors(t *testing.T) {
	db := newTestDB(t)
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("COMMIT"); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Exec("ROLLBACK"); !errors.Is(err, ErrNoTransaction) {
		t.Fatalf("err = %v", err)
	}
	s.Exec("BEGIN") //nolint:errcheck
	if _, err := s.Exec("BEGIN"); !errors.Is(err, ErrTxInProgress) {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	db := newTestDB(t)
	s := db.NewSession()
	s.Exec("BEGIN")                                             //nolint:errcheck
	s.Exec("INSERT INTO users (id, name) VALUES (20, 'ghost')") //nolint:errcheck
	s.Close()
	r, _ := db.Query("SELECT count(*) FROM users WHERE id = 20")
	if r.Rows[0][0].Int() != 0 {
		t.Fatal("close should roll back open transaction")
	}
}

func TestBlobRoundTrip(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE bin (id INTEGER, data BLOB)")
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	db.MustExec("INSERT INTO bin (id, data) VALUES (1, ?)", payload)
	res, err := db.Query("SELECT data FROM bin WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows[0][0].Bytes()
	if len(got) != len(payload) {
		t.Fatalf("blob length = %d", len(got))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("blob corrupted at byte %d", i)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	db := newTestDB(t)
	db.MustExec("CREATE TABLE bin (id INTEGER, data BLOB, at TIMESTAMP)")
	db.MustExec("INSERT INTO bin (id, data, at) VALUES (1, ?, ?)", []byte{1, 2, 3}, time.Now())

	blob := db.Snapshot()
	db2 := NewDB()
	if err := db2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Query("SELECT * FROM users ORDER BY id")
	r2, err := db2.Query("SELECT * FROM users ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			a, b := r1.Rows[i][j], r2.Rows[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Str() != b.Str()) {
				t.Fatalf("cell (%d,%d) differs: %s vs %s", i, j, a, b)
			}
		}
	}
	// Constraints survive the round trip.
	if _, err := db2.Exec("INSERT INTO users (id, name) VALUES (1, 'dup')"); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("PK not restored: %v", err)
	}
	if db.ChangeSeq() != db2.ChangeSeq() {
		t.Errorf("changeSeq: %d vs %d", db.ChangeSeq(), db2.ChangeSeq())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Restore([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Fatal("expected error restoring garbage")
	}
	if err := db.Restore(nil); err == nil {
		t.Fatal("expected error restoring empty blob")
	}
}

func TestConcurrentAutocommit(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE counters (id INTEGER NOT NULL PRIMARY KEY, n INTEGER)")
	db.MustExec("INSERT INTO counters (id, n) VALUES (1, 0)")
	const workers, iters = 8, 50
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				if _, err := db.Exec("UPDATE counters SET n = n + 1 WHERE id = 1"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r, _ := db.Query("SELECT n FROM counters WHERE id = 1")
	if got := r.Rows[0][0].Int(); got != workers*iters {
		t.Fatalf("n = %d, want %d (statements must be atomic)", got, workers*iters)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := NewDB()
	res, err := db.Query("SELECT 1 + 1, 'x', NULL, UPPER('ab')")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int() != 2 || r[1].Str() != "x" || !r[2].IsNull() || r[3].Str() != "AB" {
		t.Fatalf("row = %v", r)
	}
}

func TestDivisionByZero(t *testing.T) {
	db := NewDB()
	if _, err := db.Query("SELECT 1 / 0"); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestCoalesce(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Query("SELECT COALESCE(age, -1) FROM users WHERE id = 4")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != -1 {
		t.Errorf("coalesce = %d", res.Rows[0][0].Int())
	}
}

func TestTableVersionPerTableIsolation(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE a (id INTEGER NOT NULL PRIMARY KEY)")
	db.MustExec("CREATE TABLE b (id INTEGER NOT NULL PRIMARY KEY)")
	av, bv := db.TableVersion("a"), db.TableVersion("b")
	if av == 0 || bv == 0 {
		t.Fatalf("CREATE must bump: a=%d b=%d", av, bv)
	}

	db.MustExec("INSERT INTO a (id) VALUES (1)")
	if db.TableVersion("a") != av+1 {
		t.Errorf("INSERT a: version = %d, want %d", db.TableVersion("a"), av+1)
	}
	if db.TableVersion("b") != bv {
		t.Errorf("writes to a must not bump b (got %d, want %d)", db.TableVersion("b"), bv)
	}

	// UPDATE/DELETE that touch no rows must not bump.
	av = db.TableVersion("a")
	db.MustExec("UPDATE a SET id = 2 WHERE id = 99")
	db.MustExec("DELETE FROM a WHERE id = 99")
	if db.TableVersion("a") != av {
		t.Errorf("no-op mutations bumped the version to %d", db.TableVersion("a"))
	}
	db.MustExec("UPDATE a SET id = 2 WHERE id = 1")
	db.MustExec("DELETE FROM a WHERE id = 2")
	if db.TableVersion("a") != av+2 {
		t.Errorf("UPDATE+DELETE: version = %d, want %d", db.TableVersion("a"), av+2)
	}

	// The counter survives DROP + re-CREATE (keyed by name).
	av = db.TableVersion("a")
	db.MustExec("DROP TABLE a")
	db.MustExec("CREATE TABLE a (id INTEGER NOT NULL PRIMARY KEY)")
	if got := db.TableVersion("a"); got != av+2 {
		t.Errorf("DROP+CREATE: version = %d, want %d", got, av+2)
	}

	if sum := db.TableVersions("a", "b"); sum != db.TableVersion("a")+db.TableVersion("b") {
		t.Errorf("TableVersions sum = %d", sum)
	}
}

func TestTableVersionBumpsOnRollback(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE a (id INTEGER NOT NULL PRIMARY KEY)")
	db.MustExec("INSERT INTO a (id) VALUES (1)")
	before := db.TableVersion("a")

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE a SET id = 2 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	// Both the update and its revert count: a snapshot taken mid-tx must
	// not stay marked fresh after the rollback restored old rows.
	if got := db.TableVersion("a"); got <= before+1 {
		t.Errorf("rollback must bump the version past the update's (got %d, before %d)", got, before)
	}
	r := db.MustExec("SELECT id FROM a")
	if r.Rows[0][0].Int() != 1 {
		t.Fatalf("rollback failed: %v", r.Rows[0][0])
	}
}

// TestRestoreBumpsTableVersions: a snapshot resync mutates tables
// without running statements, and caches keyed on TableVersion (the
// drivolution driver catalog) must see it as a change — both for
// tables the snapshot replaces and for tables it drops.
func TestRestoreBumpsTableVersions(t *testing.T) {
	src := NewDB()
	src.MustExec("CREATE TABLE a (id INTEGER NOT NULL PRIMARY KEY)")
	src.MustExec("INSERT INTO a (id) VALUES (1)")
	snap := src.Snapshot()

	dst := NewDB()
	dst.MustExec("CREATE TABLE a (id INTEGER NOT NULL PRIMARY KEY)")
	dst.MustExec("CREATE TABLE gone (id INTEGER NOT NULL PRIMARY KEY)")
	va, vg := dst.TableVersion("a"), dst.TableVersion("gone")
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if dst.TableVersion("a") <= va {
		t.Errorf("restore must bump replaced table: %d -> %d", va, dst.TableVersion("a"))
	}
	if dst.TableVersion("gone") <= vg {
		t.Errorf("restore must bump dropped table: %d -> %d", vg, dst.TableVersion("gone"))
	}
}
