package sqlmini

import (
	"fmt"
	"strings"
)

// Query planning: SELECT/UPDATE/DELETE statements whose WHERE clause
// contains a top-level equality conjunct on an indexed column execute
// as an index point-lookup over that column's bucket instead of a full
// table scan, with the complete WHERE re-applied to the candidates as
// a residual filter (so `lease_id = $id AND released = FALSE` probes
// the lease_id index and filters the released flag on the way out).
// When no equality conjunct qualifies but the WHERE carries a top-level
// range conjunct (col > k, >=, <, <=, or col BETWEEN lo AND hi) on a
// column with an ORDERED index, execution seeks the boundary groups in
// O(log n) and visits only the in-range window — the lease-expiry
// sweep shape (`expires_at <= now()`) touches just the expired prefix
// instead of every lease.
//
// Composite ordered indexes extend the equality path: a candidate on
// the index's leading column consumes further equality conjuncts along
// the column list and, optionally, range bounds on the column after the
// equality prefix — `driver_id = $id AND expires_at > now()` over
// leases(driver_id, expires_at) seeks one driver's unexpired window
// directly. Candidates are scored by how many conjuncts they consume
// (a composite consuming two beats a single-column index consuming
// one); equal scores keep the historical order (first equality conjunct,
// first declared index), so plans for single-column schemas are
// unchanged. A plan that consumes every conjunct is residual-free: the
// WHERE is not re-evaluated and candidates are checked against the
// consumed keys directly (Compare on the row's visible values — still
// required, because MVCC index entries are removed lazily and a bucket
// can hold rows whose visible values no longer match).
//
// The planner is deliberately conservative: it claims a statement only
// when the index path provably yields the same result SET and the same
// error behavior as the scan. Everything else — OR at the top level,
// expressions that can fail row-dependently (division), unresolved
// parameters, lossy hash keys, order-incompatible range keys, any
// LIMIT — falls back to the scan. now() is statement-stable (evalEnv
// memoizes the clock), so a bound evaluated at plan time provably
// equals its per-row residual re-evaluation. Two ordering caveats
// remain inherent to bucket execution: without ORDER BY, result rows
// may come back in bucket/key order rather than table order, which SQL
// leaves unspecified; and a multi-row UPDATE that fails a constraint
// mid-statement applies its partial prefix in candidate order, which
// may differ between paths.
//
// The planner's work splits in two so prepared statements can cache the
// expensive half:
//
//   - analysis (planAnalyze): which conjuncts reference which indexed
//     columns, whether the WHERE is total, which ordered column may
//     claim a range — depends only on the AST and the table's schema;
//   - binding (stmtPlan.bind): evaluating the key/bound expressions
//     against the call's parameters, NULL and lossy-key checks —
//     depends on the arguments and runs per execution.
//
// A skeleton is valid exactly while DB.schemaSeq is unchanged (no table
// or index structure changed); row churn never invalidates it. Ad-hoc
// statements analyze and bind in one go, so prepared execution is
// bit-identical to ad-hoc execution — prepared_test.go pins this.

// selectPlannable reports whether a SELECT may take an index path at
// all: LIMIT cuts rows in iteration order, and even under ORDER BY the
// stable sort preserves candidate order for tied keys, so any LIMIT
// keeps the statement on the scan, whose table order is the reference.
func selectPlannable(st *SelectStmt) bool {
	return st.Limit < 0
}

// planCheck is one residual-free verification predicate: the plan
// consumed a conjunct equivalent to `col OP val`, and candidates are
// checked against it directly instead of re-evaluating the WHERE.
type planCheck struct {
	col int
	op  string // "=", ">", ">=", "<", "<="
	val Value
}

// indexPlan is a resolved index access path for one execution: an
// equality lookup (PK, hash bucket, or ordered-group seek over the full
// tuple), a range scan over an ordered index (optionally under an
// equality prefix), or a provably empty result.
type indexPlan struct {
	col      int             // leading indexed column (display)
	pk       bool            // the PK index drives the lookup
	ix       *secondaryIndex // non-nil when a secondary index drives it
	key      Value           // equality probe key (pk/hash)
	empty    bool            // a NULL key/bound: provably zero matching rows
	emptyCol int             // column whose NULL key proved emptiness

	// Ordered access (ix.kind == IndexOrdered): prefix is the equality
	// tuple over the leading columns; when rng is set (or the prefix is
	// partial), lo/hi bound the column after the prefix, NULL meaning
	// unbounded. loOp/hiOp record the original operators (">"/">=",
	// "<"/"<="); the skiplist honors strictness exactly.
	prefix     []Value
	rng        bool
	lo, hi     Value
	loOp, hiOp string

	// exact: the plan consumed every top-level conjunct; execution
	// verifies candidates against checks instead of re-evaluating the
	// WHERE (residual-free).
	exact  bool
	checks []planCheck

	// dedup: the candidate gather may yield one row twice (ordered
	// multi-group windows); execution must deduplicate by row identity.
	dedup bool
}

// verify applies the residual-free checks to a candidate's visible
// values. Stored values are uniformly typed per column (post-coercion)
// and every check value passed the probe vetting, so Compare is total
// here; a failed Compare (impossible by construction) rejects, which is
// always safe.
func (p *indexPlan) verify(vals []Value) bool {
	for _, ck := range p.checks {
		v := vals[ck.col]
		if v.IsNull() {
			return false
		}
		c, ok := Compare(v, ck.val)
		if !ok {
			return false
		}
		switch ck.op {
		case "=":
			if c != 0 {
				return false
			}
		case ">":
			if c <= 0 {
				return false
			}
		case ">=":
			if c < 0 {
				return false
			}
		case "<":
			if c >= 0 {
				return false
			}
		case "<=":
			if c > 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// planEqRef is the first equality conjunct on one column.
type planEqRef struct {
	key  Expr
	conj int
}

// planCand is one equality-candidate site: the first-seen equality
// conjunct for an indexable column, with every index led by that
// column (declared order). PK candidates carry no indexes.
type planCand struct {
	col  int
	pk   bool
	key  Expr
	conj int
	ixs  []*secondaryIndex
}

// planBound is one range bound on a column, in the order the planner
// evaluates them (one bound per side; later conjuncts stay residual).
type planBound struct {
	expr Expr
	op   string
	hi   bool
	conj int
}

// stmtPlan is the cached, arg-independent plan skeleton of one
// statement over one concrete table.
type stmtPlan struct {
	seq  uint64 // DB.schemaSeq at analysis time
	t    *Table
	scan bool // analysis concluded the statement always scans

	params []*ParamExpr // parameters the WHERE references (bind check)
	nConj  int
	eq     []planCand
	eqBy   map[int]planEqRef   // col -> first equality conjunct (composite prefixes)
	rngBy  map[int][]planBound // col -> bounds in evaluation order

	// Pure-range claim (no equality candidate bound): the first range
	// conjunct whose column's first-declared index is ordered claims the
	// plan, exactly as before composite support.
	rngCol int // -1 when no ordered column claimed a range
	rngIx  *secondaryIndex
}

// planAnalyze runs the static half of the planner over t's current
// schema. Lock-free: it reads the atomic index set and schemaSeq.
func planAnalyze(db *DB, t *Table, where Expr) *stmtPlan {
	sp := &stmtPlan{seq: db.schemaSeq.Load(), t: t, rngCol: -1}
	ixs := t.loadIndexes()
	if where == nil || (t.pk < 0 && len(ixs) == 0) {
		sp.scan = true
		return sp
	}
	if !whereTotalStatic(t, where, &sp.params) {
		sp.scan = true
		return sp
	}
	var conjuncts []Expr
	collectConjuncts(where, &conjuncts)
	sp.nConj = len(conjuncts)
	sp.eqBy = make(map[int]planEqRef)
	sp.rngBy = make(map[int][]planBound)
	for i, c := range conjuncts {
		if col, keyExpr := eqConjunct(t, c); col >= 0 {
			if _, seen := sp.eqBy[col]; !seen {
				sp.eqBy[col] = planEqRef{key: keyExpr, conj: i}
			}
			isPK := col == t.pk
			var led []*secondaryIndex
			if !isPK {
				for _, ix := range ixs {
					if ix.cols[0] == col {
						led = append(led, ix)
					}
				}
			}
			if isPK || len(led) > 0 {
				sp.eq = append(sp.eq, planCand{col: col, pk: isPK, key: keyExpr, conj: i, ixs: led})
			}
			continue
		}
		if col, loExpr, loOp, hiExpr, hiOp := rangeConjunct(t, c); col >= 0 {
			if loExpr != nil {
				sp.rngBy[col] = append(sp.rngBy[col], planBound{expr: loExpr, op: loOp, conj: i})
			}
			if hiExpr != nil {
				sp.rngBy[col] = append(sp.rngBy[col], planBound{expr: hiExpr, op: hiOp, hi: true, conj: i})
			}
			ix := t.indexOn(col)
			if ix == nil || ix.kind != IndexOrdered {
				continue
			}
			if sp.rngCol < 0 {
				sp.rngCol, sp.rngIx = col, ix
			}
		}
	}
	if len(sp.eq) == 0 && sp.rngCol < 0 {
		sp.scan = true
	}
	return sp
}

// bindState carries one bind's evaluated keys so each expression is
// evaluated at most once (now() memoization already guarantees
// stability; this guards eval cost and keeps consumption bookkeeping
// simple).
type bindState struct {
	sp       *stmtPlan
	env      *evalEnv
	consumed []bool // by conjunct index
}

func (b *bindState) reset() {
	for i := range b.consumed {
		b.consumed[i] = false
	}
}

func (b *bindState) allConsumed() bool {
	for _, c := range b.consumed {
		if !c {
			return false
		}
	}
	return true
}

// bindErr distinguishes "fall back to scan" from "provably empty".
type bindEmpty struct{ col int }

// bind evaluates the skeleton against one call's parameters,
// reproducing the historical value-dependent decisions exactly: NULL
// keys prove emptiness, lossy hash keys fall through to the next
// candidate, a PK hit wins outright, equality candidates beat the pure
// range, and any evaluation problem falls back to the scan (nil plan).
// Among equality candidates, higher conjunct consumption wins; ties
// keep first-seen order.
func (sp *stmtPlan) bind(env *evalEnv) *indexPlan {
	if sp.scan || !paramsBound(env, sp.params) {
		return nil
	}
	bs := &bindState{sp: sp, env: env, consumed: make([]bool, sp.nConj)}
	var best *indexPlan
	bestScore := 0
	for i := range sp.eq {
		cand := &sp.eq[i]
		kv, err := env.eval(cand.key, nil, nil)
		if err != nil {
			return nil // unreachable after whereTotal; fail safe to scan
		}
		if kv.IsNull() {
			// col = NULL is never true: the whole conjunction is
			// unsatisfiable, no matter which index we would have used.
			return &indexPlan{col: cand.col, pk: cand.pk, empty: true, emptyCol: cand.col}
		}
		colType := sp.t.Cols[cand.col].Type
		if cand.pk {
			ck, ok := indexLookupKey(colType, kv)
			if !ok {
				continue // lossy key (id = 1.5): another conjunct may still do
			}
			p := &indexPlan{col: cand.col, pk: true, key: ck}
			bs.reset()
			bs.consumed[cand.conj] = true
			finishPlan(p, bs, []planCheck{{col: cand.col, op: "=", val: ck}})
			return p
		}
		for _, ix := range cand.ixs {
			var p *indexPlan
			var checks []planCheck
			bs.reset()
			bs.consumed[cand.conj] = true
			if ix.kind == IndexHash {
				ck, ok := indexLookupKey(colType, kv)
				if !ok {
					continue
				}
				p = &indexPlan{col: cand.col, ix: ix, key: ck}
				checks = []planCheck{{col: cand.col, op: "=", val: ck}}
			} else {
				// Ordered groups probe by comparison, not hashing, so the
				// key only needs to compare consistently with the column's
				// sort order — `id = 1.5` correctly seeks an empty window.
				if !orderedProbeOK(colType, kv) {
					continue
				}
				var emp *bindEmpty
				p, checks, emp = sp.bindOrdered(env, ix, kv, cand.col, bs)
				if emp != nil {
					return &indexPlan{col: cand.col, ix: ix, empty: true, emptyCol: emp.col}
				}
				if p == nil {
					return nil // eval failure: fail safe to scan
				}
			}
			score := 0
			for _, c := range bs.consumed {
				if c {
					score++
				}
			}
			if best == nil || score > bestScore {
				finishPlan(p, bs, checks)
				best, bestScore = p, score
			}
		}
	}
	if best != nil {
		return best
	}
	if sp.rngCol < 0 {
		return nil
	}
	// Pure range: bounds on the claimed ordered column, no prefix.
	bs.reset()
	plan := &indexPlan{col: sp.rngCol, ix: sp.rngIx, rng: true}
	var checks []planCheck
	boundCol := sp.rngCol
	if sp.rngIx.cols[0] != sp.rngCol {
		return nil // unreachable: the claim requires leadership
	}
	emp, ok := sp.bindBounds(env, plan, boundCol, bs, &checks)
	if emp != nil {
		return &indexPlan{col: sp.rngCol, ix: sp.rngIx, empty: true, emptyCol: emp.col}
	}
	if !ok {
		return nil
	}
	if plan.loOp == "" && plan.hiOp == "" {
		return nil // no usable bound: scan
	}
	finishPlan(plan, bs, checks)
	plan.dedup = true
	return plan
}

// bindOrdered builds an ordered-index access for one candidate:
// equality prefix along the column list, then optional bounds on the
// next column. Returns (nil, nil, nil) on an evaluation failure (scan)
// and a bindEmpty when a NULL key/bound proves emptiness.
func (sp *stmtPlan) bindOrdered(env *evalEnv, ix *secondaryIndex, kv Value, col int, bs *bindState) (*indexPlan, []planCheck, *bindEmpty) {
	p := &indexPlan{col: col, ix: ix, prefix: []Value{kv}, dedup: true}
	checks := []planCheck{{col: col, op: "=", val: kv}}
	for k := 1; k < len(ix.cols); k++ {
		ci := ix.cols[k]
		ref, ok := sp.eqBy[ci]
		if !ok {
			break
		}
		v, err := env.eval(ref.key, nil, nil)
		if err != nil {
			return nil, nil, nil
		}
		if v.IsNull() {
			return nil, nil, &bindEmpty{col: ci}
		}
		if !orderedProbeOK(sp.t.Cols[ci].Type, v) {
			break // seek on the shorter prefix; the conjunct stays residual
		}
		p.prefix = append(p.prefix, v)
		bs.consumed[ref.conj] = true
		checks = append(checks, planCheck{col: ci, op: "=", val: v})
	}
	if len(p.prefix) < len(ix.cols) {
		nc := ix.cols[len(p.prefix)]
		emp, ok := sp.bindBounds(env, p, nc, bs, &checks)
		if emp != nil {
			return nil, nil, emp
		}
		if !ok {
			return nil, nil, nil
		}
		if p.loOp != "" || p.hiOp != "" {
			p.rng = true
		}
	}
	return p, checks, nil
}

// bindBounds fills p.lo/hi from the skeleton's bounds on boundCol,
// one per side in evaluation order, marking consumed conjuncts (a
// BETWEEN counts as consumed only when both its bounds were used).
// ok=false means an evaluation failure (fall back to scan).
func (sp *stmtPlan) bindBounds(env *evalEnv, p *indexPlan, boundCol int, bs *bindState, checks *[]planCheck) (*bindEmpty, bool) {
	colType := sp.t.Cols[boundCol].Type
	bounds := sp.rngBy[boundCol]
	used := make([]bool, len(bounds))
	for i, b := range bounds {
		if (b.hi && p.hiOp != "") || (!b.hi && p.loOp != "") {
			continue // one bound per side; later conjuncts stay residual
		}
		v, err := env.eval(b.expr, nil, nil)
		if err != nil {
			return nil, false
		}
		if v.IsNull() {
			// A NULL bound proves the conjunction unsatisfiable, exactly
			// like col = NULL.
			return &bindEmpty{col: boundCol}, true
		}
		if !orderedProbeOK(colType, v) {
			continue // bound not used for seeking; the residual applies it
		}
		if b.hi {
			p.hi, p.hiOp = v, b.op
		} else {
			p.lo, p.loOp = v, b.op
		}
		used[i] = true
		*checks = append(*checks, planCheck{col: boundCol, op: b.op, val: v})
	}
	// A conjunct is consumed only if every bound it contributed was used
	// (BETWEEN contributes two).
	for i, b := range bounds {
		if !used[i] {
			continue
		}
		all := true
		for j, b2 := range bounds {
			if b2.conj == b.conj && !used[j] {
				all = false
				break
			}
		}
		if all {
			bs.consumed[b.conj] = true
		}
	}
	return nil, true
}

// finishPlan stamps exactness: when the candidate consumed every
// conjunct, execution verifies candidates against the checks instead of
// re-evaluating the WHERE.
func finishPlan(p *indexPlan, bs *bindState, checks []planCheck) {
	if bs.allConsumed() {
		p.exact = true
		p.checks = checks
	}
}

// planRows resolves the candidate row set for a statement filtered by
// where. A nil plan means no index qualified and the caller got the
// published row snapshot (the scan path). Index candidates are a
// superset of the matching rows (MVCC entries are removed lazily);
// callers filter by visibility plus the residual WHERE — or the plan's
// checks when it is residual-free — and deduplicate when plan.dedup is
// set. All gathers here are lock-free.
func (db *DB) planRows(t *Table, where Expr, env *evalEnv) ([]*Row, *indexPlan) {
	var sp *stmtPlan
	if prep := env.prep; prep != nil && prep.t == t && prep.seq == db.schemaSeq.Load() {
		sp = prep
	} else {
		sp = planAnalyze(db, t, where)
	}
	p := sp.bind(env)
	if p == nil {
		return t.rowsSnapshot(), nil
	}
	switch {
	case p.empty:
		return nil, p
	case p.pk:
		return t.pkCandidates(p.key), p
	case p.ix.kind == IndexHash:
		return p.ix.hash.lookup([]Value{p.key}), p
	case !p.rng && len(p.prefix) == len(p.ix.cols):
		return p.ix.skip.lookupEqual(p.prefix, nil), p
	default:
		return p.ix.skip.rangeRows(p.prefix, p.lo, p.loOp == ">", p.hi, p.hiOp == "<", nil), p
	}
}

// flipOp mirrors a comparison across its operands: k < col ⇔ col > k.
var flipOp = map[string]string{">": "<", ">=": "<=", "<": ">", "<=": ">="}

// rangeConjunct matches one top-level range conjunct over a column of
// t: `col OP key` / `key OP col` with OP in <, <=, >, >=, or
// `col BETWEEN lo AND hi`. The key side(s) must be row-free. Returns
// col = -1 when the conjunct has another shape. NOT BETWEEN is a
// disjunction and never matches.
func rangeConjunct(t *Table, c Expr) (col int, loExpr Expr, loOp string, hiExpr Expr, hiOp string) {
	switch e := c.(type) {
	case *BinaryExpr:
		op := e.Op
		if _, ok := flipOp[op]; !ok {
			return -1, nil, "", nil, ""
		}
		var key Expr
		if ci, ok := columnRef(t, e.L); ok && rowFree(e.R) {
			col, key = ci, e.R
		} else if ci, ok := columnRef(t, e.R); ok && rowFree(e.L) {
			col, key, op = ci, e.L, flipOp[op] // k < col  ⇒  col > k
		} else {
			return -1, nil, "", nil, ""
		}
		if op == ">" || op == ">=" {
			return col, key, op, nil, ""
		}
		return col, nil, "", key, op
	case *BetweenExpr:
		if e.Not {
			return -1, nil, "", nil, ""
		}
		ci, ok := columnRef(t, e.E)
		if !ok || !rowFree(e.Lo) || !rowFree(e.Hi) {
			return -1, nil, "", nil, ""
		}
		return ci, e.Lo, ">=", e.Hi, "<="
	}
	return -1, nil, "", nil, ""
}

// collectConjuncts flattens the top-level AND tree of e into out.
func collectConjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		collectConjuncts(be.L, out)
		collectConjuncts(be.R, out)
		return
	}
	*out = append(*out, e)
}

// eqConjunct matches `col = key` / `key = col` where col is a column of
// t and key is row-free (literal or parameter). Returns col = -1 when
// the conjunct has another shape.
func eqConjunct(t *Table, c Expr) (col int, key Expr) {
	be, ok := c.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return -1, nil
	}
	if ci, ok := columnRef(t, be.L); ok && rowFree(be.R) {
		return ci, be.R
	}
	if ci, ok := columnRef(t, be.R); ok && rowFree(be.L) {
		return ci, be.L
	}
	return -1, nil
}

func columnRef(t *Table, e Expr) (int, bool) {
	ce, ok := e.(*ColumnExpr)
	if !ok {
		return -1, false
	}
	return t.columnIndex(ce.Name)
}

// rowFree reports whether e evaluates without row context AND is stable
// across the statement. Kept to the leaf shapes the hot statements use;
// anything fancier scans. now()/current_timestamp qualify because
// evalEnv memoizes the clock per statement.
func rowFree(e Expr) bool {
	switch e := e.(type) {
	case *LiteralExpr, *ParamExpr:
		return true
	case *CallExpr:
		return (e.Fn == "NOW" || e.Fn == "CURRENT_TIMESTAMP") &&
			len(e.Args) == 0 && !e.Star
	}
	return false
}

// orderedProbeOK reports whether a probe key of v's type compares
// against stored values of colType in a way that is monotone along the
// ordered index. Stored values are uniformly typed (post-coercion), so
// the index is sorted by Compare within colType; a key qualifies when
// Compare(stored, key) is a monotone function of the stored value's
// position:
//
//   - integer-family columns accept any numeric key (int comparison, or
//     the monotone float64 projection when the key is DOUBLE);
//   - DOUBLE columns accept any numeric key;
//   - VARCHAR/TIMESTAMP/BLOB columns accept exactly their own type
//     (mixed comparisons project through Float()/Time()/Str(), which are
//     not monotone in the stored order — "10" < "9" as strings).
//
// Unlike hash probes, no lossless coercion is needed: `id = 1.5` seeks
// an empty window, which is exactly what the scan computes.
func orderedProbeOK(colType Type, v Value) bool {
	switch colType {
	case TypeInteger, TypeBigint, TypeBoolean, TypeDouble:
		return numericType(v.Type())
	case TypeVarchar:
		return v.Type() == TypeVarchar
	case TypeTimestamp:
		return v.Type() == TypeTimestamp
	case TypeBlob:
		return v.Type() == TypeBlob
	default:
		return false
	}
}

// paramsBound reports whether every collected parameter is bound in env.
func paramsBound(env *evalEnv, params []*ParamExpr) bool {
	for _, p := range params {
		if p.Name != "" {
			if _, ok := env.named[p.Name]; !ok {
				return false
			}
			continue
		}
		if p.Index >= len(env.positional) {
			return false
		}
	}
	return true
}

// whereTotalStatic reports whether evaluating e against ANY row of t is
// guaranteed error-free: every column resolves, no division (the one
// value-dependent failure), and every call is a known, arity-checked
// shape. Every parameter reference is appended to params for a later
// paramsBound — the env-dependent half of the check. Only total WHEREs
// are eligible for index execution; this is what makes the index path
// bit-identical to the scan, error behavior included.
func whereTotalStatic(t *Table, e Expr, params *[]*ParamExpr) bool {
	switch e := e.(type) {
	case *LiteralExpr:
		return true
	case *ColumnExpr:
		_, ok := t.columnIndex(e.Name)
		return ok
	case *ParamExpr:
		*params = append(*params, e)
		return true
	case *UnaryExpr:
		return (e.Op == "NOT" || e.Op == "-") && whereTotalStatic(t, e.E, params)
	case *IsNullExpr:
		return whereTotalStatic(t, e.E, params)
	case *BetweenExpr:
		return whereTotalStatic(t, e.E, params) && whereTotalStatic(t, e.Lo, params) && whereTotalStatic(t, e.Hi, params)
	case *InExpr:
		if !whereTotalStatic(t, e.E, params) {
			return false
		}
		for _, le := range e.List {
			if !whereTotalStatic(t, le, params) {
				return false
			}
		}
		return true
	case *BinaryExpr:
		switch e.Op {
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "+", "-", "*":
		default:
			return false // "/" fails on zero divisors; unknown ops fail
		}
		return whereTotalStatic(t, e.L, params) && whereTotalStatic(t, e.R, params)
	case *CallExpr:
		switch e.Fn {
		case "NOW", "CURRENT_TIMESTAMP":
			return true
		case "LOWER", "UPPER", "LENGTH", "TRIM", "ABS":
			return len(e.Args) == 1 && whereTotalStatic(t, e.Args[0], params)
		case "COALESCE":
			for _, a := range e.Args {
				if !whereTotalStatic(t, a, params) {
					return false
				}
			}
			return true
		default:
			return false
		}
	default:
		return false
	}
}

// indexLookupKey canonicalizes an equality probe key for a column of
// type colType. ok=false means the key cannot be proven to hash
// identically to how matching stored values hash — `id = 1.5` on an
// INTEGER column, a numeric key on a VARCHAR column (SQL comparison is
// laxer than string identity), or a DOUBLE key on an integer column
// (float equality can collapse distinct int64s) — and the caller must
// scan instead.
func indexLookupKey(colType Type, v Value) (Value, bool) {
	if v.IsNull() {
		return Null, false
	}
	switch colType {
	case TypeInteger, TypeBigint, TypeBoolean:
		switch v.Type() {
		case TypeInteger, TypeBigint, TypeBoolean:
		default:
			return Null, false
		}
	case TypeDouble:
		if !numericType(v.Type()) {
			return Null, false
		}
	case TypeVarchar:
		if v.Type() != TypeVarchar {
			return Null, false
		}
	case TypeTimestamp:
		if v.Type() != TypeTimestamp {
			return Null, false
		}
	case TypeBlob:
		if v.Type() != TypeBlob && v.Type() != TypeVarchar {
			return Null, false
		}
	default:
		return Null, false
	}
	cv, err := Coerce(v, colType)
	if err != nil || cv.IsNull() {
		return Null, false
	}
	if !Equal(cv, v) {
		return Null, false // lossy coercion: scan semantics would differ
	}
	return cv, true
}

// Explain reports the access path a statement would use, without
// executing it: "point lookup on t(col) [primary key]", "index lookup
// on t(col) [idx_name]", "range scan on t(col) [idx_name] (col > v)"
// with the evaluated bounds, or "full scan on t". Composite plans list
// the column tuple — "index lookup on t(a, b) [idx]" — and append
// "(residual-free)" when the plan consumed the entire WHERE. Tests (and
// operators) use it to pin hot statements to their intended plans.
// Explain takes no locks: it reads the published schema.
func (db *DB) Explain(src string, args ...any) (string, error) {
	st, err := db.parseCached(src)
	if err != nil {
		return "", err
	}
	named, positional, err := bindArgs(args)
	if err != nil {
		return "", err
	}
	env := &evalEnv{clock: db.clock, named: named, positional: positional}
	var table string
	var where Expr
	limitScan := false
	switch st := st.(type) {
	case *SelectStmt:
		if st.Table == "" {
			return "constant select", nil
		}
		limitScan = !selectPlannable(st)
		table, where = st.Table, st.Where
	case *UpdateStmt:
		table, where = st.Table, st.Where
	case *DeleteStmt:
		table, where = st.Table, st.Where
	default:
		return "", fmt.Errorf("sqlmini: EXPLAIN supports SELECT/UPDATE/DELETE, got %T", st)
	}
	t, err := db.lookupTable(table)
	if err != nil {
		return "", err
	}
	if limitScan {
		return fmt.Sprintf("full scan on %s (LIMIT)", table), nil
	}
	p := planAnalyze(db, t, where).bind(env)
	if p == nil {
		return fmt.Sprintf("full scan on %s", table), nil
	}
	col := t.Cols[p.col].Name
	composite := p.ix != nil && len(p.ix.cols) > 1
	suffix := ""
	if composite && p.exact {
		suffix = " (residual-free)"
	}
	switch {
	case p.empty:
		return fmt.Sprintf("empty result (NULL key) on %s(%s)", table, t.Cols[p.emptyCol].Name), nil
	case p.pk:
		return fmt.Sprintf("point lookup on %s(%s) [primary key]", table, col), nil
	case composite:
		cols := strings.Join(p.ix.colNames(t), ", ")
		if p.rng || len(p.prefix) < len(p.ix.cols) {
			return fmt.Sprintf("range scan on %s(%s) [%s] (%s)%s",
				table, cols, p.ix.name, p.compositeDesc(t), suffix), nil
		}
		return fmt.Sprintf("index lookup on %s(%s) [%s]%s", table, cols, p.ix.name, suffix), nil
	case p.rng:
		return fmt.Sprintf("range scan on %s(%s) [%s] (%s)",
			table, col, p.ix.name, p.boundsDesc(col)), nil
	default:
		return fmt.Sprintf("index lookup on %s(%s) [%s]", table, col, p.ix.name), nil
	}
}

// boundsDesc renders a range plan's evaluated bounds for Explain, e.g.
// "expires_at > 2026-07-30T12:00:00Z" or "id >= 5 AND id < 9".
func (p *indexPlan) boundsDesc(col string) string {
	var parts []string
	if p.loOp != "" {
		parts = append(parts, fmt.Sprintf("%s %s %s", col, p.loOp, p.lo.Str()))
	}
	if p.hiOp != "" {
		parts = append(parts, fmt.Sprintf("%s %s %s", col, p.hiOp, p.hi.Str()))
	}
	return strings.Join(parts, " AND ")
}

// compositeDesc renders a composite plan's prefix equalities and
// bounds, e.g. "driver_id = 7 AND expires_at > 2026-07-30T12:00:00Z".
func (p *indexPlan) compositeDesc(t *Table) string {
	var parts []string
	for i, v := range p.prefix {
		parts = append(parts, fmt.Sprintf("%s = %s", t.Cols[p.ix.cols[i]].Name, v.Str()))
	}
	if len(p.prefix) < len(p.ix.cols) {
		bc := t.Cols[p.ix.cols[len(p.prefix)]].Name
		if p.loOp != "" {
			parts = append(parts, fmt.Sprintf("%s %s %s", bc, p.loOp, p.lo.Str()))
		}
		if p.hiOp != "" {
			parts = append(parts, fmt.Sprintf("%s %s %s", bc, p.hiOp, p.hi.Str()))
		}
	}
	return strings.Join(parts, " AND ")
}
