package sqlmini

import (
	"fmt"
	"strings"
)

// Query planning: SELECT/UPDATE/DELETE statements whose WHERE clause
// contains a top-level equality conjunct on an indexed column execute
// as an index point-lookup over that column's bucket instead of a full
// table scan, with the complete WHERE re-applied to the candidates as
// a residual filter (so `lease_id = $id AND released = FALSE` probes
// the lease_id index and filters the released flag on the way out).
// When no equality conjunct qualifies but the WHERE carries a top-level
// range conjunct (col > k, >=, <, <=, or col BETWEEN lo AND hi) on a
// column with an ORDERED index, execution seeks the boundary groups in
// O(log n) and visits only the in-range window — the lease-expiry
// sweep shape (`expires_at <= now()`) touches just the expired prefix
// instead of every lease. Strict bounds are widened to their boundary
// group and the residual WHERE cuts the exact edge, so candidate
// completeness never depends on strictness.
//
// The planner is deliberately conservative: it claims a statement only
// when the index path provably yields the same result SET and the same
// error behavior as the scan. Everything else — OR at the top level,
// expressions that can fail row-dependently (division), unresolved
// parameters, lossy hash keys, order-incompatible range keys, any
// LIMIT — falls back to the scan, which is the unchanged pre-planner
// code path. now() is statement-stable (evalEnv memoizes the clock),
// so a bound evaluated at plan time provably equals its per-row
// residual re-evaluation. Two ordering caveats remain inherent to
// bucket execution: without ORDER BY, result rows may come back in
// bucket/key order rather than table order, which SQL leaves
// unspecified; and a multi-row UPDATE that fails a constraint
// mid-statement applies its partial prefix in candidate order, which
// may differ between paths.

// selectPlannable reports whether a SELECT may take an index path at
// all: LIMIT cuts rows in iteration order, and even under ORDER BY the
// stable sort preserves candidate order for tied keys, so any LIMIT
// keeps the statement on the scan, whose table order is the reference.
func selectPlannable(st *SelectStmt) bool {
	return st.Limit < 0
}

// indexPlan is a resolved index access path for one statement: an
// equality lookup (PK, hash bucket, or ordered-group seek), a range
// scan over an ordered index, or a provably empty result.
type indexPlan struct {
	col   int             // indexed column (position in Table.Cols)
	pk    bool            // the PK index drives the lookup (unique)
	ix    *secondaryIndex // non-nil when a secondary index drives it
	key   Value           // equality probe key
	empty bool            // a NULL key/bound: provably zero matching rows

	// Range plan (rng == true; ix is an ordered index). lo/hi are the
	// evaluated bounds, NULL meaning unbounded on that side; execution
	// is inclusive at both group boundaries, with loOp/hiOp recording
	// the original operators for the residual's benefit and Explain.
	rng        bool
	lo, hi     Value
	loOp, hiOp string // ">" or ">=" / "<" or "<="; "" when unbounded
}

// planRows returns the candidate row set for a statement filtered by
// where. indexed=false means no index qualified and the caller got the
// live t.Rows (the scan path). indexed=true candidates are freshly
// allocated, so callers may mutate rows (and thereby the index buckets)
// while iterating.
func (db *DB) planRows(t *Table, where Expr, env *evalEnv) (rows []*Row, indexed bool) {
	var p *indexPlan
	if sp := env.prep; sp != nil && sp.t == t && sp.seq == db.schemaSeq {
		p = sp.bind(env)
	} else {
		p = planIndex(t, where, env)
	}
	if p == nil {
		return t.Rows, false
	}
	if p.empty {
		return nil, true
	}
	if p.pk {
		if r, ok := t.lookupPK(p.key); ok {
			return []*Row{r}, true
		}
		return nil, true
	}
	if p.rng {
		return p.ix.rangeRows(p.lo, p.hi), true
	}
	bucket := p.ix.lookup(p.key)
	if len(bucket) == 0 {
		return nil, true
	}
	out := make([]*Row, len(bucket))
	copy(out, bucket)
	return out, true
}

// planIndex decides whether an index access path can drive execution.
// A non-nil plan is returned only when the candidate set, filtered by
// the full WHERE as a residual, provably equals the scan result.
// Preference order: PK point lookup (unique) beats secondary equality
// beats range scan — without statistics, a point probe is assumed
// narrower than a key window.
func planIndex(t *Table, where Expr, env *evalEnv) *indexPlan {
	if where == nil || (t.pk < 0 && len(t.indexes) == 0) {
		return nil
	}
	// The index path evaluates the WHERE only over candidate rows; the
	// scan evaluates it over every row. The two agree only if evaluation
	// cannot fail on ANY row — otherwise a row outside the candidates
	// could turn the scan into an error the index path never sees.
	if !whereTotal(t, env, where) {
		return nil
	}
	var conjuncts []Expr
	collectConjuncts(where, &conjuncts)
	var best *indexPlan
	for _, c := range conjuncts {
		col, keyExpr := eqConjunct(t, c)
		if col < 0 {
			continue
		}
		isPK := col == t.pk
		ix := t.indexOn(col)
		if !isPK && ix == nil {
			continue
		}
		kv, err := env.eval(keyExpr, nil, nil)
		if err != nil {
			return nil // unreachable after whereTotal; fail safe to scan
		}
		if kv.IsNull() {
			// col = NULL is never true: the whole conjunction is
			// unsatisfiable, no matter which index we would have used.
			return &indexPlan{col: col, pk: isPK, ix: ix, empty: true}
		}
		if !isPK && ix.kind == IndexOrdered {
			// Ordered groups probe by comparison, not hashing, so the
			// key only needs to compare consistently with the column's
			// sort order — `id = 1.5` correctly seeks an empty window.
			if orderedProbeOK(t.Cols[col].Type, kv) && best == nil {
				best = &indexPlan{col: col, ix: ix, key: kv}
			}
			continue
		}
		ck, ok := indexLookupKey(t.Cols[col].Type, kv)
		if !ok {
			continue // lossy key (id = 1.5): another conjunct may still do
		}
		p := &indexPlan{col: col, pk: isPK, ix: ix, key: ck}
		if isPK {
			return p
		}
		if best == nil {
			best = p
		}
	}
	if best != nil {
		return best
	}
	return planRange(t, conjuncts, env)
}

// planRange looks for top-level range conjuncts on an ordered-indexed
// column: col > k, col >= k, col < k, col <= k (either operand order),
// and col BETWEEN lo AND hi. The first such column claims the plan;
// one bound per side is kept (further conjuncts stay residual-only).
// A NULL bound proves the conjunction unsatisfiable, exactly like
// col = NULL. Bounds whose type is not order-compatible with the
// column are simply not used for seeking — the residual still applies
// them, so skipping a bound only widens the candidate window.
func planRange(t *Table, conjuncts []Expr, env *evalEnv) *indexPlan {
	var plan *indexPlan
	for _, c := range conjuncts {
		col, loExpr, loOp, hiExpr, hiOp := rangeConjunct(t, c)
		if col < 0 {
			continue
		}
		ix := t.indexOn(col)
		if ix == nil || ix.kind != IndexOrdered {
			continue
		}
		if plan != nil && plan.col != col {
			continue // another ordered column already claimed the plan
		}
		if plan == nil {
			plan = &indexPlan{col: col, ix: ix, rng: true}
		}
		colType := t.Cols[col].Type
		if loExpr != nil && plan.loOp == "" {
			v, err := env.eval(loExpr, nil, nil)
			if err != nil {
				return nil // unreachable after whereTotal; fail safe to scan
			}
			if v.IsNull() {
				return &indexPlan{col: col, ix: ix, empty: true}
			}
			if orderedProbeOK(colType, v) {
				plan.lo, plan.loOp = v, loOp
			}
		}
		if hiExpr != nil && plan.hiOp == "" {
			v, err := env.eval(hiExpr, nil, nil)
			if err != nil {
				return nil
			}
			if v.IsNull() {
				return &indexPlan{col: col, ix: ix, empty: true}
			}
			if orderedProbeOK(colType, v) {
				plan.hi, plan.hiOp = v, hiOp
			}
		}
	}
	if plan == nil || (plan.loOp == "" && plan.hiOp == "") {
		return nil // no usable bound: scan
	}
	return plan
}

// flipOp mirrors a comparison across its operands: k < col ⇔ col > k.
var flipOp = map[string]string{">": "<", ">=": "<=", "<": ">", "<=": ">="}

// rangeConjunct matches one top-level range conjunct over a column of
// t: `col OP key` / `key OP col` with OP in <, <=, >, >=, or
// `col BETWEEN lo AND hi`. The key side(s) must be row-free. Returns
// col = -1 when the conjunct has another shape. NOT BETWEEN is a
// disjunction and never matches.
func rangeConjunct(t *Table, c Expr) (col int, loExpr Expr, loOp string, hiExpr Expr, hiOp string) {
	switch e := c.(type) {
	case *BinaryExpr:
		op := e.Op
		if _, ok := flipOp[op]; !ok {
			return -1, nil, "", nil, ""
		}
		var key Expr
		if ci, ok := columnRef(t, e.L); ok && rowFree(e.R) {
			col, key = ci, e.R
		} else if ci, ok := columnRef(t, e.R); ok && rowFree(e.L) {
			col, key, op = ci, e.L, flipOp[op] // k < col  ⇒  col > k
		} else {
			return -1, nil, "", nil, ""
		}
		if op == ">" || op == ">=" {
			return col, key, op, nil, ""
		}
		return col, nil, "", key, op
	case *BetweenExpr:
		if e.Not {
			return -1, nil, "", nil, ""
		}
		ci, ok := columnRef(t, e.E)
		if !ok || !rowFree(e.Lo) || !rowFree(e.Hi) {
			return -1, nil, "", nil, ""
		}
		return ci, e.Lo, ">=", e.Hi, "<="
	}
	return -1, nil, "", nil, ""
}

// collectConjuncts flattens the top-level AND tree of e into out.
func collectConjuncts(e Expr, out *[]Expr) {
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		collectConjuncts(be.L, out)
		collectConjuncts(be.R, out)
		return
	}
	*out = append(*out, e)
}

// eqConjunct matches `col = key` / `key = col` where col is a column of
// t and key is row-free (literal or parameter). Returns col = -1 when
// the conjunct has another shape.
func eqConjunct(t *Table, c Expr) (col int, key Expr) {
	be, ok := c.(*BinaryExpr)
	if !ok || be.Op != "=" {
		return -1, nil
	}
	if ci, ok := columnRef(t, be.L); ok && rowFree(be.R) {
		return ci, be.R
	}
	if ci, ok := columnRef(t, be.R); ok && rowFree(be.L) {
		return ci, be.L
	}
	return -1, nil
}

func columnRef(t *Table, e Expr) (int, bool) {
	ce, ok := e.(*ColumnExpr)
	if !ok {
		return -1, false
	}
	return t.columnIndex(ce.Name)
}

// rowFree reports whether e evaluates without row context AND is stable
// across the statement. Kept to the leaf shapes the hot statements use;
// anything fancier scans. now()/current_timestamp qualify because
// evalEnv memoizes the clock per statement.
func rowFree(e Expr) bool {
	switch e := e.(type) {
	case *LiteralExpr, *ParamExpr:
		return true
	case *CallExpr:
		return (e.Fn == "NOW" || e.Fn == "CURRENT_TIMESTAMP") &&
			len(e.Args) == 0 && !e.Star
	}
	return false
}

// orderedProbeOK reports whether a probe key of v's type compares
// against stored values of colType in a way that is monotone along the
// ordered index. Stored values are uniformly typed (post-coercion), so
// the index is sorted by Compare within colType; a key qualifies when
// Compare(stored, key) is a monotone function of the stored value's
// position:
//
//   - integer-family columns accept any numeric key (int comparison, or
//     the monotone float64 projection when the key is DOUBLE);
//   - DOUBLE columns accept any numeric key;
//   - VARCHAR/TIMESTAMP/BLOB columns accept exactly their own type
//     (mixed comparisons project through Float()/Time()/Str(), which are
//     not monotone in the stored order — "10" < "9" as strings).
//
// Unlike hash probes, no lossless coercion is needed: `id = 1.5` seeks
// an empty window, which is exactly what the scan computes.
func orderedProbeOK(colType Type, v Value) bool {
	switch colType {
	case TypeInteger, TypeBigint, TypeBoolean, TypeDouble:
		return numericType(v.Type())
	case TypeVarchar:
		return v.Type() == TypeVarchar
	case TypeTimestamp:
		return v.Type() == TypeTimestamp
	case TypeBlob:
		return v.Type() == TypeBlob
	default:
		return false
	}
}

// whereTotal reports whether evaluating e against ANY row of t is
// guaranteed error-free: every column resolves, every parameter is
// bound, no division (the one value-dependent failure), and every call
// is a known, arity-checked shape. Only total WHEREs are eligible for
// index execution; this is what makes the index path bit-identical to
// the scan, error behavior included.
//
// The walk splits in two so prepared statements can cache its outcome:
// whereTotalStatic covers everything that depends only on the
// expression tree and the table (collecting the parameters it meets),
// and paramsBound re-checks per execution the one env-dependent part —
// that every parameter is actually bound.
func whereTotal(t *Table, env *evalEnv, e Expr) bool {
	var params []*ParamExpr
	return whereTotalStatic(t, e, &params) && paramsBound(env, params)
}

// paramsBound reports whether every collected parameter is bound in env.
func paramsBound(env *evalEnv, params []*ParamExpr) bool {
	for _, p := range params {
		if p.Name != "" {
			if _, ok := env.named[p.Name]; !ok {
				return false
			}
			continue
		}
		if p.Index >= len(env.positional) {
			return false
		}
	}
	return true
}

// whereTotalStatic is the env-independent part of whereTotal; every
// parameter reference is appended to params for a later paramsBound.
func whereTotalStatic(t *Table, e Expr, params *[]*ParamExpr) bool {
	switch e := e.(type) {
	case *LiteralExpr:
		return true
	case *ColumnExpr:
		_, ok := t.columnIndex(e.Name)
		return ok
	case *ParamExpr:
		*params = append(*params, e)
		return true
	case *UnaryExpr:
		return (e.Op == "NOT" || e.Op == "-") && whereTotalStatic(t, e.E, params)
	case *IsNullExpr:
		return whereTotalStatic(t, e.E, params)
	case *BetweenExpr:
		return whereTotalStatic(t, e.E, params) && whereTotalStatic(t, e.Lo, params) && whereTotalStatic(t, e.Hi, params)
	case *InExpr:
		if !whereTotalStatic(t, e.E, params) {
			return false
		}
		for _, le := range e.List {
			if !whereTotalStatic(t, le, params) {
				return false
			}
		}
		return true
	case *BinaryExpr:
		switch e.Op {
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "+", "-", "*":
		default:
			return false // "/" fails on zero divisors; unknown ops fail
		}
		return whereTotalStatic(t, e.L, params) && whereTotalStatic(t, e.R, params)
	case *CallExpr:
		switch e.Fn {
		case "NOW", "CURRENT_TIMESTAMP":
			return true
		case "LOWER", "UPPER", "LENGTH", "TRIM", "ABS":
			return len(e.Args) == 1 && whereTotalStatic(t, e.Args[0], params)
		case "COALESCE":
			for _, a := range e.Args {
				if !whereTotalStatic(t, a, params) {
					return false
				}
			}
			return true
		default:
			return false
		}
	default:
		return false
	}
}

// indexLookupKey canonicalizes an equality probe key for a column of
// type colType. ok=false means the key cannot be proven to hash
// identically to how matching stored values hash — `id = 1.5` on an
// INTEGER column, a numeric key on a VARCHAR column (SQL comparison is
// laxer than string identity), or a DOUBLE key on an integer column
// (float equality can collapse distinct int64s) — and the caller must
// scan instead.
func indexLookupKey(colType Type, v Value) (Value, bool) {
	if v.IsNull() {
		return Null, false
	}
	switch colType {
	case TypeInteger, TypeBigint, TypeBoolean:
		switch v.Type() {
		case TypeInteger, TypeBigint, TypeBoolean:
		default:
			return Null, false
		}
	case TypeDouble:
		if !numericType(v.Type()) {
			return Null, false
		}
	case TypeVarchar:
		if v.Type() != TypeVarchar {
			return Null, false
		}
	case TypeTimestamp:
		if v.Type() != TypeTimestamp {
			return Null, false
		}
	case TypeBlob:
		if v.Type() != TypeBlob && v.Type() != TypeVarchar {
			return Null, false
		}
	default:
		return Null, false
	}
	cv, err := Coerce(v, colType)
	if err != nil || cv.IsNull() {
		return Null, false
	}
	if !Equal(cv, v) {
		return Null, false // lossy coercion: scan semantics would differ
	}
	return cv, true
}

// Explain reports the access path a statement would use, without
// executing it: "point lookup on t(col) [primary key]", "index lookup
// on t(col) [idx_name]", "range scan on t(col) [idx_name] (col > v)"
// with the evaluated bounds, or "full scan on t". Tests (and operators)
// use it to pin hot statements to their intended plans.
func (db *DB) Explain(src string, args ...any) (string, error) {
	st, err := db.parseCached(src)
	if err != nil {
		return "", err
	}
	named, positional, err := bindArgs(args)
	if err != nil {
		return "", err
	}
	env := &evalEnv{clock: db.clock, named: named, positional: positional}
	var table string
	var where Expr
	limitScan := false
	switch st := st.(type) {
	case *SelectStmt:
		if st.Table == "" {
			return "constant select", nil
		}
		limitScan = !selectPlannable(st)
		table, where = st.Table, st.Where
	case *UpdateStmt:
		table, where = st.Table, st.Where
	case *DeleteStmt:
		table, where = st.Table, st.Where
	default:
		return "", fmt.Errorf("sqlmini: EXPLAIN supports SELECT/UPDATE/DELETE, got %T", st)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return "", err
	}
	if limitScan {
		return fmt.Sprintf("full scan on %s (LIMIT)", table), nil
	}
	p := planIndex(t, where, env)
	if p == nil {
		return fmt.Sprintf("full scan on %s", table), nil
	}
	col := t.Cols[p.col].Name
	switch {
	case p.empty:
		return fmt.Sprintf("empty result (NULL key) on %s(%s)", table, col), nil
	case p.pk:
		return fmt.Sprintf("point lookup on %s(%s) [primary key]", table, col), nil
	case p.rng:
		return fmt.Sprintf("range scan on %s(%s) [%s] (%s)",
			table, col, p.ix.name, p.boundsDesc(col)), nil
	default:
		return fmt.Sprintf("index lookup on %s(%s) [%s]", table, col, p.ix.name), nil
	}
}

// boundsDesc renders a range plan's evaluated bounds for Explain, e.g.
// "expires_at > 2026-07-30T12:00:00Z" or "id >= 5 AND id < 9".
func (p *indexPlan) boundsDesc(col string) string {
	var parts []string
	if p.loOp != "" {
		parts = append(parts, fmt.Sprintf("%s %s %s", col, p.loOp, p.lo.Str()))
	}
	if p.hiOp != "" {
		parts = append(parts, fmt.Sprintf("%s %s %s", col, p.hiOp, p.hi.Str()))
	}
	return strings.Join(parts, " AND ")
}
