package sqlmini

import (
	"fmt"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, name VARCHAR, score INTEGER)")
	for i := 0; i < rows; i++ {
		db.MustExec("INSERT INTO t (id, name, score) VALUES (?, ?, ?)", i, fmt.Sprintf("row-%d", i), i%100)
	}
	return db
}

func BenchmarkParse(b *testing.B) {
	const q = `SELECT binary_format, binary_code FROM information_schema.drivers
		WHERE api_name LIKE $a AND (platform IS NULL OR platform LIKE $p)
		ORDER BY driver_version_major DESC`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectPoint(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT name FROM t WHERE id = ?", i%1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectScanFilter(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT id FROM t WHERE score > 50 AND name LIKE 'row-%'"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER, v VARCHAR)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t (id, v) VALUES (?, ?)", i, "value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateWhere(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("UPDATE t SET score = score + 1 WHERE id = ?", i%1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT count(*), max(score), avg(score) FROM t"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	db := benchDB(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := db.Snapshot()
		db2 := NewDB()
		if err := db2.Restore(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Like("linux-x86_64", "linux-%")
		Like("JDBC", "%DB%")
		Like("windows-i586", "linux-%")
	}
}
