package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Engine-level errors.
var (
	// ErrNoSuchTable reports a reference to an undefined table.
	ErrNoSuchTable = errors.New("sqlmini: no such table")
	// ErrNoSuchColumn reports a reference to an undefined column.
	ErrNoSuchColumn = errors.New("sqlmini: no such column")
	// ErrDuplicateKey reports a primary-key violation.
	ErrDuplicateKey = errors.New("sqlmini: duplicate primary key")
	// ErrNotNull reports a NOT NULL violation.
	ErrNotNull = errors.New("sqlmini: NOT NULL constraint violated")
	// ErrForeignKey reports a REFERENCES violation.
	ErrForeignKey = errors.New("sqlmini: foreign key constraint violated")
	// ErrNoTransaction reports COMMIT/ROLLBACK without BEGIN.
	ErrNoTransaction = errors.New("sqlmini: no transaction in progress")
	// ErrTxInProgress reports BEGIN inside an open transaction.
	ErrTxInProgress = errors.New("sqlmini: transaction already in progress")
	// ErrMissingParam reports an unbound statement parameter.
	ErrMissingParam = errors.New("sqlmini: missing parameter")
)

// Args supplies named parameter bindings ($name) for a statement.
type Args map[string]any

// Result is the outcome of a statement.
type Result struct {
	// Cols names the result columns (SELECT only).
	Cols []string
	// Rows holds the result set (SELECT only).
	Rows [][]Value
	// Affected counts rows touched by INSERT/UPDATE/DELETE.
	Affected int
}

// Table holds column definitions and rows. Column structure is
// immutable after creation; row and index state is mutated only under
// the table's latch and read lock-free through the atomics.
type Table struct {
	Name   string
	Cols   []ColumnDef
	colIdx map[string]int

	// tid is a process-unique creation id; rollbacks use it to break
	// latch-ordering ties between same-named tables across DROP+CREATE.
	tid uint64

	// latch is the per-table write latch: one writing statement per
	// table at a time. Multi-table operations (atomic batches,
	// rollbacks, snapshots) acquire latches in sorted name order, which
	// makes the lock graph acyclic (see docs/ARCHITECTURE.md).
	latch sync.Mutex

	// rows is the published row list; watermark is the newest commit
	// number visible to snapshot readers of this table.
	rows      atomic.Pointer[rowArr]
	watermark atomic.Uint64

	// pk is the PRIMARY KEY column index (-1 if none); pkIx holds the
	// canonical key → rows buckets for O(1) uniqueness checks and
	// point lookups.
	pk   int
	pkIx *hashIndex

	// indexes is the published secondary-index set (CREATE INDEX),
	// copy-on-write under ddlMu + latch.
	indexes atomic.Pointer[[]*secondaryIndex]

	// gc queues deferred version-chain pruning and stale index-entry
	// removal; guarded by latch.
	gc gcState

	// vers is the table's mutation counter, shared by name across
	// DROP + CREATE (see DB.tableVers).
	vers *atomic.Uint64
}

func (t *Table) columnIndex(name string) (int, bool) {
	i, ok := t.colIdx[name]
	return i, ok
}

// rowsSnapshot returns the published row list (may include rows that
// are dead or invisible at a given snapshot; callers filter).
func (t *Table) rowsSnapshot() []*Row { return t.rows.Load().snapshot() }

// DB is an embedded database instance. The zero value is not usable; call
// NewDB.
//
// Lock hierarchy (enforced by drivolint's latchorder analyzer): DDL
// and whole-database operations take ddlMu first and may then latch
// tables; multiple Table.latch acquisitions go through the canonical
// sorted-name loops only; the statement cache lock never nests.
//
//lint:latch-order DB.ddlMu < Table.latch
//lint:latch-leaf DB.cacheMu
type DB struct {
	// ddlMu serializes schema changes (CREATE/DROP TABLE, index DDL,
	// Restore) and whole-database operations (Snapshot). Statements
	// never take it: they resolve their table from the published schema
	// map and re-check identity after latching.
	ddlMu  sync.Mutex
	schema atomic.Pointer[map[string]*Table]

	clock func() time.Time

	cacheMu sync.RWMutex
	cache   map[string]Statement

	// commits is the engine-wide commit clock: every mutating statement
	// that touches at least one row draws one number from it to stamp
	// its row versions. Snapshot readers never load it directly — they
	// read their table's published watermark.
	commits atomic.Uint64

	// changeSeq is the replication-facing mutation counter (ChangeSeq).
	// It advances by exactly one per successful mutating statement (and
	// per DDL statement and rollback), never on partial failures —
	// the historical contract replicas compare against — so it is kept
	// separate from the commit clock, which must advance for any row
	// version stamped, partial prefixes included.
	changeSeq atomic.Uint64

	// tableVers counts mutations per table name (keyed by name, not
	// *Table, so the counter survives DROP + CREATE). Cache layers above
	// the engine use it to invalidate snapshots of individual tables
	// without being perturbed by churn elsewhere in the database.
	// Values are *atomic.Uint64, so generation probes are lock-free.
	tableVers sync.Map

	// schemaSeq increments whenever table or index *structure* changes
	// (CREATE/DROP TABLE, index creation or upgrade, snapshot restore) —
	// never on row churn. Prepared statements cache their plan skeleton
	// against it: an unchanged schemaSeq proves the analyzed table
	// pointer and its index set are still the live ones.
	schemaSeq atomic.Uint64

	// readers registers in-flight snapshot reads so GC can compute a
	// safe reclamation floor.
	readers readerSlots
}

// tableIDs issues process-unique table creation ids (see Table.tid).
var tableIDs atomic.Uint64

// Option configures a DB.
type Option func(*DB)

// WithClock overrides the time source used by now(); tests use this to
// make lease expiry deterministic.
func WithClock(clock func() time.Time) Option {
	return func(db *DB) { db.clock = clock }
}

// NewDB creates an empty database.
func NewDB(opts ...Option) *DB {
	db := &DB{
		clock: time.Now,
		cache: make(map[string]Statement),
	}
	empty := make(map[string]*Table)
	db.schema.Store(&empty)
	for _, o := range opts {
		o(db)
	}
	return db
}

// lookupTable resolves a table from the published schema, lock-free.
func (db *DB) lookupTable(name string) (*Table, error) {
	m := *db.schema.Load()
	t, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// lockTable latches the named table, re-checking after acquisition
// that the latched object is still the published one (a concurrent
// DROP or Restore may have swapped it).
func (db *DB) lockTable(name string) (*Table, error) {
	for {
		t, err := db.lookupTable(name)
		if err != nil {
			return nil, err
		}
		t.latch.Lock()
		if cur, err2 := db.lookupTable(name); err2 == nil && cur == t {
			return t, nil
		}
		t.latch.Unlock()
	}
}

// sortedTables returns the current tables in name order (the canonical
// multi-latch acquisition order).
func (db *DB) sortedTables() []*Table {
	m := *db.schema.Load()
	out := make([]*Table, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tableCounter returns the shared per-name mutation counter.
func (db *DB) tableCounter(name string) *atomic.Uint64 {
	if v, ok := db.tableVers.Load(name); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := db.tableVers.LoadOrStore(name, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// ChangeSeq returns a counter that advances on every successful
// mutation. Equal counters on two replicas fed the same statement stream
// imply equal state.
func (db *DB) ChangeSeq() uint64 { return db.changeSeq.Load() }

// TableVersion returns a counter that advances on every successful
// mutation of the named table (INSERT/UPDATE/DELETE touching rows,
// CREATE, DROP, and transaction rollbacks that revert its rows). It is 0
// for tables never mutated. Unlike ChangeSeq it is per-table, so caches
// of one table are not invalidated by writes to another. The read is a
// single atomic load — generation probes never contend with statements.
func (db *DB) TableVersion(name string) uint64 {
	if v, ok := db.tableVers.Load(name); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

// TableVersions returns the sum of TableVersion over names. Each
// mutation increments exactly one per-table counter before the
// mutating statement returns, so observed sums are monotonic and an
// unchanged sum across two calls implies no mutation completed between
// them.
func (db *DB) TableVersions(names ...string) uint64 {
	var sum uint64
	for _, n := range names {
		sum += db.TableVersion(n)
	}
	return sum
}

// TableNames returns the defined table names, sorted.
func (db *DB) TableNames() []string {
	m := *db.schema.Load()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableColumns returns the column definitions of the named table (in
// declaration order) and whether the table exists. Static tooling
// (drivolint's sqlcheck) uses it to validate column references against
// the live schema without executing anything.
func (db *DB) TableColumns(name string) ([]ColumnDef, bool) {
	m := *db.schema.Load()
	t, ok := m[name]
	if !ok {
		return nil, false
	}
	cols := make([]ColumnDef, len(t.Cols))
	copy(cols, t.Cols)
	return cols, true
}

// parseCached parses src, memoizing the AST. Statements are immutable
// after parsing (positional parameter indices are assigned at parse
// time), so sharing is safe.
func (db *DB) parseCached(src string) (Statement, error) {
	db.cacheMu.RLock()
	st, ok := db.cache[src]
	db.cacheMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	db.cacheMu.Lock()
	if len(db.cache) > 4096 { // crude bound; workloads reuse few shapes
		db.cache = make(map[string]Statement)
	}
	db.cache[src] = st
	db.cacheMu.Unlock()
	return st, nil
}

// Exec runs a statement in autocommit mode. If args is a single Args map,
// parameters bind by name ($name); otherwise they bind positionally (?).
func (db *DB) Exec(src string, args ...any) (*Result, error) {
	s := db.NewSession()
	defer s.Close()
	return s.Exec(src, args...)
}

// Query is Exec for statements expected to return rows.
func (db *DB) Query(src string, args ...any) (*Result, error) {
	return db.Exec(src, args...)
}

// MustExec runs Exec and panics on error; for tests and fixtures only.
func (db *DB) MustExec(src string, args ...any) *Result {
	r, err := db.Exec(src, args...)
	if err != nil {
		panic(fmt.Sprintf("sqlmini: MustExec(%q): %v", src, err))
	}
	return r
}

// Session is a connection-scoped execution context owning at most one
// open transaction. Sessions are not safe for concurrent use; each
// network session in the DBMS gets its own. Distinct sessions may run
// concurrently: reads take snapshots, writes serialize per table.
type Session struct {
	db *DB
	tx *undoLog
}

// NewSession creates an execution context.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// InTx reports whether an explicit transaction is open.
func (s *Session) InTx() bool { return s.tx != nil }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.rollback()
	}
}

func bindArgs(args []any) (named map[string]Value, positional []Value, err error) {
	if len(args) == 1 {
		if m, ok := args[0].(Args); ok {
			named = make(map[string]Value, len(m))
			for k, v := range m {
				val, err := FromGo(v)
				if err != nil {
					return nil, nil, fmt.Errorf("parameter $%s: %w", k, err)
				}
				named[strings.ToLower(k)] = val
			}
			return named, nil, nil
		}
	}
	positional = make([]Value, 0, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, nil, fmt.Errorf("parameter %d: %w", i+1, err)
		}
		positional = append(positional, v)
	}
	return nil, positional, nil
}

// Exec executes one statement within this session.
func (s *Session) Exec(src string, args ...any) (*Result, error) {
	st, err := s.db.parseCached(src)
	if err != nil {
		return nil, err
	}
	named, positional, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{clock: s.db.clock, named: named, positional: positional}

	switch st := st.(type) {
	case *BeginStmt:
		if s.tx != nil {
			return nil, ErrTxInProgress
		}
		s.tx = &undoLog{}
		return &Result{}, nil
	case *CommitStmt:
		if s.tx == nil {
			return nil, ErrNoTransaction
		}
		s.tx = nil
		return &Result{}, nil
	case *RollbackStmt:
		if s.tx == nil {
			return nil, ErrNoTransaction
		}
		s.rollback()
		return &Result{}, nil
	default:
		return s.db.execStmt(st, env, s.tx)
	}
}

// Query is Exec for row-returning statements.
func (s *Session) Query(src string, args ...any) (*Result, error) {
	return s.Exec(src, args...)
}

func (s *Session) rollback() {
	tx := s.tx
	s.tx = nil
	tx.revert(s.db)
}

// execStmt dispatches one non-transaction-control statement: SELECTs
// take the lock-free snapshot-read path, DML latches its table, DDL
// serializes on ddlMu.
func (db *DB) execStmt(st Statement, env *evalEnv, tx *undoLog) (*Result, error) {
	switch st := st.(type) {
	case *CreateTableStmt:
		return db.execCreate(st)
	case *CreateIndexStmt:
		return db.execCreateIndex(st)
	case *DropTableStmt:
		return db.execDrop(st)
	case *SelectStmt:
		return db.execSelectRead(st, env)
	case *InsertStmt:
		return db.writeOne(st.Table, env, func(t *Table, w *writeCtx) (*Result, error) {
			return db.execInsert(t, st, env, tx, w)
		})
	case *UpdateStmt:
		return db.writeOne(st.Table, env, func(t *Table, w *writeCtx) (*Result, error) {
			return db.execUpdate(t, st, env, tx, w)
		})
	case *DeleteStmt:
		return db.writeOne(st.Table, env, func(t *Table, w *writeCtx) (*Result, error) {
			return db.execDelete(t, st, env, tx, w)
		})
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
	}
}

// writeCtx tracks a write's commit numbers and the tables it touched.
// Each statement draws its commit number lazily at its first actual row
// mutation, so statements that match zero rows leave every counter
// untouched; the watermark publish at release makes all of a
// statement's (or batch's) row versions visible atomically. Batches
// reuse one writeCtx across statements, calling nextStmt between them,
// which preserves the one-commit-per-statement accounting while
// deferring visibility to the shared publish.
type writeCtx struct {
	db      *DB
	c       uint64 // current statement's commit number (0 = not drawn)
	touched []touchedTable
}

// touchedTable is one table's publish state within a writeCtx: the
// watermark to store (the last commit that wrote it) and the
// TableVersion increments owed (one per statement that wrote it).
type touchedTable struct {
	t          *Table
	mark, bump uint64
}

// commit returns the statement's commit number, drawing it on first use,
// and records t as touched by this statement.
func (w *writeCtx) commit(t *Table) uint64 {
	if w.c == 0 {
		w.c = w.db.commits.Add(1)
	}
	for i := range w.touched {
		if w.touched[i].t == t {
			if w.touched[i].mark != w.c {
				w.touched[i].mark = w.c
				w.touched[i].bump++ // one version bump per (statement, table)
			}
			return w.c
		}
	}
	w.touched = append(w.touched, touchedTable{t: t, mark: w.c, bump: 1})
	return w.c
}

// nextStmt starts the next statement of a batch: a fresh lazy commit
// number, same accumulated publish state.
func (w *writeCtx) nextStmt() { w.c = 0 }

// publish makes the write's mutations visible: per-table watermark
// store, then the version-counter bumps (in that order — a generation
// probe must never observe a bump before the data it flags is
// readable). Called with all touched tables' latches still held. Runs
// on the error path too: autocommit partial failures leave their
// applied prefix committed (documented semantics), so the versions
// stamped must become visible and the caches keyed on TableVersion
// must invalidate.
func (w *writeCtx) publish() {
	for _, tt := range w.touched {
		tt.t.watermark.Store(tt.mark)
		tt.t.vers.Add(tt.bump)
	}
}

// writeOne runs fn with the named table latched and publishes at the
// end. ChangeSeq advances only when the statement succeeded and
// actually mutated (drew a commit number) — the historical contract.
func (db *DB) writeOne(table string, env *evalEnv, fn func(*Table, *writeCtx) (*Result, error)) (*Result, error) {
	t, err := db.lockTable(table)
	if err != nil {
		return nil, err
	}
	w := &writeCtx{db: db}
	res, err := fn(t, w)
	if err == nil && w.c != 0 {
		db.changeSeq.Add(1)
	}
	w.publish()
	t.maybeGCLocked(db)
	t.latch.Unlock()
	return res, err
}

func (db *DB) execCreate(st *CreateTableStmt) (*Result, error) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	old := *db.schema.Load()
	if _, exists := old[st.Table]; exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlmini: table %q already exists", st.Table)
	}
	t := &Table{Name: st.Table, Cols: st.Cols, colIdx: make(map[string]int, len(st.Cols)), tid: tableIDs.Add(1)}
	for i, c := range st.Cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q in table %q", c.Name, st.Table)
		}
		t.colIdx[c.Name] = i
	}
	t.initIndex()
	t.vers = db.tableCounter(st.Table)
	t.watermark.Store(db.commits.Load())
	db.publishSchema(addTable(old, t))
	db.changeSeq.Add(1)
	t.vers.Add(1)
	return &Result{}, nil
}

// addTable / dropTable build a fresh schema map (copy-on-write).
func addTable(old map[string]*Table, t *Table) map[string]*Table {
	m := make(map[string]*Table, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[t.Name] = t
	return m
}

func dropTable(old map[string]*Table, name string) map[string]*Table {
	m := make(map[string]*Table, len(old))
	for k, v := range old {
		if k != name {
			m[k] = v
		}
	}
	return m
}

// publishSchema swaps the schema map and bumps schemaSeq. Caller holds
// ddlMu.
func (db *DB) publishSchema(m map[string]*Table) {
	db.schema.Store(&m)
	db.schemaSeq.Add(1)
}

func (db *DB) execCreateIndex(st *CreateIndexStmt) (*Result, error) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	t, err := db.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	byName := t.indexNamed(st.Name)
	if byName != nil && !st.IfNotExists {
		return nil, fmt.Errorf("sqlmini: index %q already exists on table %q", st.Name, st.Table)
	}
	cols := make([]int, len(st.Cols))
	seen := make(map[int]bool, len(st.Cols))
	for i, cn := range st.Cols {
		ci, ok := t.columnIndex(cn)
		if !ok {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, cn, st.Table)
		}
		if seen[ci] {
			return nil, fmt.Errorf("sqlmini: duplicate column %q in index %q", cn, st.Name)
		}
		seen[ci] = true
		cols[i] = ci
	}
	if len(cols) > 1 && st.Kind != IndexOrdered {
		return nil, fmt.Errorf("sqlmini: composite index %q requires USING ORDERED", st.Name)
	}
	return db.declareIndex(t, st.Name, cols, st.Kind)
}

// declareIndex applies the index-declaration ladder shared by CREATE
// INDEX and EnsureIndex. Caller holds ddlMu.
//
// A column set already served — the PRIMARY KEY's single column, or an
// earlier declaration over the identical column list — gets no second
// index: it would double every mutation's maintenance and never be
// consulted. The statement still succeeds, for DDL portability.
// Exception: an ORDERED declaration upgrades an existing hash index
// over the same columns in place (keeping its name), because the
// ordered structure strictly subsumes the hash one for planning; the
// reverse never downgrades. Composite indexes are independent of
// single-column ones sharing their leading column.
func (db *DB) declareIndex(t *Table, name string, cols []int, kind IndexKind) (*Result, error) {
	if len(cols) == 1 && cols[0] == t.pk {
		return &Result{}, nil
	}
	if prior := t.indexWithCols(cols); prior != nil {
		if kind == IndexOrdered && prior.kind == IndexHash {
			t.latch.Lock()
			t.removeIndex(prior)
			t.addIndex(prior.name, cols, kind)
			// Keep the superseded hash structure maintained as a shadow
			// of the new ordered index: a prepared plan bound just
			// before the upgrade may still probe it, and a frozen copy
			// would silently miss concurrent inserts.
			upgraded := t.indexNamed(prior.name)
			upgraded.shadow = prior.hash
			t.latch.Unlock()
			db.schemaSeq.Add(1)
		}
		return &Result{}, nil
	}
	if t.indexNamed(name) != nil {
		return &Result{}, nil // name taken by an index on other columns
	}
	t.latch.Lock()
	t.addIndex(name, cols, kind)
	t.latch.Unlock()
	db.schemaSeq.Add(1)
	// Index DDL does not change row data: ChangeSeq/TableVersion stay
	// put, so replica divergence checks and catalog caches are unmoved.
	return &Result{}, nil
}

// EnsureIndex declares a secondary hash index on table(col) from Go,
// equivalent to CREATE INDEX IF NOT EXISTS table_col_idx ON table (col).
// It is idempotent.
func (db *DB) EnsureIndex(table, col string) error {
	return db.ensureIndex(table, IndexHash, col)
}

// EnsureOrderedIndex declares a secondary ordered index on
// table(cols...) from Go, equivalent to CREATE INDEX IF NOT EXISTS
// table_col_idx ON table (cols...) USING ORDERED. An existing hash
// index over the same columns is upgraded in place; the call is
// idempotent. Multi-column lists declare a composite index.
func (db *DB) EnsureOrderedIndex(table string, cols ...string) error {
	return db.ensureIndex(table, IndexOrdered, cols...)
}

func (db *DB) ensureIndex(table string, kind IndexKind, colNames ...string) error {
	table = strings.ToLower(table)
	if len(colNames) == 0 {
		return fmt.Errorf("sqlmini: index on %q needs at least one column", table)
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		cn = strings.ToLower(cn)
		colNames[i] = cn
		ci, ok := t.columnIndex(cn)
		if !ok {
			return fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, cn, table)
		}
		cols[i] = ci
	}
	// The generated name must not collide with a user-declared index on
	// other columns; suffix until free.
	base := strings.ReplaceAll(table, ".", "_") + "_" + strings.Join(colNames, "_") + "_idx"
	name := base
	for n := 2; ; n++ {
		prior := t.indexNamed(name)
		if prior == nil {
			break
		}
		sameCols := len(prior.cols) == len(cols)
		for i := range cols {
			if !sameCols || prior.cols[i] != cols[i] {
				sameCols = false
				break
			}
		}
		if sameCols {
			break // declareIndex will treat it as the prior declaration
		}
		name = fmt.Sprintf("%s_%d", base, n)
	}
	_, err = db.declareIndex(t, name, cols, kind)
	return err
}

func (db *DB) execDrop(st *DropTableStmt) (*Result, error) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	old := *db.schema.Load()
	t, exists := old[st.Table]
	if !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}
	// Wait out any in-flight writer so its mutations land before the
	// table becomes unreachable (it re-checks identity after latching
	// and would otherwise write into a dropped table).
	t.latch.Lock()
	db.publishSchema(dropTable(old, st.Table))
	t.latch.Unlock()
	db.changeSeq.Add(1)
	db.tableCounter(st.Table).Add(1)
	return &Result{}, nil
}

func (db *DB) execInsert(t *Table, st *InsertStmt, env *evalEnv, tx *undoLog, w *writeCtx) (*Result, error) {
	cols := st.Cols
	if len(cols) == 0 {
		cols = make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
	}
	colPos := make([]int, len(cols))
	for i, c := range cols {
		idx, ok := t.columnIndex(c)
		if !ok {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, c, st.Table)
		}
		colPos[i] = idx
	}
	inserted := 0
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("sqlmini: INSERT into %q: %d values for %d columns", st.Table, len(exprRow), len(cols))
		}
		vals := make([]Value, len(t.Cols)) // unset columns default to NULL
		for i, e := range exprRow {
			v, err := env.eval(e, nil, nil)
			if err != nil {
				return nil, err
			}
			cv, err := Coerce(v, t.Cols[colPos[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cols[i], err)
			}
			vals[colPos[i]] = cv
		}
		if err := db.checkConstraints(t, vals, nil); err != nil {
			// In autocommit mode a later row's failure leaves earlier
			// rows committed; publish (in writeOne) makes the partial
			// prefix visible and bumps the table version.
			return nil, err
		}
		row := newRow(vals, w.commit(t))
		arr := t.rows.Load()
		if na := arr.append(row); na != arr {
			t.rows.Store(na)
		}
		t.indexInsert(row, vals)
		if tx != nil {
			tx.recordInsert(t, row)
		}
		inserted++
	}
	return &Result{Affected: inserted}, nil
}

// checkConstraints validates NOT NULL, PRIMARY KEY uniqueness, and
// REFERENCES existence for a candidate row. skip, when non-nil, is a row
// excluded from uniqueness checks (the row being updated). The caller
// holds the owning table's latch; referenced tables are read at their
// latest committed state without additional latches (insert-time FK
// checks only — the engine has never enforced FKs on delete, so the
// check is advisory against concurrent parent deletes either way).
func (db *DB) checkConstraints(t *Table, vals []Value, skip *Row) error {
	for i, c := range t.Cols {
		v := vals[i]
		if c.NotNull && v.IsNull() {
			return fmt.Errorf("%w: column %q of table %q", ErrNotNull, c.Name, t.Name)
		}
		if c.PrimaryKey && !v.IsNull() {
			if r, ok := t.lookupPKCurrent(v); ok && r != skip {
				return fmt.Errorf("%w: %s=%s in table %q", ErrDuplicateKey, c.Name, v, t.Name)
			}
		}
		if c.RefTable != "" && !v.IsNull() {
			ref, err := db.lookupTable(c.RefTable)
			if err != nil {
				return fmt.Errorf("%w: referenced table %q missing", ErrForeignKey, c.RefTable)
			}
			ri, ok := ref.columnIndex(c.RefColumn)
			if !ok {
				return fmt.Errorf("%w: referenced column %q missing in %q", ErrForeignKey, c.RefColumn, c.RefTable)
			}
			found := false
			if ref.pk == ri {
				_, found = ref.lookupPKCurrent(v)
			} else {
				for _, r := range ref.rowsSnapshot() {
					rv := r.curVals()
					if rv != nil && Equal(rv[ri], v) {
						found = true
						break
					}
				}
			}
			if !found {
				return fmt.Errorf("%w: %s=%s not present in %s(%s)", ErrForeignKey, c.Name, v, c.RefTable, c.RefColumn)
			}
		}
	}
	return nil
}

// execSelectRead is the snapshot-read path: no latch, no blocking.
// The statement registers in a reader slot (so GC can't reclaim the
// versions it walks), snapshots the table's watermark, and executes
// against that immutable view. When all slots are busy it falls back
// to a latched read, which needs no registration because GC for this
// table runs only under the same latch.
func (db *DB) execSelectRead(st *SelectStmt, env *evalEnv) (*Result, error) {
	if st.Table == "" {
		return execConstSelect(st, env)
	}
	t, err := db.lookupTable(st.Table)
	if err != nil {
		return nil, err
	}
	slot := db.readers.acquire()
	if slot < 0 {
		t2, err := db.lockTable(st.Table)
		if err != nil {
			return nil, err
		}
		defer t2.latch.Unlock()
		return db.execSelect(t2, tableView{t: t2, writer: true}, st, env)
	}
	s := t.watermark.Load()
	db.readers.publish(slot, s)
	defer db.readers.release(slot)
	return db.execSelect(t, tableView{t: t, s: s}, st, env)
}

// execConstSelect evaluates a SELECT without FROM once against an
// empty row. It touches no table state, so batches reuse it verbatim.
func execConstSelect(st *SelectStmt, env *evalEnv) (*Result, error) {
	res := &Result{}
	for _, item := range st.Items {
		res.Cols = append(res.Cols, selectColName(item))
	}
	row := make([]Value, 0, len(st.Items))
	for _, item := range st.Items {
		v, err := env.eval(item.Expr, nil, nil)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	res.Rows = [][]Value{row}
	return res, nil
}

// tableView is one statement's view of a table: a snapshot reader
// (visible-at-s) or the writer view (current chain heads). valsOf
// returns nil for rows invisible in the view.
type tableView struct {
	t      *Table
	s      uint64
	writer bool
}

func (vw tableView) valsOf(r *Row) []Value {
	if vw.writer {
		return r.curVals()
	}
	return r.visible(vw.s)
}

func (db *DB) execSelect(t *Table, vw tableView, st *SelectStmt, env *evalEnv) (*Result, error) {
	// Filter. The planner supplies an index-backed candidate set when
	// the WHERE qualifies (plan.go), the full row list otherwise. The
	// WHERE is re-applied to the candidates — or, for residual-free
	// plans, replaced by the plan's Compare checks — so index candidates
	// only narrow the rows visited; MVCC makes both necessary, since
	// index entries are removed lazily and may be stale for this view.
	// LIMIT stays on the scan: bucket order can differ from table
	// order, and the cut makes that ordering user-visible (even under
	// ORDER BY, tied keys keep candidate order).
	var source []*Row
	var p *indexPlan
	if selectPlannable(st) {
		source, p = db.planRows(t, st.Where, env)
	} else {
		source = t.rowsSnapshot()
	}
	var matched [][]Value
	if p != nil {
		// Index candidates are already narrowed; presizing to the
		// candidate count trades a bounded over-allocation for the
		// append-doubling churn (the scan path stays lazy: its source
		// is the whole table and the WHERE may keep almost nothing).
		matched = make([][]Value, 0, len(source))
	}
	var seen map[*Row]bool
	if p != nil && p.dedup && len(source) > 1 {
		seen = make(map[*Row]bool, len(source))
	}
	for _, r := range source {
		if seen != nil {
			if seen[r] {
				continue
			}
			seen[r] = true
		}
		vals := vw.valsOf(r)
		if vals == nil {
			continue
		}
		if p != nil && p.exact {
			if !p.verify(vals) {
				continue
			}
		} else if st.Where != nil {
			v, err := env.eval(st.Where, t, vals)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		matched = append(matched, vals)
	}

	// Aggregate query? (no GROUP BY support; all-aggregate select lists
	// collapse to a single row, which covers COUNT/MIN/MAX/SUM/AVG usage.)
	if !st.Star && allAggregates(st.Items) {
		res := &Result{}
		row := make([]Value, 0, len(st.Items))
		for _, item := range st.Items {
			res.Cols = append(res.Cols, selectColName(item))
			v, err := env.evalAggregate(item.Expr.(*CallExpr), t, matched)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = [][]Value{row}
		return res, nil
	}

	// ORDER BY.
	if len(st.Order) > 0 {
		var sortErr error
		sort.SliceStable(matched, func(i, j int) bool {
			for _, key := range st.Order {
				vi, err := env.eval(key.Expr, t, matched[i])
				if err != nil {
					sortErr = err
					return false
				}
				vj, err := env.eval(key.Expr, t, matched[j])
				if err != nil {
					sortErr = err
					return false
				}
				// NULLs sort first ascending.
				switch {
				case vi.IsNull() && vj.IsNull():
					continue
				case vi.IsNull():
					return !key.Desc
				case vj.IsNull():
					return key.Desc
				}
				c, _ := Compare(vi, vj)
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	if st.Limit >= 0 && len(matched) > st.Limit {
		matched = matched[:st.Limit]
	}

	res := &Result{}
	if st.Star {
		for _, c := range t.Cols {
			res.Cols = append(res.Cols, c.Name)
		}
		for _, vals := range matched {
			out := make([]Value, len(vals))
			copy(out, vals)
			res.Rows = append(res.Rows, out)
		}
		return res, nil
	}
	for _, item := range st.Items {
		res.Cols = append(res.Cols, selectColName(item))
	}
	for _, vals := range matched {
		out := make([]Value, 0, len(st.Items))
		for _, item := range st.Items {
			v, err := env.eval(item.Expr, t, vals)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func selectColName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColumnExpr:
		return e.Name
	case *CallExpr:
		return strings.ToLower(e.Fn)
	default:
		return "?column?"
	}
}

var aggregateFns = map[string]bool{
	"COUNT": true, "MIN": true, "MAX": true, "SUM": true, "AVG": true,
}

func allAggregates(items []SelectItem) bool {
	if len(items) == 0 {
		return false
	}
	for _, it := range items {
		c, ok := it.Expr.(*CallExpr)
		if !ok || !aggregateFns[c.Fn] {
			return false
		}
	}
	return true
}

// candidateRows resolves the plan's candidate set for a writer-side
// statement (UPDATE/DELETE), deduplicated so SET clauses can't apply
// twice to a row reached through two index groups.
func (db *DB) writerCandidates(t *Table, where Expr, env *evalEnv) ([]*Row, *indexPlan) {
	source, p := db.planRows(t, where, env)
	if p == nil || !p.dedup || len(source) < 2 {
		return source, p
	}
	seen := make(map[*Row]bool, len(source))
	out := make([]*Row, 0, len(source))
	for _, r := range source {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out, p
}

func (db *DB) execUpdate(t *Table, st *UpdateStmt, env *evalEnv, tx *undoLog, w *writeCtx) (*Result, error) {
	setPos := make([]int, len(st.Set))
	for i, a := range st.Set {
		idx, ok := t.columnIndex(a.Col)
		if !ok {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, a.Col, st.Table)
		}
		setPos[i] = idx
	}
	affected := 0
	source, p := db.writerCandidates(t, st.Where, env)
	for _, r := range source {
		vals := r.curVals()
		if vals == nil {
			continue // dead for this writer: invisible
		}
		if p != nil && p.exact {
			if !p.verify(vals) {
				continue
			}
		} else if st.Where != nil {
			v, err := env.eval(st.Where, t, vals)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		newVals := make([]Value, len(vals))
		copy(newVals, vals)
		for i, a := range st.Set {
			v, err := env.eval(a.Expr, t, vals)
			if err != nil {
				return nil, err
			}
			cv, err := Coerce(v, t.Cols[setPos[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", a.Col, err)
			}
			newVals[setPos[i]] = cv
		}
		if err := db.checkConstraints(t, newVals, r); err != nil {
			return nil, err
		}
		if tx != nil {
			tx.recordUpdate(t, r, vals)
		}
		c := w.commit(t)
		r.push(newVals, c, false)
		t.indexUpdate(r, vals, newVals, c)
		t.gc.enqueue(gcItem{c: c, row: r}) // prune hint: the chain grew
		affected++
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execDelete(t *Table, st *DeleteStmt, env *evalEnv, tx *undoLog, w *writeCtx) (*Result, error) {
	// Evaluate the candidate set before mutating so a mid-scan
	// evaluation error leaves the table untouched.
	source, p := db.writerCandidates(t, st.Where, env)
	type victim struct {
		r    *Row
		vals []Value
	}
	var deleted []victim
	for _, r := range source {
		vals := r.curVals()
		if vals == nil {
			continue
		}
		del := true
		if p != nil && p.exact {
			del = p.verify(vals)
		} else if st.Where != nil {
			v, err := env.eval(st.Where, t, vals)
			if err != nil {
				return nil, err
			}
			del = !v.IsNull() && v.Bool()
		}
		if del {
			deleted = append(deleted, victim{r: r, vals: vals})
		}
	}
	if len(deleted) == 0 {
		return &Result{Affected: 0}, nil
	}
	for _, d := range deleted {
		if tx != nil {
			tx.recordDelete(t, d.r, d.vals)
		}
		c := w.commit(t)
		d.r.push(nil, c, true)
		t.gc.enqueue(gcItem{c: c, row: d.r, unlink: true})
	}
	return &Result{Affected: len(deleted)}, nil
}
