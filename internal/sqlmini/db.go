package sqlmini

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Engine-level errors.
var (
	// ErrNoSuchTable reports a reference to an undefined table.
	ErrNoSuchTable = errors.New("sqlmini: no such table")
	// ErrNoSuchColumn reports a reference to an undefined column.
	ErrNoSuchColumn = errors.New("sqlmini: no such column")
	// ErrDuplicateKey reports a primary-key violation.
	ErrDuplicateKey = errors.New("sqlmini: duplicate primary key")
	// ErrNotNull reports a NOT NULL violation.
	ErrNotNull = errors.New("sqlmini: NOT NULL constraint violated")
	// ErrForeignKey reports a REFERENCES violation.
	ErrForeignKey = errors.New("sqlmini: foreign key constraint violated")
	// ErrNoTransaction reports COMMIT/ROLLBACK without BEGIN.
	ErrNoTransaction = errors.New("sqlmini: no transaction in progress")
	// ErrTxInProgress reports BEGIN inside an open transaction.
	ErrTxInProgress = errors.New("sqlmini: transaction already in progress")
	// ErrMissingParam reports an unbound statement parameter.
	ErrMissingParam = errors.New("sqlmini: missing parameter")
)

// Args supplies named parameter bindings ($name) for a statement.
type Args map[string]any

// Result is the outcome of a statement.
type Result struct {
	// Cols names the result columns (SELECT only).
	Cols []string
	// Rows holds the result set (SELECT only).
	Rows [][]Value
	// Affected counts rows touched by INSERT/UPDATE/DELETE.
	Affected int
}

// Row is a stored row. Identity (the pointer) is stable for the row's
// lifetime, which the undo log relies on.
type Row struct {
	Vals []Value
}

// Table holds column definitions and rows.
type Table struct {
	Name   string
	Cols   []ColumnDef
	colIdx map[string]int
	Rows   []*Row

	// pk is the PRIMARY KEY column index (-1 if none); pkIdx maps the
	// canonical key string to its row for O(1) uniqueness checks.
	pk    int
	pkIdx map[string]*Row

	// indexes are the secondary indexes (CREATE INDEX), hash or ordered;
	// the planner in plan.go drives equality lookups — and, for ordered
	// indexes, range scans — off them.
	indexes []*secondaryIndex
}

func (t *Table) columnIndex(name string) (int, bool) {
	i, ok := t.colIdx[name]
	return i, ok
}

// DB is an embedded database instance. The zero value is not usable; call
// NewDB.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table

	clock func() time.Time

	cacheMu sync.RWMutex
	cache   map[string]Statement

	// changeSeq increments on every mutation; used by replication layers
	// to cheaply detect divergence.
	changeSeq uint64

	// tableVers counts mutations per table name (keyed by name, not
	// *Table, so the counter survives DROP + CREATE). Cache layers above
	// the engine use it to invalidate snapshots of individual tables
	// without being perturbed by churn elsewhere in the database.
	tableVers map[string]uint64

	// schemaSeq increments whenever table or index *structure* changes
	// (CREATE/DROP TABLE, index creation or upgrade, snapshot restore) —
	// never on row churn. Prepared statements cache their plan skeleton
	// against it: an unchanged schemaSeq proves the analyzed table
	// pointer and its index set are still the live ones.
	schemaSeq uint64
}

// Option configures a DB.
type Option func(*DB)

// WithClock overrides the time source used by now(); tests use this to
// make lease expiry deterministic.
func WithClock(clock func() time.Time) Option {
	return func(db *DB) { db.clock = clock }
}

// NewDB creates an empty database.
func NewDB(opts ...Option) *DB {
	db := &DB{
		tables:    make(map[string]*Table),
		clock:     time.Now,
		cache:     make(map[string]Statement),
		tableVers: make(map[string]uint64),
	}
	for _, o := range opts {
		o(db)
	}
	return db
}

// ChangeSeq returns a counter that increments on every successful
// mutation. Equal counters on two replicas fed the same statement stream
// imply equal state.
func (db *DB) ChangeSeq() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.changeSeq
}

// TableVersion returns a counter that increments on every successful
// mutation of the named table (INSERT/UPDATE/DELETE touching rows,
// CREATE, DROP, and transaction rollbacks that revert its rows). It is 0
// for tables never mutated. Unlike ChangeSeq it is per-table, so caches
// of one table are not invalidated by writes to another.
func (db *DB) TableVersion(name string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.tableVers[name]
}

// TableVersions returns the sum of TableVersion over names, read under
// one lock. Each mutation increments exactly one per-table counter, so
// the sum is strictly monotonic and equal sums imply no mutation.
func (db *DB) TableVersions(names ...string) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var sum uint64
	for _, n := range names {
		sum += db.tableVers[n]
	}
	return sum
}

// bumpTable advances a table's mutation counter; caller holds db.mu.
func (db *DB) bumpTable(name string) { db.tableVers[name]++ }

// TableNames returns the defined table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parseCached parses src, memoizing the AST. Statements are immutable
// after parsing (positional parameter indices are assigned at parse
// time), so sharing is safe.
func (db *DB) parseCached(src string) (Statement, error) {
	db.cacheMu.RLock()
	st, ok := db.cache[src]
	db.cacheMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	db.cacheMu.Lock()
	if len(db.cache) > 4096 { // crude bound; workloads reuse few shapes
		db.cache = make(map[string]Statement)
	}
	db.cache[src] = st
	db.cacheMu.Unlock()
	return st, nil
}

// Exec runs a statement in autocommit mode. If args is a single Args map,
// parameters bind by name ($name); otherwise they bind positionally (?).
func (db *DB) Exec(src string, args ...any) (*Result, error) {
	s := db.NewSession()
	defer s.Close()
	return s.Exec(src, args...)
}

// Query is Exec for statements expected to return rows.
func (db *DB) Query(src string, args ...any) (*Result, error) {
	return db.Exec(src, args...)
}

// MustExec runs Exec and panics on error; for tests and fixtures only.
func (db *DB) MustExec(src string, args ...any) *Result {
	r, err := db.Exec(src, args...)
	if err != nil {
		panic(fmt.Sprintf("sqlmini: MustExec(%q): %v", src, err))
	}
	return r
}

// Session is a connection-scoped execution context owning at most one
// open transaction. Sessions are not safe for concurrent use; each
// network session in the DBMS gets its own.
type Session struct {
	db *DB
	tx *undoLog
}

// NewSession creates an execution context.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// InTx reports whether an explicit transaction is open.
func (s *Session) InTx() bool { return s.tx != nil }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.rollback()
	}
}

func bindArgs(args []any) (named map[string]Value, positional []Value, err error) {
	if len(args) == 1 {
		if m, ok := args[0].(Args); ok {
			named = make(map[string]Value, len(m))
			for k, v := range m {
				val, err := FromGo(v)
				if err != nil {
					return nil, nil, fmt.Errorf("parameter $%s: %w", k, err)
				}
				named[strings.ToLower(k)] = val
			}
			return named, nil, nil
		}
	}
	positional = make([]Value, 0, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, nil, fmt.Errorf("parameter %d: %w", i+1, err)
		}
		positional = append(positional, v)
	}
	return nil, positional, nil
}

// Exec executes one statement within this session.
func (s *Session) Exec(src string, args ...any) (*Result, error) {
	st, err := s.db.parseCached(src)
	if err != nil {
		return nil, err
	}
	named, positional, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{clock: s.db.clock, named: named, positional: positional}

	switch st := st.(type) {
	case *BeginStmt:
		if s.tx != nil {
			return nil, ErrTxInProgress
		}
		s.tx = &undoLog{}
		return &Result{}, nil
	case *CommitStmt:
		if s.tx == nil {
			return nil, ErrNoTransaction
		}
		s.tx = nil
		return &Result{}, nil
	case *RollbackStmt:
		if s.tx == nil {
			return nil, ErrNoTransaction
		}
		s.rollback()
		return &Result{}, nil
	default:
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
		return s.db.execLocked(st, env, s.tx)
	}
}

// Query is Exec for row-returning statements.
func (s *Session) Query(src string, args ...any) (*Result, error) {
	return s.Exec(src, args...)
}

func (s *Session) rollback() {
	s.db.mu.Lock()
	s.tx.revert(s.db)
	s.db.mu.Unlock()
	s.tx = nil
}

func (db *DB) execLocked(st Statement, env *evalEnv, tx *undoLog) (*Result, error) {
	switch st := st.(type) {
	case *CreateTableStmt:
		return db.execCreate(st)
	case *CreateIndexStmt:
		return db.execCreateIndex(st)
	case *DropTableStmt:
		return db.execDrop(st)
	case *InsertStmt:
		return db.execInsert(st, env, tx)
	case *SelectStmt:
		return db.execSelect(st, env)
	case *UpdateStmt:
		return db.execUpdate(st, env, tx)
	case *DeleteStmt:
		return db.execDelete(st, env, tx)
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
	}
}

func (db *DB) execCreate(st *CreateTableStmt) (*Result, error) {
	if _, exists := db.tables[st.Table]; exists {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqlmini: table %q already exists", st.Table)
	}
	t := &Table{Name: st.Table, Cols: st.Cols, colIdx: make(map[string]int, len(st.Cols))}
	for i, c := range st.Cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q in table %q", c.Name, st.Table)
		}
		t.colIdx[c.Name] = i
	}
	t.initIndex()
	db.tables[st.Table] = t
	db.changeSeq++
	db.bumpTable(st.Table)
	db.schemaSeq++
	return &Result{}, nil
}

func (db *DB) execCreateIndex(st *CreateIndexStmt) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	byName := t.indexNamed(st.Name)
	if byName != nil && !st.IfNotExists {
		return nil, fmt.Errorf("sqlmini: index %q already exists on table %q", st.Name, st.Table)
	}
	col, ok := t.columnIndex(st.Col)
	if !ok {
		return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, st.Col, st.Table)
	}
	// A column already served by an index — the PRIMARY KEY's, or an
	// earlier CREATE INDEX under another name — gets no second one: it
	// would double every mutation's maintenance and never be consulted
	// (indexOn returns the first). The statement still succeeds, for
	// DDL portability. Exception: an ORDERED declaration upgrades an
	// existing hash index on the column in place (keeping its name),
	// because the ordered structure strictly subsumes the hash one for
	// planning; the reverse never downgrades.
	if col == t.pk {
		return &Result{}, nil
	}
	if prior := t.indexOn(col); prior != nil {
		if st.Kind == IndexOrdered && prior.kind == IndexHash {
			t.removeIndex(prior)
			t.addIndex(prior.name, col, IndexOrdered)
			db.schemaSeq++
		}
		return &Result{}, nil
	}
	if byName != nil {
		return &Result{}, nil // name taken by an index on another column
	}
	t.addIndex(st.Name, col, st.Kind)
	db.schemaSeq++
	// Index DDL does not change row data: ChangeSeq/TableVersion stay
	// put, so replica divergence checks and catalog caches are unmoved.
	return &Result{}, nil
}

// EnsureIndex declares a secondary hash index on table(col) from Go,
// equivalent to CREATE INDEX IF NOT EXISTS table_col_idx ON table (col).
// It is idempotent.
func (db *DB) EnsureIndex(table, col string) error {
	return db.ensureIndex(table, col, IndexHash)
}

// EnsureOrderedIndex declares a secondary ordered index on table(col)
// from Go, equivalent to CREATE INDEX IF NOT EXISTS table_col_idx ON
// table (col) USING ORDERED. An existing hash index on the column is
// upgraded in place; the call is idempotent.
func (db *DB) EnsureOrderedIndex(table, col string) error {
	return db.ensureIndex(table, col, IndexOrdered)
}

func (db *DB) ensureIndex(table, col string, kind IndexKind) error {
	table, col = strings.ToLower(table), strings.ToLower(col)
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	ci, ok := t.columnIndex(col)
	if !ok {
		return fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, col, table)
	}
	if ci == t.pk {
		return nil
	}
	if prior := t.indexOn(ci); prior != nil {
		if kind == IndexOrdered && prior.kind == IndexHash {
			t.removeIndex(prior)
			t.addIndex(prior.name, ci, IndexOrdered)
			db.schemaSeq++
		}
		return nil
	}
	// The generated name must not collide with a user-declared index on
	// another column; suffix until free.
	base := strings.ReplaceAll(table, ".", "_") + "_" + col + "_idx"
	name := base
	for n := 2; t.indexNamed(name) != nil; n++ {
		name = fmt.Sprintf("%s_%d", base, n)
	}
	t.addIndex(name, ci, kind)
	db.schemaSeq++
	return nil
}

func (db *DB) execDrop(st *DropTableStmt) (*Result, error) {
	if _, exists := db.tables[st.Table]; !exists {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, st.Table)
	}
	delete(db.tables, st.Table)
	db.changeSeq++
	db.bumpTable(st.Table)
	db.schemaSeq++
	return &Result{}, nil
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

func (db *DB) execInsert(st *InsertStmt, env *evalEnv, tx *undoLog) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	cols := st.Cols
	if len(cols) == 0 {
		cols = make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
	}
	colPos := make([]int, len(cols))
	for i, c := range cols {
		idx, ok := t.columnIndex(c)
		if !ok {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, c, st.Table)
		}
		colPos[i] = idx
	}
	inserted := 0
	// In autocommit mode a later row's failure leaves earlier rows
	// committed, so the version must bump on the error path too —
	// otherwise caches keyed on TableVersion would stay marked fresh
	// across a partially applied statement.
	defer func() {
		if inserted > 0 {
			db.bumpTable(st.Table)
		}
	}()
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("sqlmini: INSERT into %q: %d values for %d columns", st.Table, len(exprRow), len(cols))
		}
		vals := make([]Value, len(t.Cols)) // unset columns default to NULL
		for i, e := range exprRow {
			v, err := env.eval(e, nil, nil)
			if err != nil {
				return nil, err
			}
			cv, err := Coerce(v, t.Cols[colPos[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", cols[i], err)
			}
			vals[colPos[i]] = cv
		}
		if err := db.checkConstraints(t, vals, nil); err != nil {
			return nil, err
		}
		row := &Row{Vals: vals}
		t.Rows = append(t.Rows, row)
		t.indexInsert(row)
		if tx != nil {
			tx.recordInsert(t, row)
		}
		inserted++
	}
	db.changeSeq++
	return &Result{Affected: inserted}, nil
}

// checkConstraints validates NOT NULL, PRIMARY KEY uniqueness, and
// REFERENCES existence for a candidate row. skip, when non-nil, is a row
// excluded from uniqueness checks (the row being updated).
func (db *DB) checkConstraints(t *Table, vals []Value, skip *Row) error {
	for i, c := range t.Cols {
		v := vals[i]
		if c.NotNull && v.IsNull() {
			return fmt.Errorf("%w: column %q of table %q", ErrNotNull, c.Name, t.Name)
		}
		if c.PrimaryKey && !v.IsNull() {
			if r, ok := t.lookupPK(v); ok && r != skip {
				return fmt.Errorf("%w: %s=%s in table %q", ErrDuplicateKey, c.Name, v, t.Name)
			}
		}
		if c.RefTable != "" && !v.IsNull() {
			ref, ok := db.tables[c.RefTable]
			if !ok {
				return fmt.Errorf("%w: referenced table %q missing", ErrForeignKey, c.RefTable)
			}
			ri, ok := ref.columnIndex(c.RefColumn)
			if !ok {
				return fmt.Errorf("%w: referenced column %q missing in %q", ErrForeignKey, c.RefColumn, c.RefTable)
			}
			found := false
			if ref.pk == ri {
				_, found = ref.lookupPK(v)
			} else {
				for _, r := range ref.Rows {
					if Equal(r.Vals[ri], v) {
						found = true
						break
					}
				}
			}
			if !found {
				return fmt.Errorf("%w: %s=%s not present in %s(%s)", ErrForeignKey, c.Name, v, c.RefTable, c.RefColumn)
			}
		}
	}
	return nil
}

func (db *DB) execSelect(st *SelectStmt, env *evalEnv) (*Result, error) {
	// SELECT without FROM: evaluate once against an empty row.
	if st.Table == "" {
		res := &Result{}
		for _, item := range st.Items {
			res.Cols = append(res.Cols, selectColName(item))
		}
		row := make([]Value, 0, len(st.Items))
		for _, item := range st.Items {
			v, err := env.eval(item.Expr, nil, nil)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = [][]Value{row}
		return res, nil
	}

	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}

	// Filter. The planner supplies an index-backed candidate set when
	// the WHERE qualifies (plan.go), the full row list otherwise; the
	// WHERE is always re-applied, so index candidates only narrow the
	// rows visited. LIMIT stays on the scan: bucket order can differ
	// from table order, and the cut makes that ordering user-visible
	// (even under ORDER BY, tied keys keep candidate order).
	source := t.Rows
	if selectPlannable(st) {
		source, _ = db.planRows(t, st.Where, env)
	}
	var matched []*Row
	for _, r := range source {
		if st.Where != nil {
			v, err := env.eval(st.Where, t, r)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		matched = append(matched, r)
	}

	// Aggregate query? (no GROUP BY support; all-aggregate select lists
	// collapse to a single row, which covers COUNT/MIN/MAX/SUM/AVG usage.)
	if !st.Star && allAggregates(st.Items) {
		res := &Result{}
		row := make([]Value, 0, len(st.Items))
		for _, item := range st.Items {
			res.Cols = append(res.Cols, selectColName(item))
			v, err := env.evalAggregate(item.Expr.(*CallExpr), t, matched)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = [][]Value{row}
		return res, nil
	}

	// ORDER BY.
	if len(st.Order) > 0 {
		var sortErr error
		sort.SliceStable(matched, func(i, j int) bool {
			for _, key := range st.Order {
				vi, err := env.eval(key.Expr, t, matched[i])
				if err != nil {
					sortErr = err
					return false
				}
				vj, err := env.eval(key.Expr, t, matched[j])
				if err != nil {
					sortErr = err
					return false
				}
				// NULLs sort first ascending.
				switch {
				case vi.IsNull() && vj.IsNull():
					continue
				case vi.IsNull():
					return !key.Desc
				case vj.IsNull():
					return key.Desc
				}
				c, _ := Compare(vi, vj)
				if c == 0 {
					continue
				}
				if key.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	if st.Limit >= 0 && len(matched) > st.Limit {
		matched = matched[:st.Limit]
	}

	res := &Result{}
	if st.Star {
		for _, c := range t.Cols {
			res.Cols = append(res.Cols, c.Name)
		}
		for _, r := range matched {
			out := make([]Value, len(r.Vals))
			copy(out, r.Vals)
			res.Rows = append(res.Rows, out)
		}
		return res, nil
	}
	for _, item := range st.Items {
		res.Cols = append(res.Cols, selectColName(item))
	}
	for _, r := range matched {
		out := make([]Value, 0, len(st.Items))
		for _, item := range st.Items {
			v, err := env.eval(item.Expr, t, r)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func selectColName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch e := item.Expr.(type) {
	case *ColumnExpr:
		return e.Name
	case *CallExpr:
		return strings.ToLower(e.Fn)
	default:
		return "?column?"
	}
}

var aggregateFns = map[string]bool{
	"COUNT": true, "MIN": true, "MAX": true, "SUM": true, "AVG": true,
}

func allAggregates(items []SelectItem) bool {
	if len(items) == 0 {
		return false
	}
	for _, it := range items {
		c, ok := it.Expr.(*CallExpr)
		if !ok || !aggregateFns[c.Fn] {
			return false
		}
	}
	return true
}

func (db *DB) execUpdate(st *UpdateStmt, env *evalEnv, tx *undoLog) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	setPos := make([]int, len(st.Set))
	for i, a := range st.Set {
		idx, ok := t.columnIndex(a.Col)
		if !ok {
			return nil, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, a.Col, st.Table)
		}
		setPos[i] = idx
	}
	affected := 0
	defer func() { // see execInsert: partial statements must still bump
		if affected > 0 {
			db.bumpTable(st.Table)
		}
	}()
	// Index-planned candidates are a fresh slice, so SET clauses that
	// move rows between index buckets can't disturb this iteration.
	source, _ := db.planRows(t, st.Where, env)
	for _, r := range source {
		if st.Where != nil {
			v, err := env.eval(st.Where, t, r)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		newVals := make([]Value, len(r.Vals))
		copy(newVals, r.Vals)
		for i, a := range st.Set {
			v, err := env.eval(a.Expr, t, r)
			if err != nil {
				return nil, err
			}
			cv, err := Coerce(v, t.Cols[setPos[i]].Type)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", a.Col, err)
			}
			newVals[setPos[i]] = cv
		}
		if err := db.checkConstraints(t, newVals, r); err != nil {
			return nil, err
		}
		if tx != nil {
			tx.recordUpdate(t, r, r.Vals)
		}
		old := r.Vals
		r.Vals = newVals
		t.indexUpdate(r, old)
		affected++
	}
	if affected > 0 {
		db.changeSeq++
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execDelete(st *DeleteStmt, env *evalEnv, tx *undoLog) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	// Evaluate the candidate set before mutating so a mid-scan
	// evaluation error leaves the table untouched.
	source, _ := db.planRows(t, st.Where, env)
	var deleted []*Row
	for _, r := range source {
		del := true
		if st.Where != nil {
			v, err := env.eval(st.Where, t, r)
			if err != nil {
				return nil, err
			}
			del = !v.IsNull() && v.Bool()
		}
		if del {
			deleted = append(deleted, r)
		}
	}
	affected := len(deleted)
	if affected == 0 {
		return &Result{Affected: 0}, nil
	}
	isDel := make(map[*Row]bool, affected)
	for _, r := range deleted {
		isDel[r] = true
		t.indexRemove(r)
		if tx != nil {
			tx.recordDelete(t, r)
		}
	}
	kept := make([]*Row, 0, len(t.Rows)-affected)
	for _, r := range t.Rows {
		if !isDel[r] {
			kept = append(kept, r)
		}
	}
	t.Rows = kept
	db.changeSeq++
	db.bumpTable(st.Table)
	return &Result{Affected: affected}, nil
}
