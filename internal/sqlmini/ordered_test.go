package sqlmini

import (
	"math/rand"
	"testing"
	"time"
)

func TestOrderedIndexMutationSequence(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, score INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX t_score ON t (score) USING ORDERED")
	db.MustExec("INSERT INTO t (id, score, v) VALUES (1, 30, 1), (2, 10, 2), (3, 20, 3), (4, NULL, 4), (5, 10, 5)")
	indexConsistent(t, db, "t")

	// Group-moving update, NULL transitions both ways.
	db.MustExec("UPDATE t SET score = 20 WHERE id = 1")
	db.MustExec("UPDATE t SET score = NULL WHERE id = 2")
	db.MustExec("UPDATE t SET score = 5 WHERE id = 4")
	indexConsistent(t, db, "t")

	res := db.MustExec("SELECT id FROM t WHERE score >= 20 ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("score>=20 rows = %v", res.Rows)
	}

	db.MustExec("DELETE FROM t WHERE score < 15")
	indexConsistent(t, db, "t")
	if res := db.MustExec("SELECT count(*) FROM t"); res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestOrderedIndexRollback(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, score INTEGER)")
	db.MustExec("CREATE INDEX t_score ON t (score) USING ORDERED")
	db.MustExec("INSERT INTO t (id, score) VALUES (1, 10), (2, 20)")

	s := db.NewSession()
	defer s.Close()
	s.Exec("BEGIN")                                    //nolint:errcheck
	s.Exec("INSERT INTO t (id, score) VALUES (3, 15)") //nolint:errcheck
	s.Exec("UPDATE t SET score = 99 WHERE id = 1")     //nolint:errcheck
	s.Exec("DELETE FROM t WHERE id = 2")               //nolint:errcheck
	s.Exec("ROLLBACK")                                 //nolint:errcheck
	indexConsistent(t, db, "t")

	res := db.MustExec("SELECT id FROM t WHERE score > 5 AND score < 25 ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("range after rollback = %v", res.Rows)
	}
	if res := db.MustExec("SELECT id FROM t WHERE score >= 99"); len(res.Rows) != 0 {
		t.Fatalf("score>=99 after rollback = %v", res.Rows)
	}
}

func TestOrderedIndexSurvivesRestore(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, score INTEGER)")
	db.MustExec("CREATE INDEX t_score ON t (score) USING ORDERED")
	db.MustExec("INSERT INTO t (id, score) VALUES (1, 10), (2, 10), (3, 20)")
	db2 := NewDB()
	if err := db2.Restore(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	indexConsistent(t, db2, "t")
	// The ordered/hash distinction must survive the snapshot round trip:
	// a range statement on the restored database must still plan.
	plan, err := db2.Explain("SELECT id FROM t WHERE score > 15")
	if err != nil {
		t.Fatal(err)
	}
	if plan != "range scan on t(score) [t_score] (score > 15)" {
		t.Fatalf("restored ordered index not used by the planner: %q", plan)
	}
	if res := db2.MustExec("SELECT count(*) FROM t WHERE score > 15"); res.Rows[0][0].Int() != 1 {
		t.Fatalf("score>15 count after restore = %v", res.Rows[0][0])
	}
}

// TestOrderedIndexUpgradeFromHash: declaring USING ORDERED over a column
// that already has a hash index upgrades it in place (same name), and
// the upgrade is idempotent from both the SQL and Go surfaces.
func TestOrderedIndexUpgradeFromHash(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, score INTEGER)")
	db.MustExec("INSERT INTO t (id, score) VALUES (1, 10), (2, 20), (3, 30)")
	if err := db.EnsureIndex("t", "score"); err != nil {
		t.Fatal(err)
	}
	if plan, _ := db.Explain("SELECT id FROM t WHERE score > 15"); plan != "full scan on t" {
		t.Fatalf("hash index must not serve ranges, got %q", plan)
	}
	db.MustExec("CREATE INDEX IF NOT EXISTS t_other_name ON t (score) USING ORDERED")
	if err := db.EnsureOrderedIndex("t", "score"); err != nil { // idempotent
		t.Fatal(err)
	}
	tbl, _ := db.lookupTable("t")
	ixs := tbl.loadIndexes()
	n, name, kind := len(ixs), ixs[0].name, ixs[0].kind
	if n != 1 || kind != IndexOrdered || name != "t_score_idx" {
		t.Fatalf("upgrade left %d indexes, kind %v, name %q", n, kind, name)
	}
	indexConsistent(t, db, "t")
	// Equality still served, ranges now served.
	if plan, _ := db.Explain("SELECT id FROM t WHERE score = 20"); plan != "index lookup on t(score) [t_score_idx]" {
		t.Fatalf("equality after upgrade plans as %q", plan)
	}
	if plan, _ := db.Explain("SELECT id FROM t WHERE score > 15"); plan != "range scan on t(score) [t_score_idx] (score > 15)" {
		t.Fatalf("range after upgrade plans as %q", plan)
	}
	// An ordered index is never downgraded back to hash.
	if err := db.EnsureIndex("t", "score"); err != nil {
		t.Fatal(err)
	}
	if kind = tbl.loadIndexes()[0].kind; kind != IndexOrdered {
		t.Fatal("EnsureIndex downgraded an ordered index to hash")
	}
}

func TestCreateIndexUsingClause(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, a INTEGER, b INTEGER, c INTEGER)")
	db.MustExec("CREATE INDEX t_a ON t (a) USING HASH")
	db.MustExec("CREATE INDEX t_b ON t (b) USING BTREE") // alias for ORDERED
	db.MustExec("CREATE INDEX t_c ON t (c) USING ORDERED")
	tbl, _ := db.lookupTable("t")
	kinds := []IndexKind{}
	for _, ix := range tbl.loadIndexes() {
		kinds = append(kinds, ix.kind)
	}
	want := []IndexKind{IndexHash, IndexOrdered, IndexOrdered}
	for i, k := range kinds {
		if k != want[i] {
			t.Fatalf("index %d kind = %v, want %v", i, k, want[i])
		}
	}
	if _, err := db.Exec("CREATE INDEX t_bad ON t (a) USING SKIPLIST"); err == nil {
		t.Fatal("unknown index method must fail to parse")
	}
}

// TestOrderedIndexRandomizedProperty drives a random mutation sequence —
// inserts (with duplicate and NULL keys), deletes by id and by range,
// group-moving updates, rollbacks, and snapshot/restore round trips —
// and checks after every step that the ordered index is structurally
// consistent and that range-driven SELECTs agree with a forced scan.
func TestOrderedIndexRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, score INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX t_score ON t (score) USING ORDERED")
	nextID := 0
	live := map[int]bool{}
	anyLive := func() (int, bool) {
		for k := range live {
			return k, true
		}
		return 0, false
	}
	scoreVal := func() any {
		if rng.Intn(8) == 0 {
			return nil // NULLs must stay out of the index
		}
		return rng.Intn(40)
	}
	for step := 0; step < 500; step++ {
		switch op := rng.Intn(6); op {
		case 0, 1: // insert
			nextID++
			db.MustExec("INSERT INTO t (id, score, v) VALUES (?, ?, ?)", nextID, scoreVal(), step)
			live[nextID] = true
		case 2: // delete by id or by range
			if rng.Intn(2) == 0 {
				if k, ok := anyLive(); ok {
					db.MustExec("DELETE FROM t WHERE id = ?", k)
					delete(live, k)
				}
			} else {
				lo := rng.Intn(40)
				res := db.MustExec("SELECT id FROM t WHERE score >= ? AND score < ?", lo, lo+4)
				db.MustExec("DELETE FROM t WHERE score >= ? AND score < ?", lo, lo+4)
				for _, row := range res.Rows {
					delete(live, int(row[0].Int()))
				}
			}
		case 3: // group-moving update
			if k, ok := anyLive(); ok {
				db.MustExec("UPDATE t SET score = ? WHERE id = ?", scoreVal(), k)
			}
		case 4: // transaction that rolls back
			s := db.NewSession()
			s.Exec("BEGIN") //nolint:errcheck
			nextID++
			s.Exec("INSERT INTO t (id, score, v) VALUES (?, ?, 0)", nextID, scoreVal()) //nolint:errcheck
			if lk, ok := anyLive(); ok {
				s.Exec("UPDATE t SET score = ? WHERE id = ?", scoreVal(), lk) //nolint:errcheck
				s.Exec("DELETE FROM t WHERE id = ?", lk)                      //nolint:errcheck
			}
			s.Exec("ROLLBACK") //nolint:errcheck
			s.Close()
		case 5: // snapshot/restore round trip
			blob := db.Snapshot()
			if err := db.Restore(blob); err != nil {
				t.Fatalf("step %d: restore: %v", step, err)
			}
		}
		indexConsistent(t, db, "t")
		// Range-driven lookups agree with a forced scan for a sliding
		// window, including empty windows.
		lo := rng.Intn(44) - 2
		hi := lo + rng.Intn(10)
		got := db.MustExec("SELECT id FROM t WHERE score > ? AND score <= ?", lo, hi)
		want := db.MustExec("SELECT id FROM t WHERE score + 0 > ? AND score + 0 <= ?", lo, hi) // arithmetic defeats the planner
		if canon(got) != canon(want) {
			t.Fatalf("step %d (%d,%d]: range path:\n%s\nscan:\n%s", step, lo, hi, canon(got), canon(want))
		}
	}
}

// TestOrderedEqualityAdjacentGroupCollapse pins the 2^53 edge: stored
// BIGINT keys are distinct groups under integer Compare, but a DOUBLE
// probe projects both onto one float64 — equality through the ordered
// index must return every group comparing equal, like the scan does.
func TestOrderedEqualityAdjacentGroupCollapse(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v BIGINT)")
	db.MustExec("CREATE INDEX t_v ON t (v) USING ORDERED")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 9007199254740992), (2, 9007199254740993), (3, 5)")
	got := db.MustExec("SELECT id FROM t WHERE v = ?", float64(9007199254740992))
	want := db.MustExec("SELECT id FROM t WHERE v + 0 = ?", float64(9007199254740992)) // forced scan
	if len(got.Rows) != 2 || canon(got) != canon(want) {
		t.Fatalf("index path:\n%s\nscan:\n%s", canon(got), canon(want))
	}
	// The range side already gathers whole windows; pin it anyway.
	got = db.MustExec("SELECT id FROM t WHERE v >= ? AND v <= ?",
		float64(9007199254740992), float64(9007199254740992))
	if len(got.Rows) != 2 {
		t.Fatalf("range window missed a collapsed group: %v", got.Rows)
	}
}

// TestNowStatementStable pins the clock memoization the range planner
// relies on: every now() within one statement reads the same instant,
// even when the clock advances between evaluations.
func TestNowStatementStable(t *testing.T) {
	base := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	calls := 0
	db := NewDB(WithClock(func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Hour)
	}))
	res := db.MustExec("SELECT now() = now()")
	if !res.Rows[0][0].Bool() {
		t.Fatal("now() must be stable within one statement")
	}
	// A later statement sees a fresh reading.
	r1 := db.MustExec("SELECT now()")
	r2 := db.MustExec("SELECT now()")
	if r1.Rows[0][0].Time().Equal(r2.Rows[0][0].Time()) {
		t.Fatal("now() must advance across statements")
	}
}
