package sqlmini

import (
	"fmt"
	"strings"
	"time"
)

// evalEnv carries per-statement evaluation context: the clock, and
// parameter bindings.
type evalEnv struct {
	clock      func() time.Time
	named      map[string]Value
	positional []Value

	// nowT memoizes the first clock reading (nowSet flags it, so even a
	// clock sitting at the zero time memoizes) so now() is stable within
	// a statement (standard SQL semantics). The range planner relies on
	// this: a bound evaluated at plan time must equal the same bound
	// re-evaluated row-by-row in the residual WHERE.
	nowT   time.Time
	nowSet bool

	// prep, when non-nil, is a prepared statement's cached plan skeleton
	// (prepared.go): planRows binds it instead of re-running planIndex,
	// provided it still matches the live table and schemaSeq.
	prep *stmtPlan
}

// now returns the statement-stable clock reading.
func (env *evalEnv) now() time.Time {
	if !env.nowSet {
		env.nowT = env.clock()
		env.nowSet = true
	}
	return env.nowT
}

// eval evaluates e against one row's values vals of table t (both may
// be nil for row-free contexts such as INSERT values). vals is the
// statement's view of the row — current values on the write path, a
// snapshot version's values on the read path — which is what keeps
// expression evaluation oblivious to MVCC.
func (env *evalEnv) eval(e Expr, t *Table, vals []Value) (Value, error) {
	switch e := e.(type) {
	case *LiteralExpr:
		return e.Val, nil
	case *ColumnExpr:
		if t == nil || vals == nil {
			return Null, fmt.Errorf("%w: %q (no row context)", ErrNoSuchColumn, e.Name)
		}
		i, ok := t.columnIndex(e.Name)
		if !ok {
			return Null, fmt.Errorf("%w: %q in table %q", ErrNoSuchColumn, e.Name, t.Name)
		}
		return vals[i], nil
	case *ParamExpr:
		if e.Name != "" {
			v, ok := env.named[e.Name]
			if !ok {
				return Null, fmt.Errorf("%w: $%s", ErrMissingParam, e.Name)
			}
			return v, nil
		}
		if e.Index >= len(env.positional) {
			return Null, fmt.Errorf("%w: positional #%d", ErrMissingParam, e.Index+1)
		}
		return env.positional[e.Index], nil
	case *UnaryExpr:
		v, err := env.eval(e.E, t, vals)
		if err != nil {
			return Null, err
		}
		switch e.Op {
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			return NewBool(!v.Bool()), nil
		case "-":
			if v.IsNull() {
				return Null, nil
			}
			if v.Type() == TypeDouble {
				return NewFloat(-v.Float()), nil
			}
			return NewInt(-v.Int()), nil
		default:
			return Null, fmt.Errorf("sqlmini: unknown unary operator %q", e.Op)
		}
	case *IsNullExpr:
		v, err := env.eval(e.E, t, vals)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != e.Not), nil
	case *BetweenExpr:
		v, err := env.eval(e.E, t, vals)
		if err != nil {
			return Null, err
		}
		lo, err := env.eval(e.Lo, t, vals)
		if err != nil {
			return Null, err
		}
		hi, err := env.eval(e.Hi, t, vals)
		if err != nil {
			return Null, err
		}
		cLo, ok1 := Compare(v, lo)
		cHi, ok2 := Compare(v, hi)
		if !ok1 || !ok2 {
			return Null, nil
		}
		in := cLo >= 0 && cHi <= 0
		return NewBool(in != e.Not), nil
	case *InExpr:
		v, err := env.eval(e.E, t, vals)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		sawNull := false
		for _, le := range e.List {
			lv, err := env.eval(le, t, vals)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() {
				sawNull = true
				continue
			}
			if Equal(v, lv) {
				return NewBool(!e.Not), nil
			}
		}
		if sawNull {
			return Null, nil
		}
		return NewBool(e.Not), nil
	case *BinaryExpr:
		return env.evalBinary(e, t, vals)
	case *CallExpr:
		return env.evalCall(e, t, vals)
	default:
		return Null, fmt.Errorf("sqlmini: unsupported expression %T", e)
	}
}

func (env *evalEnv) evalBinary(e *BinaryExpr, t *Table, vals []Value) (Value, error) {
	// Short-circuit Kleene logic for AND/OR.
	switch e.Op {
	case "AND":
		l, err := env.eval(e.L, t, vals)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && !l.Bool() {
			return NewBool(false), nil
		}
		rv, err := env.eval(e.R, t, vals)
		if err != nil {
			return Null, err
		}
		if !rv.IsNull() && !rv.Bool() {
			return NewBool(false), nil
		}
		if l.IsNull() || rv.IsNull() {
			return Null, nil
		}
		return NewBool(true), nil
	case "OR":
		l, err := env.eval(e.L, t, vals)
		if err != nil {
			return Null, err
		}
		if !l.IsNull() && l.Bool() {
			return NewBool(true), nil
		}
		rv, err := env.eval(e.R, t, vals)
		if err != nil {
			return Null, err
		}
		if !rv.IsNull() && rv.Bool() {
			return NewBool(true), nil
		}
		if l.IsNull() || rv.IsNull() {
			return Null, nil
		}
		return NewBool(false), nil
	}

	l, err := env.eval(e.L, t, vals)
	if err != nil {
		return Null, err
	}
	rv, err := env.eval(e.R, t, vals)
	if err != nil {
		return Null, err
	}

	switch e.Op {
	case "LIKE":
		if l.IsNull() || rv.IsNull() {
			return Null, nil
		}
		m := Like(l.Str(), rv.Str())
		return NewBool(m != e.NotOp), nil
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := Compare(l, rv)
		if !ok {
			return Null, nil
		}
		var b bool
		switch e.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return NewBool(b), nil
	case "+", "-", "*", "/":
		if l.IsNull() || rv.IsNull() {
			return Null, nil
		}
		if l.Type() == TypeDouble || rv.Type() == TypeDouble {
			a, b := l.Float(), rv.Float()
			switch e.Op {
			case "+":
				return NewFloat(a + b), nil
			case "-":
				return NewFloat(a - b), nil
			case "*":
				return NewFloat(a * b), nil
			case "/":
				if b == 0 {
					return Null, fmt.Errorf("sqlmini: division by zero")
				}
				return NewFloat(a / b), nil
			}
		}
		a, b := l.Int(), rv.Int()
		switch e.Op {
		case "+":
			return NewInt(a + b), nil
		case "-":
			return NewInt(a - b), nil
		case "*":
			return NewInt(a * b), nil
		case "/":
			if b == 0 {
				return Null, fmt.Errorf("sqlmini: division by zero")
			}
			return NewInt(a / b), nil
		}
	}
	return Null, fmt.Errorf("sqlmini: unknown operator %q", e.Op)
}

func (env *evalEnv) evalCall(e *CallExpr, t *Table, vals []Value) (Value, error) {
	switch e.Fn {
	case "NOW", "CURRENT_TIMESTAMP":
		return NewTime(env.now()), nil
	case "LOWER", "UPPER", "LENGTH", "TRIM":
		if len(e.Args) != 1 {
			return Null, fmt.Errorf("sqlmini: %s expects 1 argument", e.Fn)
		}
		v, err := env.eval(e.Args[0], t, vals)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		switch e.Fn {
		case "LOWER":
			return NewString(strings.ToLower(v.Str())), nil
		case "UPPER":
			return NewString(strings.ToUpper(v.Str())), nil
		case "TRIM":
			return NewString(strings.TrimSpace(v.Str())), nil
		default: // LENGTH
			return NewInt(int64(len(v.Str()))), nil
		}
	case "COALESCE":
		for _, a := range e.Args {
			v, err := env.eval(a, t, vals)
			if err != nil {
				return Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null, nil
	case "ABS":
		if len(e.Args) != 1 {
			return Null, fmt.Errorf("sqlmini: ABS expects 1 argument")
		}
		v, err := env.eval(e.Args[0], t, vals)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		if v.Type() == TypeDouble {
			f := v.Float()
			if f < 0 {
				f = -f
			}
			return NewFloat(f), nil
		}
		n := v.Int()
		if n < 0 {
			n = -n
		}
		return NewInt(n), nil
	case "COUNT", "MIN", "MAX", "SUM", "AVG":
		return Null, fmt.Errorf("sqlmini: aggregate %s not allowed here", e.Fn)
	default:
		return Null, fmt.Errorf("sqlmini: unknown function %q", e.Fn)
	}
}

// evalAggregate computes one aggregate over the matched rows' values.
func (env *evalEnv) evalAggregate(e *CallExpr, t *Table, rows [][]Value) (Value, error) {
	if e.Fn == "COUNT" && e.Star {
		return NewInt(int64(len(rows))), nil
	}
	if len(e.Args) != 1 {
		return Null, fmt.Errorf("sqlmini: %s expects 1 argument", e.Fn)
	}
	var (
		count int64
		sum   float64
		isInt = true
		sumI  int64
		best  Value
	)
	for _, vals := range rows {
		v, err := env.eval(e.Args[0], t, vals)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		count++
		switch e.Fn {
		case "SUM", "AVG":
			if v.Type() == TypeDouble {
				isInt = false
			}
			sum += v.Float()
			sumI += v.Int()
		case "MIN":
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := Compare(v, best); ok && c < 0 {
				best = v
			}
		case "MAX":
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := Compare(v, best); ok && c > 0 {
				best = v
			}
		}
	}
	switch e.Fn {
	case "COUNT":
		return NewInt(count), nil
	case "SUM":
		if count == 0 {
			return Null, nil
		}
		if isInt {
			return NewInt(sumI), nil
		}
		return NewFloat(sum), nil
	case "AVG":
		if count == 0 {
			return Null, nil
		}
		return NewFloat(sum / float64(count)), nil
	case "MIN", "MAX":
		return best, nil
	default:
		return Null, fmt.Errorf("sqlmini: unknown aggregate %q", e.Fn)
	}
}
