package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().raw)
	}
	return st, nil
}

type parser struct {
	src     string
	toks    []token
	pos     int
	nParams int // running count of positional ? parameters
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlmini: parse error at position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// acceptKW consumes the next token if it is the given keyword.
func (p *parser) acceptKW(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKW(kw string) error {
	if !p.acceptKW(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().raw)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errorf("expected %q, got %q", s, p.peek().raw)
	}
	return nil
}

// ident consumes an identifier (returns its raw spelling, case preserved
// except keywords are matched upper-cased elsewhere).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.raw)
	}
	p.next()
	return t.raw, nil
}

// qualifiedName parses name or schema.name into a single dotted string
// (lower-cased: table identifiers are case-insensitive in this engine).
func (p *parser) qualifiedName() (string, error) {
	first, err := p.ident()
	if err != nil {
		return "", err
	}
	name := first
	for p.acceptSym(".") {
		part, err := p.ident()
		if err != nil {
			return "", err
		}
		name += "." + part
	}
	return strings.ToLower(name), nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected statement keyword, got %q", t.raw)
	}
	switch t.text {
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "BEGIN":
		p.next()
		return &BeginStmt{}, nil
	case "START":
		p.next()
		if err := p.expectKW("TRANSACTION"); err != nil {
			return nil, err
		}
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.raw)
	}
}

func typeFromName(name string) (Type, bool) {
	switch name {
	case "INTEGER", "INT", "SMALLINT":
		return TypeInteger, true
	case "BIGINT":
		return TypeBigint, true
	case "DOUBLE", "FLOAT", "REAL":
		return TypeDouble, true
	case "VARCHAR", "TEXT", "CHAR":
		return TypeVarchar, true
	case "BLOB", "BYTEA":
		return TypeBlob, true
	case "TIMESTAMP", "DATETIME":
		return TypeTimestamp, true
	case "BOOLEAN", "BOOL":
		return TypeBoolean, true
	default:
		return 0, false
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if t := p.peek(); t.kind == tokIdent && t.text == "INDEX" {
		return p.parseCreateIndex()
	}
	if err := p.expectKW("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.acceptKW("IF") {
		if err := p.expectKW("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKW("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = strings.ToLower(name)
	tname, err := p.ident()
	if err != nil {
		return col, err
	}
	typ, ok := typeFromName(strings.ToUpper(tname))
	if !ok {
		return col, p.errorf("unknown column type %q", tname)
	}
	col.Type = typ
	// Optional length, e.g. VARCHAR(255): parsed and ignored.
	if p.acceptSym("(") {
		if t := p.peek(); t.kind != tokNumber {
			return col, p.errorf("expected length, got %q", t.raw)
		}
		p.next()
		if err := p.expectSym(")"); err != nil {
			return col, err
		}
	}
	for {
		switch {
		case p.acceptKW("NOT"):
			if err := p.expectKW("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKW("PRIMARY"):
			if err := p.expectKW("KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		case p.acceptKW("REFERENCES"):
			ref, err := p.qualifiedName()
			if err != nil {
				return col, err
			}
			col.RefTable = ref
			if err := p.expectSym("("); err != nil {
				return col, err
			}
			rc, err := p.ident()
			if err != nil {
				return col, err
			}
			col.RefColumn = strings.ToLower(rc)
			if err := p.expectSym(")"); err != nil {
				return col, err
			}
		default:
			return col, nil
		}
	}
}

// parseCreateIndex parses CREATE INDEX [IF NOT EXISTS] name ON t
// (col[, col...]) [USING HASH|ORDERED|BTREE]; CREATE has already been
// consumed.
func (p *parser) parseCreateIndex() (Statement, error) {
	p.next() // INDEX
	st := &CreateIndexStmt{}
	if p.acceptKW("IF") {
		if err := p.expectKW("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKW("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKW("ON"); err != nil {
		return nil, err
	}
	table, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, strings.ToLower(col))
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if p.acceptKW("USING") {
		method, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch strings.ToUpper(method) {
		case "HASH":
			st.Kind = IndexHash
		case "ORDERED", "BTREE":
			st.Kind = IndexOrdered
		default:
			return nil, p.errorf("unknown index method %q (want HASH, ORDERED, or BTREE)", method)
		}
	}
	return st, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expectKW("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.acceptKW("IF") {
		if err := p.expectKW("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	return st, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKW("INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptSym("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, strings.ToLower(c))
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKW("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	st := &SelectStmt{Limit: -1}
	if p.acceptSym("*") {
		st.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKW("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = strings.ToLower(a)
			}
			st.Items = append(st.Items, item)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKW("FROM") {
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		st.Table = name
	}
	if p.acceptKW("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKW("ORDER") {
		if err := p.expectKW("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKW("DESC") {
				key.Desc = true
			} else {
				p.acceptKW("ASC")
			}
			st.Order = append(st.Order, key)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKW("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, got %q", t.raw)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	st := &UpdateStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKW("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Col: strings.ToLower(c), Expr: e})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKW("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKW("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKW("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// Expression grammar (lowest to highest precedence):
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | pred
//	pred   := add (cmpOp add | IS [NOT] NULL | [NOT] LIKE add |
//	          [NOT] BETWEEN add AND add | [NOT] IN (list))?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/) unary)*
//	unary  := - unary | primary
//	primary:= literal | param | call | column | ( or )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKW("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKW("IS") {
		not := p.acceptKW("NOT")
		if err := p.expectKW("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	neg := false
	if t := p.peek(); t.kind == tokIdent && t.text == "NOT" {
		// lookahead: NOT LIKE / NOT BETWEEN / NOT IN
		if p.pos+1 < len(p.toks) {
			nt := p.toks[p.pos+1]
			if nt.kind == tokIdent && (nt.text == "LIKE" || nt.text == "BETWEEN" || nt.text == "IN") {
				p.next()
				neg = true
			}
		}
	}
	switch {
	case p.acceptKW("LIKE"):
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", L: l, R: r, NotOp: neg}, nil
	case p.acceptKW("BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKW("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: neg}, nil
	case p.acceptKW("IN"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: neg}, nil
	}
	if neg {
		return nil, p.errorf("dangling NOT")
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.acceptSym(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptSym("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptSym("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &LiteralExpr{Val: NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &LiteralExpr{Val: NewInt(n)}, nil
	case tokString:
		p.next()
		return &LiteralExpr{Val: NewString(t.text)}, nil
	case tokParam:
		p.next()
		return &ParamExpr{Name: strings.ToLower(t.text)}, nil
	case tokQMark:
		p.next()
		e := &ParamExpr{Index: p.nParams}
		p.nParams++
		return e, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected symbol %q", t.raw)
	case tokIdent:
		switch t.text {
		case "NULL":
			p.next()
			return &LiteralExpr{Val: Null}, nil
		case "TRUE":
			p.next()
			return &LiteralExpr{Val: NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &LiteralExpr{Val: NewBool(false)}, nil
		}
		p.next()
		// Function call?
		if p.acceptSym("(") {
			call := &CallExpr{Fn: t.text}
			if p.acceptSym("*") {
				call.Star = true
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptSym(")") {
				return call, nil
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Column reference, possibly qualified (t.c): keep last segment.
		name := t.raw
		for p.acceptSym(".") {
			part, err := p.ident()
			if err != nil {
				return nil, err
			}
			name = part
		}
		return &ColumnExpr{Name: strings.ToLower(name)}, nil
	default:
		return nil, p.errorf("unexpected token %q", t.raw)
	}
}
