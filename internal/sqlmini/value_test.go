package sqlmini

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLike(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"JDBC", "JDBC", true},
		{"jdbc", "JDBC", true}, // case-insensitive, per package doc
		{"JDBC", "J%", true},
		{"JDBC", "%C", true},
		{"JDBC", "%DB%", true},
		{"JDBC", "J_BC", true},
		{"JDBC", "J__C", true},
		{"JDBC", "J_C", false},
		{"JDBC", "%", true},
		{"", "%", true},
		{"", "", true},
		{"", "_", false},
		{"linux-x86_64", "linux-%", true},
		{"linux-x86_64", "%x86%", true},
		{"windows-i586", "linux-%", false},
		{"JRE 1.5", "JRE 1._", true},
		{"abc", "a%b%c", true},
		{"aXbYc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"JDBC3", "JDBC", false},
		{"ODBC", "%DBC", true},
	}
	for _, tt := range tests {
		if got := Like(tt.s, tt.p); got != tt.want {
			t.Errorf("Like(%q, %q) = %v, want %v", tt.s, tt.p, got, tt.want)
		}
	}
}

func TestLikePercentMatchesEverythingProperty(t *testing.T) {
	prop := func(s string) bool { return Like(s, "%") }
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLikeSelfMatchProperty(t *testing.T) {
	// Any string without wildcards matches itself.
	prop := func(s string) bool {
		for _, r := range s {
			if r == '%' || r == '_' {
				return true // skip wildcard-bearing inputs
			}
		}
		return Like(s, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("10"), NewInt(9), 1}, // numeric coercion
		{NewBool(true), NewBool(false), 1},
		{NewBool(true), NewInt(1), 0},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
		{NewBytes([]byte("aa")), NewBytes([]byte("ab")), -1},
	}
	for _, tt := range tests {
		got, ok := Compare(tt.a, tt.b)
		if !ok {
			t.Errorf("Compare(%s, %s) not ok", tt.a, tt.b)
			continue
		}
		if got != tt.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareNullUnknown(t *testing.T) {
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL comparison should be unknown")
	}
	if _, ok := Compare(NewInt(1), Null); ok {
		t.Error("NULL comparison should be unknown")
	}
	if Equal(Null, Null) {
		t.Error("NULL = NULL must be false in SQL")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	prop := func(a, b int64) bool {
		c1, ok1 := Compare(NewInt(a), NewInt(b))
		c2, ok2 := Compare(NewInt(b), NewInt(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewString("42"), TypeInteger)
	if err != nil || v.Int() != 42 {
		t.Errorf("string->int: %v %v", v, err)
	}
	v, err = Coerce(NewInt(7), TypeVarchar)
	if err != nil || v.Str() != "7" {
		t.Errorf("int->varchar: %v %v", v, err)
	}
	v, err = Coerce(Null, TypeBlob)
	if err != nil || !v.IsNull() {
		t.Errorf("null passthrough: %v %v", v, err)
	}
	if _, err = Coerce(NewInt(7), TypeBlob); err == nil {
		t.Error("int->blob should fail")
	}
	v, err = Coerce(NewInt(1), TypeBoolean)
	if err != nil || !v.Bool() {
		t.Errorf("int->bool: %v %v", v, err)
	}
}

func TestFromGo(t *testing.T) {
	now := time.Now()
	cases := []struct {
		in   any
		want string
	}{
		{nil, "NULL"},
		{42, "42"},
		{int64(-7), "-7"},
		{3.5, "3.5"},
		{"hi", "'hi'"},
		{true, "TRUE"},
	}
	for _, c := range cases {
		v, err := FromGo(c.in)
		if err != nil {
			t.Fatalf("FromGo(%v): %v", c.in, err)
		}
		if v.String() != c.want {
			t.Errorf("FromGo(%v) = %s, want %s", c.in, v, c.want)
		}
	}
	v, err := FromGo(now)
	if err != nil || !v.Time().Equal(now) {
		t.Errorf("FromGo(time) = %v, %v", v, err)
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) should fail")
	}
}

func TestValueAccessorsOnNull(t *testing.T) {
	if Null.Int() != 0 || Null.Str() != "" || Null.Bytes() != nil || Null.Bool() || !Null.Time().IsZero() {
		t.Error("NULL accessors should return zero values")
	}
	if Null.Type() != TypeNull {
		t.Errorf("Null.Type() = %v", Null.Type())
	}
}
