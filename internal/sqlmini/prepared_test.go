package sqlmini

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func preparedFixtureDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		driver_id INTEGER NOT NULL,
		expires_at TIMESTAMP NOT NULL,
		released BOOLEAN NOT NULL)`)
	if err := db.EnsureIndex("leases", "driver_id"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureOrderedIndex("leases", "expires_at"); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0).UTC()
	for i := 0; i < 200; i++ {
		db.MustExec(`INSERT INTO leases (lease_id, driver_id, expires_at, released)
			VALUES (?, ?, ?, ?)`,
			int64(i), int64(i%7), base.Add(time.Duration(i)*time.Second), i%3 == 0)
	}
	return db
}

// TestPreparedMatchesAdhoc pins prepared execution to the ad-hoc path
// bit for bit, across the plan shapes the server's hot statements use
// (PK point lookup, hash index, ordered range, scan) and both
// parameter styles.
func TestPreparedMatchesAdhoc(t *testing.T) {
	db := preparedFixtureDB(t)
	base := time.Unix(1000, 0).UTC()
	cases := []struct {
		name string
		sql  string
		args [][]any
	}{
		{"pk-point", `SELECT driver_id FROM leases WHERE lease_id = $id`,
			[][]any{{Args{"id": int64(5)}}, {Args{"id": int64(9999)}}, {Args{"id": nil}}}},
		{"hash-index", `SELECT lease_id FROM leases WHERE driver_id = $d AND released = FALSE`,
			[][]any{{Args{"d": int64(3)}}, {Args{"d": int64(42)}}, {Args{"d": 1.5}}}},
		{"ordered-range", `SELECT count(*) FROM leases WHERE expires_at <= $now AND released = FALSE`,
			[][]any{{Args{"now": base.Add(50 * time.Second)}}, {Args{"now": base.Add(-time.Hour)}}}},
		{"scan-or", `SELECT count(*) FROM leases WHERE driver_id = $d OR released = TRUE`,
			[][]any{{Args{"d": int64(2)}}}},
		{"positional", `SELECT lease_id FROM leases WHERE driver_id = ? AND released = ?`,
			[][]any{{int64(4), false}, {int64(1), true}}},
	}
	for _, tc := range cases {
		p, err := db.Prepare(tc.sql)
		if err != nil {
			t.Fatalf("%s: prepare: %v", tc.name, err)
		}
		for i, args := range tc.args {
			// Run prepared twice so the second call exercises the cached
			// skeleton, and diff both against a fresh ad-hoc execution.
			for pass := 0; pass < 2; pass++ {
				got, gotErr := p.Exec(args...)
				want, wantErr := db.Exec(tc.sql, args...)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s args[%d] pass %d: prepared err %v, adhoc err %v", tc.name, i, pass, gotErr, wantErr)
				}
				if gotErr != nil {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s args[%d] pass %d: prepared %+v, adhoc %+v", tc.name, i, pass, got, want)
				}
			}
		}
	}
}

// TestPreparedMutations covers prepared INSERT/UPDATE/DELETE, the
// shapes the server's lease writes use.
func TestPreparedMutations(t *testing.T) {
	db := preparedFixtureDB(t)
	ins, err := db.Prepare(`INSERT INTO leases (lease_id, driver_id, expires_at, released)
		VALUES ($id, $d, $e, FALSE)`)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := db.Prepare(`UPDATE leases SET released = TRUE WHERE lease_id = $id AND released = FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0).UTC()
	if _, err := ins.Exec(Args{"id": int64(1000), "d": int64(1), "e": now}); err != nil {
		t.Fatal(err)
	}
	// Duplicate PK must error identically to the ad-hoc path.
	if _, err := ins.Exec(Args{"id": int64(1000), "d": int64(1), "e": now}); err == nil {
		t.Fatal("duplicate insert must fail")
	}
	res, err := upd.Exec(Args{"id": int64(1000)})
	if err != nil || res.Affected != 1 {
		t.Fatalf("guarded update: affected=%v err=%v", res, err)
	}
	res, err = upd.Exec(Args{"id": int64(1000)})
	if err != nil || res.Affected != 0 {
		t.Fatalf("second guarded update must affect 0: %+v err=%v", res, err)
	}
}

// TestPreparedSurvivesSchemaChange: the cached skeleton must be
// re-analyzed when indexes appear/upgrade or the table is dropped and
// recreated — results stay equal to ad-hoc execution throughout.
func TestPreparedSurvivesSchemaChange(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	for i := 0; i < 20; i++ {
		db.MustExec(`INSERT INTO t (id, v) VALUES (?, ?)`, int64(i), int64(i%5))
	}
	sql := `SELECT count(*) FROM t WHERE v = $v`
	p, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		got, err := p.Exec(Args{"v": int64(3)})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		want := db.MustExec(sql, Args{"v": int64(3)})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: prepared %+v, adhoc %+v", stage, got, want)
		}
	}
	check("no index")
	if err := db.EnsureIndex("t", "v"); err != nil {
		t.Fatal(err)
	}
	check("hash index added")
	if pl, _ := db.Explain(sql, Args{"v": int64(3)}); pl != "index lookup on t(v) [t_v_idx]" {
		t.Fatalf("explain after index: %q", pl)
	}
	if err := db.EnsureOrderedIndex("t", "v"); err != nil {
		t.Fatal(err)
	}
	check("index upgraded to ordered")
	db.MustExec(`DROP TABLE t`)
	if _, err := p.Exec(Args{"v": int64(3)}); err == nil {
		t.Fatal("prepared exec after DROP must fail")
	}
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	db.MustExec(`INSERT INTO t (id, v) VALUES (1, 3)`)
	check("table recreated")
}

// TestPreparedUnboundParams: missing parameters must fail exactly like
// the ad-hoc statement (scan-path error), not crash the skeleton.
func TestPreparedUnboundParams(t *testing.T) {
	db := preparedFixtureDB(t)
	p, err := db.Prepare(`SELECT lease_id FROM leases WHERE driver_id = $d`)
	if err != nil {
		t.Fatal(err)
	}
	_, gotErr := p.Exec(Args{"wrong": int64(1)})
	_, wantErr := db.Exec(`SELECT lease_id FROM leases WHERE driver_id = $d`, Args{"wrong": int64(1)})
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("prepared err %v, adhoc err %v", gotErr, wantErr)
	}
	if gotErr == nil {
		t.Fatal("unbound parameter must error")
	}
}

// TestPreparedRejectsTxControl: transaction control is session state.
func TestPreparedRejectsTxControl(t *testing.T) {
	db := NewDB()
	for _, sql := range []string{"BEGIN", "COMMIT", "ROLLBACK"} {
		if _, err := db.Prepare(sql); err == nil {
			t.Fatalf("Prepare(%q) must fail", sql)
		}
	}
}

// TestPreparedRandomizedEquivalence mutates the table between calls
// and diffs prepared vs ad-hoc execution across randomized parameters —
// the bind() path must track planIndex exactly through row churn.
func TestPreparedRandomizedEquivalence(t *testing.T) {
	db := preparedFixtureDB(t)
	rng := rand.New(rand.NewSource(7))
	base := time.Unix(1000, 0).UTC()
	sqls := []string{
		`SELECT lease_id FROM leases WHERE lease_id = $k`,
		`SELECT lease_id FROM leases WHERE driver_id = $k AND released = FALSE`,
		`SELECT count(*) FROM leases WHERE expires_at > $t AND released = FALSE`,
		`UPDATE leases SET released = TRUE WHERE lease_id = $k AND released = FALSE`,
	}
	preps := make([]*Prepared, len(sqls))
	for i, s := range sqls {
		p, err := db.Prepare(s)
		if err != nil {
			t.Fatal(err)
		}
		preps[i] = p
	}
	nextID := int64(10_000)
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0:
			db.MustExec(`INSERT INTO leases (lease_id, driver_id, expires_at, released)
				VALUES (?, ?, ?, FALSE)`, nextID, rng.Int63n(7), base.Add(time.Duration(rng.Intn(500))*time.Second))
			nextID++
		case 1:
			db.MustExec(`DELETE FROM leases WHERE lease_id = ?`, rng.Int63n(nextID))
		}
		i := rng.Intn(len(sqls))
		args := Args{
			"k": rng.Int63n(nextID),
			"t": base.Add(time.Duration(rng.Intn(500)) * time.Second),
		}
		// For the UPDATE, run prepared and ad-hoc against separate
		// verification reads (the mutation itself must agree on Affected).
		got, gotErr := preps[i].Exec(args)
		if gotErr != nil {
			t.Fatalf("step %d sql %d: %v", step, i, gotErr)
		}
		if i != 3 {
			want, wantErr := db.Exec(sqls[i], args)
			if wantErr != nil {
				t.Fatalf("step %d sql %d adhoc: %v", step, i, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d sql %d: prepared %+v, adhoc %+v", step, i, got, want)
			}
		}
	}
	// Cross-check final state against a fresh scan.
	res := db.MustExec(`SELECT count(*) FROM leases`)
	if res.Rows[0][0].Int() < 0 {
		t.Fatal("unreachable")
	}
}

// TestExecBatchAtomic covers the all-or-nothing contract: a failing
// statement reverts the whole batch, tx-control and DDL are rejected,
// and results come back per statement on success.
func TestExecBatchAtomic(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	db.MustExec(`INSERT INTO t (id, v) VALUES (1, 10)`)

	rs, err := db.ExecBatchAtomic([]BatchStmt{
		{SQL: `INSERT INTO t (id, v) VALUES (2, 20)`},
		{SQL: `UPDATE t SET v = v + 1 WHERE id = $id`, Args: []any{Args{"id": int64(1)}}},
		{SQL: `SELECT count(*) FROM t`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].Affected != 1 || rs[1].Affected != 1 || rs[2].Rows[0][0].Int() != 2 {
		t.Fatalf("batch results: %+v", rs)
	}

	// Mid-batch failure (duplicate PK at statement 3) must revert the
	// earlier statements of the same batch.
	before := db.MustExec(`SELECT count(*), max(v) FROM t`)
	_, err = db.ExecBatchAtomic([]BatchStmt{
		{SQL: `INSERT INTO t (id, v) VALUES (3, 30)`},
		{SQL: `UPDATE t SET v = 99 WHERE id = 1`},
		{SQL: `INSERT INTO t (id, v) VALUES (1, 0)`}, // duplicate
	})
	if err == nil {
		t.Fatal("batch with duplicate insert must fail")
	}
	after := db.MustExec(`SELECT count(*), max(v) FROM t`)
	if !reflect.DeepEqual(before.Rows, after.Rows) {
		t.Fatalf("failed batch must revert: before %+v after %+v", before.Rows, after.Rows)
	}

	for _, bad := range [][]BatchStmt{
		{{SQL: "BEGIN"}},
		{{SQL: "COMMIT"}},
		{{SQL: "DROP TABLE t"}},
		{{SQL: "CREATE TABLE u (id INTEGER)"}},
	} {
		if _, err := db.ExecBatchAtomic(bad); err == nil {
			t.Fatalf("batch %q must be rejected", bad[0].SQL)
		}
	}
}

// TestExecBatchAtomicPartialInsertReverts: a multi-row INSERT that
// fails mid-statement inside a batch must not leave its prefix behind.
func TestExecBatchAtomicPartialInsertReverts(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY)`)
	db.MustExec(`INSERT INTO t (id) VALUES (5)`)
	_, err := db.ExecBatchAtomic([]BatchStmt{
		{SQL: `INSERT INTO t (id) VALUES (1), (2), (5)`}, // third row collides
	})
	if err == nil {
		t.Fatal("colliding multi-row insert must fail")
	}
	res := db.MustExec(`SELECT count(*) FROM t`)
	if n := res.Rows[0][0].Int(); n != 1 {
		t.Fatalf("prefix rows must be reverted, count = %d", n)
	}
}

// TestExecBatchAtomicIsolation: a batch holds the engine lock for its
// whole span, so a concurrent writer can never interleave between the
// batch's statements (its write lands entirely before or after).
func TestExecBatchAtomicIsolation(t *testing.T) {
	db := NewDB()
	db.MustExec(`CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)`)
	db.MustExec(`INSERT INTO t (id, v) VALUES (1, 0)`)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			db.MustExec(`UPDATE t SET v = v + 1 WHERE id = 1`)
		}
	}()
	for i := 0; i < 200; i++ {
		rs, err := db.ExecBatchAtomic([]BatchStmt{
			{SQL: `SELECT v FROM t WHERE id = 1`},
			{SQL: `SELECT v FROM t WHERE id = 1`},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := rs[0].Rows[0][0].Int(), rs[1].Rows[0][0].Int()
		if a != b {
			t.Fatalf("concurrent write interleaved inside a batch: %d vs %d", a, b)
		}
	}
	<-done
}

// BenchmarkPreparedVsAdhoc quantifies what the prepared handle saves on
// the renewal-shaped guarded UPDATE.
func BenchmarkPreparedVsAdhoc(b *testing.B) {
	db := NewDB()
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		expires_at TIMESTAMP NOT NULL,
		released BOOLEAN NOT NULL)`)
	now := time.Unix(1000, 0).UTC()
	for i := 0; i < 1000; i++ {
		db.MustExec(`INSERT INTO leases (lease_id, expires_at, released) VALUES (?, ?, FALSE)`,
			int64(i), now)
	}
	sql := `UPDATE leases SET expires_at = $e WHERE lease_id = $id AND released = FALSE`
	b.Run("adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(sql, Args{"e": now, "id": int64(i % 1000)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		p, err := db.Prepare(sql)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := p.Exec(Args{"e": now, "id": int64(i % 1000)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
