package sqlmini

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// planDB builds a leases-shaped table with a PK and a secondary index,
// seeded with a deterministic mix of rows.
func planDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL PRIMARY KEY,
		driver_id INTEGER NOT NULL,
		released BOOLEAN NOT NULL,
		note VARCHAR)`)
	db.MustExec("CREATE INDEX leases_driver ON leases (driver_id)")
	for i := 1; i <= 40; i++ {
		db.MustExec("INSERT INTO leases (lease_id, driver_id, released, note) VALUES (?, ?, ?, ?)",
			i, i%5, i%3 == 0, fmt.Sprintf("n%d", i))
	}
	return db
}

// scanDB is planDB without any secondary index and with the PK demoted
// to a plain column, so every statement takes the scan path.
func scanDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MustExec(`CREATE TABLE leases (
		lease_id BIGINT NOT NULL,
		driver_id INTEGER NOT NULL,
		released BOOLEAN NOT NULL,
		note VARCHAR)`)
	for i := 1; i <= 40; i++ {
		db.MustExec("INSERT INTO leases (lease_id, driver_id, released, note) VALUES (?, ?, ?, ?)",
			i, i%5, i%3 == 0, fmt.Sprintf("n%d", i))
	}
	return db
}

// canon renders a result set order-insensitively for comparison.
func canon(res *Result) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, 0, len(row))
		for _, v := range row {
			parts = append(parts, v.String())
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestPlannerMatchesScan runs the same query against an indexed and an
// unindexed copy of the data: results must be identical whether the
// planner claims the statement or falls back.
func TestPlannerMatchesScan(t *testing.T) {
	queries := []struct {
		sql  string
		args []any
	}{
		// Index-eligible shapes.
		{"SELECT * FROM leases WHERE lease_id = ?", []any{7}},
		{"SELECT * FROM leases WHERE lease_id = 41", nil},
		{"SELECT * FROM leases WHERE driver_id = ?", []any{3}},
		{"SELECT * FROM leases WHERE driver_id = ? AND released = FALSE", []any{2}},
		{"SELECT count(*) FROM leases WHERE driver_id = ? AND released = FALSE AND lease_id <> ?", []any{1, 6}},
		{"SELECT * FROM leases WHERE released = FALSE AND driver_id = ?", []any{4}},
		{"SELECT * FROM leases WHERE 4 = driver_id", nil},
		{"SELECT * FROM leases WHERE lease_id = ? AND driver_id = ?", []any{12, 2}},
		{"SELECT note FROM leases WHERE note = ?", []any{"n17"}},
		{"SELECT * FROM leases WHERE driver_id = ? ORDER BY lease_id DESC LIMIT 3", []any{1}},
		// Any LIMIT is forced onto the scan path (see selectPlannable):
		// ties in ORDER BY keys, or no ORDER BY at all, would otherwise
		// cut different rows depending on candidate order.
		{"SELECT lease_id FROM leases WHERE driver_id = ? LIMIT 2", []any{1}},
		{"SELECT lease_id FROM leases WHERE driver_id = ? ORDER BY released LIMIT 2", []any{1}},
		// Planner-ineligible shapes: must scan, identically.
		{"SELECT * FROM leases WHERE driver_id = ? OR lease_id = ?", []any{1, 30}},
		{"SELECT * FROM leases WHERE driver_id <> ?", []any{1}},
		{"SELECT * FROM leases WHERE driver_id > ?", []any{2}},
		{"SELECT * FROM leases WHERE driver_id = lease_id", nil},
		{"SELECT * FROM leases WHERE driver_id + 0 = ?", []any{3}},
		{"SELECT * FROM leases WHERE note LIKE ?", []any{"n1%"}},
		{"SELECT * FROM leases WHERE driver_id IN (1, 2)", nil},
		{"SELECT * FROM leases WHERE note IS NULL", nil},
		// Lossy keys: planner must decline, results still identical.
		{"SELECT * FROM leases WHERE driver_id = 1.5", nil},
		{"SELECT * FROM leases WHERE driver_id = ?", []any{1.0}},
		{"SELECT * FROM leases WHERE note = ?", []any{17}},
		// NULL key: provably empty either way.
		{"SELECT * FROM leases WHERE driver_id = ?", []any{nil}},
		{"SELECT * FROM leases WHERE driver_id = ? AND released = FALSE", []any{nil}},
	}
	idb, sdb := planDB(t), scanDB(t)
	for _, q := range queries {
		got, err := idb.Query(q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q.sql, err)
		}
		want, err := sdb.Query(q.sql, q.args...)
		if err != nil {
			t.Fatalf("%s (scan): %v", q.sql, err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("%s %v:\nindexed:\n%s\nscan:\n%s", q.sql, q.args, canon(got), canon(want))
		}
	}
}

// TestPlannerMutationsMatchScan applies the same UPDATE/DELETE stream
// to an indexed and an unindexed copy and compares the full table.
func TestPlannerMutationsMatchScan(t *testing.T) {
	idb, sdb := planDB(t), scanDB(t)
	apply := func(sql string, args ...any) {
		t.Helper()
		ri, ei := idb.Exec(sql, args...)
		rs, es := sdb.Exec(sql, args...)
		if (ei == nil) != (es == nil) {
			t.Fatalf("%s: indexed err=%v scan err=%v", sql, ei, es)
		}
		if ei == nil && ri.Affected != rs.Affected {
			t.Fatalf("%s: affected %d (indexed) vs %d (scan)", sql, ri.Affected, rs.Affected)
		}
	}
	apply("UPDATE leases SET released = TRUE WHERE lease_id = ? AND released = FALSE", 7)
	apply("UPDATE leases SET released = TRUE WHERE lease_id = ? AND released = FALSE", 7) // second time: 0 rows
	apply("UPDATE leases SET driver_id = ? WHERE driver_id = ?", 9, 2)                    // bucket-moving via its own index
	apply("UPDATE leases SET note = NULL WHERE driver_id = ?", 3)
	apply("DELETE FROM leases WHERE driver_id = ? AND released = TRUE", 0)
	apply("DELETE FROM leases WHERE lease_id = ?", 11)
	apply("DELETE FROM leases WHERE lease_id = ?", 11) // gone already
	got := idb.MustExec("SELECT * FROM leases")
	want := sdb.MustExec("SELECT * FROM leases")
	if canon(got) != canon(want) {
		t.Fatalf("tables diverged:\nindexed:\n%s\nscan:\n%s", canon(got), canon(want))
	}
	indexConsistent(t, idb, "leases")
}

// TestPlannerErrorParity: statements that error on the scan path must
// error identically with indexes present (the planner refuses WHEREs
// that can fail, so both paths surface the same failure).
func TestPlannerErrorParity(t *testing.T) {
	idb, sdb := planDB(t), scanDB(t)
	for _, q := range []struct {
		sql  string
		args []any
	}{
		{"SELECT * FROM leases WHERE driver_id = $missing AND released = FALSE", []any{Args{}}},
		{"SELECT * FROM leases WHERE bogus = 1 AND driver_id = 2", nil},
		{"SELECT * FROM leases WHERE driver_id = 1 AND 1/driver_id = 1", nil},
	} {
		_, ei := idb.Query(q.sql, q.args...)
		_, es := sdb.Query(q.sql, q.args...)
		if (ei == nil) != (es == nil) {
			t.Fatalf("%s: indexed err=%v, scan err=%v", q.sql, ei, es)
		}
	}
}

func TestExplain(t *testing.T) {
	db := planDB(t)
	for _, tc := range []struct {
		sql  string
		args []any
		want string
	}{
		{"SELECT * FROM leases WHERE lease_id = ?", []any{1},
			"point lookup on leases(lease_id) [primary key]"},
		{"UPDATE leases SET released = TRUE WHERE lease_id = ? AND released = FALSE", []any{1},
			"point lookup on leases(lease_id) [primary key]"},
		{"SELECT count(*) FROM leases WHERE driver_id = ? AND released = FALSE", []any{1},
			"index lookup on leases(driver_id) [leases_driver]"},
		{"DELETE FROM leases WHERE driver_id = ?", []any{1},
			"index lookup on leases(driver_id) [leases_driver]"},
		{"SELECT * FROM leases WHERE driver_id = ? OR lease_id = ?", []any{1, 2},
			"full scan on leases"},
		{"SELECT lease_id FROM leases WHERE driver_id = ? LIMIT 2", []any{1},
			"full scan on leases (LIMIT)"},
		{"SELECT lease_id FROM leases WHERE driver_id = ? ORDER BY lease_id LIMIT 2", []any{1},
			"full scan on leases (LIMIT)"},
		{"SELECT lease_id FROM leases WHERE driver_id = ? ORDER BY lease_id", []any{1},
			"index lookup on leases(driver_id) [leases_driver]"},
		{"SELECT * FROM leases WHERE note LIKE ?", []any{"n%"},
			"full scan on leases"},
		{"SELECT * FROM leases WHERE driver_id = 1.5", nil,
			"full scan on leases"},
		{"SELECT * FROM leases WHERE driver_id = ?", []any{nil},
			"empty result (NULL key) on leases(driver_id)"},
		// Both indexed: the unique PK wins.
		{"SELECT * FROM leases WHERE driver_id = ? AND lease_id = ?", []any{1, 2},
			"point lookup on leases(lease_id) [primary key]"},
		// Range shapes need an ordered index; driver_id's is hash.
		{"SELECT * FROM leases WHERE driver_id > ? AND released = FALSE", []any{2},
			"full scan on leases"},
	} {
		got, err := db.Explain(tc.sql, tc.args...)
		if err != nil {
			t.Fatalf("Explain(%s): %v", tc.sql, err)
		}
		if got != tc.want {
			t.Fatalf("Explain(%s) = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestEnsureIndexIdempotent(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER)")
	for i := 0; i < 3; i++ {
		if err := db.EnsureIndex("t", "grp"); err != nil {
			t.Fatal(err)
		}
		if err := db.EnsureIndex("t", "id"); err != nil { // PK column: no-op
			t.Fatal(err)
		}
	}
	tbl, _ := db.lookupTable("t")
	if n := len(tbl.loadIndexes()); n != 1 {
		t.Fatalf("EnsureIndex created %d indexes, want 1", n)
	}
	if err := db.EnsureIndex("t", "nope"); err == nil {
		t.Fatal("EnsureIndex on unknown column must fail")
	}
	// An already-indexed column gets no second index, whatever the name:
	// redundant maintenance for lookups that would never consult it.
	db.MustExec("CREATE INDEX IF NOT EXISTS t_grp2 ON t (grp)")
	db.MustExec("CREATE INDEX t_grp3 ON t (grp)")
	if n := len(tbl.loadIndexes()); n != 1 {
		t.Fatalf("duplicate-column CREATE INDEX built %d indexes, want 1", n)
	}
	// A clashing NAME is still an error without IF NOT EXISTS (the name
	// EnsureIndex registered above really exists).
	if _, err := db.Exec("CREATE INDEX t_grp_idx ON t (grp)"); err == nil {
		t.Fatal("duplicate index name must fail without IF NOT EXISTS")
	}
	db.MustExec("CREATE INDEX IF NOT EXISTS t_grp_idx ON t (grp)") // and tolerated with it
}

// TestPlannerLimitTieBreak pins the LIMIT exclusion: after a row
// leaves and re-enters a bucket it sits at the bucket's end while
// keeping its table position, so a LIMIT under tied ORDER BY keys
// would cut a different row on the index path. Any LIMIT must scan.
func TestPlannerLimitTieBreak(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	db.MustExec("INSERT INTO t (id, grp) VALUES (1, 1), (2, 1)")
	db.MustExec("UPDATE t SET grp = 2 WHERE id = 1")
	db.MustExec("UPDATE t SET grp = 1 WHERE id = 1") // row 1 now last in bucket 1
	res := db.MustExec("SELECT id FROM t WHERE grp = 1 ORDER BY grp LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("LIMIT under tied ORDER BY must cut in table order, got %v", res.Rows)
	}
}

// TestCreateIndexBackfillsExistingRows: an index declared after data
// exists must serve lookups over that data.
func TestCreateIndexBackfillsExistingRows(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER)")
	db.MustExec("INSERT INTO t (id, grp) VALUES (1, 10), (2, 10), (3, 20)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	indexConsistent(t, db, "t")
	if res := db.MustExec("SELECT count(*) FROM t WHERE grp = 10"); res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}
