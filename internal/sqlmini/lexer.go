package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString // 'single quoted'
	tokParam  // $name
	tokQMark  // ?
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // identifiers are upper-cased except quoted ones
	raw  string // original spelling
	pos  int
}

// lexer tokenizes a SQL statement.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.toks, nil
}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return err
			}
		case c == '$':
			l.lexParam()
		case c == '?':
			l.emit(tokQMark, "?", 1)
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if !l.lexSymbol() {
				return fmt.Errorf("sqlmini: unexpected character %q at position %d", c, l.pos)
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return nil
}

func (l *lexer) emit(k tokKind, text string, width int) {
	l.toks = append(l.toks, token{kind: k, text: text, raw: text, pos: l.pos})
	l.pos += width
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' is an escaped quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), raw: l.src[start:l.pos], pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlmini: unterminated string literal at position %d", start)
}

func (l *lexer) lexParam() {
	start := l.pos
	l.pos++ // $
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	name := l.src[start+1 : l.pos]
	l.toks = append(l.toks, token{kind: tokParam, text: name, raw: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	raw := l.src[start:l.pos]
	l.toks = append(l.toks, token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start})
}

// two-char operators recognized before single-char ones.
var twoCharOps = []string{"<=", ">=", "<>", "!="}

func (l *lexer) lexSymbol() bool {
	rest := l.src[l.pos:]
	for _, op := range twoCharOps {
		if strings.HasPrefix(rest, op) {
			l.emit(tokSymbol, op, len(op))
			return true
		}
	}
	switch rest[0] {
	case '(', ')', ',', '=', '<', '>', '*', '.', ';', '+', '-', '/':
		l.emit(tokSymbol, string(rest[0]), 1)
		return true
	}
	return false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || isDigit(c) || unicode.IsLetter(rune(c))
}
