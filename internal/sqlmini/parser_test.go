package sqlmini

import (
	"fmt"
	"testing"
)

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE information_schema.drivers (
		driver_id INTEGER NOT NULL PRIMARY KEY,
		api_name VARCHAR NOT NULL,
		api_version_major INTEGER,
		binary_code BLOB NOT NULL,
		binary_format VARCHAR NOT NULL
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := st.(*CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Table != "information_schema.drivers" {
		t.Errorf("table = %q", ct.Table)
	}
	if len(ct.Cols) != 5 {
		t.Fatalf("cols = %d", len(ct.Cols))
	}
	if !ct.Cols[0].PrimaryKey || !ct.Cols[0].NotNull {
		t.Error("driver_id should be PRIMARY KEY NOT NULL")
	}
	if ct.Cols[3].Type != TypeBlob || !ct.Cols[3].NotNull {
		t.Error("binary_code should be BLOB NOT NULL")
	}
}

func TestParseCreateTableReferences(t *testing.T) {
	st, err := Parse(`CREATE TABLE perm (driver_id INTEGER NOT NULL REFERENCES driver(driver_id))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Cols[0].RefTable != "driver" || ct.Cols[0].RefColumn != "driver_id" {
		t.Errorf("references = %q(%q)", ct.Cols[0].RefTable, ct.Cols[0].RefColumn)
	}
}

func TestParseSelectPaperSampleCode1(t *testing.T) {
	// Sample code 1 from the paper, verbatim shape.
	src := `SELECT binary_format, binary_code
	FROM information_schema.drivers
	WHERE api_name LIKE $client_api_name
	AND (platform IS NULL OR platform LIKE $client_platform)
	AND ($client_api_version IS NULL OR api_version IS NULL
	     OR $client_api_version LIKE api_version)`
	st, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if sel.Table != "information_schema.drivers" {
		t.Errorf("table = %q", sel.Table)
	}
	if len(sel.Items) != 2 || sel.Where == nil {
		t.Errorf("items=%d where=%v", len(sel.Items), sel.Where)
	}
}

func TestParseSelectPaperSampleCode2(t *testing.T) {
	src := `SELECT driver_id
	FROM information_schema.distribution
	WHERE (database IS NULL OR database LIKE $user_database)
	AND (user IS NULL OR user LIKE $client_user)
	AND (client_ip IS NULL OR client_ip LIKE $client_client_ip)
	AND (start_date IS NULL OR end_date IS NULL
	     OR now() BETWEEN start_date AND end_date)`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseSelectFull(t *testing.T) {
	st, err := Parse(`SELECT a, b AS bee, count(*) FROM t WHERE a > 3 AND b NOT LIKE 'x%' ORDER BY a DESC, b LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if len(sel.Order) != 2 || !sel.Order[0].Desc || sel.Order[1].Desc {
		t.Errorf("order = %+v", sel.Order)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (?, $p)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 3 || len(ins.Cols) != 2 {
		t.Fatalf("rows=%d cols=%d", len(ins.Rows), len(ins.Cols))
	}
	if _, ok := ins.Rows[2][0].(*ParamExpr); !ok {
		t.Error("expected positional param")
	}
	if p, ok := ins.Rows[2][1].(*ParamExpr); !ok || p.Name != "p" {
		t.Error("expected named param $p")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st, err := Parse(`UPDATE leases SET end_date = now(), renewed = renewed + 1 WHERE lease_id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("set=%d", len(up.Set))
	}
	st, err = Parse(`DELETE FROM leases WHERE end_date < now()`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*DeleteStmt); !ok {
		t.Fatalf("got %T", st)
	}
}

func TestParseTransactions(t *testing.T) {
	for src, want := range map[string]string{
		"BEGIN":             "*sqlmini.BeginStmt",
		"START TRANSACTION": "*sqlmini.BeginStmt",
		"COMMIT":            "*sqlmini.CommitStmt",
		"ROLLBACK":          "*sqlmini.RollbackStmt",
	} {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := fmt.Sprintf("%T", st); got != want {
			t.Errorf("%s: got %s, want %s", src, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC x FROM t",
		"SELECT FROM t",
		"CREATE TABLE t (a FOO)",
		"INSERT INTO t VALUES",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"UPDATE t SET",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a NOT 5 FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	st, err := Parse(`SELECT 'it''s a test'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	lit := sel.Items[0].Expr.(*LiteralExpr)
	if lit.Val.Str() != "it's a test" {
		t.Errorf("got %q", lit.Val.Str())
	}
}

func TestParseComments(t *testing.T) {
	st, err := Parse("SELECT a -- trailing comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).Table != "t" {
		t.Error("comment handling broke FROM")
	}
}

func TestParsePrecedence(t *testing.T) {
	// a = 1 OR b = 2 AND c = 3 must parse as a=1 OR (b=2 AND c=3).
	st, err := Parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or := st.(*SelectStmt).Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s, want OR", or.Op)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right side should be AND, got %+v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	// 1 + 2 * 3 = 7
	db := NewDB()
	res, err := db.Query("SELECT 1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 7 {
		t.Errorf("1+2*3 = %d, want 7", got)
	}
}
