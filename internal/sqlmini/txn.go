package sqlmini

// undoLog records inverse operations for an open transaction. Rollback
// applies them in reverse order. Entries address rows by pointer
// identity, which stays valid regardless of how other sessions reorder
// the containing slice.
type undoLog struct {
	entries []undoEntry
}

type undoKind int

const (
	undoInsert undoKind = iota + 1 // remove the row
	undoUpdate                     // restore old values
	undoDelete                     // re-append the row
)

type undoEntry struct {
	kind    undoKind
	table   *Table
	row     *Row
	oldVals []Value
}

func (u *undoLog) recordInsert(t *Table, r *Row) {
	u.entries = append(u.entries, undoEntry{kind: undoInsert, table: t, row: r})
}

func (u *undoLog) recordUpdate(t *Table, r *Row, old []Value) {
	saved := make([]Value, len(old))
	copy(saved, old)
	u.entries = append(u.entries, undoEntry{kind: undoUpdate, table: t, row: r, oldVals: saved})
}

func (u *undoLog) recordDelete(t *Table, r *Row) {
	u.entries = append(u.entries, undoEntry{kind: undoDelete, table: t, row: r})
}

// revert applies the undo log in reverse. Caller holds db.mu.
func (u *undoLog) revert(db *DB) {
	for i := len(u.entries) - 1; i >= 0; i-- {
		e := u.entries[i]
		switch e.kind {
		case undoInsert:
			rows := e.table.Rows
			for j, r := range rows {
				if r == e.row {
					e.table.Rows = append(rows[:j], rows[j+1:]...)
					break
				}
			}
			e.table.indexRemove(e.row)
		case undoUpdate:
			cur := e.row.Vals
			e.row.Vals = e.oldVals
			e.table.indexUpdate(e.row, cur)
		case undoDelete:
			e.table.Rows = append(e.table.Rows, e.row)
			e.table.indexInsert(e.row)
		}
	}
	if len(u.entries) > 0 {
		db.changeSeq++
		for _, e := range u.entries {
			db.bumpTable(e.table.Name)
		}
	}
	u.entries = nil
}
