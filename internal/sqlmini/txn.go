package sqlmini

import "sort"

// undoLog records inverse operations for an open transaction. Rollback
// applies them in reverse order. Entries address rows by pointer
// identity, which stays valid regardless of version pushes, row-list
// compaction, or index churn by other sessions.
type undoLog struct {
	entries []undoEntry
}

type undoKind int

const (
	undoInsert undoKind = iota + 1 // delete the row again
	undoUpdate                    // restore old values
	undoDelete                    // resurrect the row
)

type undoEntry struct {
	kind    undoKind
	table   *Table
	row     *Row
	oldVals []Value
}

func (u *undoLog) recordInsert(t *Table, r *Row) {
	u.entries = append(u.entries, undoEntry{kind: undoInsert, table: t, row: r})
}

func (u *undoLog) recordUpdate(t *Table, r *Row, old []Value) {
	saved := make([]Value, len(old))
	copy(saved, old)
	u.entries = append(u.entries, undoEntry{kind: undoUpdate, table: t, row: r, oldVals: saved})
}

func (u *undoLog) recordDelete(t *Table, r *Row, old []Value) {
	saved := make([]Value, len(old))
	copy(saved, old)
	u.entries = append(u.entries, undoEntry{kind: undoDelete, table: t, row: r, oldVals: saved})
}

// lockEntryTables latches every distinct table the log touched, in
// (name, pointer) order. Sorting by name keeps the order compatible
// with every other multi-latch path (batches, snapshots, restores all
// sort by name), so the global lock graph stays acyclic; the pointer
// tie-break only matters when a table was dropped and re-created under
// the same name mid-transaction, and is applied consistently by every
// rollback. The returned slice is also the unlock list.
func (u *undoLog) lockEntryTables() []*Table {
	var tables []*Table
	for _, e := range u.entries {
		found := false
		for _, t := range tables {
			if t == e.table {
				found = true
				break
			}
		}
		if !found {
			tables = append(tables, e.table)
		}
	}
	sort.Slice(tables, func(i, j int) bool {
		if tables[i].Name != tables[j].Name {
			return tables[i].Name < tables[j].Name
		}
		return tables[i].tid < tables[j].tid
	})
	for _, t := range tables {
		//lint:latch-ok canonical sorted-name multi-latch: tables sorted by (name, tid) just above
		t.latch.Lock()
	}
	return tables
}

// revert applies the undo log in reverse as one atomic write: all
// touched tables are latched up front and the whole rollback shares a
// single commit number, so snapshot readers see either the pre-revert
// or the post-revert state of each table, never a torn mix. Undo is
// purely version-push — even "remove the inserted row" pushes a
// tombstone — so the normal MVCC machinery (visibility, GC, stale
// index entries) covers readers that overlap the rollback.
func (u *undoLog) revert(db *DB) {
	if len(u.entries) == 0 {
		u.entries = nil
		return
	}
	tables := u.lockEntryTables()
	c := db.commits.Add(1)
	u.applyEntries(c)
	// One ChangeSeq step for the whole rollback (it is one logical
	// mutation), one version bump per touched table — after the
	// watermark publish, so generation probes never flag unreadable
	// state.
	db.changeSeq.Add(1)
	for _, t := range tables {
		t.watermark.Store(c)
		t.vers.Add(1)
		t.maybeGCLocked(db)
		t.latch.Unlock()
	}
	u.entries = nil
}

// applyEntries runs the undo operations in reverse under already-held
// latches, stamping every pushed version with c. Shared by rollback
// (which latches via lockEntryTables) and atomic-batch failure (which
// already holds every latch it could need).
func (u *undoLog) applyEntries(c uint64) {
	for i := len(u.entries) - 1; i >= 0; i-- {
		e := u.entries[i]
		t := e.table
		switch e.kind {
		case undoInsert:
			t.gc.enqueue(gcItem{c: c, row: e.row, unlink: true})
			e.row.push(nil, c, true)
		case undoUpdate:
			cur := e.row.curVals()
			if e.row.unlinked || cur == nil {
				// The row was deleted (and possibly physically removed)
				// by another session after our update; restoring values
				// would resurrect it against that session's committed
				// delete. The delete wins.
				continue
			}
			e.row.push(e.oldVals, c, false)
			// Register restored keys (GC may have dropped their entries)
			// and queue removal hints for the keys being reverted away.
			t.indexUpdate(e.row, cur, e.oldVals, c)
			t.gc.enqueue(gcItem{c: c, row: e.row})
		case undoDelete:
			if e.row.unlinked {
				// GC already unlinked the row (no reader floor pinned it);
				// re-link it before resurrecting.
				e.row.unlinked = false
				arr := t.rows.Load()
				if na := arr.append(e.row); na != arr {
					t.rows.Store(na)
				}
			}
			e.row.push(e.oldVals, c, false)
			t.indexEnsure(e.row, e.oldVals)
			t.gc.enqueue(gcItem{c: c, row: e.row})
		}
	}
}

// entryTables returns the distinct tables the log touched, unsorted.
func (u *undoLog) entryTables() []*Table {
	var tables []*Table
	for _, e := range u.entries {
		found := false
		for _, t := range tables {
			if t == e.table {
				found = true
				break
			}
		}
		if !found {
			tables = append(tables, e.table)
		}
	}
	return tables
}
