package sqlmini

import (
	"fmt"
	"sort"
)

// BatchStmt is one statement of an atomic batch: SQL text plus its
// arguments, bound exactly as in DB.Exec (a single Args map binds by
// name, anything else positionally).
type BatchStmt struct {
	SQL  string
	Args []any
}

// ExecBatchAtomic runs stmts in order as one implicit transaction:
// either every statement applies or — when any statement fails — the
// shared undo log reverts them all and the error (annotated with the
// failing statement's 1-based position) is returned. Results are
// returned only on full success.
//
// The batch latches every table it references up front, in sorted name
// order (the canonical multi-latch order, see docs/ARCHITECTURE.md), and
// holds the latches across the whole batch, so no other writer can
// interleave: a batch is both atomic AND isolated, which explicit
// BEGIN/COMMIT sessions (which release latches between statements) are
// not. Snapshot readers are never blocked; they see either none or all
// of the batch's effects, because every row version the batch stamps
// stays above each table's published watermark until the single publish
// at the end.
//
// Transaction control is implicit and therefore rejected inside a
// batch; DDL is rejected because CREATE/DROP cannot roll back.
func (db *DB) ExecBatchAtomic(stmts []BatchStmt) ([]*Result, error) {
	type boundStmt struct {
		st  Statement
		env *evalEnv
	}
	bound := make([]boundStmt, len(stmts))
	tableSet := make(map[string]bool)
	for i, bs := range stmts {
		st, err := db.parseCached(bs.SQL)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		switch st := st.(type) {
		case *BeginStmt, *CommitStmt, *RollbackStmt:
			return nil, fmt.Errorf("sqlmini: batch statement %d: transaction control is implicit in an atomic batch", i+1)
		case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
			return nil, fmt.Errorf("sqlmini: batch statement %d: DDL cannot roll back and is not batchable", i+1)
		case *SelectStmt:
			if st.Table != "" {
				tableSet[st.Table] = true
			}
		case *InsertStmt:
			tableSet[st.Table] = true
		case *UpdateStmt:
			tableSet[st.Table] = true
		case *DeleteStmt:
			tableSet[st.Table] = true
		}
		named, positional, err := bindArgs(bs.Args)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		bound[i] = boundStmt{st: st, env: &evalEnv{clock: db.clock, named: named, positional: positional}}
	}

	locked, order := db.lockTablesByName(tableSet)
	w := &writeCtx{db: db}
	tx := &undoLog{}
	release := func() {
		w.publish()
		for _, t := range order {
			t.maybeGCLocked(db)
			t.latch.Unlock()
		}
	}

	out := make([]*Result, 0, len(stmts))
	for i, b := range bound {
		w.nextStmt()
		res, err := db.execBatchStmt(b.st, b.env, tx, w, locked)
		if err != nil {
			// Revert under the latches we already hold: one fresh commit
			// number stamps the whole rollback, and marking the reverted
			// tables in the writeCtx folds their watermark/version
			// publication into the shared publish below.
			if len(tx.entries) > 0 {
				w.c = db.commits.Add(1)
				db.changeSeq.Add(1)
				tx.applyEntries(w.c)
				for _, t := range tx.entryTables() {
					w.commit(t)
				}
			}
			release()
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		if w.c != 0 {
			db.changeSeq.Add(1)
		}
		out = append(out, res)
	}
	release()
	return out, nil
}

// lockTablesByName latches the named tables in sorted name order and
// returns them keyed by name plus the ordered unlock list. Names that
// don't resolve are skipped — the referencing statement fails at
// execution with the canonical ErrNoSuchTable. After latching, every
// name is re-resolved; if any latched table was swapped (DROP or
// Restore) or any missing name has appeared, all latches are released
// and acquisition restarts against the new schema.
func (db *DB) lockTablesByName(nameSet map[string]bool) (map[string]*Table, []*Table) {
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	for {
		order := make([]*Table, 0, len(names))
		for _, n := range names {
			if t, err := db.lookupTable(n); err == nil {
				order = append(order, t)
			}
		}
		for _, t := range order {
			//lint:latch-ok canonical sorted-name multi-latch: order comes from lockTablesByName's sort
			t.latch.Lock()
		}
		stable := true
		byName := make(map[string]*Table, len(order))
		for _, t := range order {
			byName[t.Name] = t
		}
		for _, n := range names {
			cur, err := db.lookupTable(n)
			if err != nil {
				if _, had := byName[n]; had {
					stable = false // dropped after we latched it
				}
				continue
			}
			if byName[n] != cur {
				stable = false // swapped, or created after the first pass
			}
		}
		if stable {
			return byName, order
		}
		for _, t := range order {
			t.latch.Unlock()
		}
	}
}

// execBatchStmt dispatches one batch statement against the pre-latched
// table set. SELECTs run in the writer view — the batch holds the
// latch, so current chain heads ARE its consistent view, including its
// own uncommitted-to-readers writes (read-your-writes within the
// batch).
func (db *DB) execBatchStmt(st Statement, env *evalEnv, tx *undoLog, w *writeCtx, locked map[string]*Table) (*Result, error) {
	get := func(name string) (*Table, error) {
		if t, ok := locked[name]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	switch st := st.(type) {
	case *SelectStmt:
		if st.Table == "" {
			return execConstSelect(st, env)
		}
		t, err := get(st.Table)
		if err != nil {
			return nil, err
		}
		return db.execSelect(t, tableView{t: t, writer: true}, st, env)
	case *InsertStmt:
		t, err := get(st.Table)
		if err != nil {
			return nil, err
		}
		return db.execInsert(t, st, env, tx, w)
	case *UpdateStmt:
		t, err := get(st.Table)
		if err != nil {
			return nil, err
		}
		return db.execUpdate(t, st, env, tx, w)
	case *DeleteStmt:
		t, err := get(st.Table)
		if err != nil {
			return nil, err
		}
		return db.execDelete(t, st, env, tx, w)
	default:
		return nil, fmt.Errorf("sqlmini: unsupported statement %T", st)
	}
}
