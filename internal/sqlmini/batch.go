package sqlmini

import "fmt"

// BatchStmt is one statement of an atomic batch: SQL text plus its
// arguments, bound exactly as in DB.Exec (a single Args map binds by
// name, anything else positionally).
type BatchStmt struct {
	SQL  string
	Args []any
}

// ExecBatchAtomic runs stmts in order under a single engine-lock
// acquisition, as one implicit transaction: either every statement
// applies or — when any statement fails — the shared undo log reverts
// them all and the error (annotated with the failing statement's
// 1-based position) is returned. Results are returned only on full
// success.
//
// Because the lock is held across the whole batch, no other session
// can interleave: a batch is both atomic AND isolated, which explicit
// BEGIN/COMMIT sessions (which release the lock between statements)
// are not.
//
// Transaction control is implicit and therefore rejected inside a
// batch; DDL is rejected because CREATE/DROP cannot roll back.
func (db *DB) ExecBatchAtomic(stmts []BatchStmt) ([]*Result, error) {
	type boundStmt struct {
		st  Statement
		env *evalEnv
	}
	bound := make([]boundStmt, len(stmts))
	for i, bs := range stmts {
		st, err := db.parseCached(bs.SQL)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		switch st.(type) {
		case *BeginStmt, *CommitStmt, *RollbackStmt:
			return nil, fmt.Errorf("sqlmini: batch statement %d: transaction control is implicit in an atomic batch", i+1)
		case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
			return nil, fmt.Errorf("sqlmini: batch statement %d: DDL cannot roll back and is not batchable", i+1)
		}
		named, positional, err := bindArgs(bs.Args)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		bound[i] = boundStmt{st: st, env: &evalEnv{clock: db.clock, named: named, positional: positional}}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tx := &undoLog{}
	out := make([]*Result, 0, len(stmts))
	for i, b := range bound {
		res, err := db.execLocked(b.st, b.env, tx)
		if err != nil {
			tx.revert(db)
			return nil, fmt.Errorf("sqlmini: batch statement %d: %w", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}
