package sqlmini

import (
	"fmt"
	"sync/atomic"
)

// Prepared statements: a handle that carries its parsed AST and the
// arg-independent half of the planner's decision, so hot statements
// skip the parse-cache lookup AND the per-call plan analysis. The
// planner's work splits naturally:
//
//   - analysis (planAnalyze): which conjuncts reference which indexed
//     columns, whether the WHERE is total, which ordered column may
//     claim a range — depends only on the AST and the table's schema;
//   - binding (stmtPlan.bind): evaluating the key/bound expressions
//     against the call's parameters, NULL and lossy-key checks —
//     depends on the arguments and must run per execution.
//
// A skeleton is valid exactly while DB.schemaSeq is unchanged (no
// table or index structure changed); row churn never invalidates it.
// bind mirrors planIndex decision-for-decision, so a prepared
// execution is bit-identical to the ad-hoc one — the equivalence suite
// in prepared_test.go pins this.

// planCand is one equality-conjunct candidate, in conjunct order.
type planCand struct {
	col     int
	pk      bool
	ix      *secondaryIndex // nil for PK candidates
	ordered bool            // ordered-index equality probe (lossy keys allowed)
	key     Expr
}

// planBound is one range bound of the claimed range column, in the
// order planRange would have evaluated it.
type planBound struct {
	expr Expr
	op   string
	hi   bool
}

// stmtPlan is the cached, arg-independent plan skeleton of one
// statement over one concrete table.
type stmtPlan struct {
	seq  uint64 // DB.schemaSeq at analysis time
	t    *Table
	scan bool // analysis concluded the statement always scans

	params    []*ParamExpr // parameters the WHERE references (bind check)
	eq        []planCand
	rngCol    int // -1 when no ordered column claimed a range
	rngIx     *secondaryIndex
	rngBounds []planBound
}

// planAnalyze runs the static half of planIndex over t's current
// schema. Caller holds db.mu.
func planAnalyze(db *DB, t *Table, where Expr) *stmtPlan {
	sp := &stmtPlan{seq: db.schemaSeq, t: t, rngCol: -1}
	if where == nil || (t.pk < 0 && len(t.indexes) == 0) {
		sp.scan = true
		return sp
	}
	if !whereTotalStatic(t, where, &sp.params) {
		sp.scan = true
		return sp
	}
	var conjuncts []Expr
	collectConjuncts(where, &conjuncts)
	for _, c := range conjuncts {
		col, keyExpr := eqConjunct(t, c)
		if col < 0 {
			continue
		}
		isPK := col == t.pk
		ix := t.indexOn(col)
		if !isPK && ix == nil {
			continue
		}
		sp.eq = append(sp.eq, planCand{
			col:     col,
			pk:      isPK,
			ix:      ix,
			ordered: !isPK && ix.kind == IndexOrdered,
			key:     keyExpr,
		})
	}
	for _, c := range conjuncts {
		col, loExpr, loOp, hiExpr, hiOp := rangeConjunct(t, c)
		if col < 0 {
			continue
		}
		ix := t.indexOn(col)
		if ix == nil || ix.kind != IndexOrdered {
			continue
		}
		if sp.rngCol >= 0 && sp.rngCol != col {
			continue // another ordered column already claimed the plan
		}
		if sp.rngCol < 0 {
			sp.rngCol, sp.rngIx = col, ix
		}
		if loExpr != nil {
			sp.rngBounds = append(sp.rngBounds, planBound{expr: loExpr, op: loOp})
		}
		if hiExpr != nil {
			sp.rngBounds = append(sp.rngBounds, planBound{expr: hiExpr, op: hiOp, hi: true})
		}
	}
	if len(sp.eq) == 0 && sp.rngCol < 0 {
		sp.scan = true
	}
	return sp
}

// bind evaluates the skeleton's key expressions against one call's
// parameters, reproducing planIndex's value-dependent decisions
// exactly: NULL keys prove emptiness, lossy hash keys fall through to
// the next candidate, a PK hit wins outright, equality beats range,
// and any evaluation problem falls back to the scan (nil).
func (sp *stmtPlan) bind(env *evalEnv) *indexPlan {
	if sp.scan || !paramsBound(env, sp.params) {
		return nil
	}
	var best *indexPlan
	for i := range sp.eq {
		cand := &sp.eq[i]
		kv, err := env.eval(cand.key, nil, nil)
		if err != nil {
			return nil // mirrors planIndex: fail safe to scan
		}
		if kv.IsNull() {
			return &indexPlan{col: cand.col, pk: cand.pk, ix: cand.ix, empty: true}
		}
		colType := sp.t.Cols[cand.col].Type
		if cand.ordered {
			if orderedProbeOK(colType, kv) && best == nil {
				best = &indexPlan{col: cand.col, ix: cand.ix, key: kv}
			}
			continue
		}
		ck, ok := indexLookupKey(colType, kv)
		if !ok {
			continue // lossy key: another conjunct may still do
		}
		p := &indexPlan{col: cand.col, pk: cand.pk, ix: cand.ix, key: ck}
		if cand.pk {
			return p
		}
		if best == nil {
			best = p
		}
	}
	if best != nil {
		return best
	}
	if sp.rngCol < 0 {
		return nil
	}
	plan := &indexPlan{col: sp.rngCol, ix: sp.rngIx, rng: true}
	colType := sp.t.Cols[sp.rngCol].Type
	for _, b := range sp.rngBounds {
		if (b.hi && plan.hiOp != "") || (!b.hi && plan.loOp != "") {
			continue // one bound per side; later conjuncts stay residual
		}
		v, err := env.eval(b.expr, nil, nil)
		if err != nil {
			return nil
		}
		if v.IsNull() {
			return &indexPlan{col: sp.rngCol, ix: sp.rngIx, empty: true}
		}
		if orderedProbeOK(colType, v) {
			if b.hi {
				plan.hi, plan.hiOp = v, b.op
			} else {
				plan.lo, plan.loOp = v, b.op
			}
		}
	}
	if plan.loOp == "" && plan.hiOp == "" {
		return nil
	}
	return plan
}

// Prepared is a reusable statement handle: the AST is parsed once and
// the plan skeleton is cached across executions (re-analyzed only when
// the schema changes). Prepared handles are safe for concurrent use.
type Prepared struct {
	db  *DB
	src string
	st  Statement

	// plan caches the skeleton for plannable statements; nil until the
	// first execution and replaced wholesale when schemaSeq moves (all
	// under db.mu, the atomic only guards the pointer load/store shape).
	plan atomic.Pointer[stmtPlan]
}

// Prepare parses src once and returns a reusable handle. Transaction
// control (BEGIN/COMMIT/ROLLBACK) is session state and cannot be
// prepared; everything else can.
func (db *DB) Prepare(src string) (*Prepared, error) {
	st, err := db.parseCached(src)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil, fmt.Errorf("sqlmini: cannot prepare transaction control %q", src)
	}
	return &Prepared{db: db, src: src, st: st}, nil
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.src }

// planTarget reports the table and WHERE clause the planner would
// consider for this statement, ok=false when the statement kind never
// plans (INSERT, DDL, constant SELECT, SELECT with LIMIT).
func (p *Prepared) planTarget() (table string, where Expr, ok bool) {
	switch st := p.st.(type) {
	case *SelectStmt:
		if st.Table == "" || !selectPlannable(st) {
			return "", nil, false
		}
		return st.Table, st.Where, true
	case *UpdateStmt:
		return st.Table, st.Where, true
	case *DeleteStmt:
		return st.Table, st.Where, true
	}
	return "", nil, false
}

// Exec runs the prepared statement in autocommit mode. Parameters bind
// exactly as in DB.Exec: a single Args map binds by name, anything
// else binds positionally.
func (p *Prepared) Exec(args ...any) (*Result, error) {
	return p.exec(nil, args...)
}

// ExecPrepared runs a prepared handle inside this session: when the
// session holds an open transaction the statement joins its undo log,
// exactly as the same SQL through Session.Exec would (transaction
// control itself is unpreparable, so a handle can never manipulate
// session state). The handle must belong to the session's database.
func (s *Session) ExecPrepared(p *Prepared, args ...any) (*Result, error) {
	if p.db != s.db {
		return nil, fmt.Errorf("sqlmini: prepared statement belongs to a different database")
	}
	return p.exec(s.tx, args...)
}

func (p *Prepared) exec(tx *undoLog, args ...any) (*Result, error) {
	named, positional, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{clock: p.db.clock, named: named, positional: positional}
	db := p.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if table, where, ok := p.planTarget(); ok {
		if t, err := db.table(table); err == nil {
			sp := p.plan.Load()
			if sp == nil || sp.seq != db.schemaSeq || sp.t != t {
				sp = planAnalyze(db, t, where)
				p.plan.Store(sp)
			}
			env.prep = sp
		}
		// A missing table falls through: execLocked reports the same
		// ErrNoSuchTable the ad-hoc path would.
	}
	return db.execLocked(p.st, env, tx)
}

// Query is Exec for row-returning statements.
func (p *Prepared) Query(args ...any) (*Result, error) {
	return p.Exec(args...)
}
