package sqlmini

import (
	"fmt"
	"sync/atomic"
)

// Prepared statements: a handle that carries its parsed AST and the
// arg-independent half of the planner's decision (the stmtPlan skeleton,
// plan.go), so hot statements skip the parse-cache lookup AND the
// per-call plan analysis. A skeleton is valid exactly while DB.schemaSeq
// is unchanged; row churn never invalidates it. Binding mirrors the
// ad-hoc path decision-for-decision, so a prepared execution is
// bit-identical to the ad-hoc one — the equivalence suite in
// prepared_test.go pins this.

// Prepared is a reusable statement handle: the AST is parsed once and
// the plan skeleton is cached across executions (re-analyzed only when
// the schema changes). Prepared handles are safe for concurrent use —
// the skeleton swap is an atomic pointer store, and concurrent
// executions at worst analyze twice.
type Prepared struct {
	db  *DB
	src string
	st  Statement

	// plan caches the skeleton for plannable statements; nil until the
	// first execution and replaced wholesale when schemaSeq moves.
	plan atomic.Pointer[stmtPlan]
}

// Prepare parses src once and returns a reusable handle. Transaction
// control (BEGIN/COMMIT/ROLLBACK) is session state and cannot be
// prepared; everything else can.
func (db *DB) Prepare(src string) (*Prepared, error) {
	st, err := db.parseCached(src)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return nil, fmt.Errorf("sqlmini: cannot prepare transaction control %q", src)
	}
	return &Prepared{db: db, src: src, st: st}, nil
}

// SQL returns the statement text the handle was prepared from.
func (p *Prepared) SQL() string { return p.src }

// planTarget reports the table and WHERE clause the planner would
// consider for this statement, ok=false when the statement kind never
// plans (INSERT, DDL, constant SELECT, SELECT with LIMIT).
func (p *Prepared) planTarget() (table string, where Expr, ok bool) {
	switch st := p.st.(type) {
	case *SelectStmt:
		if st.Table == "" || !selectPlannable(st) {
			return "", nil, false
		}
		return st.Table, st.Where, true
	case *UpdateStmt:
		return st.Table, st.Where, true
	case *DeleteStmt:
		return st.Table, st.Where, true
	}
	return "", nil, false
}

// Exec runs the prepared statement in autocommit mode. Parameters bind
// exactly as in DB.Exec: a single Args map binds by name, anything
// else binds positionally.
func (p *Prepared) Exec(args ...any) (*Result, error) {
	return p.exec(nil, args...)
}

// ExecPrepared runs a prepared handle inside this session: when the
// session holds an open transaction the statement joins its undo log,
// exactly as the same SQL through Session.Exec would (transaction
// control itself is unpreparable, so a handle can never manipulate
// session state). The handle must belong to the session's database.
func (s *Session) ExecPrepared(p *Prepared, args ...any) (*Result, error) {
	if p.db != s.db {
		return nil, fmt.Errorf("sqlmini: prepared statement belongs to a different database")
	}
	return p.exec(s.tx, args...)
}

func (p *Prepared) exec(tx *undoLog, args ...any) (*Result, error) {
	named, positional, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	env := &evalEnv{clock: p.db.clock, named: named, positional: positional}
	db := p.db
	if table, where, ok := p.planTarget(); ok {
		if t, err := db.lookupTable(table); err == nil {
			sp := p.plan.Load()
			if sp == nil || sp.seq != db.schemaSeq.Load() || sp.t != t {
				sp = planAnalyze(db, t, where)
				p.plan.Store(sp)
			}
			env.prep = sp
		}
		// A missing table falls through: execStmt reports the same
		// ErrNoSuchTable the ad-hoc path would.
	}
	return db.execStmt(p.st, env, tx)
}

// Query is Exec for row-returning statements.
func (p *Prepared) Query(args ...any) (*Result, error) {
	return p.Exec(args...)
}
