package sqlmini

import (
	"sync"
	"time"
)

// Background MVCC sweeping. GC is normally piggybacked on writers
// (maybeGCLocked fires when a table's deferred queue grows), which
// means a table that goes write-idle keeps its accumulated version
// chains forever: nothing ever reaches the threshold again, so a
// burst of updates followed by a read-only period pins every
// superseded version. The sweeper closes that gap with a periodic
// full round, independent of write traffic.

// Sweep forces one full garbage-collection round over every table,
// reclaiming all row versions no live snapshot can need. Write-idle
// databases use it (or StartSweeper) to converge version chains to
// length 1.
func (db *DB) Sweep() { db.gcAll() }

// StartSweeper runs Sweep every interval on a background goroutine
// until the returned stop function is called. stop blocks until the
// goroutine has exited and is safe to call more than once. Each round
// takes the DDL lock and every table latch briefly (the same order
// writers use), so the cadence should be coarse — seconds, not
// milliseconds — on write-hot databases.
func (db *DB) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				db.gcAll()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
