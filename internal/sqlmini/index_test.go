package sqlmini

import (
	"fmt"
	"math/rand"
	"testing"
)

// liveRow pairs a row with its current (committed) values.
type liveRow struct {
	r    *Row
	vals []Value
}

// indexConsistent verifies the PK index and every secondary index
// agree with a full scan. MVCC indexes are lazily maintained — stale
// entries are legal until GC matures them — so the check first forces a
// full GC round (no reader is registered in these single-threaded
// tests, so every queued hint is mature) and then demands the settled
// state exactly: every live row indexed once under its current key, no
// stale entries, no empty buckets or groups.
func indexConsistent(t *testing.T, db *DB, table string) {
	t.Helper()
	db.gcAll()
	tbl, err := db.lookupTable(table)
	if err != nil {
		t.Fatalf("lookup %q: %v", table, err)
	}
	var live []liveRow
	for _, r := range tbl.rowsSnapshot() {
		if vals := r.curVals(); vals != nil {
			live = append(live, liveRow{r, vals})
		}
	}
	if tbl.pk >= 0 {
		seen := map[string]bool{}
		for _, lr := range live {
			v := lr.vals[tbl.pk]
			if v.IsNull() {
				continue
			}
			key := pkKey(v)
			n := 0
			for _, br := range tbl.pkIx.lookup([]Value{v}) {
				if br == lr.r {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("row with key %q appears %d times in the PK index", key, n)
			}
			seen[key] = true
		}
		tbl.pkIx.each(func(key string, rows []*Row) {
			if !seen[key] {
				t.Fatalf("stale PK index entry %q", key)
			}
			if len(rows) != 1 {
				t.Fatalf("PK bucket %q holds %d rows", key, len(rows))
			}
		})
	}
	for _, ix := range tbl.loadIndexes() {
		secondaryConsistent(t, live, ix)
	}
}

// secondaryConsistent verifies one secondary index against a full scan:
// every fully-non-NULL row appears exactly once in exactly its key's
// bucket/group, and no settled bucket/group holds anything else.
// Ordered indexes additionally must keep their groups strictly sorted.
// (A shadow hash left behind by an index upgrade is exempt: it is
// superset-only by design and never GC'd.)
func secondaryConsistent(t *testing.T, live []liveRow, ix *secondaryIndex) {
	t.Helper()
	if ix.kind == IndexOrdered {
		orderedConsistent(t, live, ix)
		return
	}
	want := map[string]int{} // key → row count from the scan
	for _, lr := range live {
		key, ok := ix.keyFor(lr.vals)
		if !ok {
			continue
		}
		ks := tupleKey(key)
		want[ks]++
		found := 0
		for _, br := range ix.hash.lookup(key) {
			if br == lr.r {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("index %q: row with key %q appears %d times in its bucket", ix.name, ks, found)
		}
	}
	ix.hash.each(func(key string, bucket []*Row) {
		if len(bucket) == 0 {
			t.Fatalf("index %q: empty bucket %q left behind", ix.name, key)
		}
		if len(bucket) != want[key] {
			t.Fatalf("index %q: bucket %q has %d rows, scan found %d", ix.name, key, len(bucket), want[key])
		}
	})
}

// orderedConsistent verifies an ordered index: groups strictly sorted,
// no empty group, every member row live and filed under its current
// key, and total indexed rows matching the scan.
func orderedConsistent(t *testing.T, live []liveRow, ix *secondaryIndex) {
	t.Helper()
	indexed := 0
	var prevKey []Value
	ix.skip.each(func(key []Value, rows []*Row) {
		if len(rows) == 0 {
			t.Fatalf("index %q: empty group %v left behind", ix.name, key)
		}
		if prevKey != nil && cmpKey(prevKey, key) >= 0 {
			t.Fatalf("index %q: groups out of order (%v vs %v)", ix.name, prevKey, key)
		}
		prevKey = key
		for _, br := range rows {
			vals := br.curVals()
			if vals == nil {
				t.Fatalf("index %q: dead row left in group %v after GC", ix.name, key)
			}
			bk, ok := ix.keyFor(vals)
			if !ok || cmpKey(key, bk) != 0 {
				t.Fatalf("index %q: row with key %v filed under group key %v", ix.name, bk, key)
			}
		}
		indexed += len(rows)
	})
	scan := 0
	for _, lr := range live {
		key, ok := ix.keyFor(lr.vals)
		if !ok {
			continue
		}
		scan++
		n := 0
		for _, br := range ix.skip.lookupEqual(key, nil) {
			if br == lr.r {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("index %q: row with key %v appears %d times in its group", ix.name, key, n)
		}
	}
	if indexed != scan {
		t.Fatalf("index %q: %d rows indexed, scan found %d", ix.name, indexed, scan)
	}
}

func TestPKIndexMutationSequence(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
	indexConsistent(t, db, "t")

	// Key-changing update.
	db.MustExec("UPDATE t SET id = 4 WHERE id = 2")
	indexConsistent(t, db, "t")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (2, 22)"); err != nil {
		t.Fatalf("freed key must be reusable: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (4, 44)"); err == nil {
		t.Fatal("moved-to key must conflict")
	}
	indexConsistent(t, db, "t")

	// Delete frees keys.
	db.MustExec("DELETE FROM t WHERE id = 4")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (4, 40)"); err != nil {
		t.Fatalf("deleted key must be reusable: %v", err)
	}
	indexConsistent(t, db, "t")
}

func TestPKIndexRollback(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")

	s := db.NewSession()
	defer s.Close()
	s.Exec("BEGIN")                                //nolint:errcheck
	s.Exec("INSERT INTO t (id, v) VALUES (3, 30)") //nolint:errcheck
	s.Exec("UPDATE t SET id = 9 WHERE id = 1")     //nolint:errcheck
	s.Exec("DELETE FROM t WHERE id = 2")           //nolint:errcheck
	s.Exec("ROLLBACK")                             //nolint:errcheck
	indexConsistent(t, db, "t")

	// Original keys are live again, transaction keys are free.
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 0)"); err == nil {
		t.Fatal("key 1 must exist again after rollback")
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (3, 0)"); err != nil {
		t.Fatalf("key 3 must be free after rollback: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (9, 0)"); err != nil {
		t.Fatalf("key 9 must be free after rollback: %v", err)
	}
	indexConsistent(t, db, "t")
}

func TestPKIndexSurvivesRestore(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY)")
	db.MustExec("INSERT INTO t (id) VALUES (1), (2), (3)")
	db2 := NewDB()
	if err := db2.Restore(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	indexConsistent(t, db2, "t")
	if _, err := db2.Exec("INSERT INTO t (id) VALUES (2)"); err == nil {
		t.Fatal("restored index must enforce uniqueness")
	}
}

// TestPKIndexRandomizedProperty drives a random mutation sequence
// (inserts, deletes, key-moving updates, rollbacks) and checks the index
// against a full scan after every step.
func TestPKIndexRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	live := map[int]bool{}
	nextFree := func() int {
		for {
			k := rng.Intn(200)
			if !live[k] {
				return k
			}
		}
	}
	anyLive := func() (int, bool) {
		for k := range live {
			return k, true
		}
		return 0, false
	}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(4); op {
		case 0: // insert
			k := nextFree()
			db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", k, step)
			live[k] = true
		case 1: // delete
			if k, ok := anyLive(); ok {
				db.MustExec("DELETE FROM t WHERE id = ?", k)
				delete(live, k)
			}
		case 2: // key-moving update
			if k, ok := anyLive(); ok {
				nk := nextFree()
				db.MustExec("UPDATE t SET id = ? WHERE id = ?", nk, k)
				delete(live, k)
				live[nk] = true
			}
		case 3: // transaction that rolls back
			s := db.NewSession()
			s.Exec("BEGIN") //nolint:errcheck
			k := nextFree()
			s.Exec("INSERT INTO t (id, v) VALUES (?, 0)", k) //nolint:errcheck
			if lk, ok := anyLive(); ok {
				s.Exec("DELETE FROM t WHERE id = ?", lk) //nolint:errcheck
			}
			s.Exec("ROLLBACK") //nolint:errcheck
			s.Close()
		}
		indexConsistent(t, db, "t")
	}
	// Final cross-check: count matches the model.
	res, _ := db.Query("SELECT count(*) FROM t")
	if int(res.Rows[0][0].Int()) != len(live) {
		t.Fatalf("row count %d != model %d", res.Rows[0][0].Int(), len(live))
	}
}

func TestSecondaryIndexMutationSequence(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	db.MustExec("INSERT INTO t (id, grp, v) VALUES (1, 10, 1), (2, 10, 2), (3, 20, 3), (4, NULL, 4)")
	indexConsistent(t, db, "t")

	// Bucket-moving update, NULL transitions both ways.
	db.MustExec("UPDATE t SET grp = 20 WHERE id = 1")
	db.MustExec("UPDATE t SET grp = NULL WHERE id = 2")
	db.MustExec("UPDATE t SET grp = 30 WHERE id = 4")
	indexConsistent(t, db, "t")

	res := db.MustExec("SELECT id FROM t WHERE grp = 20 ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("grp=20 rows = %v", res.Rows)
	}

	db.MustExec("DELETE FROM t WHERE grp = 20")
	indexConsistent(t, db, "t")
	if res := db.MustExec("SELECT count(*) FROM t"); res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestSecondaryIndexRollback(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	db.MustExec("INSERT INTO t (id, grp) VALUES (1, 10), (2, 20)")

	s := db.NewSession()
	defer s.Close()
	s.Exec("BEGIN")                                  //nolint:errcheck
	s.Exec("INSERT INTO t (id, grp) VALUES (3, 10)") //nolint:errcheck
	s.Exec("UPDATE t SET grp = 99 WHERE id = 1")     //nolint:errcheck
	s.Exec("DELETE FROM t WHERE id = 2")             //nolint:errcheck
	s.Exec("ROLLBACK")                               //nolint:errcheck
	indexConsistent(t, db, "t")

	res := db.MustExec("SELECT id FROM t WHERE grp = 10")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("grp=10 after rollback = %v", res.Rows)
	}
	if res := db.MustExec("SELECT id FROM t WHERE grp = 20"); len(res.Rows) != 1 {
		t.Fatalf("grp=20 after rollback = %v", res.Rows)
	}
	if res := db.MustExec("SELECT id FROM t WHERE grp = 99"); len(res.Rows) != 0 {
		t.Fatalf("grp=99 after rollback = %v", res.Rows)
	}
}

func TestSecondaryIndexSurvivesRestore(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	db.MustExec("INSERT INTO t (id, grp) VALUES (1, 10), (2, 10), (3, 20)")
	db2 := NewDB()
	if err := db2.Restore(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	indexConsistent(t, db2, "t")
	plan, err := db2.Explain("SELECT id FROM t WHERE grp = 10")
	if err != nil {
		t.Fatal(err)
	}
	if plan != "index lookup on t(grp) [t_grp]" {
		t.Fatalf("restored index not used by the planner: %q", plan)
	}
	if res := db2.MustExec("SELECT count(*) FROM t WHERE grp = 10"); res.Rows[0][0].Int() != 2 {
		t.Fatalf("grp=10 count after restore = %v", res.Rows[0][0])
	}
}

// TestSecondaryIndexRandomizedProperty drives a random mutation
// sequence — inserts, deletes, bucket-moving updates, rollbacks, and
// full snapshot/restore round trips — and checks after every step that
// the indexes are structurally consistent and that index-driven
// SELECTs agree with a forced full scan.
func TestSecondaryIndexRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, grp INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX t_grp ON t (grp)")
	nextID := 0
	live := map[int]bool{}
	anyLive := func() (int, bool) {
		for k := range live {
			return k, true
		}
		return 0, false
	}
	grpVal := func() any {
		if rng.Intn(8) == 0 {
			return nil // NULLs must stay out of the index
		}
		return rng.Intn(5)
	}
	for step := 0; step < 500; step++ {
		switch op := rng.Intn(6); op {
		case 0, 1: // insert
			nextID++
			db.MustExec("INSERT INTO t (id, grp, v) VALUES (?, ?, ?)", nextID, grpVal(), step)
			live[nextID] = true
		case 2: // delete by id or by group
			if rng.Intn(2) == 0 {
				if k, ok := anyLive(); ok {
					db.MustExec("DELETE FROM t WHERE id = ?", k)
					delete(live, k)
				}
			} else {
				g := rng.Intn(5)
				res := db.MustExec("SELECT id FROM t WHERE grp = ?", g)
				db.MustExec("DELETE FROM t WHERE grp = ?", g)
				for _, row := range res.Rows {
					delete(live, int(row[0].Int()))
				}
			}
		case 3: // bucket-moving update
			if k, ok := anyLive(); ok {
				db.MustExec("UPDATE t SET grp = ? WHERE id = ?", grpVal(), k)
			}
		case 4: // transaction that rolls back
			s := db.NewSession()
			s.Exec("BEGIN") //nolint:errcheck
			nextID++
			s.Exec("INSERT INTO t (id, grp, v) VALUES (?, ?, 0)", nextID, grpVal()) //nolint:errcheck
			if lk, ok := anyLive(); ok {
				s.Exec("UPDATE t SET grp = ? WHERE id = ?", grpVal(), lk) //nolint:errcheck
				s.Exec("DELETE FROM t WHERE id = ?", lk)                  //nolint:errcheck
			}
			s.Exec("ROLLBACK") //nolint:errcheck
			s.Close()
		case 5: // snapshot/restore round trip
			blob := db.Snapshot()
			if err := db.Restore(blob); err != nil {
				t.Fatalf("step %d: restore: %v", step, err)
			}
		}
		indexConsistent(t, db, "t")
		// Index-driven lookups agree with a full scan for every group,
		// including one no row holds.
		for g := 0; g < 6; g++ {
			got := db.MustExec("SELECT id FROM t WHERE grp = ?", g)
			want := db.MustExec("SELECT id FROM t WHERE grp + 0 = ?", g) // arithmetic defeats the planner
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("step %d grp=%d: index path %d rows, scan %d rows", step, g, len(got.Rows), len(want.Rows))
			}
			gotIDs, wantIDs := map[int64]bool{}, map[int64]bool{}
			for _, r := range got.Rows {
				gotIDs[r[0].Int()] = true
			}
			for _, r := range want.Rows {
				wantIDs[r[0].Int()] = true
			}
			for id := range wantIDs {
				if !gotIDs[id] {
					t.Fatalf("step %d grp=%d: scan found id %d, index path did not", step, g, id)
				}
			}
		}
	}
	res, _ := db.Query("SELECT count(*) FROM t")
	if int(res.Rows[0][0].Int()) != len(live) {
		t.Fatalf("row count %d != model %d", res.Rows[0][0].Int(), len(live))
	}
}

func BenchmarkInsertWithPKAt10k(b *testing.B) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY)")
	for i := 0; i < 10000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (id) VALUES (%d)", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t (id) VALUES (?)", 10000+i); err != nil {
			b.Fatal(err)
		}
	}
}
