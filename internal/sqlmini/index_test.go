package sqlmini

import (
	"fmt"
	"math/rand"
	"testing"
)

// indexConsistent verifies the PK index agrees with a full scan.
func indexConsistent(t *testing.T, db *DB, table string) {
	t.Helper()
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.tables[table]
	if tbl.pk < 0 {
		return
	}
	// Every row is indexed under its key.
	seen := map[string]bool{}
	for _, r := range tbl.Rows {
		v := r.Vals[tbl.pk]
		if v.IsNull() {
			continue
		}
		key := pkKey(v)
		if tbl.pkIdx[key] != r {
			t.Fatalf("row with key %q not indexed (or indexed to another row)", key)
		}
		seen[key] = true
	}
	// No stale entries.
	for key := range tbl.pkIdx {
		if !seen[key] {
			t.Fatalf("stale index entry %q", key)
		}
	}
}

func TestPKIndexMutationSequence(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
	indexConsistent(t, db, "t")

	// Key-changing update.
	db.MustExec("UPDATE t SET id = 4 WHERE id = 2")
	indexConsistent(t, db, "t")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (2, 22)"); err != nil {
		t.Fatalf("freed key must be reusable: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (4, 44)"); err == nil {
		t.Fatal("moved-to key must conflict")
	}
	indexConsistent(t, db, "t")

	// Delete frees keys.
	db.MustExec("DELETE FROM t WHERE id = 4")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (4, 40)"); err != nil {
		t.Fatalf("deleted key must be reusable: %v", err)
	}
	indexConsistent(t, db, "t")
}

func TestPKIndexRollback(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")

	s := db.NewSession()
	defer s.Close()
	s.Exec("BEGIN")                                //nolint:errcheck
	s.Exec("INSERT INTO t (id, v) VALUES (3, 30)") //nolint:errcheck
	s.Exec("UPDATE t SET id = 9 WHERE id = 1")     //nolint:errcheck
	s.Exec("DELETE FROM t WHERE id = 2")           //nolint:errcheck
	s.Exec("ROLLBACK")                             //nolint:errcheck
	indexConsistent(t, db, "t")

	// Original keys are live again, transaction keys are free.
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 0)"); err == nil {
		t.Fatal("key 1 must exist again after rollback")
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (3, 0)"); err != nil {
		t.Fatalf("key 3 must be free after rollback: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (9, 0)"); err != nil {
		t.Fatalf("key 9 must be free after rollback: %v", err)
	}
	indexConsistent(t, db, "t")
}

func TestPKIndexSurvivesRestore(t *testing.T) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY)")
	db.MustExec("INSERT INTO t (id) VALUES (1), (2), (3)")
	db2 := NewDB()
	if err := db2.Restore(db.Snapshot()); err != nil {
		t.Fatal(err)
	}
	indexConsistent(t, db2, "t")
	if _, err := db2.Exec("INSERT INTO t (id) VALUES (2)"); err == nil {
		t.Fatal("restored index must enforce uniqueness")
	}
}

// TestPKIndexRandomizedProperty drives a random mutation sequence
// (inserts, deletes, key-moving updates, rollbacks) and checks the index
// against a full scan after every step.
func TestPKIndexRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, v INTEGER)")
	live := map[int]bool{}
	nextFree := func() int {
		for {
			k := rng.Intn(200)
			if !live[k] {
				return k
			}
		}
	}
	anyLive := func() (int, bool) {
		for k := range live {
			return k, true
		}
		return 0, false
	}
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(4); op {
		case 0: // insert
			k := nextFree()
			db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", k, step)
			live[k] = true
		case 1: // delete
			if k, ok := anyLive(); ok {
				db.MustExec("DELETE FROM t WHERE id = ?", k)
				delete(live, k)
			}
		case 2: // key-moving update
			if k, ok := anyLive(); ok {
				nk := nextFree()
				db.MustExec("UPDATE t SET id = ? WHERE id = ?", nk, k)
				delete(live, k)
				live[nk] = true
			}
		case 3: // transaction that rolls back
			s := db.NewSession()
			s.Exec("BEGIN") //nolint:errcheck
			k := nextFree()
			s.Exec("INSERT INTO t (id, v) VALUES (?, 0)", k) //nolint:errcheck
			if lk, ok := anyLive(); ok {
				s.Exec("DELETE FROM t WHERE id = ?", lk) //nolint:errcheck
			}
			s.Exec("ROLLBACK") //nolint:errcheck
			s.Close()
		}
		indexConsistent(t, db, "t")
	}
	// Final cross-check: count matches the model.
	res, _ := db.Query("SELECT count(*) FROM t")
	if int(res.Rows[0][0].Int()) != len(live) {
		t.Fatalf("row count %d != model %d", res.Rows[0][0].Int(), len(live))
	}
}

func BenchmarkInsertWithPKAt10k(b *testing.B) {
	db := NewDB()
	db.MustExec("CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY)")
	for i := 0; i < 10000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t (id) VALUES (%d)", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t (id) VALUES (?)", 10000+i); err != nil {
			b.Fatal(err)
		}
	}
}
