package sqlmini

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (cols...).
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Cols        []ColumnDef
}

// ColumnDef describes one column in a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       Type
	NotNull    bool
	PrimaryKey bool
	// References names "table(column)" for documentation-grade foreign
	// keys; enforced on INSERT when set.
	RefTable  string
	RefColumn string
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// IndexKind selects a secondary index's backing structure: a hash map
// (equality point-lookups only) or an ordered key list (equality seeks
// plus range scans).
type IndexKind uint8

// Index kinds. Hash is the default for CREATE INDEX without a USING
// clause; ORDERED (alias BTREE) selects the ordered structure.
const (
	IndexHash IndexKind = iota
	IndexOrdered
)

// String returns the USING-clause spelling of the kind.
func (k IndexKind) String() string {
	if k == IndexOrdered {
		return "ORDERED"
	}
	return "HASH"
}

// CreateIndexStmt is CREATE INDEX [IF NOT EXISTS] name ON table
// (col[, col...]) [USING HASH|ORDERED|BTREE]. Indexes are non-unique;
// composite (multi-column) indexes must be ORDERED. The planner
// (plan.go) uses hash indexes for equality point-lookups and ordered
// indexes additionally for range scans and prefix probes.
type CreateIndexStmt struct {
	Name        string
	Table       string
	Cols        []string
	IfNotExists bool
	Kind        IndexKind
}

// InsertStmt is INSERT INTO t (cols) VALUES (...),(...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// SelectStmt is SELECT exprs FROM t [WHERE] [ORDER BY] [LIMIT].
type SelectStmt struct {
	// Items is the select list; Star means SELECT *.
	Items []SelectItem
	Star  bool
	Table string
	Where Expr // nil means no WHERE
	Order []OrderKey
	Limit int // -1 means no LIMIT
}

// SelectItem is one select-list expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// UpdateStmt is UPDATE t SET c=e,... [WHERE].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM t [WHERE].
type DeleteStmt struct {
	Table string
	Where Expr
}

// BeginStmt, CommitStmt, RollbackStmt are transaction control.
type (
	// BeginStmt is BEGIN.
	BeginStmt struct{}
	// CommitStmt is COMMIT.
	CommitStmt struct{}
	// RollbackStmt is ROLLBACK.
	RollbackStmt struct{}
)

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*SelectStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

// Expr is any expression node.
type Expr interface{ expr() }

// LiteralExpr is a constant value.
type LiteralExpr struct{ Val Value }

// ColumnExpr references a column, optionally qualified.
type ColumnExpr struct{ Name string }

// ParamExpr is a named ($name) or positional (?) parameter. For
// positional parameters Name is empty and Index is the 0-based position.
type ParamExpr struct {
	Name  string
	Index int
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op    string // "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "+", "-", "*", "/"
	L, R  Expr
	NotOp bool // NOT LIKE / NOT IN
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT", "-"
	E  Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
	Not    bool
}

// InExpr is expr [NOT] IN (e1, e2, ...).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// CallExpr is a function call: now(), lower(x), count(*), ...
type CallExpr struct {
	Fn   string // upper-cased
	Args []Expr
	Star bool // count(*)
}

func (*LiteralExpr) expr() {}
func (*ColumnExpr) expr()  {}
func (*ParamExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
func (*InExpr) expr()      {}
func (*CallExpr) expr()    {}
