package sqlmini

import (
	"fmt"
	"testing"
	"time"
)

// maxChainLen walks every row's version chain in every table and
// returns the longest one found.
func maxChainLen(db *DB) int {
	max := 0
	for _, t := range db.sortedTables() {
		t.latch.Lock()
		for _, r := range t.rows.Load().snapshot() {
			n := 0
			for v := r.v.Load(); v != nil; v = v.prev.Load() {
				n++
			}
			if n > max {
				max = n
			}
		}
		t.latch.Unlock()
	}
	return max
}

// TestSweeperConvergesIdleChains pins the sweeper's reason to exist:
// GC piggybacks on writers, so a write burst followed by a read-only
// period leaves version chains pinned forever — until a background
// sweep reclaims them down to length 1.
func TestSweeperConvergesIdleChains(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE kv (k INT PRIMARY KEY, v INT)`)
	for k := 0; k < 4; k++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO kv (k, v) VALUES (%d, 0)`, k))
	}
	// A write burst small enough that the writer-side threshold
	// (maybeGCLocked fires at 128 queued items) never trips: the
	// chains it builds would survive indefinitely without a sweeper.
	for i := 1; i <= 20; i++ {
		for k := 0; k < 4; k++ {
			mustExec(t, db, fmt.Sprintf(`UPDATE kv SET v = %d WHERE k = %d`, i, k))
		}
	}
	if got := maxChainLen(db); got < 21 {
		t.Fatalf("expected long version chains after the burst, max = %d", got)
	}

	stop := db.StartSweeper(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for maxChainLen(db) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("chains did not converge to length 1: max = %d", maxChainLen(db))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The sweep must reclaim history, not state: every row still reads
	// its last committed value.
	res, err := db.Query(`SELECT k, v FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows lost by sweep: got %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].Int() != 20 {
			t.Fatalf("row %d lost its final value: got %d, want 20", row[0].Int(), row[1].Int())
		}
	}
	stop()
	stop() // idempotent
}

func mustExec(t *testing.T, db *DB, sql string) {
	t.Helper()
	if _, err := db.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}
