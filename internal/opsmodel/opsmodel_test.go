package opsmodel

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPaperStepCounts(t *testing.T) {
	// §2: seven install steps, ten update steps per client.
	if got := len(TraditionalInstall().Steps); got != 7 {
		t.Errorf("traditional install steps = %d, want 7", got)
	}
	if got := len(TraditionalUpdate().Steps); got != 10 {
		t.Errorf("traditional update steps = %d, want 10 (steps 8-10 incl. repeat of 1-7)", got)
	}
	// §3.2: four install steps, one update step.
	if got := len(DrivolutionInstall().Steps); got != 4 {
		t.Errorf("drivolution install steps = %d, want 4", got)
	}
	if got := len(DrivolutionUpdate().Steps); got != 1 {
		t.Errorf("drivolution update steps = %d, want 1", got)
	}
}

func TestUpdateScaling(t *testing.T) {
	// "The upgrade process drops from ten steps per client application
	// to one simple insert operation on the Drivolution Server" (§3.2).
	const clients = 100
	trad := CountFor(TraditionalUpdate(), clients)
	drv := CountFor(DrivolutionUpdate(), clients)
	if trad.Steps != 10*clients {
		t.Errorf("traditional steps for %d clients = %d, want %d", clients, trad.Steps, 10*clients)
	}
	if drv.Steps != 1 {
		t.Errorf("drivolution steps = %d, want 1 regardless of client count", drv.Steps)
	}
	// Traditional updates stop every application; Drivolution stops none.
	if trad.Disruptive != clients {
		t.Errorf("traditional disruptive = %d, want %d", trad.Disruptive, clients)
	}
	if drv.Disruptive != 0 {
		t.Errorf("drivolution disruptive = %d, want 0", drv.Disruptive)
	}
}

func TestScalingProperty(t *testing.T) {
	// Drivolution update cost is constant in client count; traditional
	// is linear. Check across arbitrary client counts.
	prop := func(n uint8) bool {
		clients := int(n%100) + 1
		trad := CountFor(TraditionalUpdate(), clients)
		drv := CountFor(DrivolutionUpdate(), clients)
		return trad.Steps == 10*clients && drv.Steps == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Verbatim(t *testing.T) {
	rows := Table5()
	if len(rows) != 2 {
		t.Fatalf("Table 5 rows = %d", len(rows))
	}
	if rows[0].Task != "Accessing a new database" || len(rows[0].Current) != 6 || len(rows[0].Drivolution) != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Task != "Database driver upgrade" || len(rows[1].Current) != 6 || len(rows[1].Drivolution) != 2 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}

func TestTable5ProceduresScale(t *testing.T) {
	procs := Table5Procedures()
	access := procs["Accessing a new database"]
	// 2 DBAs reproduce the paper's counts: 6 current vs 2 drivolution.
	if got := CountFor(access[0], 2).Steps; got != 6 {
		t.Errorf("current access steps for 2 DBAs = %d, want 6", got)
	}
	if got := CountFor(access[1], 2).Steps; got != 2 {
		t.Errorf("drivolution access steps for 2 DBAs = %d, want 2", got)
	}
	upgrade := procs["Database driver upgrade"]
	if got := CountFor(upgrade[0], 2).Steps; got != 6 {
		t.Errorf("current upgrade steps for 2 DBAs = %d, want 6", got)
	}
	// Drivolution upgrade steps are central: constant at 2 (insert +
	// revoke) no matter how many DBAs.
	if got := CountFor(upgrade[1], 50).Steps; got != 2 {
		t.Errorf("drivolution upgrade steps for 50 DBAs = %d, want 2", got)
	}
}

func TestRunExecutesBoundActions(t *testing.T) {
	ran := 0
	p := Procedure{
		Name: "test",
		Steps: []Step{
			{Desc: "central", Action: func() error { ran++; return nil }},
			{Desc: "per-client", PerClient: true, Action: func() error { ran++; return nil }},
			{Desc: "unbound", PerClient: true},
		},
	}
	c, err := Run(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1+3 {
		t.Errorf("ran = %d, want 4", ran)
	}
	if c.Steps != 1+3+3 {
		t.Errorf("steps = %d, want 7", c.Steps)
	}
}

func TestRunPropagatesFailure(t *testing.T) {
	boom := errors.New("boom")
	p := Procedure{Steps: []Step{{Desc: "fails", Action: func() error { return boom }}}}
	if _, err := Run(p, 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
