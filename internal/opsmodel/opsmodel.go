// Package opsmodel models database-driver lifecycle procedures as
// explicit step lists, reproducing the paper's operational argument:
// the §2 state-of-the-art lifecycle (7 install steps, 10 update steps
// per client), the §3.2 Drivolution lifecycle (4 install steps, 1 update
// step total), and Table 5's DBA procedures. The experiment harness
// binds steps to live actions and counts what actually executed, so the
// step counts in EXPERIMENTS.md are measured, not transcribed.
package opsmodel

import "fmt"

// Actor performs a step.
type Actor string

// Actors.
const (
	// ActorOps is client-machine operations staff (manual work on each
	// application host).
	ActorOps Actor = "ops"
	// ActorDBA is the database administrator (central).
	ActorDBA Actor = "dba"
	// ActorSystem is automatic (no human in the loop).
	ActorSystem Actor = "system"
)

// Step is one lifecycle action.
type Step struct {
	// Desc is the paper's wording for the step.
	Desc string
	// Actor performs it.
	Actor Actor
	// Manual steps need a human; automatic ones don't.
	Manual bool
	// PerClient steps repeat for every client application/machine.
	PerClient bool
	// Disruptive steps stop or restart the application.
	Disruptive bool
	// Action, when bound, executes the step against the live system so
	// experiments count real work. Unbound steps still count.
	Action func() error
}

// Procedure is a named list of steps.
type Procedure struct {
	Name  string
	Steps []Step
}

// TraditionalInstall is the paper's §2 lifecycle, steps 1–7.
func TraditionalInstall() Procedure {
	return Procedure{
		Name: "traditional install",
		Steps: []Step{
			{Desc: "Get an appropriate driver package from vendor", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Install the driver on the client application machine", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Configure the client application to use the driver", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Start the application and load the database driver", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Connect to database and check protocol compatibility", Actor: ActorSystem, PerClient: true},
			{Desc: "Authenticate", Actor: ActorSystem, PerClient: true},
			{Desc: "Execute requests", Actor: ActorSystem, PerClient: true},
		},
	}
}

// TraditionalUpdate is the §2 update: steps 8–10, where step 10 is
// "repeat steps 1 through 7". The paper counts this as ten steps per
// client (§3.2); we keep that arithmetic by modelling step 10's
// coordination (scheduling the reinstall window) as its own manual step
// ahead of the seven replayed install actions.
func TraditionalUpdate() Procedure {
	install := TraditionalInstall()
	steps := []Step{
		{Desc: "Stop the application", Actor: ActorOps, Manual: true, PerClient: true, Disruptive: true},
		{Desc: "Uninstall old driver", Actor: ActorOps, Manual: true, PerClient: true},
		{Desc: "Repeat steps 1 through 7 (schedule and coordinate the reinstall)", Actor: ActorOps, Manual: true, PerClient: true},
	}
	steps = append(steps, install.Steps...)
	return Procedure{Name: "traditional update", Steps: steps}
}

// DrivolutionInstall is the §3.2 lifecycle, steps 1–4.
func DrivolutionInstall() Procedure {
	return Procedure{
		Name: "drivolution install",
		Steps: []Step{
			{Desc: "Get an appropriate Drivolution bootloader", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Install the Drivolution bootloader on the client application machine", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Configure client application to use Drivolution bootloader", Actor: ActorOps, Manual: true, PerClient: true},
			{Desc: "Start the application", Actor: ActorOps, Manual: true, PerClient: true},
		},
	}
}

// DrivolutionUpdate is the §3.2 single-step upgrade: "Add new driver to
// the Drivolution Server". It is central (not per client) and
// non-disruptive.
func DrivolutionUpdate() Procedure {
	return Procedure{
		Name: "drivolution update",
		Steps: []Step{
			{Desc: "Add new driver to the Drivolution Server", Actor: ActorDBA, Manual: true},
		},
	}
}

// Count summarizes a procedure executed against n clients.
type Count struct {
	Procedure  string
	Clients    int
	Steps      int // total step executions
	Manual     int // of which need a human
	Disruptive int // of which stop/restart an application
}

// CountFor expands a procedure over n clients: per-client steps repeat n
// times, central steps once.
func CountFor(p Procedure, clients int) Count {
	c := Count{Procedure: p.Name, Clients: clients}
	for _, s := range p.Steps {
		times := 1
		if s.PerClient {
			times = clients
		}
		c.Steps += times
		if s.Manual {
			c.Manual += times
		}
		if s.Disruptive {
			c.Disruptive += times
		}
	}
	return c
}

// Run executes every bound Action of the procedure over n clients,
// returning the realized count. Unbound actions count without running.
func Run(p Procedure, clients int) (Count, error) {
	c := CountFor(p, clients)
	for _, s := range p.Steps {
		times := 1
		if s.PerClient {
			times = clients
		}
		if s.Action == nil {
			continue
		}
		for i := 0; i < times; i++ {
			if err := s.Action(); err != nil {
				return c, fmt.Errorf("opsmodel: step %q: %w", s.Desc, err)
			}
		}
	}
	return c, nil
}

// Table5Row is one task row of the paper's Table 5.
type Table5Row struct {
	Task        string
	Current     []string // current state-of-the-art steps
	Drivolution []string // Drivolution steps
}

// Table5 returns the paper's Table 5 verbatim: driver procedures for a
// heterogeneous database with two DBAs.
func Table5() []Table5Row {
	return []Table5Row{
		{
			Task: "Accessing a new database",
			Current: []string{
				"Download drivers for DBA1 platform",
				"Configure DBA1 console to find driver",
				"DBA1 connects to db",
				"Download drivers for DBA2 platform",
				"Configure DBA2 console to find driver",
				"DBA2 connects to db",
			},
			Drivolution: []string{
				"DBA1 connects to db",
				"DBA2 connects to db",
			},
		},
		{
			Task: "Database driver upgrade",
			Current: []string{
				"Copy appropriate driver for DBA1 platform",
				"Remove DBA1 old driver",
				"Restart DBA1 console",
				"Copy right driver for DBA2 platform",
				"Remove DBA2 old driver",
				"Restart DBA2 console",
			},
			Drivolution: []string{
				"Insert drivers in database",
				"Revoke old driver",
			},
		},
	}
}

// Table5Procedures renders Table 5 rows as countable Procedures, with
// per-DBA steps marked PerClient so they scale with DBA count.
func Table5Procedures() map[string][2]Procedure {
	out := make(map[string][2]Procedure)
	for _, row := range Table5() {
		cur := Procedure{Name: row.Task + " (current)"}
		// Table 5 enumerates both DBAs explicitly; a countable procedure
		// lists per-DBA steps once and scales them.
		perDBA := len(row.Current) / 2
		for _, d := range row.Current[:perDBA] {
			cur.Steps = append(cur.Steps, Step{Desc: d, Actor: ActorDBA, Manual: true, PerClient: true})
		}
		drv := Procedure{Name: row.Task + " (drivolution)"}
		for _, d := range row.Drivolution {
			perClient := d == "DBA1 connects to db" || d == "DBA2 connects to db"
			if perClient {
				// "connect" repeats per DBA; collapse the two listed
				// connects into one scaled step.
				if len(drv.Steps) > 0 && drv.Steps[len(drv.Steps)-1].PerClient {
					continue
				}
				drv.Steps = append(drv.Steps, Step{Desc: "DBA connects to db", Actor: ActorDBA, Manual: true, PerClient: true})
				continue
			}
			drv.Steps = append(drv.Steps, Step{Desc: d, Actor: ActorDBA, Manual: true})
		}
		out[row.Task] = [2]Procedure{cur, drv}
	}
	return out
}
