package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// callee resolves the *types.Func a call expression invokes: a
// package-level function, a method on a concrete receiver, or an
// interface method. Calls through function values return nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcKey returns a stable cross-package identity string for a
// function: "pkgpath.Name" for package functions, "pkgpath.Recv.Name"
// for methods (pointer receivers normalized away). Facts key on these
// strings because objects re-imported from export data do not compare
// equal to the syntax-derived originals.
func funcKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return pkg + "." + recvTypeName(sig.Recv().Type()) + "." + f.Name()
	}
	return pkg + "." + f.Name()
}

// recvTypeName extracts the bare receiver type name from a (possibly
// pointer) receiver type.
func recvTypeName(t types.Type) string {
	switch t := t.(type) {
	case *types.Pointer:
		return recvTypeName(t.Elem())
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return "interface"
	}
	s := t.String()
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// declKeyForFuncDecl is funcKey for a declaration in the package being
// analyzed.
func declKeyForFuncDecl(info *types.Info, pkgPath string, fd *ast.FuncDecl) string {
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		return funcKey(obj)
	}
	// Fall back to a syntactic key; only reachable on type errors.
	return pkgPath + "." + fd.Name.Name
}

// funcPkgPath returns the defining package path of f ("" for builtins).
func funcPkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// inspectSkippingFuncLits walks n, calling fn for every node, but does
// not descend into function literals: analyzers that model
// straight-line execution handle closures separately (they run at an
// unknown later time).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
