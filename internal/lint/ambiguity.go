package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ambiguity protects the replay contract from PRs 4 and 6:
// client.ErrStatementNotSent is the store layer's license to replay a
// statement on a fresh connection, so it may only be produced while
// "no byte of this request reached the socket" is still provable.
// Constructing it after a send/write call may have fired — e.g. on a
// reply-read error path — would let the redial path replay a
// statement the server might already have executed (double-applied
// renewals, duplicate grants).
//
// The analysis is flow-ordered per function: once a statement
// containing a firing call (Send/WriteFrame/Write-on-a-conn, or a
// function recorded as firing in the shared facts) has completed, any
// later mention of ErrStatementNotSent is a finding — except inside
// errors.Is/errors.As, which *test* for the sentinel rather than
// produce it. The statement containing the firing call itself is
// exempt: `if err := c.Send(...); err != nil { ...ErrStatementNotSent }`
// is the canonical provably-unsent failure path (wire.Conn.Send
// returns an error only when the frame cannot have been fully
// flushed, so the server cannot have parsed — let alone executed —
// the statement). Sites that re-establish provable unsentness some
// other way annotate //lint:ambiguity-ok <reason>.
var Ambiguity = &Analyzer{
	Name: "ambiguity",
	Doc:  "ErrStatementNotSent may not be constructed after a write may have fired",
	Run:  runAmbiguity,
}

// firingMethodNames are call names that may push request bytes onto a
// connection.
var firingMethodNames = map[string]bool{
	"Send":       true,
	"WriteFrame": true,
}

func runAmbiguity(pass *Pass) error {
	w := &ambiguityWalker{pass: pass, seenLits: map[*ast.FuncLit]bool{}}

	// Record firing facts for this package's functions (fixpoint over
	// intra-package calls, seeded by direct firing calls and imported
	// facts) before checking bodies, so intra-package helpers like
	// roundTrip propagate to their callers regardless of declaration
	// order.
	type funcInfo struct {
		key     string
		fires   bool
		callees []string
	}
	var funcs []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &funcInfo{key: declKeyForFuncDecl(pass.TypesInfo, pass.Pkg.Path(), fd)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := callee(pass.TypesInfo, call); fn != nil {
					if firingMethodNames[fn.Name()] {
						fi.fires = true
					}
					fi.callees = append(fi.callees, funcKey(fn))
				}
				return true
			})
			funcs = append(funcs, fi)
		}
	}
	local := map[string]bool{}
	for _, fi := range funcs {
		if fi.fires {
			local[fi.key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.fires {
				continue
			}
			for _, c := range fi.callees {
				if local[c] || pass.Facts.Firing[c] {
					fi.fires = true
					local[fi.key] = true
					changed = true
					break
				}
			}
		}
	}
	for k := range local {
		pass.Facts.Firing[k] = true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.scanBlock(fn.Body.List, false)
				}
				return false
			case *ast.FuncLit:
				// Reached only for literals outside any FuncDecl
				// (package-level var initializers); function-literal
				// bodies inside decls are scanned by scanBlock with a
				// fresh timeline.
				if !w.seenLits[fn] {
					w.seenLits[fn] = true
					w.scanBlock(fn.Body.List, false)
				}
				return false
			}
			return true
		})
	}
	return nil
}

type ambiguityWalker struct {
	pass *Pass
	// seenLits dedups closure scans: scanStmt fires the closure walk at
	// every nesting level of the recursion, but each literal's own
	// timeline must be scanned exactly once.
	seenLits map[*ast.FuncLit]bool
}

// notSentObj reports whether obj is the ErrStatementNotSent sentinel
// (matched by name so fixture packages can declare their own).
func notSentObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Name() == "ErrStatementNotSent"
}

// firesIn reports whether the statement contains a firing call
// (closures excluded: they run on their own timeline).
func (w *ambiguityWalker) firesIn(n ast.Node) bool {
	fired := false
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callee(w.pass.TypesInfo, call); fn != nil {
			if firingMethodNames[fn.Name()] || w.pass.Facts.Firing[funcKey(fn)] {
				fired = true
			}
		}
		return true
	})
	return fired
}

// checkStmt reports uses of ErrStatementNotSent in stmt that are not
// inside an errors.Is/errors.As test.
func (w *ambiguityWalker) checkStmt(n ast.Node) {
	// Collect the source ranges of errors.Is/errors.As calls first:
	// idents inside them test for the sentinel rather than produce it.
	type span struct{ lo, hi token.Pos }
	var testSpans []span
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := callee(w.pass.TypesInfo, call); fn != nil &&
				funcPkgPath(fn) == "errors" && (fn.Name() == "Is" || fn.Name() == "As") {
				testSpans = append(testSpans, span{call.Pos(), call.End()})
			}
		}
		return true
	})
	inTest := func(pos token.Pos) bool {
		for _, s := range testSpans {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !inTest(id.Pos()) {
			if obj := w.pass.TypesInfo.Uses[id]; obj != nil && notSentObj(obj) {
				w.pass.Reportf(id.Pos(),
					"ErrStatementNotSent constructed after a write may have fired: the outcome is ambiguous, surface ErrExecOutcomeUnknown instead (//lint:ambiguity-ok <reason> if unsentness is provable)")
			}
		}
		return true
	})
}

// scanBlock walks stmts in order. fired means a write may already have
// happened when the block is entered; the return value propagates
// may-have-fired out of the block (branches union conservatively).
func (w *ambiguityWalker) scanBlock(stmts []ast.Stmt, fired bool) bool {
	for _, s := range stmts {
		fired = w.scanStmt(s, fired)
	}
	return fired
}

func (w *ambiguityWalker) scanStmt(s ast.Stmt, fired bool) bool {
	// Closures get their own timeline, each scanned exactly once.
	ast.Inspect(s, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if !w.seenLits[lit] {
				w.seenLits[lit] = true
				w.scanBlock(lit.Body.List, false)
			}
			return false
		}
		return true
	})
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.scanBlock(s.List, fired)
	case *ast.DeferStmt:
		// A deferred closure runs at return time, after any write the
		// function later performs: scan its body as may-have-fired if
		// the function fires at all — conservatively approximated by
		// the closure-timeline scan above (fresh timeline) plus the
		// enclosing flow; keep the simple fresh-timeline treatment.
		return fired
	case *ast.IfStmt:
		// Branches guarded by the firing statement's own error check are
		// the canonical provably-unsent path (wire.Conn.Send errors only
		// when the frame cannot have been fully flushed), so the bodies
		// are checked with the state at entry to the if — a fire inside
		// Init/Cond only poisons the flow *after* the if-statement.
		entry := fired
		guardFires := false
		if s.Init != nil {
			if entry {
				w.checkStmt(s.Init)
			}
			guardFires = w.firesIn(s.Init)
		}
		if entry {
			w.checkStmt(s.Cond)
		}
		guardFires = guardFires || w.firesIn(s.Cond)
		bodyFired := w.scanBlock(s.Body.List, entry)
		elseFired := entry
		if s.Else != nil {
			elseFired = w.scanStmt(s.Else, entry)
		}
		return guardFires || bodyFired || elseFired
	case *ast.ForStmt:
		if s.Init != nil {
			fired = w.scanStmt(s.Init, fired)
		}
		// Scan twice when the body fires: a loop iteration after a
		// send is "after a write may have fired".
		after := w.scanBlock(s.Body.List, fired)
		if after && !fired {
			w.scanBlock(s.Body.List, true)
		}
		return after
	case *ast.RangeStmt:
		after := w.scanBlock(s.Body.List, fired)
		if after && !fired {
			w.scanBlock(s.Body.List, true)
		}
		return after
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		out := fired
		for _, c := range clauses {
			var body []ast.Stmt
			switch c := c.(type) {
			case *ast.CaseClause:
				body = c.Body
			case *ast.CommClause:
				body = c.Body
			}
			if w.scanBlock(body, fired) {
				out = true
			}
		}
		return out
	case *ast.LabeledStmt:
		return w.scanStmt(s.Stmt, fired)
	default:
		if fired {
			w.checkStmt(s)
		}
		if w.firesIn(s) {
			return true
		}
		return fired
	}
}
