// Fixture for the deadlinecheck analyzer: unarmed dials are findings;
// direct arming, arming through a helper, the //lint:deadline-arming
// declaration, and //lint:deadline-ok suppression are not.
package fixture

import (
	"net"
	"time"
)

func unarmedDial() net.Conn {
	c, _ := net.Dial("tcp", "localhost:0") // want "deadlinecheck: net.Dial produces a connection"
	return c
}

func unarmedAccept(ln net.Listener) net.Conn {
	c, _ := ln.Accept() // want "deadlinecheck: net.Accept produces a connection"
	return c
}

func armedDirectly() {
	c, err := net.Dial("tcp", "localhost:0")
	if err != nil {
		return
	}
	_ = c.SetDeadline(time.Now().Add(time.Second))
	_ = c.Close()
}

func armIt(c net.Conn) {
	if c != nil {
		_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	}
}

func armedThroughHelper() {
	c, _ := net.Dial("tcp", "localhost:0")
	armIt(c)
}

// trustedWrapper models wire.NewConn: the wrapper's methods arm
// per-operation deadlines, so the declaration vouches for it.
//
//lint:deadline-arming
func trustedWrapper() net.Conn {
	c, _ := net.Dial("tcp", "localhost:0")
	return c
}

func armedThroughDeclaredRoot() {
	_ = trustedWrapper()
}

func deliberatelyUnbounded() {
	//lint:deadline-ok fixture: probe connection, closed before any I/O
	c, _ := net.Dial("tcp", "localhost:0")
	if c != nil {
		_ = c.Close()
	}
}
