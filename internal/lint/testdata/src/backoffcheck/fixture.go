// Fixture for the backoffcheck analyzer: positive (raw sleep),
// negative (non-time Sleep), and directive-suppressed cases.
package fixture

import "time"

func rawSleep() {
	time.Sleep(time.Second) // want "backoffcheck: raw time.Sleep in production code"
}

func rawSleepInLoop() {
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond) // want "backoffcheck: raw time.Sleep"
	}
}

func annotatedSleep() {
	//lint:sleep-ok fixture: deliberate pacing with a documented reason
	time.Sleep(time.Second)
}

func sameLineAnnotated() {
	time.Sleep(time.Second) //lint:sleep-ok fixture: same-line suppression also counts
}

type pacer struct{}

func (pacer) Sleep(d time.Duration) {}

func notTimeSleep() {
	var p pacer
	p.Sleep(time.Second) // a Sleep that is not time.Sleep: no finding
}
