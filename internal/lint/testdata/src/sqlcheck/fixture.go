// Fixture for the sqlcheck analyzer, type-checked against the real
// sqlmini package: constant SQL reaching Exec-family sinks must parse,
// resolve against the core schema, and plan to an index.
package fixture

import "repro/internal/sqlmini"

func doesNotParse(db *sqlmini.DB) {
	_, _ = db.Exec("SELEC lease_id FORM leases") // want "sqlcheck: SQL does not parse"
}

func unknownTable(db *sqlmini.DB) {
	_, _ = db.Exec("SELECT x FROM information_schema.nonexistent") // want "sqlcheck: unknown schema table"
}

func unknownColumn(db *sqlmini.DB) {
	_, _ = db.Exec("SELECT no_such_col FROM information_schema.leases") // want `sqlcheck: unknown column "no_such_col"`
}

func fullScan(db *sqlmini.DB) {
	// released is not indexed: the planner degrades to a full scan.
	_, _ = db.Exec("SELECT lease_id FROM information_schema.leases WHERE released = $r") // want "sqlcheck: hot-path statement plans as"
}

func indexedPlans(db *sqlmini.DB) {
	// Primary key, secondary index, and composite index lookups all
	// plan clean against the embedded schema: no findings.
	_, _ = db.Exec("SELECT lease_id FROM information_schema.leases WHERE lease_id = $id")
	_, _ = db.Exec("SELECT lease_id FROM information_schema.leases WHERE driver_id = $d")
	_, _ = db.Exec("SELECT lease_id FROM information_schema.leases WHERE driver_id = $d AND expires_at < $t")
}

func constConcat(db *sqlmini.DB) {
	// Constant folding resolves through consts and concatenation.
	const table = "information_schema.leases"
	_, _ = db.Exec("SELECT bogus FROM " + table) // want `sqlcheck: unknown column "bogus"`
}

func annotatedScan(db *sqlmini.DB) {
	//lint:scan-ok fixture: deliberate whole-table listing
	_, _ = db.Exec("SELECT lease_id FROM information_schema.leases ORDER BY lease_id")
}

func scratchTableParseOnly(db *sqlmini.DB) {
	// Non-schema tables are parse-checked only: no plan findings.
	_, _ = db.Exec("SELECT k FROM scratch WHERE k = $k")
	_, _ = db.Exec("SELEC broken") // want "sqlcheck: SQL does not parse"
}

func batchLiteral() []sqlmini.BatchStmt {
	return []sqlmini.BatchStmt{
		{SQL: "UPDATE information_schema.leases SET released = $rel WHERE lease_id = $id"},
		{SQL: "SELECT typo_col FROM information_schema.drivers"}, // want `sqlcheck: unknown column "typo_col"`
	}
}

func runtimeSQLIsInvisible(db *sqlmini.DB, table string) {
	// Non-constant SQL cannot be checked statically: no finding.
	_, _ = db.Exec("SELECT lease_id FROM " + table)
}
