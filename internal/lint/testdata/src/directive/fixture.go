// Fixture for the directive analyzer: the //lint: vocabulary itself
// must be well-formed, so stale or reasonless escape hatches are
// findings rather than silently widening holes. Findings anchor to the
// directive comment's own line, so expectations use the want-offset
// form from the following line.
package fixture

//lint:bogus-verb something
// want-1 "directive: unknown //lint: directive"

//lint:ignore
// want-1 "directive: //lint:ignore needs an analyzer name and a reason"

//lint:ignore nosuchanalyzer because reasons
// want-1 `directive: //lint:ignore names unknown analyzer "nosuchanalyzer"`

//lint:ignore sqlcheck
// want-1 "directive: //lint:ignore sqlcheck needs a reason"

//lint:sleep-ok
// want-1 "directive: //lint:sleep-ok needs a reason"

//lint:latch-order OnlyOneLock
// want-1 "directive: //lint:latch-order wants"

//lint:latch-leaf
// want-1 "directive: //lint:latch-leaf wants one or more lock names"

//lint:deadline-exempt
// want-1 "directive: //lint:deadline-exempt needs a reason"

//lint:ignore sqlcheck a well-formed ignore with a reason is fine

//lint:deadline-arming
func wellFormed() {}
