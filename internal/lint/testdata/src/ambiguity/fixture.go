// Fixture for the ambiguity analyzer: ErrStatementNotSent before any
// write and in the firing statement's own error branch is legal; after
// a send may have fired it is a finding unless errors.Is-tested or
// annotated.
package fixture

import (
	"errors"
	"fmt"
)

// ErrStatementNotSent mirrors client.ErrStatementNotSent; the analyzer
// matches the sentinel by name so fixtures stay self-contained.
var ErrStatementNotSent = errors.New("statement not sent")

type conn struct{}

func (c *conn) Send(b []byte) error    { return nil }
func (c *conn) Recv() ([]byte, error)  { return nil, nil }
func (c *conn) Close() error           { return nil }

func beforeAnyWrite(c *conn, req []byte) error {
	if len(req) == 0 {
		return ErrStatementNotSent // nothing fired yet: no finding
	}
	return c.Send(req)
}

func canonicalErrorBranch(c *conn, req []byte) error {
	if err := c.Send(req); err != nil {
		// The firing statement's own error check: Send failing proves
		// the frame never flushed, so this is the provably-unsent path.
		return fmt.Errorf("%w: %v", ErrStatementNotSent, err)
	}
	return nil
}

func afterReplyError(c *conn, req []byte) error {
	if err := c.Send(req); err != nil {
		return err
	}
	if _, err := c.Recv(); err != nil {
		return fmt.Errorf("%w: %v", ErrStatementNotSent, err) // want "ambiguity: ErrStatementNotSent constructed after a write"
	}
	return nil
}

func testingIsExempt(c *conn, req []byte) error {
	err := c.Send(req)
	if errors.Is(err, ErrStatementNotSent) { // errors.Is tests, not produces: no finding
		return nil
	}
	return err
}

func firingHelper(c *conn, req []byte) error {
	return c.Send(req)
}

func throughHelper(c *conn, req []byte) error {
	if err := firingHelper(c, req); err != nil {
		return err
	}
	return ErrStatementNotSent // want "ambiguity: ErrStatementNotSent constructed after a write"
}

func annotatedSite(c *conn, req []byte) error {
	if err := c.Send(req); err != nil {
		return err
	}
	//lint:ambiguity-ok fixture: pretend unsentness is re-proven here
	return ErrStatementNotSent
}

func closureOwnTimeline(c *conn, req []byte) func() error {
	if err := c.Send(req); err != nil {
		return nil
	}
	return func() error {
		return ErrStatementNotSent // closures run on a fresh timeline: no finding
	}
}
