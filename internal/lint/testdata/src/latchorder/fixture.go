// Fixture for the latchorder analyzer: the declared order allows
// Outer→Inner nesting, forbids the inverse, forbids any nesting of a
// leaf lock, and flags same-field multi-latch acquisition unless the
// canonical sorted loop carries //lint:latch-ok.
package fixture

import "sync"

//lint:latch-order Outer.mu < Inner.mu
//lint:latch-leaf Leaf.mu

type Outer struct{ mu sync.Mutex }

type Inner struct{ mu sync.Mutex }

type Leaf struct{ mu sync.Mutex }

func declaredOrder(o *Outer, i *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock() // Outer.mu < Inner.mu is declared: no finding
	i.mu.Unlock()
}

func invertedOrder(o *Outer, i *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock() // want "latchorder: acquires Outer.mu while holding Inner.mu"
	o.mu.Unlock()
}

func leafNested(o *Outer, l *Leaf) {
	o.mu.Lock()
	defer o.mu.Unlock()
	l.mu.Lock() // want "latchorder: acquires Leaf.mu while holding Outer.mu"
	l.mu.Unlock()
}

func sequentialNotNested(o *Outer, i *Inner) {
	i.mu.Lock()
	i.mu.Unlock()
	o.mu.Lock() // Inner.mu already released: no finding
	o.mu.Unlock()
}

func multiLatch(a, b *Inner) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "same-field multi-latch acquisition"
	b.mu.Unlock()
}

func sortedLoop(tables []*Inner) {
	for _, t := range tables {
		//lint:latch-ok fixture: canonical sorted-name acquisition loop
		t.mu.Lock()
	}
	for _, t := range tables {
		t.mu.Unlock()
	}
}

func acquireInLoop(o *Outer, i *Inner) {
	for n := 0; n < 2; n++ {
		i.mu.Lock()
		o.mu.Lock() // want "latchorder: acquires Outer.mu while holding Inner.mu"
		o.mu.Unlock()
		i.mu.Unlock()
	}
}

func goroutineFreshStack(o *Outer, i *Inner) {
	i.mu.Lock()
	defer i.mu.Unlock()
	go func() {
		o.mu.Lock() // goroutine runs on its own stack: no finding
		o.mu.Unlock()
	}()
}
