// Package lint implements drivolint, the repository's static-analysis
// suite: a family of go/analysis-style analyzers that prove the
// codebase's hard-won runtime contracts at compile time. The golang.org/x
// analysis framework is deliberately not a dependency — the same
// Analyzer/Pass/Diagnostic shape is rebuilt here on the standard
// library's go/ast and go/types, with packages loaded from `go list
// -export` compiler export data (load.go), so the suite needs nothing
// beyond the Go toolchain.
//
// Analyzers (see docs/ARCHITECTURE.md, "Static analysis"):
//
//   - sqlcheck: every constant SQL string reaching an Exec/Query/
//     Prepare/Explain/batch sink must parse with the real sqlmini
//     parser, reference only known columns of the core schema tables,
//     and plan to an index (never a full scan) via the real planner.
//   - latchorder: nested mutex acquisitions must follow the partial
//     order each package declares with //lint:latch-order and
//     //lint:latch-leaf comments.
//   - backoffcheck: no raw time.Sleep in production code — failure
//     retries route through faultnet.Backoff.
//   - deadlinecheck: every net.Conn-producing dial/accept must sit on
//     a path that arms handshake/write/op deadlines.
//   - ambiguity: client.ErrStatementNotSent may not be constructed
//     after a write may have fired (the store-layer replay contract).
//   - directive: the //lint: directives themselves are well-formed.
//
// Suppression: a finding on line L is suppressed by a matching
// directive comment on line L or on a comment line immediately above.
// Every suppression requires a reason. The vocabulary:
//
//	//lint:ignore <analyzer> <reason>   suppress any analyzer by name
//	//lint:scan-ok <reason>             sugar for ignore sqlcheck
//	//lint:sleep-ok <reason>            sugar for ignore backoffcheck
//	//lint:deadline-ok <reason>         sugar for ignore deadlinecheck
//	//lint:latch-ok <reason>            sugar for ignore latchorder
//	//lint:ambiguity-ok <reason>        sugar for ignore ambiguity
//
// Declarations (consumed by specific analyzers, placed anywhere in the
// declaring package):
//
//	//lint:latch-order A < B [< C]      A may be held while acquiring B
//	//lint:latch-leaf A [B ...]         leaf locks: never nest with any
//	//lint:deadline-arming              (on a func) trusted to arm deadlines
//	//lint:deadline-exempt <reason>     package opts out of deadlinecheck
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings, filters, and
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one package: syntax, types,
// and the shared cross-package fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is shared across all packages of a run, which the driver
	// processes in dependency order: facts recorded while analyzing a
	// dependency are visible when its importers are analyzed.
	Facts *Facts

	dirs   *directiveIndex
	report func(Finding)
}

// Reportf records a finding at pos unless a matching suppression
// directive covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.dirs.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directives returns the package's directives with the given verb, for
// analyzers that consume declarations (latch-order, deadline-arming).
func (p *Pass) Directives(verb string) []Directive {
	var out []Directive
	for _, d := range p.dirs.all {
		if d.Verb == verb {
			out = append(out, d)
		}
	}
	return out
}

// A Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Facts is the cross-package state threaded through a run. Keys are
// stable function identity strings (funcKey), not types.Object values,
// because an object seen from syntax and the same object re-imported
// from export data do not compare equal.
type Facts struct {
	// Arming holds functions proven (or declared) to arm connection
	// deadlines; deadlinecheck both populates and consumes it.
	Arming map[string]bool
	// Firing holds functions that may have pushed request bytes onto a
	// connection; ambiguity both populates and consumes it.
	Firing map[string]bool
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{Arming: map[string]bool{}, Firing: map[string]bool{}}
}

// A Directive is one parsed //lint: comment.
type Directive struct {
	// Verb is the word after "lint:" — "ignore", "scan-ok",
	// "latch-order", ...
	Verb string
	// Args is the rest of the comment line, trimmed.
	Args string
	Pos  token.Pos
	// File is the file the directive appears in; Line its line.
	File string
	Line int
}

// suppressionAlias maps sugar verbs to the analyzer they suppress.
var suppressionAlias = map[string]string{
	"scan-ok":      "sqlcheck",
	"sleep-ok":     "backoffcheck",
	"deadline-ok":  "deadlinecheck",
	"latch-ok":     "latchorder",
	"ambiguity-ok": "ambiguity",
}

// declarationVerbs are directives that declare facts rather than
// suppress findings.
var declarationVerbs = map[string]bool{
	"latch-order":     true,
	"latch-leaf":      true,
	"deadline-arming": true,
	"deadline-exempt": true,
}

// directiveIndex holds a package's parsed //lint: comments, indexed
// for suppression lookup.
type directiveIndex struct {
	all []Directive
	// byLine maps file name -> line -> directives on that line.
	byLine map[string]map[int][]Directive
}

const directivePrefix = "//lint:"

// parseDirectives extracts every //lint: comment from files.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{byLine: map[string]map[int][]Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				body := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(body, " ")
				pos := fset.Position(c.Pos())
				d := Directive{
					Verb: strings.TrimSpace(verb),
					Args: strings.TrimSpace(args),
					Pos:  c.Pos(),
					File: pos.Filename,
					Line: pos.Line,
				}
				idx.all = append(idx.all, d)
				m := idx.byLine[d.File]
				if m == nil {
					m = map[int][]Directive{}
					idx.byLine[d.File] = m
				}
				m[d.Line] = append(m[d.Line], d)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding by analyzer at pos is covered
// by a directive on the same line or the line immediately above.
func (idx *directiveIndex) suppressed(analyzer string, pos token.Position) bool {
	m := idx.byLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.suppresses(analyzer) {
				return true
			}
		}
	}
	return false
}

// hasOnLines reports whether a directive with verb covers any of the
// given lines of file (declaration lookup, e.g. deadline-arming on a
// func decl).
func (idx *directiveIndex) hasOnLines(verb, file string, lines ...int) bool {
	m := idx.byLine[file]
	if m == nil {
		return false
	}
	for _, line := range lines {
		for _, d := range m[line] {
			if d.Verb == verb {
				return true
			}
		}
	}
	return false
}

// suppresses reports whether d silences the named analyzer (and has
// the mandatory reason; reasonless directives suppress nothing, and
// the directive analyzer flags them).
func (d Directive) suppresses(analyzer string) bool {
	if alias, ok := suppressionAlias[d.Verb]; ok {
		return alias == analyzer && d.Args != ""
	}
	if d.Verb == "ignore" {
		name, reason, _ := strings.Cut(d.Args, " ")
		return name == analyzer && strings.TrimSpace(reason) != ""
	}
	return false
}

// Run executes analyzers over pkgs (which must be in dependency
// order, as Load returns them) and returns the surviving findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := NewFacts()
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := parseDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
				dirs:      dirs,
				report:    func(f Finding) { findings = append(findings, f) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// Analyzers returns the full drivolint suite in a deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Directivecheck,
		Sqlcheck,
		Latchorder,
		Backoffcheck,
		Deadlinecheck,
		Ambiguity,
	}
}
