// Package linttest is the fixture harness for drivolint analyzers, a
// stdlib-only analogue of golang.org/x/tools' analysistest: a fixture
// is a directory of Go files under testdata/src annotated with
//
//	bad()  // want "regex matching the finding message"
//
// comments. The harness type-checks the fixture against the real
// repository's dependency universe (so fixtures can import
// repro/internal/sqlmini and friends), runs the analyzers, and fails
// the test on any unmatched expectation or unexpected finding — both
// directions, so fixtures prove positives, negatives, and
// directive-suppressed cases alike.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	progOnce sync.Once
	prog     *lint.Program
	progErr  error
	rootOnce sync.Once
	root     string
	rootErr  error
)

// RepoRoot resolves the module root directory (where go.mod lives),
// so tests work from any package directory.
func RepoRoot(t *testing.T) string {
	t.Helper()
	rootOnce.Do(func() {
		out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
		if err != nil {
			rootErr = fmt.Errorf("linttest: resolve module root: %w", err)
			return
		}
		root = strings.TrimSpace(string(out))
	})
	if rootErr != nil {
		t.Fatal(rootErr)
	}
	return root
}

// Program loads (once per test binary) the repository program whose
// export-data universe fixtures type-check against.
func Program(t *testing.T) *lint.Program {
	t.Helper()
	progOnce.Do(func() {
		prog, progErr = lint.Load(RepoRoot(t), "./...")
	})
	if progErr != nil {
		t.Fatal(progErr)
	}
	return prog
}

// wantRe extracts `// want "..."` expectations (double-quoted or
// backquoted, the latter for patterns containing quotes). The quoted
// part is a regular expression matched against "analyzer: message". An
// optional signed offset (`// want-1 "..."`) moves the expected line
// relative to the comment — needed when the finding anchors to a line
// that is itself a //lint: comment, which cannot also carry a want.
var wantRe = regexp.MustCompile("//\\s*want([+-]\\d+)?\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run type-checks the fixture directory and runs analyzers over it,
// comparing findings against the `// want` annotations in its files.
// dir is relative to the calling test's package directory (the usual
// "testdata/src/<name>" layout).
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	p := Program(t)
	pkg, err := p.LoadDir(abs, "fixture/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("linttest: load fixture %s: %v", dir, err)
	}

	expects, err := parseExpectations(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	findings, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("linttest: run analyzers on %s: %v", dir, err)
	}

	for _, f := range findings {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != f.Pos.Filename || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Analyzer + ": " + f.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// parseExpectations scans the fixture's files for `// want` comments.
func parseExpectations(dir string) ([]*expectation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse fixture: %w", err)
	}
	var out []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pat := m[2]
						if m[3] != "" {
							pat = m[3]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want regexp %q: %w",
								fset.Position(c.Pos()), pat, err)
						}
						offset := 0
						if m[1] != "" {
							if _, err := fmt.Sscanf(m[1], "%d", &offset); err != nil {
								return nil, fmt.Errorf("%s: bad want offset %q", fset.Position(c.Pos()), m[1])
							}
						}
						pos := fset.Position(c.Pos())
						out = append(out, &expectation{file: pos.Filename, line: pos.Line + offset, re: re})
					}
				}
			}
		}
	}
	return out, nil
}
