package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one analyzed module package: parsed syntax plus types.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Program is a load session: the export-data universe produced by
// one `go list -deps -export` run, from which module packages are
// type-checked from source and auxiliary packages (test fixtures) can
// be type-checked on demand against the same dependency set.
type Program struct {
	Fset *token.FileSet
	// Pkgs are the matched module packages in dependency order
	// (dependencies before dependents), the order Run requires so
	// cross-package facts flow forward.
	Pkgs []*Package

	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load builds a Program for the packages matching patterns, resolved
// in dir. Each matched non-standard-library package is parsed and
// type-checked from source; everything else (the standard library,
// unmatched dependencies) is imported from compiler export data, which
// `go list -export` guarantees exists for every listed dependency.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	prog.imp = importer.ForCompiler(prog.Fset, "gc", prog.lookup)

	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			prog.exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		pc := p
		targets = append(targets, &pc)
	}

	// -deps emits dependencies before dependents; preserving that
	// order over the matched subset keeps fact flow correct.
	for _, p := range targets {
		pkg, err := prog.typecheck(p.ImportPath, p.Dir, append(p.GoFiles, p.CgoFiles...))
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// lookup feeds export data to the gc importer.
func (prog *Program) lookup(path string) (io.ReadCloser, error) {
	f, ok := prog.exports[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// LoadDir parses and type-checks a single directory of Go files (a
// test fixture pseudo-package) against the Program's dependency
// universe. pkgPath names the resulting package; fixture imports
// resolve through the same export data as real packages.
func (prog *Program) LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture dir: %w", err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return prog.typecheck(pkgPath, dir, files)
}

// typecheck parses the named files (relative to dir) and type-checks
// them as one package.
func (prog *Program) typecheck(pkgPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: prog.imp}
	tpkg, err := conf.Check(pkgPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      prog.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
