package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Latchorder enforces each package's declared lock partial order on
// nested sync.Mutex/RWMutex acquisitions. A package declares its
// hierarchy in machine-readable comments:
//
//	//lint:latch-order DB.ddlMu < Table.latch
//	//lint:latch-leaf Server.mu Server.connsMu
//
// latch-order says the left lock may be held while acquiring locks to
// its right (relations compose transitively). latch-leaf declares
// locks that must never nest with any declared lock, themselves
// included — the "split lock" regime where every critical section is
// a leaf. Lock names are `Type.field` (or a bare field name, matching
// any owner). Acquiring a declared lock while holding another declared
// lock is a finding unless a latch-order chain permits that exact
// direction; re-acquiring the same lock field (the multi-table latch
// case) is a finding unless the site carries //lint:latch-ok <reason>
// — the escape reserved for the canonical sorted-name acquisition
// loops.
//
// The analysis is intra-function and flow-ordered: it tracks the held
// set through each function body, re-scanning loop bodies with the
// locks still held at the bottom of an iteration so acquire-in-loop
// patterns surface. Locks handed across function boundaries ("caller
// holds ddlMu") are documented contracts, not analyzed facts.
var Latchorder = &Analyzer{
	Name: "latchorder",
	Doc:  "nested mutex acquisitions must follow the declared latch order",
	Run:  runLatchorder,
}

// latchDecls is one package's parsed ordering declarations.
type latchDecls struct {
	// names holds every declared lock name (qualified or bare).
	names map[string]bool
	// before[a][b] means a may be held while acquiring b.
	before map[string]map[string]bool
	// leaf marks locks that may never participate in nesting.
	leaf map[string]bool
}

func parseLatchDecls(pass *Pass) *latchDecls {
	d := &latchDecls{
		names:  map[string]bool{},
		before: map[string]map[string]bool{},
		leaf:   map[string]bool{},
	}
	for _, dir := range pass.Directives("latch-order") {
		chain := splitLatchOrder(dir.Args)
		for i := 0; i < len(chain); i++ {
			d.names[chain[i]] = true
			for j := i + 1; j < len(chain); j++ {
				d.edge(chain[i], chain[j])
			}
		}
	}
	for _, dir := range pass.Directives("latch-leaf") {
		for _, name := range strings.Fields(dir.Args) {
			d.names[name] = true
			d.leaf[name] = true
		}
	}
	// Transitive closure over the declared order.
	for k := range d.names {
		for a := range d.names {
			for b := range d.names {
				if d.before[a][k] && d.before[k][b] {
					d.edge(a, b)
				}
			}
		}
	}
	return d
}

func (d *latchDecls) edge(a, b string) {
	m := d.before[a]
	if m == nil {
		m = map[string]bool{}
		d.before[a] = m
	}
	m[b] = true
}

// declared resolves a lock (qualified name plus bare field name) to
// its declared name, preferring the qualified form.
func (d *latchDecls) declared(qualified, bare string) (string, bool) {
	if d.names[qualified] {
		return qualified, true
	}
	if d.names[bare] {
		return bare, true
	}
	return "", false
}

// allows reports whether holding a while acquiring b is permitted.
func (d *latchDecls) allows(a, b string) bool {
	if d.leaf[a] || d.leaf[b] {
		return false
	}
	return d.before[a][b]
}

// heldLock is one acquisition on the simulated lock stack.
type heldLock struct {
	name string // declared name
	obj  types.Object
	pos  token.Pos
}

type latchWalker struct {
	pass     *Pass
	decls    *latchDecls
	owners   map[types.Object]string // mutex field object -> "Type.field"
	reported map[string]bool         // dedup across loop re-scans
}

func runLatchorder(pass *Pass) error {
	decls := parseLatchDecls(pass)
	if len(decls.names) == 0 {
		return nil
	}
	w := &latchWalker{
		pass:     pass,
		decls:    decls,
		owners:   lockFieldOwners(pass),
		reported: map[string]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.scanBlock(fn.Body.List, nil)
				}
				return false
			case *ast.FuncLit:
				w.scanBlock(fn.Body.List, nil)
				return false
			}
			return true
		})
	}
	return nil
}

// lockFieldOwners maps each sync.Mutex/RWMutex struct field declared
// in this package to its qualified "Type.field" name, so same-named
// fields of different structs do not alias.
func lockFieldOwners(pass *Pass) map[types.Object]string {
	owners := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj != nil && isMutexType(obj.Type()) {
						owners[obj] = ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
	}
	return owners
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockOp describes one Lock/Unlock call found in a statement.
type lockOp struct {
	acquire bool
	name    string // declared name
	obj     types.Object
	pos     token.Pos
}

// lockOpsIn extracts the declared-lock operations syntactically
// contained in stmt (not descending into function literals).
func (w *latchWalker) lockOpsIn(n ast.Node) []lockOp {
	var ops []lockOp
	inspectSkippingFuncLits(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(w.pass.TypesInfo, call)
		if fn == nil || funcPkgPath(fn) != "sync" {
			return true
		}
		var acquire bool
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, bare := lockReceiver(w.pass.TypesInfo, sel.X)
		if bare == "" {
			return true
		}
		qualified := w.owners[obj]
		name, ok := w.decls.declared(qualified, bare)
		if !ok {
			return true
		}
		ops = append(ops, lockOp{acquire: acquire, name: name, obj: obj, pos: call.Pos()})
		return true
	})
	return ops
}

// lockReceiver resolves the mutex expression (`s.mu` in `s.mu.Lock()`)
// to the field object and its bare name.
func lockReceiver(info *types.Info, x ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		return info.Uses[x.Sel], x.Sel.Name
	case *ast.Ident:
		return info.Uses[x], x.Name
	}
	return nil, ""
}

// scanBlock walks stmts in order with the incoming held stack,
// returning the stack at the end of the block. Nested control-flow
// blocks are scanned with a copy of the stack (acquisitions inside a
// branch are treated as balanced within it); loop bodies are
// re-scanned with the locks still held at iteration end so that
// second-iteration nesting surfaces.
func (w *latchWalker) scanBlock(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = w.applyStmt(s, held)
	}
	return held
}

func (w *latchWalker) applyStmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.scanBlock(s.List, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end, which
		// the linear scan models by simply not removing it. A deferred
		// Lock (pathological) is ignored.
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.applyStmt(s.Init, held)
		}
		held = w.applyOps(w.lockOpsIn(s.Cond), held)
		w.scanBlock(s.Body.List, held)
		if s.Else != nil {
			w.applyStmt(s.Else, held)
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.applyStmt(s.Init, held)
		}
		w.scanLoopBody(s.Body, held)
		return held
	case *ast.RangeStmt:
		w.scanLoopBody(s.Body, held)
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Scan each clause body with a copy of the current stack.
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		for _, c := range clauses {
			switch c := c.(type) {
			case *ast.CaseClause:
				w.scanBlock(c.Body, held)
			case *ast.CommClause:
				w.scanBlock(c.Body, held)
			}
		}
		return held
	case *ast.GoStmt:
		// The goroutine body runs on its own stack with nothing held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.scanBlock(lit.Body.List, nil)
		}
		return held
	case *ast.LabeledStmt:
		return w.applyStmt(s.Stmt, held)
	default:
		return w.applyOps(w.lockOpsIn(s), held)
	}
}

// scanLoopBody scans a loop body, then — if locks acquired in the body
// remain held at its end — re-scans with those carried over, modeling
// the second iteration.
func (w *latchWalker) scanLoopBody(body *ast.BlockStmt, held []heldLock) {
	after := w.scanBlock(body.List, held)
	if len(after) > len(held) {
		w.scanBlock(body.List, after)
	}
}

// applyOps folds lock operations into the held stack, reporting
// ordering violations.
func (w *latchWalker) applyOps(ops []lockOp, held []heldLock) []heldLock {
	for _, op := range ops {
		if !op.acquire {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].name == op.name {
					held = append(held[:i:i], held[i+1:]...)
					break
				}
			}
			continue
		}
		for _, h := range held {
			if h.name == op.name {
				w.reportOnce(op.pos, fmt.Sprintf(
					"acquires %s while already holding %s: same-field multi-latch acquisition must go through the canonical sorted-name path (//lint:latch-ok <reason>)",
					op.name, h.name))
				continue
			}
			if !w.decls.allows(h.name, op.name) {
				w.reportOnce(op.pos, fmt.Sprintf(
					"acquires %s while holding %s, which the declared latch order does not permit", op.name, h.name))
			}
		}
		held = append(held[:len(held):len(held)], heldLock{name: op.name, obj: op.obj, pos: op.pos})
	}
	return held
}

func (w *latchWalker) reportOnce(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	pass := w.pass
	pass.Reportf(pos, "%s", msg)
}
