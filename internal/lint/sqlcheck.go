package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sqlmini"
)

// Sqlcheck statically validates every constant SQL string that reaches
// an execution sink — Store.Exec / DB.Exec / Query / MustExec /
// Prepare / Explain / Server.exec call sites and sqlmini.BatchStmt
// literals — with the real sqlmini parser and planner:
//
//  1. the string must parse;
//  2. statements against the core schema tables
//     (information_schema.*) must reference only existing columns;
//  3. SELECT/UPDATE/DELETE against the core schema tables must plan
//     to an index — a plan that degrades to a full scan of the lease
//     log or driver catalog is a finding, because every such
//     statement sits on a path that TestHotStatementsPlanIndexed
//     could only pin one runtime example of.
//
// The planner runs against the embedded core schema (the exact DDL
// EnsureSchema applies), with parameters synthesized from the
// compared column's declared type, so deleting an index declaration
// from core.schemaDDL immediately fails the build at every call site
// whose plan regresses. Deliberate scans — cold catalog reloads,
// admin listings — are annotated //lint:scan-ok <reason>.
//
// Non-constant SQL (built at runtime) and statements against
// non-schema tables (scenario scratch tables) are parse-checked only
// when constant, never plan-checked.
var Sqlcheck = &Analyzer{
	Name: "sqlcheck",
	Doc:  "constant SQL must parse, resolve, and plan to indexes on the core schema",
	Run:  runSqlcheck,
}

// sinkMethodNames are callee names whose first string argument is SQL.
var sinkMethodNames = map[string]bool{
	"Exec":     true,
	"MustExec": true,
	"Query":    true,
	"Prepare":  true,
	"Explain":  true,
	"exec":     true, // core.Server.exec, the server's statement router
}

// sinkPkgs are packages whose Exec-family methods take our SQL
// dialect. Restricting by package keeps database/sql users (none
// today) and unrelated Exec methods out of scope.
var sinkPkgs = map[string]bool{
	"repro/internal/sqlmini": true,
	"repro/internal/core":    true,
	"repro/internal/dbms":    true,
	"repro/internal/client":  true,
}

// schemaPrefix marks tables owned by the core schema.
const schemaPrefix = "information_schema."

var (
	schemaOnce sync.Once
	schemaDB   *sqlmini.DB
	schemaErr  error
)

// coreSchemaDB lazily builds one scratch database holding the real
// core schema for plan checks.
func coreSchemaDB() (*sqlmini.DB, error) {
	schemaOnce.Do(func() {
		schemaDB = sqlmini.NewDB()
		for _, ddl := range core.SchemaStatements() {
			if _, err := schemaDB.Exec(ddl); err != nil {
				schemaErr = fmt.Errorf("lint: applying core schema: %w", err)
				return
			}
		}
	})
	return schemaDB, schemaErr
}

func runSqlcheck(pass *Pass) error {
	db, err := coreSchemaDB()
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := callee(pass.TypesInfo, n)
				if fn == nil || !sinkMethodNames[fn.Name()] || !sinkPkgs[funcPkgPath(fn)] || len(n.Args) == 0 {
					return true
				}
				if sql, ok := constString(pass, n.Args[0]); ok {
					reportSQLProblems(pass, n.Args[0].Pos(), db, sql)
				}
			case *ast.CompositeLit:
				// sqlmini.BatchStmt{SQL: ...} — the batch sink's
				// statements are assembled as literals, often far from
				// the ExecBatchAtomic call.
				if !isBatchStmtLit(pass, n) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "SQL" {
						continue
					}
					if sql, ok := constString(pass, kv.Value); ok {
						reportSQLProblems(pass, kv.Value.Pos(), db, sql)
					}
				}
			}
			return true
		})
	}
	return nil
}

// constString resolves expr to a compile-time constant string via the
// type checker (literals, consts, and const concatenations like
// `"UPDATE " + LeasesTable + " ..."`).
func constString(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isBatchStmtLit reports whether lit is a sqlmini.BatchStmt (or a
// core/store BatchStmt-shaped Statement) composite literal.
func isBatchStmtLit(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	s := tv.Type.String()
	return strings.HasSuffix(s, "sqlmini.BatchStmt") || strings.HasSuffix(s, "core.Statement")
}

func reportSQLProblems(pass *Pass, pos token.Pos, db *sqlmini.DB, sql string) {
	for _, problem := range CheckSQL(db, sql) {
		pass.Reportf(pos, "%s", problem)
	}
}

// CheckSQL statically validates one SQL string against the schema held
// by db, returning human-readable problems: parse failures, unknown
// schema tables/columns, and core-schema statements that plan to full
// scans. Exposed so tests can prove that removing an index declaration
// turns a hot statement into a finding.
func CheckSQL(db *sqlmini.DB, sql string) []string {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return []string{fmt.Sprintf("SQL does not parse: %v", err)}
	}
	table, planCheck := stmtTable(st)
	if table == "" {
		return nil
	}
	cols, knownTable := db.TableColumns(table)
	if !strings.HasPrefix(table, schemaPrefix) {
		// Scratch tables (scenario fixtures, examples) are outside the
		// schema; parse-checking is all that is possible.
		return nil
	}
	if !knownTable {
		return []string{fmt.Sprintf("unknown schema table %q", table)}
	}
	var problems []string
	colTypes := map[string]sqlmini.Type{}
	for _, c := range cols {
		colTypes[c.Name] = c.Type
	}
	for _, ref := range columnRefs(st) {
		if _, ok := colTypes[ref]; !ok {
			problems = append(problems, fmt.Sprintf("unknown column %q in table %s", ref, table))
		}
	}
	if len(problems) > 0 || !planCheck {
		return problems
	}
	args := synthesizeArgs(st, colTypes)
	plan, err := db.Explain(sql, args...)
	if err != nil {
		return append(problems, fmt.Sprintf("statement does not plan: %v", err))
	}
	if strings.HasPrefix(plan, "full scan") {
		problems = append(problems, fmt.Sprintf(
			"hot-path statement plans as %q against the core schema: add or use an index, or annotate a deliberate scan with //lint:scan-ok <reason>", plan))
	}
	return problems
}

// stmtTable extracts the statement's target table and whether the
// statement kind is plannable (SELECT/UPDATE/DELETE).
func stmtTable(st sqlmini.Statement) (string, bool) {
	switch st := st.(type) {
	case *sqlmini.SelectStmt:
		return st.Table, true
	case *sqlmini.UpdateStmt:
		return st.Table, true
	case *sqlmini.DeleteStmt:
		return st.Table, true
	case *sqlmini.InsertStmt:
		return st.Table, false
	case *sqlmini.CreateIndexStmt:
		return st.Table, false
	}
	return "", false
}

// columnRefs collects every column name the statement references.
func columnRefs(st sqlmini.Statement) []string {
	var refs []string
	aliases := map[string]bool{}
	var walkExpr func(e sqlmini.Expr)
	walkExpr = func(e sqlmini.Expr) {
		switch e := e.(type) {
		case *sqlmini.ColumnExpr:
			if !aliases[e.Name] {
				refs = append(refs, e.Name)
			}
		case *sqlmini.BinaryExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *sqlmini.UnaryExpr:
			walkExpr(e.E)
		case *sqlmini.IsNullExpr:
			walkExpr(e.E)
		case *sqlmini.BetweenExpr:
			walkExpr(e.E)
			walkExpr(e.Lo)
			walkExpr(e.Hi)
		case *sqlmini.InExpr:
			walkExpr(e.E)
			for _, x := range e.List {
				walkExpr(x)
			}
		case *sqlmini.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	switch st := st.(type) {
	case *sqlmini.SelectStmt:
		for _, it := range st.Items {
			if it.Alias != "" {
				aliases[it.Alias] = true
			}
		}
		for _, it := range st.Items {
			walkExpr(it.Expr)
		}
		if st.Where != nil {
			walkExpr(st.Where)
		}
		for _, o := range st.Order {
			walkExpr(o.Expr)
		}
	case *sqlmini.UpdateStmt:
		for _, a := range st.Set {
			refs = append(refs, a.Col)
			walkExpr(a.Expr)
		}
		if st.Where != nil {
			walkExpr(st.Where)
		}
	case *sqlmini.DeleteStmt:
		if st.Where != nil {
			walkExpr(st.Where)
		}
	case *sqlmini.InsertStmt:
		refs = append(refs, st.Cols...)
	case *sqlmini.CreateIndexStmt:
		refs = append(refs, st.Cols...)
	}
	return refs
}

// synthesizeArgs builds a plausible binding for every parameter the
// statement mentions, typed after the column each parameter is
// compared with (or assigned to), so the planner sees index-eligible
// keys exactly as the runtime would. Named parameters bind through a
// single sqlmini.Args map; positional ones through the variadic slice.
func synthesizeArgs(st sqlmini.Statement, colTypes map[string]sqlmini.Type) []any {
	named := sqlmini.Args{}
	positional := map[int]any{}
	maxIndex := -1
	bind := func(p *sqlmini.ParamExpr, t sqlmini.Type) {
		if p.Name == "" {
			if _, done := positional[p.Index]; !done {
				positional[p.Index] = synthValue(t)
			}
			if p.Index > maxIndex {
				maxIndex = p.Index
			}
			return
		}
		if _, done := named[p.Name]; !done {
			named[p.Name] = synthValue(t)
		}
	}
	var pair func(a, b sqlmini.Expr)
	var walk func(e sqlmini.Expr)
	pair = func(a, b sqlmini.Expr) {
		col, okc := a.(*sqlmini.ColumnExpr)
		p, okp := b.(*sqlmini.ParamExpr)
		if okc && okp {
			bind(p, colTypes[col.Name])
		}
	}
	walk = func(e sqlmini.Expr) {
		switch e := e.(type) {
		case *sqlmini.ParamExpr:
			bind(e, sqlmini.TypeInteger)
		case *sqlmini.BinaryExpr:
			pair(e.L, e.R)
			pair(e.R, e.L)
			walk(e.L)
			walk(e.R)
		case *sqlmini.UnaryExpr:
			walk(e.E)
		case *sqlmini.IsNullExpr:
			walk(e.E)
		case *sqlmini.BetweenExpr:
			if col, ok := e.E.(*sqlmini.ColumnExpr); ok {
				if p, ok := e.Lo.(*sqlmini.ParamExpr); ok {
					bind(p, colTypes[col.Name])
				}
				if p, ok := e.Hi.(*sqlmini.ParamExpr); ok {
					bind(p, colTypes[col.Name])
				}
			}
			walk(e.E)
			walk(e.Lo)
			walk(e.Hi)
		case *sqlmini.InExpr:
			if col, ok := e.E.(*sqlmini.ColumnExpr); ok {
				for _, x := range e.List {
					if p, ok := x.(*sqlmini.ParamExpr); ok {
						bind(p, colTypes[col.Name])
					}
				}
			}
			walk(e.E)
			for _, x := range e.List {
				walk(x)
			}
		case *sqlmini.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	switch st := st.(type) {
	case *sqlmini.SelectStmt:
		if st.Where != nil {
			walk(st.Where)
		}
	case *sqlmini.UpdateStmt:
		for _, a := range st.Set {
			if p, ok := a.Expr.(*sqlmini.ParamExpr); ok {
				bind(p, colTypes[a.Col])
			}
			walk(a.Expr)
		}
		if st.Where != nil {
			walk(st.Where)
		}
	case *sqlmini.DeleteStmt:
		if st.Where != nil {
			walk(st.Where)
		}
	}
	if maxIndex >= 0 {
		// Positional statement: sqlmini cannot mix binding styles, and
		// the repo's own SQL is all named, so positional wins outright.
		out := make([]any, maxIndex+1)
		for i := range out {
			if v, ok := positional[i]; ok {
				out[i] = v
			} else {
				out[i] = int64(1)
			}
		}
		return out
	}
	if len(named) == 0 {
		return nil
	}
	return []any{named}
}

// synthValue picks a representative Go value for a column type.
func synthValue(t sqlmini.Type) any {
	switch t {
	case sqlmini.TypeVarchar:
		return "x"
	case sqlmini.TypeDouble:
		return 1.0
	case sqlmini.TypeBoolean:
		return false
	case sqlmini.TypeTimestamp:
		return time.Unix(1, 0)
	case sqlmini.TypeBlob:
		return []byte{1}
	default:
		return int64(1)
	}
}
