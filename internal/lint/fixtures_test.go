package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer's fixture suite holds positive, negative, and
// directive-suppressed cases; see testdata/src/<name>/fixture.go.

func TestBackoffcheckFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/backoffcheck", lint.Backoffcheck)
}

func TestDeadlinecheckFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/deadlinecheck", lint.Deadlinecheck)
}

func TestLatchorderFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/latchorder", lint.Latchorder)
}

func TestAmbiguityFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/ambiguity", lint.Ambiguity)
}

func TestSqlcheckFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/sqlcheck", lint.Sqlcheck)
}

func TestDirectiveFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/directive", lint.Directivecheck)
}

// TestTreeIsDrivolintClean runs the full suite over the whole module:
// the tree must merge lint-clean, and this test makes `go test ./...`
// (tier 1) enforce it alongside `make lint`.
func TestTreeIsDrivolintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint run is not a -short test")
	}
	prog := linttest.Program(t)
	findings, err := lint.Run(prog.Pkgs, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
