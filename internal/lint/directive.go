package lint

import "strings"

// Directivecheck validates the //lint: directive vocabulary itself:
// unknown verbs, suppressions without the mandatory reason, ignore
// directives naming no (or an unknown) analyzer, and malformed
// latch-order declarations. A stale or reasonless escape hatch is a
// finding, not a silently widening hole.
var Directivecheck = &Analyzer{
	Name: "directive",
	Doc:  "//lint: directives must be well-formed and carry reasons",
	Run:  runDirective,
}

// analyzerNames lists every analyzer name ignore directives may cite.
// A literal rather than a walk over Analyzers() — that call would form
// an initialization cycle through Directivecheck itself.
var analyzerNames = []string{
	"directive", "sqlcheck", "latchorder", "backoffcheck", "deadlinecheck", "ambiguity",
}

func runDirective(pass *Pass) error {
	known := map[string]bool{}
	for _, name := range analyzerNames {
		known[name] = true
	}
	for _, d := range pass.dirs.all {
		switch {
		case d.Verb == "ignore":
			name, reason, _ := strings.Cut(d.Args, " ")
			if name == "" {
				pass.Reportf(d.Pos, "//lint:ignore needs an analyzer name and a reason")
			} else if !known[name] {
				pass.Reportf(d.Pos, "//lint:ignore names unknown analyzer %q", name)
			} else if strings.TrimSpace(reason) == "" {
				pass.Reportf(d.Pos, "//lint:ignore %s needs a reason", name)
			}
		case suppressionAlias[d.Verb] != "":
			if d.Args == "" {
				pass.Reportf(d.Pos, "//lint:%s needs a reason", d.Verb)
			}
		case d.Verb == "latch-order":
			if len(splitLatchOrder(d.Args)) < 2 {
				pass.Reportf(d.Pos, "//lint:latch-order wants `A < B [< C ...]`, got %q", d.Args)
			}
		case d.Verb == "latch-leaf":
			if strings.TrimSpace(d.Args) == "" {
				pass.Reportf(d.Pos, "//lint:latch-leaf wants one or more lock names")
			}
		case d.Verb == "deadline-exempt":
			if strings.TrimSpace(d.Args) == "" {
				pass.Reportf(d.Pos, "//lint:deadline-exempt needs a reason")
			}
		case d.Verb == "deadline-arming":
			// No arguments to validate.
		default:
			pass.Reportf(d.Pos, "unknown //lint: directive %q", d.Verb)
		}
	}
	return nil
}

// splitLatchOrder splits "A < B < C" into its lock names.
func splitLatchOrder(args string) []string {
	parts := strings.Split(args, "<")
	var out []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
