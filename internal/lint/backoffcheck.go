package lint

import "go/ast"

// Backoffcheck bans raw time.Sleep in production (non-test) code.
// Retry loops sleeping a fixed interval re-synchronize a fleet of
// failed clients into thundering herds and ignore the stack-wide
// budget/deadline machinery; they must route through faultnet.Backoff
// (jittered exponential delays, attempt/time budgets, stop-channel and
// context interruption). Deliberate pacing — fault-injection latency,
// scenario scripts simulating think time — is annotated
// //lint:sleep-ok <reason> so every remaining sleep in the tree is a
// documented decision.
var Backoffcheck = &Analyzer{
	Name: "backoffcheck",
	Doc:  "no raw time.Sleep in production code; retries use faultnet.Backoff",
	Run:  runBackoffcheck,
}

func runBackoffcheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Sleep" || funcPkgPath(fn) != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"raw time.Sleep in production code: route retries through faultnet.Backoff, or annotate deliberate pacing with //lint:sleep-ok <reason>")
			return true
		})
	}
	return nil
}
