package lint

import (
	"go/ast"
	"go/token"
)

// Deadlinecheck requires every net.Conn-producing dial or accept to
// sit on a deadline-arming path. A blocked peer must never be able to
// wedge a server goroutine or a client retry loop forever: the repo's
// contract (PR 6) is that every connection is bounded by handshake,
// write, and per-op timeouts.
//
// A function is deadline-arming when it (or, transitively, a function
// it calls — across packages, via facts recorded in dependency order)
// arms a deadline directly: SetDeadline / SetReadDeadline /
// SetWriteDeadline on a conn, or the wire.Conn timeout surface
// (SetWriteTimeout, RecvTimeout). Trust roots that arm lazily — a
// wrapper whose methods arm per-op deadlines, like wire.NewConn — are
// declared with //lint:deadline-arming on the function declaration.
// Packages whose raw conns are deliberately unbounded (the faultnet
// chaos proxy) opt out wholesale with //lint:deadline-exempt <reason>;
// individual sites use //lint:deadline-ok <reason>.
var Deadlinecheck = &Analyzer{
	Name: "deadlinecheck",
	Doc:  "conn-producing dials/accepts must flow through deadline-arming paths",
	Run:  runDeadlinecheck,
}

// armingMethodNames are method names whose call constitutes arming a
// deadline directly.
var armingMethodNames = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"SetWriteTimeout":  true,
	"RecvTimeout":      true,
}

// connProducer reports whether fn produces a net.Conn from the
// network: the net/crypto-tls dial family plus Accept.
func connProducer(fnPkg, fnName string) bool {
	switch fnPkg {
	case "net":
		switch fnName {
		case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialUnix", "DialIP", "Accept", "AcceptTCP", "DialContext":
			return true
		}
	case "crypto/tls":
		switch fnName {
		case "Dial", "DialWithDialer", "Accept":
			return true
		}
	}
	return false
}

func runDeadlinecheck(pass *Pass) error {
	exempt := pass.Directives("deadline-exempt")

	// Pass 1: classify this package's functions as arming, seeding
	// from direct arming calls and //lint:deadline-arming annotations,
	// then iterating to a fixpoint over intra-package calls. Imported
	// callees resolve through the shared fact store.
	type funcInfo struct {
		key     string
		decl    *ast.FuncDecl
		arming  bool
		callees []string
	}
	var funcs []*funcInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &funcInfo{key: declKeyForFuncDecl(pass.TypesInfo, pass.Pkg.Path(), fd), decl: fd}
			declLine := pass.Fset.Position(fd.Pos()).Line
			declFile := pass.Fset.Position(fd.Pos()).Filename
			if pass.dirs.hasOnLines("deadline-arming", declFile, declLine, declLine-1) {
				fi.arming = true
			}
			// Closures run on the function's behalf; include their
			// bodies when looking for arming calls and callees.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if armingMethodNames[fn.Name()] {
					fi.arming = true
				}
				fi.callees = append(fi.callees, funcKey(fn))
				return true
			})
			funcs = append(funcs, fi)
		}
	}
	local := map[string]bool{}
	for _, fi := range funcs {
		if fi.arming {
			local[fi.key] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.arming {
				continue
			}
			for _, c := range fi.callees {
				if local[c] || pass.Facts.Arming[c] {
					fi.arming = true
					local[fi.key] = true
					changed = true
					break
				}
			}
		}
	}
	for k := range local {
		pass.Facts.Arming[k] = true
	}

	if len(exempt) > 0 {
		return nil
	}

	// Pass 2: every conn-producing call must sit in an arming function.
	for _, fi := range funcs {
		if fi.arming {
			continue
		}
		fd := fi.decl
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			if fn == nil || !connProducer(funcPkgPath(fn), fn.Name()) {
				return true
			}
			var pos token.Pos = call.Pos()
			pass.Reportf(pos,
				"%s.%s produces a connection in a function that never arms deadlines: arm Set*Deadline/wire timeouts, route through a //lint:deadline-arming func, or annotate //lint:deadline-ok <reason>",
				funcPkgPath(fn), fn.Name())
			return true
		})
	}
	return nil
}
