package lint

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sqlmini"
)

// hotLeaseProbe is the shape of the license-mode per-driver lease
// count: equality on driver_id, served by the leases driver_id
// indexes and by nothing else.
const hotLeaseProbe = `SELECT lease_id FROM information_schema.leases
	WHERE driver_id = $d`

// buildSchema replays the core DDL into a scratch database, skipping
// statements that contain skip (empty skips nothing).
func buildSchema(t *testing.T, skip string) *sqlmini.DB {
	t.Helper()
	db := sqlmini.NewDB()
	for _, ddl := range core.SchemaStatements() {
		if skip != "" && strings.Contains(ddl, skip) {
			continue
		}
		if _, err := db.Exec(ddl); err != nil {
			t.Fatalf("apply schema: %v", err)
		}
	}
	return db
}

// TestIndexDeletionIsABuildBreakingEvent is the PR's acceptance demo:
// against the full core schema the hot lease probe plans to an index
// and sqlcheck stays quiet; delete the leases driver_id index
// declarations from the DDL and the same statement becomes a full-scan
// finding — removing an index declaration breaks the build.
func TestIndexDeletionIsABuildBreakingEvent(t *testing.T) {
	full := buildSchema(t, "")
	if problems := CheckSQL(full, hotLeaseProbe); len(problems) != 0 {
		t.Fatalf("hot probe should be clean against the full schema, got %v", problems)
	}

	// Drop every leases index on driver_id (plain and composite); the
	// probe's equality column loses its access path.
	crippled := buildSchema(t, "leases_driver")
	problems := CheckSQL(crippled, hotLeaseProbe)
	if len(problems) == 0 {
		t.Fatal("hot probe should be a finding once the driver_id indexes are gone")
	}
	if !strings.Contains(problems[0], "full scan") {
		t.Fatalf("expected a full-scan finding, got %v", problems)
	}
}

// TestCheckSQLProblemShapes pins the individual defect classes CheckSQL
// reports.
func TestCheckSQLProblemShapes(t *testing.T) {
	db := buildSchema(t, "")
	cases := []struct {
		name string
		sql  string
		want string // substring of the first problem; "" means clean
	}{
		{"parse error", "SELEC nope", "SQL does not parse"},
		{"unknown table", "SELECT x FROM information_schema.nope", "unknown schema table"},
		{"unknown column", "SELECT zap FROM information_schema.drivers", `unknown column "zap"`},
		{"full scan", "SELECT lease_id FROM information_schema.leases WHERE released = $r", "full scan"},
		{"pk point lookup", "SELECT api_name FROM information_schema.drivers WHERE driver_id = $id", ""},
		{"indexed lookup", "SELECT lease_id FROM information_schema.leases WHERE driver_id = $d", ""},
		{"insert column check", "INSERT INTO information_schema.leases (lease_id, wrong_col) VALUES ($a, $b)", `unknown column "wrong_col"`},
		{"non-schema table", "SELECT k FROM scratch WHERE k = $k", ""},
		{"ddl ignored", "CREATE TABLE scratch (k INTEGER PRIMARY KEY)", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := CheckSQL(db, tc.sql)
			if tc.want == "" {
				if len(problems) != 0 {
					t.Fatalf("want clean, got %v", problems)
				}
				return
			}
			if len(problems) == 0 || !strings.Contains(problems[0], tc.want) {
				t.Fatalf("want problem containing %q, got %v", tc.want, problems)
			}
		})
	}
}
