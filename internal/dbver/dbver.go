// Package dbver defines version numbers, API descriptors, and platform
// descriptors shared by drivers, databases, and the Drivolution
// matchmaking logic. The paper's driver table (Table 1) keys drivers by
// API name + major/minor API version + platform + a three-part driver
// version; this package is the common vocabulary for those fields.
package dbver

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a three-part driver or protocol version. The paper's schema
// stores major/minor/micro as separate nullable INTEGER columns; a
// negative part here means "unspecified" and matches anything.
type Version struct {
	Major, Minor, Micro int
}

// Unspecified is the wildcard version (all parts unspecified).
var Unspecified = Version{Major: -1, Minor: -1, Micro: -1}

// V constructs a fully specified version.
func V(major, minor, micro int) Version {
	return Version{Major: major, Minor: minor, Micro: micro}
}

// String renders "1.2.3"; unspecified parts render as "*".
func (v Version) String() string {
	part := func(n int) string {
		if n < 0 {
			return "*"
		}
		return strconv.Itoa(n)
	}
	return part(v.Major) + "." + part(v.Minor) + "." + part(v.Micro)
}

// IsSpecified reports whether at least the major part is set.
func (v Version) IsSpecified() bool { return v.Major >= 0 }

// Compare orders two versions; unspecified parts compare as zero.
func (v Version) Compare(o Version) int {
	for _, pair := range [][2]int{{v.Major, o.Major}, {v.Minor, o.Minor}, {v.Micro, o.Micro}} {
		a, b := pair[0], pair[1]
		if a < 0 {
			a = 0
		}
		if b < 0 {
			b = 0
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Matches reports whether candidate v satisfies a request for want.
// Unspecified parts of want act as wildcards: want 3.*.* matches any
// 3.x.y. An entirely unspecified want matches everything.
func (v Version) Matches(want Version) bool {
	if want.Major >= 0 && v.Major >= 0 && want.Major != v.Major {
		return false
	}
	if want.Minor >= 0 && v.Minor >= 0 && want.Minor != v.Minor {
		return false
	}
	if want.Micro >= 0 && v.Micro >= 0 && want.Micro != v.Micro {
		return false
	}
	return true
}

// ParseVersion parses "1", "1.2", "1.2.3", with "*" or missing parts
// meaning unspecified.
func ParseVersion(s string) (Version, error) {
	v := Unspecified
	if strings.TrimSpace(s) == "" || s == "*" {
		return v, nil
	}
	parts := strings.Split(s, ".")
	if len(parts) > 3 {
		return v, fmt.Errorf("dbver: invalid version %q", s)
	}
	dst := []*int{&v.Major, &v.Minor, &v.Micro}
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "*" || p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return Unspecified, fmt.Errorf("dbver: invalid version %q", s)
		}
		*dst[i] = n
	}
	return v, nil
}

// API identifies a client-facing database API, e.g. JDBC 3 or ODBC 3.5.
// Name is compared with SQL LIKE semantics (case-insensitive, wildcards).
type API struct {
	Name  string
	Major int // -1 means unspecified
	Minor int // -1 means unspecified
}

// APIOf builds a fully specified API descriptor.
func APIOf(name string, major, minor int) API {
	return API{Name: name, Major: major, Minor: minor}
}

// AnyVersionAPI builds an API descriptor that matches any version.
func AnyVersionAPI(name string) API { return API{Name: name, Major: -1, Minor: -1} }

// String renders "JDBC 3.0" (or "JDBC *" when unversioned).
func (a API) String() string {
	if a.Major < 0 {
		return a.Name + " *"
	}
	if a.Minor < 0 {
		return fmt.Sprintf("%s %d.*", a.Name, a.Major)
	}
	return fmt.Sprintf("%s %d.%d", a.Name, a.Major, a.Minor)
}

// Platform describes where a bootloader runs, e.g. "jre-1.5",
// "linux-x86_64", "windows-i586". Matched with LIKE semantics; the empty
// platform on the driver side means "all platforms" (the paper's NULL).
type Platform string

// Common platforms used across tests, examples, and benchmarks.
const (
	PlatformAny          Platform = ""
	PlatformLinuxAMD64   Platform = "linux-x86_64"
	PlatformLinuxI586    Platform = "linux-i586"
	PlatformWindowsI586  Platform = "windows-i586"
	PlatformWindowsAMD64 Platform = "windows-x86_64"
	PlatformJRE15        Platform = "jre-1.5"
	PlatformJRE16        Platform = "jre-1.6"
	PlatformGo           Platform = "go-any"
)

// BinaryFormat names the container format of a stored driver binary
// (the paper's binary_format column: JAR, ZIP, ...).
type BinaryFormat string

// Supported binary formats.
const (
	// FormatImage is this repo's native serialized driver-image format.
	FormatImage BinaryFormat = "IMAGE"
	// FormatBundle is a multi-package container (base driver + feature
	// packages), the analog of a JAR with extension JARs (§5.4.1).
	FormatBundle BinaryFormat = "BUNDLE"
)
