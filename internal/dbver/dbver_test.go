package dbver

import (
	"testing"
	"testing/quick"
)

func TestVersionString(t *testing.T) {
	tests := []struct {
		v    Version
		want string
	}{
		{V(1, 2, 3), "1.2.3"},
		{Unspecified, "*.*.*"},
		{Version{Major: 2, Minor: -1, Micro: -1}, "2.*.*"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestParseVersion(t *testing.T) {
	tests := []struct {
		in   string
		want Version
		ok   bool
	}{
		{"1.2.3", V(1, 2, 3), true},
		{"1.2", Version{1, 2, -1}, true},
		{"1", Version{1, -1, -1}, true},
		{"", Unspecified, true},
		{"*", Unspecified, true},
		{"1.*.3", Version{1, -1, 3}, true},
		{"1.2.3.4", Unspecified, false},
		{"a.b", Unspecified, false},
		{"-1", Unspecified, false},
	}
	for _, tt := range tests {
		got, err := ParseVersion(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseVersion(%q) err = %v, ok = %v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("ParseVersion(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		v := V(int(a), int(b), int(c))
		got, err := ParseVersion(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionCompare(t *testing.T) {
	tests := []struct {
		a, b Version
		want int
	}{
		{V(1, 0, 0), V(2, 0, 0), -1},
		{V(2, 0, 0), V(1, 9, 9), 1},
		{V(1, 2, 3), V(1, 2, 3), 0},
		{V(1, 2, 3), V(1, 2, 4), -1},
		{V(1, 3, 0), V(1, 2, 9), 1},
		{Unspecified, V(0, 0, 0), 0},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestVersionMatches(t *testing.T) {
	tests := []struct {
		have, want Version
		match      bool
	}{
		{V(3, 0, 5), Unspecified, true},
		{V(3, 0, 5), Version{3, -1, -1}, true},
		{V(3, 0, 5), Version{3, 0, -1}, true},
		{V(3, 0, 5), V(3, 0, 5), true},
		{V(3, 0, 5), Version{4, -1, -1}, false},
		{V(3, 0, 5), V(3, 0, 6), false},
		{Unspecified, V(9, 9, 9), true}, // unspecified candidate matches all (NULL semantics)
	}
	for _, tt := range tests {
		if got := tt.have.Matches(tt.want); got != tt.match {
			t.Errorf("%v.Matches(%v) = %v, want %v", tt.have, tt.want, got, tt.match)
		}
	}
}

func TestAPIString(t *testing.T) {
	if got := APIOf("JDBC", 3, 0).String(); got != "JDBC 3.0" {
		t.Errorf("got %q", got)
	}
	if got := AnyVersionAPI("ODBC").String(); got != "ODBC *" {
		t.Errorf("got %q", got)
	}
	if got := (API{Name: "JDBC", Major: 4, Minor: -1}).String(); got != "JDBC 4.*" {
		t.Errorf("got %q", got)
	}
}
