package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction names one leg of a proxied connection.
type Direction int

const (
	// Up is client → server.
	Up Direction = iota
	// Down is server → client.
	Down
)

// Plan programs the faults for one proxied connection, drawn by the
// proxy's Planner when the connection is accepted.
type Plan struct {
	// Reject closes the client connection immediately on accept.
	Reject bool
	// Up and Down fault each leg independently; a reset fired by
	// either leg kills the whole connection.
	Up, Down Faults
}

// seedStride spaces the per-connection rng seeds derived from the
// proxy seed (an arbitrary large odd constant).
const seedStride int64 = 0x5851F42D4C957F2D

// Planner decides the Plan for the i-th accepted connection
// (0-based). rng is derived deterministically from the proxy seed and
// i, so a plan is a pure function of (seed, accept index) no matter
// how goroutines interleave.
type Planner func(i int, rng *rand.Rand) Plan

// Proxy is an in-process fault-injecting TCP proxy. It listens on a
// loopback port and forwards to a target address; pointing any wire
// client at Addr instead of the real server routes all traffic
// through the fault planner with no client changes. The zero number
// of faults (default planner) forwards faithfully, so a Proxy can sit
// in a test permanently and only misbehave when told to.
type Proxy struct {
	target string
	seed   int64
	ln     net.Listener

	mu       sync.Mutex
	planner  Planner
	conns    map[*proxyConn]struct{}
	accepted int
	closed   bool

	// gates[d] is non-nil while direction d is partitioned; pumps
	// block on it until Heal closes it.
	gmu   sync.Mutex
	gates [2]chan struct{}

	resets atomic.Int64
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on 127.0.0.1:0 forwarding to target. seed
// fixes the fault schedule: the same seed and accept order reproduce
// the same per-connection plans.
func NewProxy(target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		seed:   seed,
		ln:     ln,
		conns:  map[*proxyConn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial in
// place of the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetPlanner installs the fault planner; nil restores faithful
// forwarding. It applies to connections accepted afterwards.
func (p *Proxy) SetPlanner(fn Planner) {
	p.mu.Lock()
	p.planner = fn
	p.mu.Unlock()
}

// Accepted reports how many connections the proxy has accepted.
func (p *Proxy) Accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accepted
}

// Resets reports how many connections were killed by injected cuts or
// DropAll.
func (p *Proxy) Resets() int64 { return p.resets.Load() }

// Active reports how many proxied connections are currently live.
func (p *Proxy) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Partition stalls both directions of every current and future
// proxied connection, like a network partition between client and
// server: packets vanish, connections stay "established", and only
// the endpoints' own deadlines fire. Heal releases the traffic.
func (p *Proxy) Partition() {
	p.partition(Up)
	p.partition(Down)
}

// PartitionOneWay stalls only the given direction — the asymmetric
// partition where (say) requests arrive but replies never return.
func (p *Proxy) PartitionOneWay(d Direction) { p.partition(d) }

func (p *Proxy) partition(d Direction) {
	p.gmu.Lock()
	if p.gates[d] == nil {
		p.gates[d] = make(chan struct{})
	}
	p.gmu.Unlock()
}

// Heal ends any partition; stalled traffic resumes (what TCP
// retransmission delivers after a real partition heals).
func (p *Proxy) Heal() {
	p.gmu.Lock()
	for d := range p.gates {
		if p.gates[d] != nil {
			close(p.gates[d])
			p.gates[d] = nil
		}
	}
	p.gmu.Unlock()
}

// gateWait blocks while dir is partitioned; it returns false when the
// connection died while waiting.
func (p *Proxy) gateWait(dir Direction, done <-chan struct{}) bool {
	for {
		p.gmu.Lock()
		ch := p.gates[dir]
		p.gmu.Unlock()
		if ch == nil {
			return true
		}
		select {
		case <-ch:
			// healed; re-check (a new partition may have started)
		case <-done:
			return false
		}
	}
}

// DropAll hard-resets every live proxied connection (server crash as
// seen from the network, without restarting the real server).
func (p *Proxy) DropAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		pc.reset()
	}
}

// Close stops the proxy and kills all proxied connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	_ = p.ln.Close()
	p.Heal() // release stalled pumps so they can observe their done channels
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for pc := range p.conns {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		pc.close(false)
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		i := p.accepted
		p.accepted++
		planner := p.planner
		closed := p.closed
		p.mu.Unlock()
		if closed {
			_ = nc.Close()
			return
		}
		plan := Plan{}
		if planner != nil {
			// A per-connection rng keyed on (seed, index) keeps plans
			// reproducible regardless of accept-goroutine interleaving.
			rng := rand.New(rand.NewSource(p.seed + int64(i)*seedStride))
			plan = planner(i, rng)
		}
		if plan.Reject {
			_ = nc.Close()
			continue
		}
		p.wg.Add(1)
		go p.serve(nc, plan)
	}
}

func (p *Proxy) serve(client net.Conn, plan Plan) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		_ = client.Close()
		return
	}
	pc := &proxyConn{p: p, client: client, server: server, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.close(false)
		return
	}
	p.conns[pc] = struct{}{}
	p.mu.Unlock()

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); pc.pump(Up, client, server, plan.Up) }()
	go func() { defer pumps.Done(); pc.pump(Down, server, client, plan.Down) }()
	pumps.Wait()
	pc.close(false)
	p.mu.Lock()
	delete(p.conns, pc)
	p.mu.Unlock()
}

// proxyConn is one client↔server pairing and its lifecycle: closing
// either leg (gracefully or by injected reset) tears down both.
type proxyConn struct {
	p              *Proxy
	client, server net.Conn
	once           sync.Once
	done           chan struct{}
}

// reset kills the connection abruptly: linger 0 turns the close into
// an RST, so the endpoints see "connection reset by peer", not EOF.
func (pc *proxyConn) reset() {
	pc.p.resets.Add(1)
	pc.close(true)
}

func (pc *proxyConn) close(rst bool) {
	pc.once.Do(func() {
		if rst {
			if tc, ok := pc.client.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
			if tc, ok := pc.server.(*net.TCPConn); ok {
				_ = tc.SetLinger(0)
			}
		}
		_ = pc.client.Close()
		_ = pc.server.Close()
		close(pc.done)
	})
}

// pump forwards one direction, applying its Faults. It returns when
// the source drains, the connection dies, or an injected cut fires.
func (pc *proxyConn) pump(dir Direction, src, dst net.Conn, f Faults) {
	if f.BlackHole {
		// Accept-then-stall: forward nothing, error nothing. The peer's
		// reads hang until its own deadline (or our teardown) fires.
		<-pc.done
		return
	}
	var tr frameTracker
	var forwarded int64
	buf := make([]byte, 32<<10)
	for {
		if !pc.p.gateWait(dir, pc.done) {
			return
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			cut := false
			if f.CutAfterBytes > 0 {
				if rem := f.CutAfterBytes - forwarded; int64(len(chunk)) >= rem {
					chunk = chunk[:rem]
					cut = true
				}
			}
			if f.CutAfterFrames > 0 {
				a := tr.admit(chunk, f.CutAfterFrames)
				if a < len(chunk) || tr.frames >= f.CutAfterFrames {
					chunk = chunk[:a]
					cut = true
				}
			}
			// The pump may have been parked in Read when the partition
			// started; bytes arriving mid-partition are held here and
			// delivered after Heal, like TCP retransmission.
			if !pc.p.gateWait(dir, pc.done) {
				return
			}
			if f.Latency > 0 && !sleepOrDone(f.Latency, pc.done) {
				return
			}
			if f.Bandwidth > 0 {
				d := time.Duration(float64(len(chunk)) / float64(f.Bandwidth) * float64(time.Second))
				if !sleepOrDone(d, pc.done) {
					return
				}
			}
			if !writeChunked(dst, chunk, f.MaxChunk) {
				pc.close(false)
				return
			}
			forwarded += int64(len(chunk))
			if cut {
				pc.reset()
				return
			}
		}
		if rerr != nil {
			// Half-close toward dst so a graceful FIN propagates as one;
			// the other pump keeps draining until its own side ends.
			if tc, ok := dst.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			} else {
				pc.close(false)
			}
			return
		}
	}
}

func writeChunked(dst net.Conn, b []byte, maxChunk int) bool {
	if maxChunk <= 0 {
		_, err := dst.Write(b)
		return err == nil
	}
	for len(b) > 0 {
		n := maxChunk
		if n > len(b) {
			n = len(b)
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return false
		}
		b = b[n:]
	}
	return true
}

func sleepOrDone(d time.Duration, done <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
