package faultnet

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// ErrBudgetExhausted is returned (or reported via a false result) when
// a Backoff has spent its attempt or time budget.
var ErrBudgetExhausted = errors.New("faultnet: retry budget exhausted")

// Policy describes a jittered exponential backoff: delays start at
// Initial, grow by Factor up to Max, and each delay is jittered
// downward by up to Jitter of itself so a fleet of clients that lost
// their server at the same instant does not retry in lockstep.
//
// Zero-valued fields take the DefaultPolicy values, so a partially
// specified Policy (say, only Initial and Max) is valid. The zero
// Policy as a whole means "defaults" to the components that accept
// one.
type Policy struct {
	// Initial is the first retry delay.
	Initial time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Factor multiplies the delay after each attempt (>= 1).
	Factor float64
	// Jitter in (0,1] subtracts a uniform random fraction of up to
	// Jitter*delay from each delay. Negative disables jitter
	// (deterministic delays, for tests).
	Jitter float64
	// MaxAttempts bounds how many delays are handed out; 0 means
	// unlimited.
	MaxAttempts int
	// Budget bounds the total time spent sleeping across all
	// attempts; 0 means unlimited. The final delay is truncated to
	// exactly exhaust the budget.
	Budget time.Duration
}

// DefaultPolicy is the stack-wide retry policy used when a component
// is given a zero Policy field: 50ms doubling to 2s, half-width
// jitter, no attempt bound (the surrounding loop's stop channel or
// context bounds it).
var DefaultPolicy = Policy{
	Initial: 50 * time.Millisecond,
	Max:     2 * time.Second,
	Factor:  2,
	Jitter:  0.5,
}

// normalized fills zero fields from DefaultPolicy and repairs
// inconsistent combinations.
func (p Policy) normalized() Policy {
	if p.Initial <= 0 {
		p.Initial = DefaultPolicy.Initial
	}
	if p.Max <= 0 {
		p.Max = DefaultPolicy.Max
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	if p.Factor < 1 {
		p.Factor = DefaultPolicy.Factor
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultPolicy.Jitter
	} else if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0
	}
	return p
}

// Backoff is the stateful side of a Policy: one retry loop's
// position in the delay schedule. Not safe for concurrent use; each
// loop owns one.
type Backoff struct {
	p       Policy
	attempt int
	base    time.Duration
	slept   time.Duration
}

// NewBackoff starts a backoff schedule under p (zero fields take
// defaults; see Policy).
func NewBackoff(p Policy) *Backoff {
	return &Backoff{p: p.normalized()}
}

// Attempts reports how many delays have been handed out since the
// last Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset rewinds the schedule to the first delay. Call it after a
// success so the next failure starts fast again.
func (b *Backoff) Reset() {
	b.attempt = 0
	b.base = 0
	b.slept = 0
}

// Next returns the next delay in the schedule, or false when the
// policy's attempt or time budget is exhausted.
func (b *Backoff) Next() (time.Duration, bool) {
	if b.p.MaxAttempts > 0 && b.attempt >= b.p.MaxAttempts {
		return 0, false
	}
	if b.p.Budget > 0 && b.slept >= b.p.Budget {
		return 0, false
	}
	if b.attempt == 0 {
		b.base = b.p.Initial
	} else {
		b.base = time.Duration(float64(b.base) * b.p.Factor)
		if b.base > b.p.Max {
			b.base = b.p.Max
		}
	}
	b.attempt++
	d := b.base
	if b.p.Jitter > 0 {
		if span := time.Duration(float64(d) * b.p.Jitter); span > 0 {
			d -= time.Duration(rand.Int63n(int64(span) + 1))
		}
	}
	if b.p.Budget > 0 && b.slept+d > b.p.Budget {
		d = b.p.Budget - b.slept
	}
	b.slept += d
	return d, true
}

// Sleep blocks for the next delay in the schedule. It returns false
// without sleeping when the budget is exhausted, and false
// immediately when stop closes mid-wait; a nil stop never interrupts.
func (b *Backoff) Sleep(stop <-chan struct{}) bool {
	d, ok := b.Next()
	if !ok {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// SleepContext is Sleep under a context: it returns ctx.Err() when
// canceled mid-wait and ErrBudgetExhausted when the schedule is
// spent.
func (b *Backoff) SleepContext(ctx context.Context) error {
	d, ok := b.Next()
	if !ok {
		return ErrBudgetExhausted
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
