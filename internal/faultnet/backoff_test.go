package faultnet

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := NewBackoff(Policy{Initial: 10 * time.Millisecond, Max: 40 * time.Millisecond,
		Factor: 2, Jitter: -1, MaxAttempts: 4})
	want := []time.Duration{10, 20, 40, 40}
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("attempt %d: schedule exhausted early", i)
		}
		if d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, d, w*time.Millisecond)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("schedule should be exhausted after MaxAttempts")
	}
	b.Reset()
	if d, ok := b.Next(); !ok || d != 10*time.Millisecond {
		t.Fatalf("after Reset: got (%v, %v), want (10ms, true)", d, ok)
	}
}

func TestBackoffJitterRange(t *testing.T) {
	b := NewBackoff(Policy{Initial: 100 * time.Millisecond, Max: 100 * time.Millisecond,
		Factor: 1, Jitter: 0.5})
	for i := 0; i < 50; i++ {
		d, ok := b.Next()
		if !ok {
			t.Fatal("unbounded schedule exhausted")
		}
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("attempt %d: jittered delay %v outside [50ms, 100ms]", i, d)
		}
	}
}

func TestBackoffBudget(t *testing.T) {
	b := NewBackoff(Policy{Initial: 40 * time.Millisecond, Max: 40 * time.Millisecond,
		Factor: 1, Jitter: -1, Budget: 100 * time.Millisecond})
	var total time.Duration
	for {
		d, ok := b.Next()
		if !ok {
			break
		}
		total += d
	}
	if total != 100*time.Millisecond {
		t.Fatalf("budgeted schedule slept %v total, want exactly 100ms", total)
	}
}

func TestBackoffSleepStop(t *testing.T) {
	b := NewBackoff(Policy{Initial: time.Minute, Jitter: -1})
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if b.Sleep(stop) {
		t.Fatal("Sleep should report interruption on closed stop channel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on stop")
	}
}

func TestBackoffSleepContext(t *testing.T) {
	b := NewBackoff(Policy{Initial: time.Minute, Jitter: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.SleepContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepContext on canceled ctx: %v, want context.Canceled", err)
	}
	exhausted := NewBackoff(Policy{Initial: time.Millisecond, MaxAttempts: 1, Jitter: -1})
	_, _ = exhausted.Next()
	if err := exhausted.SleepContext(context.Background()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("SleepContext past budget: %v, want ErrBudgetExhausted", err)
	}
}
