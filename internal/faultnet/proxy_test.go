package faultnet

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// echoServer accepts connections and echoes bytes back until EOF.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(nc, nc)
				_ = nc.Close()
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	return nc
}

func TestFrameTrackerMatchesWire(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), nil, bytes.Repeat([]byte("x"), 3000), []byte("z")}
	for i, p := range payloads {
		if err := wire.WriteFrame(&buf, wire.Frame{Type: uint16(i), Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	// Feed the exact byte stream wire produced, in awkward chunk sizes.
	var tr frameTracker
	stream := buf.Bytes()
	step := 1
	for off := 0; off < len(stream); {
		end := off + step
		if end > len(stream) {
			end = len(stream)
		}
		if n := tr.admit(stream[off:end], 0); n != end-off {
			t.Fatalf("admit consumed %d of %d", n, end-off)
		}
		off = end
		step = step*2 + 1
	}
	if tr.frames != len(payloads) {
		t.Fatalf("tracker counted %d frames, wire wrote %d", tr.frames, len(payloads))
	}
	if !tr.boundary() {
		t.Fatal("tracker not at a boundary after consuming whole frames")
	}
}

func TestProxyForwardsFaithfully(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	msg := []byte("through the proxy and back")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	if p.Accepted() != 1 {
		t.Fatalf("accepted %d, want 1", p.Accepted())
	}
}

func TestProxyCutAfterBytes(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPlanner(func(i int, rng *rand.Rand) Plan {
		return Plan{Up: Faults{CutAfterBytes: 10}}
	})
	nc := dialProxy(t, p)
	if _, err := nc.Write(bytes.Repeat([]byte("a"), 64)); err != nil {
		t.Fatal(err)
	}
	// At most 10 bytes echo back before the injected reset kills the
	// connection.
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := io.ReadFull(nc, make([]byte, 64))
	if err == nil {
		t.Fatal("read past an injected cut")
	}
	if n > 10 {
		t.Fatalf("%d bytes delivered, cut was after 10", n)
	}
	if p.Resets() == 0 {
		t.Fatal("no reset recorded")
	}
}

// TestProxyCutOnFrameBoundary drives real wire frames through a
// frame-cutting proxy and asserts the peer sees only complete frames:
// the stream dies between frames, never inside one.
func TestProxyCutOnFrameBoundary(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		frames int
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		var r result
		for {
			_, err := wire.ReadFrame(nc)
			if err != nil {
				r.err = err
				break
			}
			r.frames++
		}
		resCh <- r
	}()

	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPlanner(func(i int, rng *rand.Rand) Plan {
		return Plan{Up: Faults{CutAfterFrames: 2}}
	})
	conn, err := wire.Dial(p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		if err := conn.Send(uint16(i), bytes.Repeat([]byte("p"), 500)); err != nil {
			break // reset arrived; earlier frames are through
		}
	}
	select {
	case r := <-resCh:
		if r.frames != 2 {
			t.Fatalf("server decoded %d frames, cut was after 2", r.frames)
		}
		// A torn frame fails inside the payload read; a boundary cut
		// fails reading the next header.
		if r.err != io.EOF && !strings.Contains(r.err.Error(), "read header") {
			t.Fatalf("stream died mid-frame: %v", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the cut")
	}
}

func TestProxyBlackHole(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetPlanner(func(i int, rng *rand.Rand) Plan {
		return Plan{Up: Faults{BlackHole: true}, Down: Faults{BlackHole: true}}
	})
	nc := dialProxy(t, p)
	if _, err := nc.Write([]byte("into the void")); err != nil {
		t.Fatal(err) // accepted and swallowed, not refused
	}
	_ = nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("black-holed connection produced data")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want a deadline timeout, got %v", err)
	}
}

func TestProxyPartitionAndHeal(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)

	p.Partition()
	if _, err := nc.Write([]byte("stalled")); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("data crossed a partition")
	}

	p.Heal()
	got := make([]byte, len("stalled"))
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatalf("stalled traffic not delivered after heal: %v", err)
	}
	if string(got) != "stalled" {
		t.Fatalf("got %q after heal", got)
	}
}

func TestProxyOneWayPartition(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	// Prime the echo before partitioning Down: requests still arrive,
	// replies never return.
	p.PartitionOneWay(Down)
	if _, err := nc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("reply crossed a one-way partition")
	}
	p.Heal()
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err != nil {
		t.Fatalf("reply not delivered after heal: %v", err)
	}
}

func TestProxyDeterministicPlans(t *testing.T) {
	ln := echoServer(t)
	draw := func(seed int64) []int64 {
		p, err := NewProxy(ln.Addr().String(), seed)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		vals := make(chan int64, 5)
		p.SetPlanner(func(i int, rng *rand.Rand) Plan {
			vals <- rng.Int63()
			return Plan{}
		})
		for i := 0; i < 5; i++ {
			nc := dialProxy(t, p)
			// One echoed byte proves the connection (and its plan draw)
			// completed before the next dial.
			if _, err := nc.Write([]byte{1}); err != nil {
				t.Fatal(err)
			}
			_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := io.ReadFull(nc, make([]byte, 1)); err != nil {
				t.Fatal(err)
			}
			_ = nc.Close()
		}
		out := make([]int64, 5)
		for i := range out {
			out[i] = <-vals
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan rng %d not reproducible under one seed: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWrapConnPartialWritesAndCut(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	fc := WrapConn(c1, Faults{}, Faults{MaxChunk: 3, CutAfterBytes: 10})
	defer fc.Close()

	type got struct {
		data []byte
		err  error
	}
	gotCh := make(chan got, 1)
	go func() {
		b, err := io.ReadAll(c2)
		gotCh <- got{b, err}
	}()

	n, err := fc.Write(bytes.Repeat([]byte("k"), 25))
	if err == nil {
		t.Fatal("write across the cut point succeeded")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before cut, want 10", n)
	}
	g := <-gotCh
	if len(g.data) != 10 {
		t.Fatalf("peer received %d bytes, want exactly the 10 pre-cut bytes", len(g.data))
	}
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Fatal("write on a cut connection succeeded")
	}
}
