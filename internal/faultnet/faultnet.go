// Package faultnet is the repository's failure model made executable:
// one shared vocabulary of network faults, one shared retry/backoff
// policy, and one set of default deadlines, used by every protocol
// layer (dbms, sequoia, drivolution core) instead of per-package
// hand-rolled constants and sleep loops.
//
// It has two halves:
//
//   - The contract half — Policy/Backoff and the Default*Timeout
//     constants — is imported by production code. Every retry loop in
//     the tree routes through Backoff; every wire exchange is bounded
//     by a deadline derived from these defaults (see the "Failure
//     model" section of docs/ARCHITECTURE.md for the per-layer map).
//
//   - The injection half — Proxy and WrapConn — is imported by tests.
//     A Proxy sits invisibly between any wire client and server
//     (clients just dial Proxy.Addr instead of the real address, no
//     code changes), and can inject added latency, bandwidth caps,
//     partial writes, connection resets at byte- and frame-
//     boundaries, silent black-holes (accept then stall), and one-way
//     partitions — all deterministically from a seed, so a failing
//     chaos run reproduces from its logged seed.
//
// faultnet deliberately depends on nothing but the standard library:
// the packages it serves (wire, core, dbms, sequoia, workload) import
// it, never the reverse. The frame-boundary logic mirrors package
// wire's framing (8-byte header, big-endian payload length in bytes
// 4..8); TestFrameTrackerMatchesWire pins the two together.
//
//lint:deadline-exempt the chaos proxy relays raw conns verbatim; bounding them would mask the very stalls it exists to inject
package faultnet

import (
	"encoding/binary"
	"time"
)

// Default deadlines: the stack-wide failure contract. Servers bound
// the first frame of every accepted connection (the hello / initial
// request) with DefaultHandshakeTimeout so a connect-and-stall peer
// cannot pin an accept slot; every server-side Send carries
// DefaultWriteTimeout so a stalled reader cannot wedge a broadcast or
// file-transfer path; clients bound each request/response exchange
// with DefaultOpTimeout. All three are overridable per component —
// these are the values used when nothing is configured.
const (
	DefaultHandshakeTimeout = 10 * time.Second
	DefaultWriteTimeout     = 30 * time.Second
	DefaultOpTimeout        = 30 * time.Second
)

// Faults programs the failure behavior of one direction of one
// connection. The zero value forwards faithfully.
type Faults struct {
	// Latency is added once per forwarded chunk (a coarse propagation
	// delay, not a per-byte model).
	Latency time.Duration
	// Bandwidth caps throughput in bytes/second; 0 means unlimited.
	Bandwidth int
	// MaxChunk bounds how many bytes move per underlying write,
	// fragmenting large frames into many small partial writes; 0
	// means no fragmentation.
	MaxChunk int
	// CutAfterBytes hard-resets (RST, not FIN) the connection after
	// exactly this many bytes have been forwarded in this direction —
	// landing mid-frame for any realistic frame size.
	CutAfterBytes int64
	// CutAfterFrames hard-resets the connection exactly on a wire
	// frame boundary, after this many complete frames have been
	// forwarded in this direction.
	CutAfterFrames int
	// BlackHole forwards nothing, silently and forever: the peer's
	// writes vanish and its reads stall until a deadline fires. This
	// is the accept-then-stall server and the half-open TCP peer.
	BlackHole bool
}

// frameHeaderSize is the wire package's frame header: magic (2B),
// type (2B), payload length (4B big-endian).
const frameHeaderSize = 8

// frameTracker incrementally parses wire framing out of a forwarded
// byte stream so faults can trigger exactly on frame boundaries. It
// trusts the stream (no magic validation): it only measures where
// frames end.
type frameTracker struct {
	hdr    [frameHeaderSize]byte
	hdrLen int // header bytes collected for the current frame
	remain int // payload bytes outstanding for the current frame
	frames int // complete frames fully consumed
}

// boundary reports whether the consumed stream position sits exactly
// between two frames.
func (t *frameTracker) boundary() bool { return t.hdrLen == 0 && t.remain == 0 }

// admit consumes bytes from b, stopping early once limit complete
// frames have been consumed and the position is a boundary; it
// returns how many bytes were consumed. limit <= 0 means no limit.
func (t *frameTracker) admit(b []byte, limit int) int {
	consumed := 0
	for consumed < len(b) {
		if limit > 0 && t.frames >= limit && t.boundary() {
			break
		}
		if t.remain == 0 {
			n := copy(t.hdr[t.hdrLen:], b[consumed:])
			t.hdrLen += n
			consumed += n
			if t.hdrLen == frameHeaderSize {
				t.remain = int(binary.BigEndian.Uint32(t.hdr[4:8]))
				t.hdrLen = 0
				if t.remain == 0 {
					t.frames++ // zero-payload frame completes at its header
				}
			}
			continue
		}
		n := len(b) - consumed
		if n > t.remain {
			n = t.remain
		}
		t.remain -= n
		consumed += n
		if t.remain == 0 {
			t.frames++
		}
	}
	return consumed
}
