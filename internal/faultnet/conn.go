package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is the error surfaced by a wrapped connection once
// an injected cut has fired: the faultnet analogue of "connection
// reset by peer".
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// FaultyConn wraps a single net.Conn with read- and write-side
// faults — the in-process counterpart of Proxy for code that hands
// out net.Conns directly (net.Pipe tests, custom dialers). Cuts fired
// on either side kill the whole connection, with the underlying
// socket reset where possible.
type FaultyConn struct {
	net.Conn

	closeOnce sync.Once
	closed    chan struct{}

	rmu    sync.Mutex
	rf     Faults
	rtr    frameTracker
	rbytes int64
	rdead  bool

	wmu    sync.Mutex
	wf     Faults
	wtr    frameTracker
	wbytes int64
	wdead  bool
}

// WrapConn wraps nc, applying read to inbound data and write to
// outbound data.
func WrapConn(nc net.Conn, read, write Faults) *FaultyConn {
	return &FaultyConn{Conn: nc, rf: read, wf: write, closed: make(chan struct{})}
}

// Read implements net.Conn.
func (c *FaultyConn) Read(b []byte) (int, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if c.rdead {
		return 0, ErrInjectedReset
	}
	if c.rf.BlackHole {
		<-c.closed
		return 0, net.ErrClosed
	}
	if c.rf.CutAfterBytes > 0 {
		// Never consume past the cut point from the underlying stream.
		if rem := c.rf.CutAfterBytes - c.rbytes; rem < int64(len(b)) {
			b = b[:rem]
		}
	}
	n, err := c.Conn.Read(b)
	if n > 0 {
		if c.rf.Latency > 0 {
			//lint:sleep-ok injected read latency IS the fault being simulated
			time.Sleep(c.rf.Latency)
		}
		if c.rf.Bandwidth > 0 {
			//lint:sleep-ok injected bandwidth throttle IS the fault being simulated
			time.Sleep(time.Duration(float64(n) / float64(c.rf.Bandwidth) * float64(time.Second)))
		}
		allowed := n
		if c.rf.CutAfterFrames > 0 {
			a := c.rtr.admit(b[:n], c.rf.CutAfterFrames)
			if a < allowed || c.rtr.frames >= c.rf.CutAfterFrames {
				allowed = a // bytes past the boundary die with the reset
				c.rdead = true
			}
		}
		c.rbytes += int64(allowed)
		if c.rf.CutAfterBytes > 0 && c.rbytes >= c.rf.CutAfterBytes {
			c.rdead = true
		}
		if c.rdead {
			c.kill()
			if allowed == 0 {
				return 0, ErrInjectedReset
			}
		}
		return allowed, nil
	}
	return n, err
}

// Write implements net.Conn.
func (c *FaultyConn) Write(b []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wdead {
		return 0, ErrInjectedReset
	}
	if c.wf.BlackHole {
		// Swallowed silently: the bytes "left" this host and vanished.
		return len(b), nil
	}
	if c.wf.Latency > 0 {
		//lint:sleep-ok injected write latency IS the fault being simulated
		time.Sleep(c.wf.Latency)
	}
	if c.wf.Bandwidth > 0 {
		//lint:sleep-ok injected bandwidth throttle IS the fault being simulated
		time.Sleep(time.Duration(float64(len(b)) / float64(c.wf.Bandwidth) * float64(time.Second)))
	}
	allowed := len(b)
	if c.wf.CutAfterBytes > 0 {
		if rem := c.wf.CutAfterBytes - c.wbytes; int64(allowed) >= rem {
			allowed = int(rem)
			c.wdead = true
		}
	}
	if c.wf.CutAfterFrames > 0 {
		a := c.wtr.admit(b[:allowed], c.wf.CutAfterFrames)
		if a < allowed || c.wtr.frames >= c.wf.CutAfterFrames {
			allowed = a
			c.wdead = true
		}
	}
	n := 0
	if allowed > 0 {
		if !c.writeChunks(b[:allowed]) {
			c.wdead = true
		}
		n = allowed
	}
	c.wbytes += int64(n)
	if c.wdead {
		c.kill()
		return n, ErrInjectedReset
	}
	return n, nil
}

func (c *FaultyConn) writeChunks(b []byte) bool {
	max := c.wf.MaxChunk
	if max <= 0 {
		max = len(b)
	}
	for len(b) > 0 {
		n := max
		if n > len(b) {
			n = len(b)
		}
		if _, err := c.Conn.Write(b[:n]); err != nil {
			return false
		}
		b = b[n:]
	}
	return true
}

// kill resets the underlying socket (RST when TCP) after a cut.
func (c *FaultyConn) kill() {
	c.closeOnce.Do(func() {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Conn.Close()
		close(c.closed)
	})
}

// Close implements net.Conn.
func (c *FaultyConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		err = c.Conn.Close()
		close(c.closed)
	})
	return err
}
