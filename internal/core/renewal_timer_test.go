package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dbver"
)

// TestAutomaticRenewalTimer: with a short lease, the bootloader's timer
// thread renews on its own — no ForceRenew — and picks up an upgrade
// within roughly one lease period.
func TestAutomaticRenewalTimer(t *testing.T) {
	f := newFixture(t, 1)
	// Short lease so the test runs fast.
	lease := 40 * time.Millisecond
	srv2, err := NewServer("short-lease", NewLocalStore(f.drv.store.(*LocalStore).DB),
		WithDefaultLease(lease))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))

	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{srv2.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithRenewAhead(0.7),
		WithDialTimeout(time.Second))
	t.Cleanup(b.Close)
	mustConnect(t, b, f.appURL())

	// Renewals happen by themselves.
	deadline := time.Now().Add(3 * time.Second)
	for b.Stats().Renewals < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.Stats().Renewals; got < 2 {
		t.Fatalf("timer renewals = %d, want >= 2", got)
	}

	// An upgrade lands without any explicit trigger.
	f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	for b.Version() != dbver.V(2, 0, 0) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("upgrade not picked up by the timer; version = %v, stats = %+v",
			b.Version(), b.Stats())
	}
}

// TestUpgradeUnderConcurrentConnects: connects racing a hot swap must
// each get a working driver (old or new), never an error.
func TestUpgradeUnderConcurrentConnects(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 4096))
	b := f.bootloader(t)
	mustConnect(t, b, f.appURL())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := b.Connect(f.appURL(), nil)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Query("SELECT 1"); err != nil {
					// A connection drained mid-use by the swap is
					// expected under AFTER_COMMIT; a *connect* failure
					// is not. Only connect errors fail the test.
					c.Close()
					continue
				}
				c.Close()
			}
		}()
	}

	// Several upgrades while connects hammer the bootloader.
	for i := 0; i < 5; i++ {
		f.addDriver(t, f.driverImage(dbver.V(1, i+1, 0), 1, 4096))
		if err := b.ForceRenew("prod"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("connect failed during upgrade: %v", err)
	}
	if b.Version() != dbver.V(1, 5, 0) {
		t.Fatalf("final version = %v", b.Version())
	}
	if got := b.Stats().Upgrades; got != 5 {
		t.Fatalf("upgrades = %d", got)
	}
}
