package core

import (
	"errors"
	"testing"

	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// TestCorruptStoredDriver: garbage in binary_code must surface as a
// clean protocol error at bootstrap, not a crash, and must not poison
// later valid drivers.
func TestCorruptStoredDriver(t *testing.T) {
	f := newFixture(t, 1)

	// Insert a corrupt row directly (bypassing AddDriver's encoding).
	st := f.drv.Store()
	if err := insertDriver(st, DriverRecord{
		DriverID: 1,
		APIName:  "JDBC",
		APIMajor: -1, APIMinor: -1,
		Version:    dbver.V(9, 9, 9), // newest, so it matches first
		BinaryCode: []byte("this is not a driver image"),
		Format:     "IMAGE",
	}); err != nil {
		t.Fatal(err)
	}

	b := f.bootloader(t)
	_, err := b.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeInternal {
		t.Fatalf("err = %v, want INTERNAL (corrupt stored driver)", err)
	}

	// The DBA fixes it by deleting the corrupt row; a valid driver then
	// serves normally.
	if err := f.drv.DeleteDriver(1); err != nil {
		t.Fatal(err)
	}
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b2 := f.bootloader(t)
	if _, err := b2.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("valid driver after cleanup: %v", err)
	}
}

// TestChecksumMismatchRejected: an offer whose checksum does not match
// the delivered bytes is refused (tamper evidence without signatures).
func TestChecksumMismatchRejected(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)

	// Sanity: the normal path validates the checksum (covered widely
	// elsewhere); here we corrupt the stored payload *after* the lease
	// flow computes checksums, by swapping the row's blob for a
	// different valid image. The next bootstrap offers the new checksum
	// consistently, so connect succeeds — this guards the invariant that
	// checksum and payload travel together.
	other := f.driverImage(dbver.V(1, 0, 0), 1, 257)
	if _, err := f.drv.Store().Exec(
		`UPDATE `+DriversTable+` SET binary_code = $b WHERE driver_id = 1`,
		sqlmini.Args{"b": other.Encode()}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Connect(f.appURL(), nil); err != nil {
		t.Fatalf("consistent offer+payload must connect: %v", err)
	}
}

// TestServerDiesMidLifecycle: the Drivolution server vanishing between
// bootstrap and renewal must not disturb the application (paper §3.2:
// "a failure should have a minimal impact on already running
// applications").
func TestServerDiesMidLifecycle(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	f.drv.Stop()

	// Running connections and even new connections keep working: the
	// driver is installed, only lease renewal is impacted.
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	c2, err := b.Connect(f.appURL(), nil)
	if err != nil {
		t.Fatalf("new connection with installed driver: %v", err)
	}
	defer c2.Close()
	if err := b.ForceRenew("prod"); err == nil {
		t.Fatal("renewal should fail while the server is down")
	}
	if m := b.Stats(); m.Revocations != 0 {
		t.Fatalf("server outage must not revoke the driver: %+v", m)
	}
}

// TestEmptyServerList: a bootloader with no servers fails cleanly.
func TestEmptyServerList(t *testing.T) {
	f := newFixture(t, 1)
	b := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64, nil, f.rt)
	t.Cleanup(b.Close)
	if _, err := b.Connect(f.appURL(), nil); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
}

// TestBadURLThroughBootloader: URL parse errors surface before any
// network traffic.
func TestBadURLThroughBootloader(t *testing.T) {
	f := newFixture(t, 1)
	b := f.bootloader(t)
	if _, err := b.Connect("not a url", nil); err == nil {
		t.Fatal("expected URL error")
	}
}
