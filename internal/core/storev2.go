package core

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/sqlmini"
)

// Store API v2: optional capability interfaces alongside Store,
// following the GenerationStore pattern — a store advertises a
// capability by implementing the interface, and callers detect it with
// a type assertion (directly, or through the RunAtomic / ExecBatchOn /
// PrepareOn adapters, which degrade to documented best-effort
// fallbacks on plain-Exec stores so third-party stores keep working).
//
//   - TxStore:    atomic multi-statement units (Begin/Commit/Rollback).
//   - StmtStore:  reusable prepared handles carrying their cached
//     plan/AST, so hot paths skip parse-and-plan per call.
//   - BatchStore: N statements in one shot — one wire round trip on
//     ConnStore, one engine-lock acquisition on LocalStore.
//
// LocalStore implements all three natively; ConnStore implements
// TxStore (per-transaction connection affinity) and BatchStore (one
// batch frame when the driver connection supports it).

// Statement is one SQL statement plus its arguments — the unit of
// batch execution. It is the same type the client layer ships over
// the wire.
type Statement = client.Statement

// Tx is one open transaction on a TxStore: statements execute with
// atomic multi-statement semantics — Commit publishes all of them,
// Rollback (or a store-side failure) reverts all of them. A Tx is not
// safe for concurrent use; other store traffic proceeds independently
// (no cross-tx head-of-line blocking).
type Tx interface {
	// Exec runs one statement inside the transaction.
	Exec(sql string, args ...any) (*sqlmini.Result, error)
	// Query is Exec for row-returning statements.
	Query(sql string, args ...any) (*sqlmini.Result, error)
	// Commit makes the transaction's effects durable.
	Commit() error
	// Rollback reverts every statement of the transaction.
	Rollback() error
}

// TxStore is implemented by stores that can open real transactions.
type TxStore interface {
	Store
	// Begin opens a transaction.
	Begin() (Tx, error)
}

// Stmt is a reusable prepared-statement handle. On LocalStore it
// carries the parsed AST plus the planner's cached analysis; executing
// it skips parse-and-plan. Handles are safe for concurrent use.
type Stmt interface {
	// Exec runs the prepared statement with the given arguments.
	Exec(args ...any) (*sqlmini.Result, error)
	// Close releases the handle.
	Close() error
}

// StmtStore is implemented by stores with native prepared statements.
type StmtStore interface {
	Store
	// Prepare parses sql once into a reusable handle.
	Prepare(sql string) (Stmt, error)
}

// BatchStore is implemented by stores that can execute a statement
// list as one unit: a single wire round trip on connection-backed
// stores, a single lock acquisition (and one atomic apply-or-revert)
// on the embedded store. Results are returned only on full success.
type BatchStore interface {
	Store
	// ExecBatch runs stmts in order as one atomic unit where the store
	// can provide atomicity.
	ExecBatch(stmts []Statement) ([]*sqlmini.Result, error)
}

// OptionalGenerationStore is implemented by stores whose GenerationStore
// capability depends on run-time negotiation rather than the type alone
// (ConnStore: the remote session must carry the table-versions
// capability). Callers that found GenerationStore by type assertion
// must also consult GenerationSupported when this interface is present;
// GenerationEnabled wraps both checks.
type OptionalGenerationStore interface {
	GenerationStore
	// GenerationSupported reports whether Generation actually works on
	// this store instance. It performs no wire round trip once the
	// answer is determined.
	GenerationSupported() bool
}

// GenerationEnabled reports whether st serves live generation counters:
// it implements GenerationStore, and — when the capability is
// negotiated at run time — the negotiation succeeded. The returned
// GenerationStore is nil when disabled.
func GenerationEnabled(st Store) (GenerationStore, bool) {
	gs, ok := st.(GenerationStore)
	if !ok {
		return nil, false
	}
	if og, ok := st.(OptionalGenerationStore); ok && !og.GenerationSupported() {
		return nil, false
	}
	return gs, true
}

// ErrExecOutcomeUnknown reports a connection that died after a
// statement may have reached the server: the statement cannot be
// safely retried because it may already have been applied. Callers
// that can tolerate double-application (idempotent writes) may retry;
// everyone else must surface the ambiguity.
var ErrExecOutcomeUnknown = errors.New("core: statement outcome unknown (connection lost mid-statement)")

// ErrTxDone reports use of a transaction after Commit or Rollback.
var ErrTxDone = errors.New("core: transaction already finished")

// RunAtomic executes fn against a transaction when st implements
// TxStore — fn's statements commit together or roll back together
// (including when fn returns an error). On plain-Exec stores it
// degrades to BEST-EFFORT semantics: statements apply immediately as
// fn issues them, Commit and Rollback are no-ops, and a mid-sequence
// failure leaves the earlier statements applied. Operations needing
// hard atomicity must require TxStore explicitly.
func RunAtomic(st Store, fn func(tx Tx) error) error {
	ts, ok := st.(TxStore)
	if !ok {
		return fn(fallbackTx{st: st})
	}
	tx, err := ts.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

// fallbackTx is RunAtomic's plain-store degradation: eager autocommit
// statements wearing the Tx interface.
type fallbackTx struct{ st Store }

func (f fallbackTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return f.st.Exec(sql, args...)
}
func (f fallbackTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return f.st.Exec(sql, args...)
}
func (f fallbackTx) Commit() error   { return nil }
func (f fallbackTx) Rollback() error { return nil } // best-effort: nothing to revert

// ExecBatchOn runs stmts through the store's batch capability when
// present; otherwise it falls back to one Exec per statement —
// sequential, best-effort, stopping at the first error (with earlier
// statements applied). The returned results parallel stmts and are
// non-nil only on full success.
func ExecBatchOn(st Store, stmts []Statement) ([]*sqlmini.Result, error) {
	if bs, ok := st.(BatchStore); ok {
		return bs.ExecBatch(stmts)
	}
	out := make([]*sqlmini.Result, 0, len(stmts))
	for i, s := range stmts {
		res, err := st.Exec(s.SQL, s.Args...)
		if err != nil {
			return nil, fmt.Errorf("core: batch statement %d: %w", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// PrepareOn returns a native prepared handle when the store has
// StmtStore, and an Exec-backed handle (each call re-parses on the
// store side) otherwise — callers hold one code path either way.
func PrepareOn(st Store, sql string) (Stmt, error) {
	if ss, ok := st.(StmtStore); ok {
		return ss.Prepare(sql)
	}
	return fallbackStmt{st: st, sql: sql}, nil
}

type fallbackStmt struct {
	st  Store
	sql string
}

func (f fallbackStmt) Exec(args ...any) (*sqlmini.Result, error) {
	return f.st.Exec(f.sql, args...)
}
func (f fallbackStmt) Close() error { return nil }
