package core

import (
	"sync/atomic"

	"repro/internal/sqlmini"
)

// CountingStore wraps a Store and counts what crosses the storage
// boundary: statements, wire-level round trips (a batch frame is one),
// batches, and transactions. Tests use it to pin hot-path statement
// budgets — a no-change lease renewal is 1 statement, an expiry sweep
// is 1 regardless of lease count — so a regression that quietly adds
// per-row SQL fails loudly.
//
// Capability note: CountingStore advertises every v2 capability. When
// the inner store natively supports one, calls forward (and count);
// when it doesn't, CountingStore degrades to exactly the fallbacks the
// package-level adapters (RunAtomic / ExecBatchOn / PrepareOn) would
// use, so wrapping never changes observable semantics — a plain-Exec
// inner store still gets best-effort transactions and sequential
// batches. It does NOT advertise GenerationStore; use
// CountingGenerationStore to preserve the catalog fast path.
type CountingStore struct {
	inner Store

	statements atomic.Int64
	roundTrips atomic.Int64
	batchCount atomic.Int64
	txCount    atomic.Int64
}

// NewCountingStore wraps inner.
func NewCountingStore(inner Store) *CountingStore {
	return &CountingStore{inner: inner}
}

// Statements reports statements issued through the wrapper (batch and
// transaction statements included).
func (c *CountingStore) Statements() int64 { return c.statements.Load() }

// RoundTrips reports wire round trips, assuming a batch on a
// batch-capable inner store costs one.
func (c *CountingStore) RoundTrips() int64 { return c.roundTrips.Load() }

// Batches reports ExecBatch calls.
func (c *CountingStore) Batches() int64 { return c.batchCount.Load() }

// Txs reports Begin calls.
func (c *CountingStore) Txs() int64 { return c.txCount.Load() }

// Reset zeroes all counters (typically right before the measured
// window).
func (c *CountingStore) Reset() {
	c.statements.Store(0)
	c.roundTrips.Store(0)
	c.batchCount.Store(0)
	c.txCount.Store(0)
}

// Exec implements Store.
func (c *CountingStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	c.statements.Add(1)
	c.roundTrips.Add(1)
	return c.inner.Exec(sql, args...)
}

// Begin implements TxStore, degrading to the RunAtomic fallback
// (eager autocommit, no-op Commit/Rollback) on plain inner stores.
func (c *CountingStore) Begin() (Tx, error) {
	c.txCount.Add(1)
	ts, ok := c.inner.(TxStore)
	if !ok {
		return fallbackTx{st: c}, nil
	}
	c.roundTrips.Add(1) // BEGIN
	tx, err := ts.Begin()
	if err != nil {
		return nil, err
	}
	return &countingTx{c: c, tx: tx}, nil
}

type countingTx struct {
	c  *CountingStore
	tx Tx
}

func (t *countingTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	t.c.statements.Add(1)
	t.c.roundTrips.Add(1)
	return t.tx.Exec(sql, args...)
}

func (t *countingTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return t.Exec(sql, args...)
}

func (t *countingTx) Commit() error {
	t.c.roundTrips.Add(1)
	return t.tx.Commit()
}

func (t *countingTx) Rollback() error {
	t.c.roundTrips.Add(1)
	return t.tx.Rollback()
}

// ExecBatch implements BatchStore: one round trip on batch-capable
// inner stores, the ExecBatchOn sequential fallback otherwise (each
// statement counted individually by the Exec it routes through).
func (c *CountingStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	c.batchCount.Add(1)
	if bs, ok := c.inner.(BatchStore); ok {
		c.statements.Add(int64(len(stmts)))
		c.roundTrips.Add(1)
		return bs.ExecBatch(stmts)
	}
	return ExecBatchOn(storeOnly{c}, stmts)
}

// storeOnly strips the capability methods off a CountingStore so the
// adapter fallbacks route through its counted Exec without recursing
// into ExecBatch/Begin again.
type storeOnly struct{ st Store }

func (s storeOnly) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return s.st.Exec(sql, args...)
}

// Prepare implements StmtStore, degrading to an Exec-backed handle on
// plain inner stores. Either way every execution counts.
func (c *CountingStore) Prepare(sql string) (Stmt, error) {
	ss, ok := c.inner.(StmtStore)
	if !ok {
		return fallbackStmt{st: c, sql: sql}, nil
	}
	h, err := ss.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return countingStmt{c: c, h: h}, nil
}

type countingStmt struct {
	c *CountingStore
	h Stmt
}

func (s countingStmt) Exec(args ...any) (*sqlmini.Result, error) {
	s.c.statements.Add(1)
	s.c.roundTrips.Add(1)
	return s.h.Exec(args...)
}

func (s countingStmt) Close() error { return s.h.Close() }

// CountingGenerationStore is CountingStore for inner stores with the
// catalog fast path: it additionally forwards Generation (and
// TableVersion when available, degrading to the whole-generation
// counter otherwise, which only costs the delta-reload optimization).
type CountingGenerationStore struct {
	CountingStore
	gen GenerationStore
}

// NewCountingGenerationStore wraps inner, preserving GenerationStore.
func NewCountingGenerationStore(inner GenerationStore) *CountingGenerationStore {
	return &CountingGenerationStore{CountingStore: CountingStore{inner: inner}, gen: inner}
}

// Generation implements GenerationStore.
func (c *CountingGenerationStore) Generation() uint64 { return c.gen.Generation() }

// GenerationSupported implements OptionalGenerationStore, forwarding
// the inner store's run-time capability answer (always true for stores
// whose capability is static, like LocalStore).
func (c *CountingGenerationStore) GenerationSupported() bool {
	if og, ok := c.gen.(OptionalGenerationStore); ok {
		return og.GenerationSupported()
	}
	return true
}

// TableVersion implements TableVersionStore.
func (c *CountingGenerationStore) TableVersion(name string) uint64 {
	if tvs, ok := c.gen.(TableVersionStore); ok {
		return tvs.TableVersion(name)
	}
	return c.gen.Generation()
}
