package core

import (
	"fmt"
	"time"

	"repro/internal/dbver"
	"repro/internal/wire"
)

// Frame types of the Drivolution bootstrap protocol. The paper's protocol
// has three core messages (REQUEST, OFFER, ERROR) plus the DHCP-like
// DISCOVER and an FTP-like file transfer (FILE_REQUEST / FILE_DATA);
// NOTIFY implements the §3.2 dedicated-channel push option.
const (
	msgDiscover    uint16 = 0x0201 // DRIVOLUTION_DISCOVER
	msgRequest     uint16 = 0x0202 // DRIVOLUTION_REQUEST
	msgOffer       uint16 = 0x0203 // DRIVOLUTION_OFFER
	msgError       uint16 = 0x0204 // DRIVOLUTION_ERROR
	msgFileRequest uint16 = 0x0205 // FILE_REQUEST
	msgFileData    uint16 = 0x0206 // FILE_DATA (chunked)
	msgSubscribe   uint16 = 0x0207 // open a dedicated update channel
	msgNotify      uint16 = 0x0208 // server push: driver table changed
	msgRelease     uint16 = 0x0209 // bootloader gives back its lease (license mode)
	msgReleaseOK   uint16 = 0x020A
	msgRedirect    uint16 = 0x020B // cluster: repeat the REQUEST at the owning member
)

// ErrorCode classifies DRIVOLUTION_ERROR messages.
type ErrorCode uint16

// Drivolution protocol error codes.
const (
	// ErrCodeNoDriver: no driver matches the request (invalid database,
	// no driver for the API/platform, ...).
	ErrCodeNoDriver ErrorCode = iota + 1
	// ErrCodeAuth: credentials rejected.
	ErrCodeAuth
	// ErrCodeRevoked: the lease's driver was revoked with no replacement.
	ErrCodeRevoked
	// ErrCodeNoLease: unknown lease id on renewal/file request.
	ErrCodeNoLease
	// ErrCodeTransfer: transfer-method restriction violated.
	ErrCodeTransfer
	// ErrCodeInternal: server-side failure.
	ErrCodeInternal
)

// String names the code.
func (c ErrorCode) String() string {
	switch c {
	case ErrCodeNoDriver:
		return "NO_DRIVER"
	case ErrCodeAuth:
		return "AUTH"
	case ErrCodeRevoked:
		return "REVOKED"
	case ErrCodeNoLease:
		return "NO_LEASE"
	case ErrCodeTransfer:
		return "TRANSFER"
	case ErrCodeInternal:
		return "INTERNAL"
	default:
		return fmt.Sprintf("ErrorCode(%d)", uint16(c))
	}
}

// ProtocolError is a DRIVOLUTION_ERROR delivered to the bootloader.
type ProtocolError struct {
	Code    ErrorCode
	Message string

	// redirect, when set, makes the request handler answer with a
	// msgRedirect frame instead of an error frame (cluster shard
	// routing); it never reaches the wire as an error.
	redirect *Redirect
}

// Error implements error.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("drivolution: %s: %s", e.Code, e.Message)
}

// Request is DRIVOLUTION_REQUEST (and DISCOVER, which carries the same
// fields — paper §3.1: "a DRIVOLUTION_DISCOVER message can be broadcast
// ... with the same information as a request message").
type Request struct {
	// Database plus credentials, as in the paper.
	Database string
	User     string
	Password string
	// API the client needs, with optional version (negative = any).
	API dbver.API
	// ClientPlatform the bootloader runs on.
	ClientPlatform dbver.Platform
	// Preferred binary format and driver version, optional.
	PreferredFormat  string
	PreferredVersion dbver.Version
	// RequiredPackages requests on-demand assembly (§5.4.1): NLS, GIS,
	// Kerberos, ... Empty means the base driver.
	RequiredPackages []string
	// LeaseID is non-zero for renewals (Table 4 flow).
	LeaseID uint64
	// CurrentChecksum is the checksum of the driver the bootloader is
	// currently running; the server omits the file transfer when the
	// matched driver has identical content.
	CurrentChecksum string
	// ClientID identifies the client application instance for lease
	// bookkeeping (the client_ip analog; host:port of the bootloader).
	ClientID string
}

func (r Request) encode() []byte {
	e := wire.NewEncoder(256)
	e.String(r.Database)
	e.String(r.User)
	e.String(r.Password)
	e.String(r.API.Name)
	e.Int32(int32(r.API.Major))
	e.Int32(int32(r.API.Minor))
	e.String(string(r.ClientPlatform))
	e.String(r.PreferredFormat)
	e.Int32(int32(r.PreferredVersion.Major))
	e.Int32(int32(r.PreferredVersion.Minor))
	e.Int32(int32(r.PreferredVersion.Micro))
	e.StringSlice(r.RequiredPackages)
	e.Uint64(r.LeaseID)
	e.String(r.CurrentChecksum)
	e.String(r.ClientID)
	return e.Bytes()
}

func decodeRequest(b []byte) (Request, error) {
	d := wire.NewDecoder(b)
	r := Request{
		Database: d.String(),
		User:     d.String(),
		Password: d.String(),
	}
	r.API.Name = d.String()
	r.API.Major = int(d.Int32())
	r.API.Minor = int(d.Int32())
	r.ClientPlatform = dbver.Platform(d.String())
	r.PreferredFormat = d.String()
	r.PreferredVersion.Major = int(d.Int32())
	r.PreferredVersion.Minor = int(d.Int32())
	r.PreferredVersion.Micro = int(d.Int32())
	r.RequiredPackages = d.StringSlice()
	r.LeaseID = d.Uint64()
	r.CurrentChecksum = d.String()
	r.ClientID = d.String()
	return r, d.Err()
}

// Offer is DRIVOLUTION_OFFER: lease terms plus driver location/format
// (paper §3.4.1: "The message contains one of the three expiration
// policies ... along with the lease time, the driver location and
// format").
type Offer struct {
	LeaseID          uint64
	LeaseTime        time.Duration
	RenewPolicy      RenewPolicy
	ExpirationPolicy ExpirationPolicy
	TransferMethod   TransferMethod
	// HasDriver is false for a renewal that keeps the current driver
	// (Table 4: "a DRIVOLUTION_OFFER without data file instructs the
	// bootloader to continue to use the same driver").
	HasDriver bool
	// DriverChecksum identifies the offered driver content, letting the
	// bootloader skip the download when it already runs that driver.
	DriverChecksum string
	// Format of the driver binary (Table 1 binary_format).
	Format string
	// Size of the driver binary in bytes.
	Size uint32
	// ServerName identifies the offering server (useful under DISCOVER).
	ServerName string
}

func (o Offer) encode() []byte {
	e := wire.NewEncoder(128)
	o.encodeTo(e)
	return e.Bytes()
}

// encodeTo writes the offer into a caller-owned (typically pooled)
// encoder.
func (o Offer) encodeTo(e *wire.Encoder) {
	e.Uint64(o.LeaseID)
	e.Duration(o.LeaseTime)
	e.Int32(int32(o.RenewPolicy))
	e.Int32(int32(o.ExpirationPolicy))
	e.Int32(int32(o.TransferMethod))
	e.Bool(o.HasDriver)
	e.String(o.DriverChecksum)
	e.String(o.Format)
	e.Uint32(o.Size)
	e.String(o.ServerName)
}

func decodeOffer(b []byte) (Offer, error) {
	d := wire.NewDecoder(b)
	o := Offer{
		LeaseID:          d.Uint64(),
		LeaseTime:        d.Duration(),
		RenewPolicy:      RenewPolicy(d.Int32()),
		ExpirationPolicy: ExpirationPolicy(d.Int32()),
		TransferMethod:   TransferMethod(d.Int32()),
		HasDriver:        d.Bool(),
		DriverChecksum:   d.String(),
		Format:           d.String(),
		Size:             d.Uint32(),
		ServerName:       d.String(),
	}
	return o, d.Err()
}

func encodeProtocolError(code ErrorCode, msg string) []byte {
	e := wire.NewEncoder(len(msg) + 8)
	e.Uint16(uint16(code))
	e.String(msg)
	return e.Bytes()
}

func decodeProtocolError(b []byte) (*ProtocolError, error) {
	d := wire.NewDecoder(b)
	pe := &ProtocolError{Code: ErrorCode(d.Uint16()), Message: d.String()}
	return pe, d.Err()
}

// Redirect is the payload of msgRedirect: the answer a cluster member
// gives to a REQUEST whose shard it does not own. The bootloader
// repeats the request against Addr — the non-owner redirects rather
// than proxying, so steady-state lease traffic flows straight to the
// owner. An empty Addr means the answering member cannot name a
// serving owner right now (it is cut off from the cluster majority);
// the client should try its other configured servers.
//
// Redirect implements error so it can travel the same result paths as
// *ProtocolError, and like *ProtocolError it marks a clean, complete
// exchange: the connection remains on a frame boundary and is safe to
// reuse.
type Redirect struct {
	Addr   string // owner's advertised client address ("" = none known)
	Server string // owner's server name, for diagnostics
}

// Error implements error.
func (r *Redirect) Error() string {
	if r.Addr == "" {
		return "drivolution: redirected: no owning member available"
	}
	return fmt.Sprintf("drivolution: redirected to %s (%s)", r.Addr, r.Server)
}

func (r *Redirect) encode() []byte {
	e := wire.NewEncoder(64)
	e.String(r.Addr)
	e.String(r.Server)
	return e.Bytes()
}

func decodeRedirect(b []byte) (*Redirect, error) {
	d := wire.NewDecoder(b)
	r := &Redirect{Addr: d.String(), Server: d.String()}
	return r, d.Err()
}

// fileRequest asks for the driver binary of a lease.
type fileRequest struct {
	LeaseID uint64
}

func (f fileRequest) encode() []byte {
	e := wire.NewEncoder(8)
	e.Uint64(f.LeaseID)
	return e.Bytes()
}

func decodeFileRequest(b []byte) (fileRequest, error) {
	d := wire.NewDecoder(b)
	f := fileRequest{LeaseID: d.Uint64()}
	return f, d.Err()
}

// transferChunkSize is the FILE_DATA chunk size; drivers larger than one
// chunk stream across multiple frames like the paper's FTP-like protocol.
const transferChunkSize = 256 << 10

// fileChunk is one FILE_DATA frame.
type fileChunk struct {
	Offset uint32
	Total  uint32
	Last   bool
	Data   []byte
}

func (c fileChunk) encode() []byte {
	e := wire.NewEncoder(16 + len(c.Data))
	c.encodeTo(e)
	return e.Bytes()
}

// encodeTo writes the chunk into a caller-owned (typically pooled)
// encoder; the transfer loop reuses one buffer for every frame of a
// stream.
func (c fileChunk) encodeTo(e *wire.Encoder) {
	e.Uint32(c.Offset)
	e.Uint32(c.Total)
	e.Bool(c.Last)
	e.Bytes32(c.Data)
}

func decodeFileChunk(b []byte) (fileChunk, error) {
	d := wire.NewDecoder(b)
	c := fileChunk{
		Offset: d.Uint32(),
		Total:  d.Uint32(),
		Last:   d.Bool(),
		Data:   d.Bytes32(),
	}
	return c, d.Err()
}

// subscribeMsg opens a dedicated update channel for (database, api).
type subscribeMsg struct {
	Database string
	API      string
}

func (s subscribeMsg) encode() []byte {
	e := wire.NewEncoder(64)
	e.String(s.Database)
	e.String(s.API)
	return e.Bytes()
}

func decodeSubscribe(b []byte) (subscribeMsg, error) {
	d := wire.NewDecoder(b)
	s := subscribeMsg{Database: d.String(), API: d.String()}
	return s, d.Err()
}

// releaseMsg gives back a lease (license server mode, §5.4.2).
type releaseMsg struct {
	LeaseID uint64
}

func (r releaseMsg) encode() []byte {
	e := wire.NewEncoder(8)
	e.Uint64(r.LeaseID)
	return e.Bytes()
}

func decodeRelease(b []byte) (releaseMsg, error) {
	d := wire.NewDecoder(b)
	r := releaseMsg{LeaseID: d.Uint64()}
	return r, d.Err()
}
