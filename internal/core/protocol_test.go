package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dbver"
)

func TestRequestRoundTrip(t *testing.T) {
	in := Request{
		Database:         "prod",
		User:             "app",
		Password:         "secret",
		API:              dbver.APIOf("JDBC", 3, 0),
		ClientPlatform:   dbver.PlatformLinuxAMD64,
		PreferredFormat:  "IMAGE",
		PreferredVersion: dbver.V(1, 2, 3),
		RequiredPackages: []string{"gis", "nls-fr"},
		LeaseID:          42,
		CurrentChecksum:  "abc123",
		ClientID:         "host-7",
	}
	out, err := decodeRequest(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Database != in.Database || out.User != in.User || out.Password != in.Password ||
		out.API != in.API || out.ClientPlatform != in.ClientPlatform ||
		out.PreferredFormat != in.PreferredFormat || out.PreferredVersion != in.PreferredVersion ||
		out.LeaseID != in.LeaseID || out.CurrentChecksum != in.CurrentChecksum ||
		out.ClientID != in.ClientID {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	if len(out.RequiredPackages) != 2 || out.RequiredPackages[0] != "gis" {
		t.Fatalf("packages = %v", out.RequiredPackages)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	prop := func(db, user, pw, cid, sum string, lease uint64, maj, min uint8) bool {
		in := Request{
			Database:        db,
			User:            user,
			Password:        pw,
			API:             dbver.APIOf("JDBC", int(maj), int(min)),
			ClientPlatform:  dbver.PlatformGo,
			LeaseID:         lease,
			CurrentChecksum: sum,
			ClientID:        cid,
		}
		out, err := decodeRequest(in.encode())
		return err == nil &&
			out.Database == db && out.User == user && out.Password == pw &&
			out.LeaseID == lease && out.CurrentChecksum == sum && out.ClientID == cid
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOfferRoundTripProperty(t *testing.T) {
	prop := func(lease uint64, ms uint32, hasDriver bool, checksum, format, server string, size uint32) bool {
		in := Offer{
			LeaseID:          lease,
			LeaseTime:        time.Duration(ms) * time.Millisecond,
			RenewPolicy:      RenewUpgrade,
			ExpirationPolicy: AfterCommit,
			TransferMethod:   TransferAny,
			HasDriver:        hasDriver,
			DriverChecksum:   checksum,
			Format:           format,
			Size:             size,
			ServerName:       server,
		}
		out, err := decodeOffer(in.encode())
		return err == nil && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolErrorRoundTrip(t *testing.T) {
	for _, code := range []ErrorCode{ErrCodeNoDriver, ErrCodeAuth, ErrCodeRevoked,
		ErrCodeNoLease, ErrCodeTransfer, ErrCodeInternal} {
		pe, err := decodeProtocolError(encodeProtocolError(code, "detail: "+code.String()))
		if err != nil {
			t.Fatal(err)
		}
		if pe.Code != code || pe.Message != "detail: "+code.String() {
			t.Fatalf("round trip: %+v", pe)
		}
		if pe.Error() == "" {
			t.Fatal("empty Error()")
		}
	}
}

func TestFileChunkRoundTripProperty(t *testing.T) {
	prop := func(off, total uint32, last bool, data []byte) bool {
		in := fileChunk{Offset: off, Total: total, Last: last, Data: data}
		out, err := decodeFileChunk(in.encode())
		if err != nil || out.Offset != off || out.Total != total || out.Last != last {
			return false
		}
		if len(out.Data) != len(data) {
			return false
		}
		for i := range data {
			if out.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsTruncatedMessages(t *testing.T) {
	req := Request{Database: "prod", API: dbver.APIOf("JDBC", 3, 0)}.encode()
	for _, cut := range []int{1, len(req) / 2, len(req) - 1} {
		if _, err := decodeRequest(req[:cut]); err == nil {
			t.Errorf("decodeRequest accepted a %d-byte truncation", cut)
		}
	}
	offer := Offer{LeaseID: 1, Format: "IMAGE"}.encode()
	if _, err := decodeOffer(offer[:4]); err == nil {
		t.Error("decodeOffer accepted truncation")
	}
}
