package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/sqlmini"
)

// grant resolves a request into an Offer, creating or renewing the lease
// row and staging the driver blob for FILE_REQUEST. This is the server
// side of the paper's Table 3 (new lease) and Table 4 (renewal) flows.
// isTLS reports the requesting connection's channel, enforcing the
// Table 2 transfer_method restriction before any lease is touched.
func (s *Server) grant(req Request, isTLS bool) (Offer, *ProtocolError) {
	g, perr := s.match(req)
	if perr == nil && g.transfer == TransferTLS && !isTLS {
		return Offer{}, &ProtocolError{Code: ErrCodeTransfer,
			Message: "driver requires the TLS transfer channel; reconnect over TLS"}
	}
	if perr == nil && s.route != nil {
		// Cluster shard routing: the match succeeded, so the shard key
		// (driver, client) is known — a member that does not own the
		// shard redirects instead of granting, keeping exactly one
		// grantor per shard across the fleet.
		if rt := s.route(g.driverID, req.ClientID); !rt.Local {
			return Offer{}, &ProtocolError{Code: ErrCodeInternal,
				Message:  "shard owned by " + rt.Server,
				redirect: &Redirect{Addr: rt.Addr, Server: rt.Server}}
		}
	}
	if perr == nil {
		g.leaseTime = s.jitterLease(g.leaseTime)
	}

	if req.LeaseID != 0 {
		return s.renewLease(req, g, perr)
	}
	if perr != nil {
		return Offer{}, perr
	}

	// A fresh lease always transfers: load the blob now (no-op when
	// matchmaking already materialized an assembled image).
	if perr := s.materializeBlob(g); perr != nil {
		return Offer{}, perr
	}
	leaseID, err := s.newLease(req, g)
	if err != nil {
		return Offer{}, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	s.leasesGranted.Add(1)
	// The clock is re-read after the INSERT, so the recorded expiry is
	// an upper bound on the lease row's — the sweep never reclaims a
	// staged blob before its lease really expired.
	s.stageTransfer(leaseID, g.blob, s.clock().Add(g.leaseTime))
	return Offer{
		LeaseID:          leaseID,
		LeaseTime:        g.leaseTime,
		RenewPolicy:      g.renew,
		ExpirationPolicy: g.expiration,
		TransferMethod:   g.transfer,
		HasDriver:        true,
		DriverChecksum:   g.checksum,
		Format:           g.format,
		Size:             uint32(g.size),
		ServerName:       s.name,
	}, nil
}

// renewNoChangeSQL extends a live lease in one guarded statement; the
// released = FALSE predicate doubles as the existence check, so the
// no-change renewal path runs a single store statement.
const renewNoChangeSQL = `UPDATE ` + LeasesTable + `
	SET expires_at = $exp, renewals = renewals + 1, driver_id = $drv
	WHERE lease_id = $id AND released = FALSE`

// renewLease handles the Table 4 server side: "if (driver still valid)
// send OFFER; else if (new driver available) send OFFER + FILE_DATA;
// else send DRIVOLUTION_ERROR".
func (s *Server) renewLease(req Request, g *grantInfo, matchErr *ProtocolError) (Offer, *ProtocolError) {
	// Fast path: the renewal-no-change branch. The client proved (by
	// checksum) that it runs exactly the matched content, so no lease
	// fields need to be read back — one guarded UPDATE extends the
	// lease or reports it unknown/released.
	if matchErr == nil && g.renew != RenewRevoke &&
		req.CurrentChecksum != "" && req.CurrentChecksum == g.checksum {
		res, err := s.exec(renewNoChangeSQL, sqlmini.Args{
			"exp": s.clock().Add(g.leaseTime),
			"drv": g.driverID,
			"id":  int64(req.LeaseID),
		})
		if err != nil {
			return Offer{}, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
		}
		if res.Affected == 0 {
			return Offer{}, &ProtocolError{Code: ErrCodeNoLease,
				Message: fmt.Sprintf("lease %d unknown or released", req.LeaseID)}
		}
		// The client's checksum acknowledges any staged transfer.
		s.dropPending(req.LeaseID)
		s.renewKeeps.Add(1)
		return Offer{
			LeaseID:          req.LeaseID,
			LeaseTime:        g.leaseTime,
			RenewPolicy:      g.renew,
			ExpirationPolicy: g.expiration,
			TransferMethod:   g.transfer,
			HasDriver:        false,
			DriverChecksum:   g.checksum,
			Format:           g.format,
			ServerName:       s.name,
		}, nil
	}

	lease, ok, err := s.leaseByID(req.LeaseID)
	if err != nil {
		return Offer{}, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	if !ok || lease.Released {
		return Offer{}, &ProtocolError{Code: ErrCodeNoLease,
			Message: fmt.Sprintf("lease %d unknown or released", req.LeaseID)}
	}
	if matchErr != nil {
		if matchErr.Code == ErrCodeNoDriver {
			// The driver the client runs was retired and nothing replaces
			// it: revoke (paper §3.1.2 "when the lease has expired, but no
			// new driver is available ... a DRIVOLUTION_ERROR is sent").
			s.expireLease(lease.LeaseID)
			return Offer{}, &ProtocolError{Code: ErrCodeRevoked,
				Message: "no driver available for renewal: " + matchErr.Message}
		}
		return Offer{}, matchErr
	}
	if g.renew == RenewRevoke {
		s.expireLease(lease.LeaseID)
		return Offer{}, &ProtocolError{Code: ErrCodeRevoked,
			Message: fmt.Sprintf("driver %d revoked by policy", lease.DriverID)}
	}

	// "Driver still valid" means the matched content equals what the
	// client already runs; RenewKeep pins the client to its current
	// driver even if a newer one exists.
	sameContent := req.CurrentChecksum != "" && req.CurrentChecksum == g.checksum
	keep := sameContent || (g.renew == RenewKeep && lease.DriverID == g.driverID)

	if !keep {
		// An upgrade transfer is coming: load the new driver's blob
		// before touching the lease row, so a failure leaves the lease
		// (and the client's working driver) untouched.
		if perr := s.materializeBlob(g); perr != nil {
			return Offer{}, perr
		}
	}

	// Same guarded statement as the fast path (one shared prepared
	// handle): the released = FALSE predicate makes a sweep or release
	// sliding in after the leaseByID read above win — extending a
	// released lease would hand back a live Offer whose license the
	// sweep already freed, and re-stage a blob no sweep would ever
	// drop.
	now := s.clock()
	res, err := s.exec(renewNoChangeSQL,
		sqlmini.Args{
			"exp": now.Add(g.leaseTime),
			"drv": g.driverID,
			"id":  int64(lease.LeaseID),
		})
	if err != nil {
		return Offer{}, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	if res.Affected == 0 {
		return Offer{}, &ProtocolError{Code: ErrCodeNoLease,
			Message: fmt.Sprintf("lease %d unknown or released", req.LeaseID)}
	}

	offer := Offer{
		LeaseID:          lease.LeaseID,
		LeaseTime:        g.leaseTime,
		RenewPolicy:      g.renew,
		ExpirationPolicy: g.expiration,
		TransferMethod:   g.transfer,
		HasDriver:        !keep,
		DriverChecksum:   g.checksum,
		Format:           g.format,
		ServerName:       s.name,
	}
	if !keep {
		offer.Size = uint32(g.size)
		s.stageTransfer(lease.LeaseID, g.blob, now.Add(g.leaseTime))
		s.renewUpgrades.Add(1)
	} else {
		s.renewKeeps.Add(1)
		// The renewal acknowledges the client runs the matched content:
		// any staged blob from the original transfer (or an earlier
		// upgrade) is no longer needed, so stop pinning it in memory.
		// A renewal that still needs the file re-REQUESTs and is
		// re-staged above.
		s.dropPending(lease.LeaseID)
	}
	return offer, nil
}

// pendingTransfer is a staged driver blob plus the expiry of the lease
// it was staged for, recorded at staging time. The recorded expiry is
// always current (and an upper bound on the lease's real one): every
// later renewal of the lease either drops the entry or re-stages it
// with the new expiry, so an entry whose recorded expiry has passed
// provably belongs to an expired lease — which is what lets the expiry
// sweep reclaim staged blobs entirely in memory, with no SQL read-back.
type pendingTransfer struct {
	blob      []byte
	expiresAt time.Time
}

func (s *Server) stageTransfer(leaseID uint64, blob []byte, expiresAt time.Time) {
	s.pendingMu.Lock()
	s.pending[leaseID] = pendingTransfer{blob: blob, expiresAt: expiresAt}
	s.pendingMu.Unlock()
}

func (s *Server) dropPending(leaseID uint64) {
	s.pendingMu.Lock()
	delete(s.pending, leaseID)
	s.pendingMu.Unlock()
}

// newLeaseSQL is the lease-creation write: a single statement, so the
// operation is one atomic unit on every store (the id-allocation reads
// behind loadIDsLocked run once per server lifetime, as one batch).
const newLeaseSQL = `INSERT INTO ` + LeasesTable + `
	(lease_id, driver_id, database, user, client_id, granted_at,
	 expires_at, released, renewals)
	VALUES ($id, $drv, $db, $user, $client, $granted, $exp, FALSE, 0)`

// newLease inserts a lease row and returns its id. When several servers
// share one store (replicated embedded servers, Figure 6), concurrent
// allocations can collide on the primary key; colliding inserts retry
// with a fresh id.
func (s *Server) newLease(req Request, g *grantInfo) (uint64, error) {
	now := s.clock()
	for attempt := 0; attempt < 16; attempt++ {
		s.idMu.Lock()
		if err := s.loadIDsLocked(); err != nil {
			s.idMu.Unlock()
			return 0, err
		}
		s.nextLease = nextStridedID(s.nextLease, s.idOffset, s.idStride)
		id := s.nextLease
		s.idMu.Unlock()

		_, err := s.exec(newLeaseSQL, sqlmini.Args{
			"id":      int64(id),
			"drv":     g.driverID,
			"db":      nullableStr(req.Database),
			"user":    nullableStr(req.User),
			"client":  nullableStr(req.ClientID),
			"granted": now,
			"exp":     now.Add(g.leaseTime),
		})
		if err == nil {
			return id, nil
		}
		if !isDuplicateKey(err) {
			return 0, err
		}
		s.idMu.Lock()
		s.idsLoaded = false // another server advanced the sequence
		s.idMu.Unlock()
	}
	return 0, fmt.Errorf("core: lease id allocation kept colliding")
}

// nextStridedID returns the smallest id > cur with id ≡ offset (mod
// stride). With stride ≤ 1 (no cluster striding configured) it is a
// plain increment. Cluster members share one replicated id space; the
// residue classes keep concurrent allocations collision-free without
// coordination.
func nextStridedID(cur, offset, stride uint64) uint64 {
	if stride <= 1 {
		return cur + 1
	}
	next := cur - cur%stride + offset%stride
	if next <= cur {
		next += stride
	}
	return next
}

// isDuplicateKey detects a primary-key collision, both for local stores
// (typed error) and external stores (error text over the wire).
func isDuplicateKey(err error) bool {
	if errors.Is(err, sqlmini.ErrDuplicateKey) {
		return true
	}
	return err != nil && strings.Contains(err.Error(), "duplicate primary key")
}

func (s *Server) expireLease(id uint64) {
	_, _ = s.exec(`UPDATE `+LeasesTable+` SET released = TRUE WHERE lease_id = $id`,
		sqlmini.Args{"id": int64(id)})
	s.dropPending(id)
}

// ReleaseLeaseByID marks a lease released server-side — the admin /
// license-manager path (§5.4.2), as opposed to the bootloader-initiated
// msgRelease.
func (s *Server) ReleaseLeaseByID(id uint64) error {
	res, err := s.exec(`UPDATE `+LeasesTable+`
		SET released = TRUE WHERE lease_id = $id`,
		sqlmini.Args{"id": int64(id)})
	if err != nil {
		return err
	}
	if res.Affected == 0 {
		return fmt.Errorf("core: no lease %d", id)
	}
	s.dropPending(id)
	return nil
}

// reapExpiredSQL and sweptLeaseIDsSQL are the two halves of the
// lease-expiry sweep (§3.2: expired leases free their licenses; §5.4.2
// builds per-user enforcement on that). Both carry the `expires_at <=
// $now` window as their only indexable conjunct, so the planner seeks
// the expired prefix of the ordered expires_at index instead of
// scanning the lease log — at steady state the sweep touches only the
// handful of rows that actually expired. TestHotStatementsPlanIndexed
// pins the range plans; BenchmarkExpirySweepAt{100,10000}Leases tracks
// flatness.
// reapExpiredSQL is the lease-expiry sweep (§3.2: expired leases free
// their licenses; §5.4.2 builds per-user enforcement on that).
const reapExpiredSQL = `UPDATE ` + LeasesTable + `
	SET released = TRUE WHERE released = FALSE AND expires_at <= $now`

// ReapExpiredLeases marks every expired, still-unreleased lease as
// released and drops any driver blob staged for it, returning how many
// leases were swept. Expiry is otherwise enforced lazily (a renewal of
// an expired lease re-matches); the reaper exists so license-mode
// capacity frees up without waiting for the defaulting client, and so
// the lease log stops accumulating phantom "live" rows.
//
// The whole sweep is ONE statement — one wire round trip on external
// stores — regardless of how many leases exist or expire. The old
// SELECT-then-confirm-per-id shape (N+1 statements) existed only to
// decide which STAGED BLOBS to drop, but the pending map is
// server-local state: each entry records its lease's expiry at staging
// time (see pendingTransfer), so reclamation is a pure in-memory pass.
// An entry whose recorded expiry has passed belongs to a lease this
// sweep's UPDATE (or an earlier one, possibly by another server
// sharing the store) releases — terminally dead, since released never
// transitions back to FALSE. An entry re-staged by a concurrent
// upgrade renewal carries that renewal's future expiry and survives;
// pendingMu makes the stage/reap pair atomic per entry.
func (s *Server) ReapExpiredLeases() (int, error) {
	now := s.clock()
	res, err := s.exec(reapExpiredSQL, sqlmini.Args{"now": now})
	if err != nil {
		return 0, err
	}
	s.pendingMu.Lock()
	for id, p := range s.pending {
		if !p.expiresAt.After(now) {
			delete(s.pending, id)
		}
	}
	s.pendingMu.Unlock()
	return res.Affected, nil
}

// leaseByID loads one lease row.
func (s *Server) leaseByID(id uint64) (Lease, bool, error) {
	res, err := s.exec(`SELECT lease_id, driver_id, database, user,
		client_id, granted_at, expires_at, released, renewals
		FROM `+LeasesTable+` WHERE lease_id = $id`,
		sqlmini.Args{"id": int64(id)})
	if err != nil {
		return Lease{}, false, err
	}
	if len(res.Rows) == 0 {
		return Lease{}, false, nil
	}
	idx := colIndex(res.Cols)
	row := res.Rows[0]
	l := Lease{
		LeaseID:   uint64(row[idx["lease_id"]].Int()),
		DriverID:  row[idx["driver_id"]].Int(),
		Database:  row[idx["database"]].Str(),
		User:      row[idx["user"]].Str(),
		ClientID:  row[idx["client_id"]].Str(),
		GrantedAt: row[idx["granted_at"]].Time(),
		ExpiresAt: row[idx["expires_at"]].Time(),
		Released:  row[idx["released"]].Bool(),
		Renewals:  int(row[idx["renewals"]].Int()),
	}
	return l, true, nil
}

// Leases returns all lease rows (admin/experiments).
func (s *Server) Leases() ([]Lease, error) {
	//lint:scan-ok admin/experiment listing: whole-table read is the point
	res, err := s.exec(`SELECT lease_id, driver_id, database, user,
		client_id, granted_at, expires_at, released, renewals
		FROM ` + LeasesTable + ` ORDER BY lease_id`)
	if err != nil {
		return nil, err
	}
	idx := colIndex(res.Cols)
	out := make([]Lease, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, Lease{
			LeaseID:   uint64(row[idx["lease_id"]].Int()),
			DriverID:  row[idx["driver_id"]].Int(),
			Database:  row[idx["database"]].Str(),
			User:      row[idx["user"]].Str(),
			ClientID:  row[idx["client_id"]].Str(),
			GrantedAt: row[idx["granted_at"]].Time(),
			ExpiresAt: row[idx["expires_at"]].Time(),
			Released:  row[idx["released"]].Bool(),
			Renewals:  int(row[idx["renewals"]].Int()),
		})
	}
	return out, nil
}

// loadIDsLocked initializes id allocators from the store — one batch
// (one wire round trip on batch-capable external stores) for all three
// max() reads; caller holds s.idMu.
func (s *Server) loadIDsLocked() error {
	if s.idsLoaded {
		return nil
	}
	rs, err := ExecBatchOn(s.store, []Statement{
		//lint:scan-ok one-time ID bootstrap: max() over the table at first grant, then cached
		{SQL: "SELECT max(lease_id) FROM " + LeasesTable},
		//lint:scan-ok one-time ID bootstrap: max() over the table at first grant, then cached
		{SQL: "SELECT max(permission_id) FROM " + PermissionTable},
		//lint:scan-ok one-time ID bootstrap: max() over the table at first grant, then cached
		{SQL: "SELECT max(driver_id) FROM " + DriversTable},
	})
	if err != nil {
		return err
	}
	maxOf := func(res *sqlmini.Result) int64 {
		if len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
			return 0
		}
		return res.Rows[0][0].Int()
	}
	s.nextLease = uint64(maxOf(rs[0]))
	s.nextPermID = maxOf(rs[1])
	s.nextDrvID = maxOf(rs[2])
	s.idsLoaded = true
	return nil
}
