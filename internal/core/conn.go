package core

import (
	"fmt"

	"repro/internal/client"
)

// managedConn wraps a driver connection so the bootloader can transition
// it during upgrades and revocations. All calls pass through to the real
// driver (paper §3.1.1: "All other calls are passed through to the
// driver"); the wrapper only adds the lifecycle state.
type managedConn struct {
	bl *Bootloader
	ld *loadedDriver

	conn client.Conn
	// state transitions are guarded by ld.mu to keep the policy sweep
	// atomic with respect to per-connection calls.
	revoked      bool
	closeAfterTx bool
}

// revokedErr is what a policy-closed connection returns afterwards.
func revokedErr() error {
	return fmt.Errorf("%w (driver replaced or revoked by Drivolution policy)", client.ErrConnRevoked)
}

func (c *managedConn) checkLive() error {
	c.ld.mu.Lock()
	defer c.ld.mu.Unlock()
	if c.revoked {
		return revokedErr()
	}
	return nil
}

// finishIfDeferred closes the connection if an AFTER_COMMIT transition
// marked it; called after a transaction boundary.
func (c *managedConn) finishIfDeferred() {
	c.ld.mu.Lock()
	shouldClose := c.closeAfterTx && !c.revoked
	if shouldClose {
		c.revoked = true
		delete(c.ld.conns, c)
	}
	c.ld.mu.Unlock()
	if shouldClose {
		_ = c.conn.Close()
		c.bl.addMetric(func(m *Metrics) { m.DeferredTx++; m.ForcedCloses++ })
	}
}

// Exec implements client.Conn.
func (c *managedConn) Exec(query string, args ...any) (*client.Result, error) {
	if err := c.checkLive(); err != nil {
		return nil, err
	}
	return c.conn.Exec(query, args...)
}

// Query implements client.Conn.
func (c *managedConn) Query(query string, args ...any) (*client.Result, error) {
	if err := c.checkLive(); err != nil {
		return nil, err
	}
	return c.conn.Query(query, args...)
}

// Begin implements client.Conn.
func (c *managedConn) Begin() error {
	if err := c.checkLive(); err != nil {
		return err
	}
	return c.conn.Begin()
}

// Commit implements client.Conn. Under AFTER_COMMIT the connection is
// closed right after the commit succeeds (paper Table 4:
// "close_active_connections_after_commit").
func (c *managedConn) Commit() error {
	if err := c.checkLive(); err != nil {
		return err
	}
	err := c.conn.Commit()
	if err == nil {
		c.finishIfDeferred()
	}
	return err
}

// Rollback implements client.Conn; a rollback also ends the in-flight
// transaction, so a deferred close applies here too.
func (c *managedConn) Rollback() error {
	if err := c.checkLive(); err != nil {
		return err
	}
	err := c.conn.Rollback()
	if err == nil {
		c.finishIfDeferred()
	}
	return err
}

// InTx implements client.Conn.
func (c *managedConn) InTx() bool { return c.conn.InTx() }

// Ping implements client.Conn. Revoked connections fail the ping, which
// makes pools discard and replace them naturally.
func (c *managedConn) Ping() error {
	if err := c.checkLive(); err != nil {
		return err
	}
	return c.conn.Ping()
}

// Close implements client.Conn: the application-initiated close that the
// AFTER_CLOSE policy waits for.
func (c *managedConn) Close() error {
	c.ld.mu.Lock()
	already := c.revoked
	c.revoked = true
	delete(c.ld.conns, c)
	c.ld.mu.Unlock()
	if already {
		return nil
	}
	return c.conn.Close()
}

// transition applies an expiration policy to every connection of a
// superseded or revoked driver (the paper's Table 4 client-side switch).
func (ld *loadedDriver) transition(b *Bootloader, policy ExpirationPolicy) {
	switch policy {
	case AfterClose:
		// wait_for_active_connections_closing: nothing forced; the
		// wrapper removes each connection as the application closes it.
	case AfterCommit:
		// close_active_connections_idle_or_after_commit.
		ld.mu.Lock()
		var closeNow []*managedConn
		for c := range ld.conns {
			if c.conn.InTx() {
				c.closeAfterTx = true // drains at its commit/rollback
				continue
			}
			c.revoked = true
			delete(ld.conns, c)
			closeNow = append(closeNow, c)
		}
		ld.mu.Unlock()
		for _, c := range closeNow {
			_ = c.conn.Close()
			b.addMetric(func(m *Metrics) { m.ForcedCloses++ })
		}
	case Immediate:
		// terminate_all_active_connections.
		ld.mu.Lock()
		var closeNow []*managedConn
		aborted := 0
		for c := range ld.conns {
			if c.conn.InTx() {
				aborted++
			}
			c.revoked = true
			delete(ld.conns, c)
			closeNow = append(closeNow, c)
		}
		ld.mu.Unlock()
		for _, c := range closeNow {
			_ = c.conn.Close()
			b.addMetric(func(m *Metrics) { m.ForcedCloses++ })
		}
		if aborted > 0 {
			b.addMetric(func(m *Metrics) { m.AbortedTx += int64(aborted) })
		}
	}
}

// closeAll force-closes every connection (bootloader shutdown).
func (ld *loadedDriver) closeAll(b *Bootloader, countForced bool) {
	ld.mu.Lock()
	var conns []*managedConn
	for c := range ld.conns {
		c.revoked = true
		conns = append(conns, c)
	}
	ld.conns = make(map[*managedConn]struct{})
	ld.mu.Unlock()
	for _, c := range conns {
		_ = c.conn.Close()
		if countForced {
			b.addMetric(func(m *Metrics) { m.ForcedCloses++ })
		}
	}
}

// ActiveConns reports connections still using this bootloader's current
// driver (experiments).
func (b *Bootloader) ActiveConns() int {
	b.mu.Lock()
	cur := b.cur
	b.mu.Unlock()
	if cur == nil {
		return 0
	}
	cur.mu.Lock()
	defer cur.mu.Unlock()
	return len(cur.conns)
}
