package core

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// This file implements the server's versioned in-memory driver catalog.
//
// The Drivolution server sits on the connection-bootstrap critical path
// of every client in the cluster, yet the data it matches against —
// driver metadata (Table 1 minus binary_code) and permission rows
// (Table 2) — only changes when a DBA runs an admin operation. The
// catalog is a snapshot of that data labeled with the store generation
// (GenerationStore) current when the load began. Every match checks the
// live generation with one atomic-ish read; on mismatch the catalog is
// reloaded, so an admin INSERT/UPDATE/DELETE is visible to the very
// next grant. Steady-state matchmaking therefore runs zero SQL, decodes
// zero images, and materializes zero blobs: checksums and encoded sizes
// are precomputed at load, the date predicate of Sample code 2 is
// re-evaluated in Go against the server clock, and the binary itself is
// fetched lazily only when a transfer will actually happen.
//
// Lease state is deliberately NOT in the catalog: the license-mode
// lease-free check (§5.4.2) stays a live query against the leases
// table, whose churn does not bump the generation.

// catalogEntry is one driver row, blob-free.
type catalogEntry struct {
	meta     DriverRecord // BinaryCode nil; use size/checksum instead
	checksum string
	size     int
	corrupt  error // non-nil when binary_code fails structural validation
	// blobHead identifies the stored blob (&binary_code[0]) so a delta
	// reload can prove "same bytes as last time" by pointer identity and
	// skip re-checksumming; a replaced blob — even one reusing a freed
	// driver_id — necessarily has a different backing array. The pointer
	// keeps the backing array reachable, which is free while the row
	// lives (the row holds it anyway) and, for a deleted or replaced
	// driver, retains its old blob only until the next reload — which the
	// deletion itself scheduled by bumping the generation.
	blobHead *byte
}

// catalog is an immutable snapshot; a new one replaces it wholesale on
// generation change.
type catalog struct {
	gen    uint64
	drvGen uint64          // drivers TableVersion at load (TableVersionStore only)
	order  []*catalogEntry // Sample-code-1 ORDER BY: version DESC (NULLs last), driver_id DESC
	byID   map[int64]*catalogEntry
	perms  []Permission // permission_id DESC
}

// lookup returns the entry for a driver id; nil-safe for the first load.
func (c *catalog) lookup(id int64) *catalogEntry {
	if c == nil {
		return nil
	}
	return c.byID[id]
}

// catalogSnapshot returns the current catalog, reloading it if the
// store generation moved. Returns (nil, nil) when the store cannot
// report generations — by type, or because the run-time capability
// negotiation came up empty (OptionalGenerationStore); callers then
// use the SQL path.
func (s *Server) catalogSnapshot() (*catalog, *ProtocolError) {
	gs, ok := GenerationEnabled(s.store)
	if !ok {
		return nil, nil
	}
	gen := gs.Generation()
	if cat := s.cat.Load(); cat != nil && cat.gen == gen {
		return cat, nil
	}
	s.catMu.Lock()
	defer s.catMu.Unlock()
	// Re-read under the lock: another goroutine may have reloaded, and
	// the generation must be captured BEFORE the table scans so that a
	// concurrent mutation mid-load labels the snapshot stale rather
	// than fresh.
	gen = gs.Generation()
	old := s.cat.Load()
	if old != nil && old.gen == gen {
		return old, nil
	}
	cat, err := s.loadCatalog(gen, old)
	if err != nil {
		return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	s.cat.Store(cat)
	return cat, nil
}

const catalogDriversSQL = `SELECT driver_id, api_name, api_version_major,
	api_version_minor, platform, driver_version_major,
	driver_version_minor, driver_version_micro, binary_code, binary_format
FROM ` + DriversTable

const catalogPermsSQL = `SELECT permission_id, user, client_ip,
	database, driver_id, driver_options, start_date, end_date,
	lease_time_in_ms, renew_policy, expiration_policy, transfer_method
	FROM ` + PermissionTable

// loadCatalog builds a fresh catalog snapshot, reusing as much of old
// as it can prove unchanged. When the store attributes its generation
// to individual tables (TableVersionStore) and only driver_permission
// moved, the driver entries are carried over wholesale — permission
// churn on a large driver table touches zero blobs. When the drivers
// table did move, each rescanned row whose blob is pointer-identical to
// the previous load keeps its (checksum, corrupt) verdict, so only new
// or replaced drivers are hashed — the delta load ROADMAP lever (c).
func (s *Server) loadCatalog(gen uint64, old *catalog) (*catalog, error) {
	// Like gen, the drivers version is captured BEFORE the scans so a
	// concurrent driver mutation mid-load labels this snapshot stale.
	var drvGen uint64
	tvs, hasTV := s.store.(TableVersionStore)
	if hasTV {
		drvGen = tvs.TableVersion(DriversTable)
	}
	cat := &catalog{gen: gen, drvGen: drvGen}
	if hasTV && old != nil && old.drvGen == drvGen {
		cat.order, cat.byID = old.order, old.byID
	} else {
		//lint:scan-ok cold catalog (re)load: reading every driver row is the point
		drvRes, err := s.exec(catalogDriversSQL)
		if err != nil {
			return nil, err
		}
		cat.order = make([]*catalogEntry, 0, len(drvRes.Rows))
		cat.byID = make(map[int64]*catalogEntry, len(drvRes.Rows))
		idx := colIndex(drvRes.Cols)
		for _, row := range drvRes.Rows {
			rec, err := scanDriverRecordIdx(idx, row)
			if err != nil {
				return nil, err
			}
			ent := &catalogEntry{meta: rec, size: len(rec.BinaryCode)}
			if ent.size > 0 {
				ent.blobHead = &rec.BinaryCode[0]
			}
			if prev := old.lookup(rec.DriverID); prev != nil && prev.blobHead != nil &&
				prev.blobHead == ent.blobHead && prev.size == ent.size {
				ent.checksum, ent.corrupt = prev.checksum, prev.corrupt
			} else {
				ent.checksum, ent.corrupt = driverimg.EncodedChecksum(rec.BinaryCode)
			}
			ent.meta.BinaryCode = nil // the catalog is blob-free
			cat.order = append(cat.order, ent)
			cat.byID[ent.meta.DriverID] = ent
		}
		sort.SliceStable(cat.order, func(i, j int) bool {
			return catalogBefore(cat.order[i], cat.order[j])
		})
	}
	//lint:scan-ok cold catalog (re)load: reading every permission row is the point
	permRes, err := s.exec(catalogPermsSQL)
	if err != nil {
		return nil, err
	}
	cat.perms = scanPermissionRows(permRes)
	sort.SliceStable(cat.perms, func(i, j int) bool {
		return cat.perms[i].PermissionID > cat.perms[j].PermissionID
	})
	return cat, nil
}

// catalogBefore replicates the Sample-code-1 ORDER BY: driver version
// descending with NULL (negative) parts sorting last, ties broken by
// driver_id descending.
func catalogBefore(a, b *catalogEntry) bool {
	av := [3]int{a.meta.Version.Major, a.meta.Version.Minor, a.meta.Version.Micro}
	bv := [3]int{b.meta.Version.Major, b.meta.Version.Minor, b.meta.Version.Micro}
	for k := 0; k < 3; k++ {
		if av[k] == bv[k] || (av[k] < 0 && bv[k] < 0) {
			continue
		}
		if av[k] < 0 {
			return false
		}
		if bv[k] < 0 {
			return true
		}
		return av[k] > bv[k]
	}
	return a.meta.DriverID > b.meta.DriverID
}

// matchCatalog is the zero-SQL matchmaking path: Sample code 2 over the
// cached permission rows, then Sample code 1 (with its no-preference
// fallback) over the cached driver metadata.
func (s *Server) matchCatalog(cat *catalog, req Request) (*grantInfo, *ProtocolError) {
	now := s.clock()
	// 1. Permission/distribution table, newest row first.
	for i := range cat.perms {
		p := &cat.perms[i]
		if !permissionRowMatches(p, req, now) {
			continue
		}
		ent := cat.byID[p.DriverID]
		if ent == nil || !driverMatchesRequest(ent.meta, req) {
			continue // try the next permission row
		}
		if p.RenewPolicy == RenewRevoke && req.LeaseID == 0 {
			// A REVOKE permission exists to retire the driver: new
			// clients don't get it; renewing clients are told to stop
			// (handled by grant()).
			continue
		}
		g := &grantInfo{
			driverID:   ent.meta.DriverID,
			format:     ent.meta.Format,
			renew:      p.RenewPolicy,
			expiration: p.ExpirationPolicy,
			transfer:   p.TransferMethod,
			leaseTime:  s.defaultLease,
		}
		if p.LeaseTime > 0 {
			g.leaseTime = p.LeaseTime
		}
		if perr := s.finishGrantCatalog(g, ent, req, p.DriverOptions); perr != nil {
			return nil, perr
		}
		if s.licenseMode {
			free, err := s.driverLeaseFree(g.driverID, req.LeaseID)
			if err != nil {
				return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
			}
			if !free {
				continue // license held; try next row
			}
		}
		return g, nil
	}

	// 2. Preference pass; like the SQL path, the fallback (preference
	// predicates dropped) runs only when NO driver satisfies the full
	// preference query — a license-held driver still counts as matched.
	if g, perr := s.pickByPreference(cat, req, true); g != nil || perr != nil {
		return g, perr
	}
	if g, perr := s.pickByPreference(cat, req, false); g != nil || perr != nil {
		return g, perr
	}
	return nil, noDriverError(req)
}

// pickByPreference scans the version-ordered drivers; withPrefs selects
// between the full Sample-code-1 predicates and the fallback pair. A
// (nil, nil) return means nothing matched at all; license-mode
// skipping of matched-but-held drivers yields NO_DRIVER instead, like
// the SQL path's empty loop.
func (s *Server) pickByPreference(cat *catalog, req Request, withPrefs bool) (*grantInfo, *ProtocolError) {
	matchedAny := false
	for _, ent := range cat.order {
		if !entryMatchesPreference(&ent.meta, req, withPrefs) {
			continue
		}
		matchedAny = true
		if s.licenseMode {
			free, err := s.driverLeaseFree(ent.meta.DriverID, req.LeaseID)
			if err != nil {
				return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
			}
			if !free {
				continue
			}
		}
		g := &grantInfo{
			driverID:   ent.meta.DriverID,
			format:     ent.meta.Format,
			leaseTime:  s.defaultLease,
			renew:      s.defaultRenew,
			expiration: s.defaultExpiration,
			transfer:   s.defaultTransfer,
		}
		if perr := s.finishGrantCatalog(g, ent, req, ""); perr != nil {
			return nil, perr
		}
		return g, nil
	}
	if matchedAny {
		// Everything compatible is license-held: report NO_DRIVER
		// without trying the fallback predicates.
		return nil, noDriverError(req)
	}
	return nil, nil
}

// permissionRowMatches replicates the Sample-code-2 WHERE clause: the
// stored column is the LIKE string and the client value the pattern
// (empty client values are SQL NULL patterns, which never match), plus
// the verbatim date-window predicate evaluated at the server clock.
func permissionRowMatches(p *Permission, req Request, now time.Time) bool {
	if p.Database != "" && !sqlmini.Like(p.Database, req.Database) {
		return false
	}
	if p.User != "" && !(req.User != "" && sqlmini.Like(p.User, req.User)) {
		return false
	}
	if p.ClientIP != "" && !(req.ClientID != "" && sqlmini.Like(p.ClientIP, req.ClientID)) {
		return false
	}
	if !p.StartDate.IsZero() && !p.EndDate.IsZero() &&
		(now.Before(p.StartDate) || now.After(p.EndDate)) {
		return false
	}
	return true
}

// entryMatchesPreference replicates the Sample-code-1 WHERE clause
// (withPrefs) or its no-preference fallback. NULL columns are stored as
// negative version parts / empty strings; NULL client preferences are
// negative / empty request fields.
func entryMatchesPreference(rec *DriverRecord, req Request, withPrefs bool) bool {
	if !sqlmini.Like(rec.APIName, req.API.Name) {
		return false
	}
	if rec.Platform != "" && !sqlmini.Like(string(rec.Platform), string(req.ClientPlatform)) {
		return false
	}
	if !withPrefs {
		return true
	}
	if req.API.Major >= 0 && rec.APIMajor >= 0 && rec.APIMajor != req.API.Major {
		return false
	}
	if req.API.Minor >= 0 && rec.APIMinor >= 0 && rec.APIMinor != req.API.Minor {
		return false
	}
	if req.PreferredVersion.Major >= 0 && rec.Version.Major >= 0 && rec.Version.Major != req.PreferredVersion.Major {
		return false
	}
	if req.PreferredVersion.Minor >= 0 && rec.Version.Minor >= 0 && rec.Version.Minor != req.PreferredVersion.Minor {
		return false
	}
	if req.PreferredVersion.Micro >= 0 && rec.Version.Micro >= 0 && rec.Version.Micro != req.PreferredVersion.Micro {
		return false
	}
	if req.PreferredFormat != "" && !sqlmini.Like(rec.Format, req.PreferredFormat) {
		return false
	}
	return true
}

// finishGrantCatalog finalizes a catalog-resolved grant. The common
// no-rewrite case copies the precomputed checksum/size and leaves the
// blob unmaterialized; assembly/pre-configuration requests go through
// the assembly cache.
func (s *Server) finishGrantCatalog(g *grantInfo, ent *catalogEntry, req Request, options string) *ProtocolError {
	if ent.corrupt != nil {
		return corruptDriverError(g.driverID, ent.corrupt)
	}
	if len(req.RequiredPackages) == 0 && options == "" {
		g.checksum = ent.checksum
		g.size = ent.size
		return nil
	}
	return s.assembleGrant(g, ent, req, options)
}

// assemblyCache memoizes §5.4.1 on-demand assembly and §3.1.1
// pre-configuration: one decode+assemble+sign+encode per distinct
// shape, instead of per request.
type assemblyCache struct {
	mu      sync.Mutex
	entries map[assemblyKey]assembledImage
	bytes   int // sum of cached blob sizes
}

// assemblyKey identifies one assembled shape. Keying the base by
// checksum (not driver id) makes the cache immune to driver-id reuse
// after DeleteDriver; pkgGen covers package re-registration and signGen
// future signing-key rotation.
type assemblyKey struct {
	baseChecksum string
	packages     string // sorted, NUL-joined
	options      string
	pkgGen       uint64
	signGen      uint64
}

type assembledImage struct {
	blob     []byte
	checksum string
}

// Cache bounds: shape count AND accumulated blob bytes, since driver
// payloads run to megabytes. On overflow the whole map is dropped —
// shapes are few and cheap to rebuild, and count/byte caps keep the
// worst case at a bounded, predictable footprint.
const (
	assemblyCacheMaxEntries = 256
	assemblyCacheMaxBytes   = 64 << 20
)

func (c *assemblyCache) get(k assemblyKey) (assembledImage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	return v, ok
}

func (c *assemblyCache) put(k assemblyKey, v assembledImage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil || len(c.entries) >= assemblyCacheMaxEntries ||
		c.bytes+len(v.blob) > assemblyCacheMaxBytes {
		c.entries = make(map[assemblyKey]assembledImage)
		c.bytes = 0
	}
	c.entries[k] = v
	c.bytes += len(v.blob)
}

// assemblyKeyFor builds the cache key for a request shape.
func (s *Server) assemblyKeyFor(ent *catalogEntry, req Request, options string) assemblyKey {
	k := assemblyKey{
		baseChecksum: ent.checksum,
		options:      options,
		signGen:      atomic.LoadUint64(&s.signGen),
	}
	if s.packages != nil {
		k.pkgGen = s.packages.Generation()
	}
	if len(req.RequiredPackages) > 0 {
		pkgs := append([]string(nil), req.RequiredPackages...)
		sort.Strings(pkgs)
		k.packages = strings.Join(pkgs, "\x00")
	}
	return k
}

// assembleGrant resolves an assembly/pre-configuration request through
// the cache, materializing and rewriting the base image only on miss.
func (s *Server) assembleGrant(g *grantInfo, ent *catalogEntry, req Request, options string) *ProtocolError {
	key := s.assemblyKeyFor(ent, req, options)
	if v, ok := s.assemblies.get(key); ok {
		g.blob = v.blob
		g.checksum = v.checksum
		g.size = len(v.blob)
		return nil
	}
	if perr := s.materializeBlob(g); perr != nil {
		return perr
	}
	img, err := driverimg.Decode(g.blob)
	if err != nil {
		return corruptDriverError(g.driverID, err)
	}
	img, perr := s.rewriteImage(img, req, options)
	if perr != nil {
		return perr
	}
	g.blob = img.Encode()
	g.size = len(g.blob)
	g.checksum = img.Checksum()
	s.assemblies.put(key, assembledImage{blob: g.blob, checksum: g.checksum})
	return nil
}
