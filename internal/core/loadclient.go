package core

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// LeaseClient is a minimal, single-goroutine client for the Drivolution
// bootstrap protocol, built for load harnesses that multiplex many
// *virtual* bootloaders over one physical connection. Unlike Bootloader
// it owns no driver, no renewal timer, and no per-client goroutines: it
// just runs protocol exchanges on behalf of whatever (lease, checksum)
// identity the caller hands it, so 100k simulated clients can share a
// bounded pool of these.
//
// Error contract: a *ProtocolError return means the exchange completed
// cleanly (the server answered with DRIVOLUTION_ERROR) and the
// connection remains usable. Any other error is a transport or framing
// failure: the stream may be mid-frame, so the client poisons itself —
// every later call fails fast with ErrLeaseClientPoisoned and the
// caller must Close and dial a replacement. That mirrors ConnStore's
// redial contract: never reuse a stream you cannot prove is on a frame
// boundary.
type LeaseClient struct {
	conn     *wire.Conn
	timeout  time.Duration
	poisoned bool
}

// ErrLeaseClientPoisoned is returned by every call after a transport
// failure; the caller must Close and dial a fresh client.
var ErrLeaseClientPoisoned = fmt.Errorf("core: lease client poisoned by earlier transport failure")

// DialLeaseClient connects to a Drivolution server. opTimeout bounds
// every response wait (and is also the dial timeout when positive);
// zero means no response deadline.
func DialLeaseClient(addr string, opTimeout time.Duration) (*LeaseClient, error) {
	dial := opTimeout
	if dial <= 0 {
		dial = 5 * time.Second
	}
	conn, err := wire.Dial(addr, dial)
	if err != nil {
		return nil, err
	}
	return &LeaseClient{conn: conn, timeout: opTimeout}, nil
}

// Close releases the connection. Safe on a poisoned client.
func (c *LeaseClient) Close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

func (c *LeaseClient) recv() (wire.Frame, error) {
	if c.timeout > 0 {
		return c.conn.RecvTimeout(c.timeout)
	}
	return c.conn.Recv()
}

// Request runs one REQUEST→OFFER exchange: a bootstrap when
// req.LeaseID is zero, a renewal otherwise (Table 3 / Table 4 flows).
// The returned Offer's HasDriver reports whether the server staged an
// upgrade transfer for the lease; the caller may FetchFile it or let a
// later checksum-acking renewal drop it.
func (c *LeaseClient) Request(req Request) (Offer, error) {
	if c.poisoned {
		return Offer{}, ErrLeaseClientPoisoned
	}
	if err := c.conn.Send(msgRequest, req.encode()); err != nil {
		c.poisoned = true
		return Offer{}, err
	}
	f, err := c.recv()
	if err != nil {
		c.poisoned = true
		return Offer{}, err
	}
	switch f.Type {
	case msgError:
		pe, derr := decodeProtocolError(f.Payload)
		if derr != nil {
			c.poisoned = true
			return Offer{}, derr
		}
		return Offer{}, pe
	case msgRedirect:
		// Cluster shard routing: a clean, complete exchange — the
		// connection stays healthy; the caller repeats the request on a
		// client connected to re.Addr.
		re, derr := decodeRedirect(f.Payload)
		if derr != nil {
			c.poisoned = true
			return Offer{}, derr
		}
		return Offer{}, re
	case msgOffer:
		o, derr := decodeOffer(f.Payload)
		if derr != nil {
			c.poisoned = true
			return Offer{}, derr
		}
		return o, nil
	default:
		c.poisoned = true
		return Offer{}, fmt.Errorf("core: unexpected frame 0x%04x to lease request", f.Type)
	}
}

// Discover runs one DISCOVER→OFFER matchmaking probe: the server
// answers with lease terms and the matched driver's identity but
// creates no lease (paper §3.1). Cluster benchmarks use it to measure
// member-local matchmaking throughput.
func (c *LeaseClient) Discover(req Request) (Offer, error) {
	if c.poisoned {
		return Offer{}, ErrLeaseClientPoisoned
	}
	if err := c.conn.Send(msgDiscover, req.encode()); err != nil {
		c.poisoned = true
		return Offer{}, err
	}
	f, err := c.recv()
	if err != nil {
		c.poisoned = true
		return Offer{}, err
	}
	switch f.Type {
	case msgError:
		pe, derr := decodeProtocolError(f.Payload)
		if derr != nil {
			c.poisoned = true
			return Offer{}, derr
		}
		return Offer{}, pe
	case msgOffer:
		o, derr := decodeOffer(f.Payload)
		if derr != nil {
			c.poisoned = true
			return Offer{}, derr
		}
		return o, nil
	default:
		c.poisoned = true
		return Offer{}, fmt.Errorf("core: unexpected frame 0x%04x to discover", f.Type)
	}
}

// FetchFile downloads the driver blob staged for leaseID and returns
// its size, discarding the content (a load harness measures transfer
// cost; it does not run drivers). The checksum of what would have been
// installed is already in the Offer that staged the transfer.
func (c *LeaseClient) FetchFile(leaseID uint64) (int, error) {
	if c.poisoned {
		return 0, ErrLeaseClientPoisoned
	}
	if err := c.conn.Send(msgFileRequest, fileRequest{LeaseID: leaseID}.encode()); err != nil {
		c.poisoned = true
		return 0, err
	}
	got := 0
	for {
		f, err := c.recv()
		if err != nil {
			c.poisoned = true
			return got, err
		}
		switch f.Type {
		case msgError:
			pe, derr := decodeProtocolError(f.Payload)
			if derr != nil {
				c.poisoned = true
				return got, derr
			}
			return got, pe
		case msgFileData:
		default:
			c.poisoned = true
			return got, fmt.Errorf("core: unexpected frame 0x%04x during transfer", f.Type)
		}
		chunk, derr := decodeFileChunk(f.Payload)
		if derr != nil {
			c.poisoned = true
			return got, derr
		}
		got += len(chunk.Data)
		if chunk.Last {
			return got, nil
		}
	}
}

// Release gives a lease back (msgRelease, license mode §5.4.2).
func (c *LeaseClient) Release(leaseID uint64) error {
	if c.poisoned {
		return ErrLeaseClientPoisoned
	}
	if err := c.conn.Send(msgRelease, releaseMsg{LeaseID: leaseID}.encode()); err != nil {
		c.poisoned = true
		return err
	}
	f, err := c.recv()
	if err != nil {
		c.poisoned = true
		return err
	}
	switch f.Type {
	case msgReleaseOK:
		return nil
	case msgError:
		pe, derr := decodeProtocolError(f.Payload)
		if derr != nil {
			c.poisoned = true
			return derr
		}
		return pe
	default:
		c.poisoned = true
		return fmt.Errorf("core: unexpected frame 0x%04x to release", f.Type)
	}
}
