package core

import (
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driverimg"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// AuthFunc validates bootstrap credentials. Returning an error rejects
// the request with a DRIVOLUTION_ERROR(AUTH).
type AuthFunc func(database, user, password string) error

// Server is the Drivolution Server: it answers bootloader requests by
// querying the driver schema (Sample code 1/2), manages leases, streams
// driver binaries, and pushes update notifications over dedicated
// channels. Where the schema lives is decided by the Store, so one
// implementation covers the in-database (§4.1.2), external (§4.1.3), and
// standalone (§4.1.4) deployments.
type Server struct {
	name  string
	store Store
	clock func() time.Time

	auth        AuthFunc
	signKey     ed25519.PrivateKey
	packages    *driverimg.PackageStore
	licenseMode bool

	defaultLease      time.Duration
	defaultRenew      RenewPolicy
	defaultExpiration ExpirationPolicy
	defaultTransfer   TransferMethod

	mu          sync.Mutex
	ln          net.Listener
	nextLease   uint64
	nextPermID  int64
	nextDrvID   int64
	pending     map[uint64][]byte // leaseID → driver blob awaiting FILE_REQUEST
	subscribers map[*wire.Conn]subscribeMsg
	idsLoaded   bool

	wg sync.WaitGroup

	// Metrics for experiments and benchmarks.
	requests  atomic.Int64
	offers    atomic.Int64
	errsSent  atomic.Int64
	transfers atomic.Int64
	bytesOut  atomic.Int64
	notifies  atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) ServerOption {
	return func(s *Server) { s.clock = clock }
}

// WithAuth installs credential validation for bootstrap requests.
func WithAuth(fn AuthFunc) ServerOption {
	return func(s *Server) { s.auth = fn }
}

// WithSigningKey makes the server sign driver images it assembles on
// demand (base images are signed at insert time by the admin API).
func WithSigningKey(key ed25519.PrivateKey) ServerOption {
	return func(s *Server) { s.signKey = key }
}

// WithPackages enables on-demand driver assembly (§5.4.1).
func WithPackages(ps *driverimg.PackageStore) ServerOption {
	return func(s *Server) { s.packages = ps }
}

// WithDefaultLease sets the lease duration used when no permission row
// specifies one. The paper suggests "settings ranging from an hour to a
// day"; tests use milliseconds.
func WithDefaultLease(d time.Duration) ServerOption {
	return func(s *Server) { s.defaultLease = d }
}

// WithDefaultPolicies sets the policies offered when no permission row
// matches.
func WithDefaultPolicies(r RenewPolicy, e ExpirationPolicy) ServerOption {
	return func(s *Server) { s.defaultRenew = r; s.defaultExpiration = e }
}

// WithLicenseMode makes every driver single-lease: a driver already
// leased (and not released or expired) is unavailable to other clients —
// the §5.4.2 per-user license model.
func WithLicenseMode() ServerOption {
	return func(s *Server) { s.licenseMode = true }
}

// NewServer creates a Drivolution server over the given store. Call
// EnsureSchema (or let NewServer do it) before serving.
func NewServer(name string, store Store, opts ...ServerOption) (*Server, error) {
	s := &Server{
		name:              name,
		store:             store,
		clock:             time.Now,
		defaultLease:      time.Hour,
		defaultRenew:      RenewUpgrade,
		defaultExpiration: AfterCommit,
		defaultTransfer:   TransferAny,
		pending:           make(map[uint64][]byte),
		subscribers:       make(map[*wire.Conn]subscribeMsg),
	}
	for _, o := range opts {
		o(s)
	}
	if err := EnsureSchema(store); err != nil {
		return nil, err
	}
	return s, nil
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// Store exposes the underlying schema store, letting deployments share
// one store across several server frontends (e.g. a plaintext and a TLS
// listener over the same drivers table).
func (s *Server) Store() Store { return s.store }

// Stats reports protocol counters: requests received, offers sent,
// errors sent, file transfers completed, bytes transferred, and push
// notifications delivered.
func (s *Server) Stats() (requests, offers, errsSent, transfers, bytesOut, notifies int64) {
	return s.requests.Load(), s.offers.Load(), s.errsSent.Load(),
		s.transfers.Load(), s.bytesOut.Load(), s.notifies.Load()
}

// Start listens for bootloader connections on addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	return s.serveListener(ln)
}

// StartTLS listens with TLS — the paper's default secure configuration
// ("In its default configuration, Drivolution uses encrypted
// authenticated SSL channels").
func (s *Server) StartTLS(addr string, cert tls.Certificate) error {
	ln, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return fmt.Errorf("core: tls listen %s: %w", addr, err)
	}
	return s.serveListener(ln)
}

func (s *Server) serveListener(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("core: server %s already started", s.name)
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(nc)
			}()
		}
	}()
	return nil
}

// Addr returns the listen address, or "" when not started.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop closes the listener and all subscriber channels and waits for
// connection goroutines. The store (and therefore all leases/drivers)
// survives; Start may be called again.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
		s.ln = nil
	}
	for c := range s.subscribers {
		_ = c.Close()
	}
	s.subscribers = make(map[*wire.Conn]subscribeMsg)
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(nc net.Conn) {
	conn := wire.NewConn(nc)
	subscribed := false
	defer func() {
		if !subscribed {
			conn.Close()
		}
	}()
	for {
		f, err := conn.Recv()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Best effort: protocol errors just end the session.
				_ = err
			}
			if subscribed {
				s.dropSubscriber(conn)
				conn.Close()
			}
			return
		}
		switch f.Type {
		case msgDiscover:
			s.handleDiscover(conn, f.Payload)
		case msgRequest:
			s.handleRequest(conn, f.Payload)
		case msgFileRequest:
			s.handleFileRequest(conn, f.Payload)
		case msgSubscribe:
			if s.handleSubscribe(conn, f.Payload) {
				subscribed = true
			}
		case msgRelease:
			s.handleRelease(conn, f.Payload)
		default:
			s.sendError(conn, ErrCodeInternal, fmt.Sprintf("unexpected frame 0x%04x", f.Type))
		}
	}
}

func (s *Server) sendError(conn *wire.Conn, code ErrorCode, msg string) {
	s.errsSent.Add(1)
	_ = conn.Send(msgError, encodeProtocolError(code, msg))
}

// handleDiscover answers a broadcast probe: matchmaking runs but no
// lease is created; the bootloader then unicasts a REQUEST to one of the
// offering servers (paper §3.1).
func (s *Server) handleDiscover(conn *wire.Conn, payload []byte) {
	req, err := decodeRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed discover")
		return
	}
	s.requests.Add(1)
	if s.auth != nil {
		if err := s.auth(req.Database, req.User, req.Password); err != nil {
			s.sendError(conn, ErrCodeAuth, err.Error())
			return
		}
	}
	g, perr := s.match(req)
	if perr != nil {
		s.sendError(conn, perr.Code, perr.Message)
		return
	}
	s.offers.Add(1)
	_ = conn.Send(msgOffer, Offer{
		LeaseTime:        g.leaseTime,
		RenewPolicy:      g.renew,
		ExpirationPolicy: g.expiration,
		TransferMethod:   g.transfer,
		HasDriver:        true,
		DriverChecksum:   g.checksum,
		Format:           g.format,
		Size:             uint32(len(g.blob)),
		ServerName:       s.name,
	}.encode())
}

func (s *Server) handleRequest(conn *wire.Conn, payload []byte) {
	req, err := decodeRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed request")
		return
	}
	s.requests.Add(1)
	if s.auth != nil {
		if err := s.auth(req.Database, req.User, req.Password); err != nil {
			s.sendError(conn, ErrCodeAuth, err.Error())
			return
		}
	}
	offer, perr := s.grant(req, conn.IsTLS())
	if perr != nil {
		s.sendError(conn, perr.Code, perr.Message)
		return
	}
	s.offers.Add(1)
	_ = conn.Send(msgOffer, offer.encode())
}

func (s *Server) handleFileRequest(conn *wire.Conn, payload []byte) {
	fr, err := decodeFileRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed file request")
		return
	}
	s.mu.Lock()
	blob, ok := s.pending[fr.LeaseID]
	s.mu.Unlock()
	if !ok {
		s.sendError(conn, ErrCodeNoLease, fmt.Sprintf("no pending transfer for lease %d", fr.LeaseID))
		return
	}
	total := uint32(len(blob))
	for off := uint32(0); ; {
		end := off + transferChunkSize
		if end > total {
			end = total
		}
		chunk := fileChunk{Offset: off, Total: total, Last: end == total, Data: blob[off:end]}
		if err := conn.Send(msgFileData, chunk.encode()); err != nil {
			return
		}
		s.bytesOut.Add(int64(end - off))
		if chunk.Last {
			break
		}
		off = end
	}
	s.transfers.Add(1)
}

func (s *Server) handleSubscribe(conn *wire.Conn, payload []byte) bool {
	sub, err := decodeSubscribe(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed subscribe")
		return false
	}
	s.mu.Lock()
	s.subscribers[conn] = sub
	s.mu.Unlock()
	return true
}

func (s *Server) dropSubscriber(conn *wire.Conn) {
	s.mu.Lock()
	delete(s.subscribers, conn)
	s.mu.Unlock()
}

func (s *Server) handleRelease(conn *wire.Conn, payload []byte) {
	rel, err := decodeRelease(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed release")
		return
	}
	_, execErr := s.store.Exec(
		`UPDATE `+LeasesTable+` SET released = TRUE WHERE lease_id = $id`,
		sqlmini.Args{"id": int64(rel.LeaseID)})
	if execErr != nil {
		s.sendError(conn, ErrCodeInternal, execErr.Error())
		return
	}
	s.mu.Lock()
	delete(s.pending, rel.LeaseID)
	s.mu.Unlock()
	_ = conn.Send(msgReleaseOK, nil)
}

// NotifyUpdate pushes a change notification to dedicated-channel
// subscribers whose (database, api) scope matches; empty strings match
// everything. Admin operations call it automatically.
func (s *Server) NotifyUpdate(database, api string) {
	s.mu.Lock()
	conns := make([]*wire.Conn, 0, len(s.subscribers))
	for c, sub := range s.subscribers {
		if (sub.Database == "" || database == "" || sub.Database == database) &&
			(sub.API == "" || api == "" || sub.API == api) {
			conns = append(conns, c)
		}
	}
	s.mu.Unlock()
	payload := subscribeMsg{Database: database, API: api}.encode()
	for _, c := range conns {
		if err := c.Send(msgNotify, payload); err == nil {
			s.notifies.Add(1)
		}
	}
}
