package core

import (
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driverimg"
	"repro/internal/faultnet"
	"repro/internal/sqlmini"
	"repro/internal/wire"
)

// AuthFunc validates bootstrap credentials. Returning an error rejects
// the request with a DRIVOLUTION_ERROR(AUTH).
type AuthFunc func(database, user, password string) error

// Server is the Drivolution Server: it answers bootloader requests by
// querying the driver schema (Sample code 1/2), manages leases, streams
// driver binaries, and pushes update notifications over dedicated
// channels. Where the schema lives is decided by the Store, so one
// implementation covers the in-database (§4.1.2), external (§4.1.3), and
// standalone (§4.1.4) deployments.
type Server struct {
	name  string
	store Store
	clock func() time.Time

	auth        AuthFunc
	signKey     ed25519.PrivateKey
	packages    *driverimg.PackageStore
	licenseMode bool
	licenseMu   sync.Mutex // serializes license-mode grants (see grantSerialized)

	// Cluster hooks (internal/cluster): route decides per grant whether
	// this server owns the request's shard; idOffset/idStride pin every
	// id this server allocates to a residue class so members of a
	// replicated fleet never collide; leaseJitter smears granted lease
	// periods so a synchronized fleet's renewals de-synchronize.
	route              ShardRouter
	idOffset, idStride uint64
	leaseJitter        float64
	jitterMu           sync.Mutex // guards jitterRng only
	jitterRng          *rand.Rand

	defaultLease      time.Duration
	defaultRenew      RenewPolicy
	defaultExpiration ExpirationPolicy
	defaultTransfer   TransferMethod

	// Failure-contract deadlines (see faultnet and the ARCHITECTURE.md
	// "Failure model" section): the first frame of every accepted
	// connection is bounded by handshakeTimeout, every outbound frame
	// by writeTimeout.
	handshakeTimeout time.Duration
	writeTimeout     time.Duration

	// Independent locks for independent state, so concurrent bootstraps
	// don't serialize: lease-id allocation, pending transfers, and the
	// subscriber set contend only with themselves. That independence is
	// the declared hierarchy — every Server lock is a leaf, so no
	// function may ever hold two of them at once (enforced by
	// drivolint's latchorder analyzer; locks handed across function
	// boundaries, like licenseMu held around grant, are documented
	// contracts instead).
	//
	//lint:latch-leaf Server.licenseMu Server.mu Server.idMu Server.pendingMu Server.subMu Server.connsMu Server.catMu Server.stmtMu Server.jitterMu
	mu sync.Mutex // listener lifecycle only
	ln net.Listener

	idMu       sync.Mutex // id allocators
	nextLease  uint64
	nextPermID int64
	nextDrvID  int64
	idsLoaded  bool

	pendingMu sync.Mutex
	pending   map[uint64]pendingTransfer // leaseID → staged driver blob

	subMu       sync.Mutex
	subscribers map[*wire.Conn]subscribeMsg

	connsMu  sync.Mutex
	conns    map[*wire.Conn]struct{} // every live protocol connection, closed by Stop
	stopping bool                    // set by Stop; late-arriving conns are refused

	// Versioned driver catalog (catalog.go): an immutable snapshot of
	// driver metadata + permissions, swapped atomically on store
	// generation change. catMu serializes reloads only; readers never
	// block.
	cat        atomic.Pointer[catalog]
	catMu      sync.Mutex
	assemblies assemblyCache
	signGen    uint64 // bumped when the signing key changes

	// Prepared-handle cache over StmtStore stores: every server-issued
	// statement routes through exec(), which reuses one handle per SQL
	// text so hot statements skip parse-and-plan. nil when the store
	// has no StmtStore capability (exec falls through to store.Exec).
	stmtMu sync.Mutex
	stmts  map[string]Stmt

	wg sync.WaitGroup

	// Metrics for experiments and benchmarks.
	requests      atomic.Int64
	offers        atomic.Int64
	errsSent      atomic.Int64
	transfers     atomic.Int64
	bytesOut      atomic.Int64
	notifies      atomic.Int64
	leasesGranted atomic.Int64
	renewKeeps    atomic.Int64
	renewUpgrades atomic.Int64
	redirects     atomic.Int64
}

// Route is a ShardRouter's decision for one grant.
type Route struct {
	// Local reports that this server owns the request's shard and may
	// create or renew the lease itself.
	Local bool
	// Addr is the owner's advertised client address when !Local. Empty
	// (with Local false) means no serving owner is known — the member
	// is cut off from the cluster majority and must not grant; the
	// request handler answers with an empty redirect so the bootloader
	// fails over to its other configured servers.
	Addr string
	// Server names the owner for diagnostics.
	Server string
}

// ShardRouter lets a cluster layer (internal/cluster) decide which
// member may create or renew leases for a matched request. It is
// consulted after matchmaking succeeds and before any lease row is
// touched; driverID is the matched driver and clientID the requesting
// bootloader's identity, so the cluster can shard by either key.
// Matchmaking itself (DISCOVER) stays member-local: every member
// answers it from its replicated catalog.
type ShardRouter func(driverID int64, clientID string) Route

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithClock overrides the time source (tests).
func WithClock(clock func() time.Time) ServerOption {
	return func(s *Server) { s.clock = clock }
}

// WithAuth installs credential validation for bootstrap requests.
func WithAuth(fn AuthFunc) ServerOption {
	return func(s *Server) { s.auth = fn }
}

// WithSigningKey makes the server sign driver images it assembles on
// demand (base images are signed at insert time by the admin API).
func WithSigningKey(key ed25519.PrivateKey) ServerOption {
	return func(s *Server) {
		s.signKey = key
		atomic.AddUint64(&s.signGen, 1) // invalidate cached assemblies
	}
}

// WithPackages enables on-demand driver assembly (§5.4.1).
func WithPackages(ps *driverimg.PackageStore) ServerOption {
	return func(s *Server) { s.packages = ps }
}

// WithDefaultLease sets the lease duration used when no permission row
// specifies one. The paper suggests "settings ranging from an hour to a
// day"; tests use milliseconds.
func WithDefaultLease(d time.Duration) ServerOption {
	return func(s *Server) { s.defaultLease = d }
}

// WithDefaultPolicies sets the policies offered when no permission row
// matches.
func WithDefaultPolicies(r RenewPolicy, e ExpirationPolicy) ServerOption {
	return func(s *Server) { s.defaultRenew = r; s.defaultExpiration = e }
}

// WithLicenseMode makes every driver single-lease: a driver already
// leased (and not released or expired) is unavailable to other clients —
// the §5.4.2 per-user license model.
func WithLicenseMode() ServerOption {
	return func(s *Server) { s.licenseMode = true }
}

// WithShardRouter installs cluster shard routing: every REQUEST whose
// shard the router assigns elsewhere is answered with a msgRedirect
// frame naming the owner instead of a grant, and DISCOVER is declined
// while the router reports no serving owner at all (this member lost
// its cluster majority). Single-server deployments leave it nil.
func WithShardRouter(r ShardRouter) ServerOption {
	return func(s *Server) { s.route = r }
}

// WithIDStride pins every id this server allocates (leases, drivers,
// permissions) to the residue class id ≡ offset (mod stride). Cluster
// members replicating one schema use disjoint offsets so concurrent
// allocations never collide across members — without it, two members
// inserting the same id would each keep their local row and silently
// drop the replicated twin, diverging the stores.
func WithIDStride(offset, stride uint64) ServerOption {
	return func(s *Server) { s.idOffset, s.idStride = offset, stride }
}

// WithLeaseJitter smears every granted lease period by a uniform
// ±frac (e.g. 0.1 = ±10%). A fleet bootstrapped in lockstep otherwise
// renews in lockstep forever — the §3.4.2 renewal storm; jittered
// terms de-synchronize it within a few periods. Offers still carry
// the jittered period, so clients schedule their renew-ahead point
// from what was actually granted.
func WithLeaseJitter(frac float64) ServerOption {
	return func(s *Server) {
		s.leaseJitter = frac
		s.jitterRng = rand.New(rand.NewSource(rand.Int63()))
	}
}

// WithHandshakeTimeout bounds how long an accepted connection may take
// to deliver its first frame. A peer that connects and stalls (or
// trickles bytes) is cut off after d instead of pinning a connection
// goroutine forever. Default faultnet.DefaultHandshakeTimeout.
func WithHandshakeTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.handshakeTimeout = d }
}

// WithWriteTimeout bounds every frame the server sends — offers,
// FILE_DATA chunks, push notifications. A subscriber or transfer peer
// that stops reading fails its Send within d and is dropped, instead
// of wedging the broadcast or transfer path. Default
// faultnet.DefaultWriteTimeout.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// NewServer creates a Drivolution server over the given store. Call
// EnsureSchema (or let NewServer do it) before serving.
func NewServer(name string, store Store, opts ...ServerOption) (*Server, error) {
	s := &Server{
		name:              name,
		store:             store,
		clock:             time.Now,
		defaultLease:      time.Hour,
		defaultRenew:      RenewUpgrade,
		defaultExpiration: AfterCommit,
		defaultTransfer:   TransferAny,
		handshakeTimeout:  faultnet.DefaultHandshakeTimeout,
		writeTimeout:      faultnet.DefaultWriteTimeout,
		pending:           make(map[uint64]pendingTransfer),
		subscribers:       make(map[*wire.Conn]subscribeMsg),
		conns:             make(map[*wire.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if _, ok := store.(StmtStore); ok {
		s.stmts = make(map[string]Stmt)
	}
	if err := EnsureSchema(store); err != nil {
		return nil, err
	}
	return s, nil
}

// exec routes one statement to the store, through a cached prepared
// handle when the store supports StmtStore. The set of SQL texts the
// server issues is a small fixed vocabulary, so the cache is bounded.
func (s *Server) exec(sql string, args ...any) (*sqlmini.Result, error) {
	if s.stmts == nil {
		return s.store.Exec(sql, args...)
	}
	s.stmtMu.Lock()
	h, ok := s.stmts[sql]
	if !ok {
		var err error
		h, err = s.store.(StmtStore).Prepare(sql)
		if err != nil {
			s.stmtMu.Unlock()
			return nil, err
		}
		s.stmts[sql] = h
	}
	s.stmtMu.Unlock()
	return h.Exec(args...)
}

// stmtRouter adapts the server's prepared-handle routing to the execer
// shape the schema helpers take.
type stmtRouter struct{ s *Server }

func (r stmtRouter) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	return r.s.exec(sql, args...)
}

func (s *Server) router() stmtRouter { return stmtRouter{s: s} }

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// Store exposes the underlying schema store, letting deployments share
// one store across several server frontends (e.g. a plaintext and a TLS
// listener over the same drivers table).
func (s *Server) Store() Store { return s.store }

// Stats reports protocol counters: requests received, offers sent,
// errors sent, file transfers completed, bytes transferred, and push
// notifications delivered.
func (s *Server) Stats() (requests, offers, errsSent, transfers, bytesOut, notifies int64) {
	return s.requests.Load(), s.offers.Load(), s.errsSent.Load(),
		s.transfers.Load(), s.bytesOut.Load(), s.notifies.Load()
}

// ServerCounters is a named snapshot of the server's protocol counters
// — the positional Stats() plus the grant-outcome split the load
// harness asserts on: how many offers were fresh leases, same-driver
// renewals, and upgrade renewals.
type ServerCounters struct {
	Requests   int64 // DISCOVER + REQUEST frames received
	Offers     int64 // OFFER frames sent
	ErrorsSent int64 // DRIVOLUTION_ERROR frames sent
	Transfers  int64 // completed FILE_DATA streams
	BytesOut   int64 // driver bytes transferred
	Notifies   int64 // push notifications delivered

	// LeasesGranted counts fresh leases created (Table 3 bootstraps).
	LeasesGranted int64
	// RenewKeeps counts renewals that kept the client's driver
	// (Table 4 OFFER without data file).
	RenewKeeps int64
	// RenewUpgrades counts renewals offered a different driver — the
	// fleet-wide hot-swap events of an upgrade storm.
	RenewUpgrades int64
	// Redirects counts REQUESTs answered with a msgRedirect frame
	// because another cluster member owns the shard.
	Redirects int64
}

// Counters snapshots every protocol counter by name.
func (s *Server) Counters() ServerCounters {
	return ServerCounters{
		Requests:      s.requests.Load(),
		Offers:        s.offers.Load(),
		ErrorsSent:    s.errsSent.Load(),
		Transfers:     s.transfers.Load(),
		BytesOut:      s.bytesOut.Load(),
		Notifies:      s.notifies.Load(),
		LeasesGranted: s.leasesGranted.Load(),
		RenewKeeps:    s.renewKeeps.Load(),
		RenewUpgrades: s.renewUpgrades.Load(),
		Redirects:     s.redirects.Load(),
	}
}

// Start listens for bootloader connections on addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	return s.serveListener(ln)
}

// StartTLS listens with TLS — the paper's default secure configuration
// ("In its default configuration, Drivolution uses encrypted
// authenticated SSL channels").
func (s *Server) StartTLS(addr string, cert tls.Certificate) error {
	ln, err := tls.Listen("tcp", addr, &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		return fmt.Errorf("core: tls listen %s: %w", addr, err)
	}
	return s.serveListener(ln)
}

func (s *Server) serveListener(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		_ = ln.Close()
		return fmt.Errorf("core: server %s already started", s.name)
	}
	s.ln = ln
	s.mu.Unlock()
	s.connsMu.Lock()
	s.stopping = false
	s.connsMu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(nc)
			}()
		}
	}()
	return nil
}

// Addr returns the listen address, or "" when not started.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stop closes the listener and all subscriber channels and waits for
// connection goroutines. The store (and therefore all leases/drivers)
// survives; Start may be called again.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.ln != nil {
		_ = s.ln.Close()
		s.ln = nil
	}
	s.mu.Unlock()
	s.subMu.Lock()
	s.subscribers = make(map[*wire.Conn]subscribeMsg)
	s.subMu.Unlock()
	// Close every live connection (bootloaders keep a persistent one for
	// renewals) so connection goroutines unblock and wg.Wait returns.
	// stopping also refuses connections accepted just before the
	// listener closed but not yet registered — without it such a conn
	// would be missed by this sweep and hang wg.Wait forever.
	s.connsMu.Lock()
	s.stopping = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.connsMu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveConn(nc net.Conn) {
	conn := wire.NewConn(nc)
	s.connsMu.Lock()
	if s.stopping {
		s.connsMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connsMu.Unlock()
	conn.SetWriteTimeout(s.writeTimeout)
	subscribed := false
	defer func() {
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		conn.Close()
	}()
	for first := true; ; first = false {
		var f wire.Frame
		var err error
		if first {
			// Hello deadline: a connect-and-stall (or byte-trickling)
			// peer is cut off instead of holding this goroutine. Later
			// frames are unbounded — a bootloader's renewal connection
			// legitimately idles between lease terms.
			f, err = conn.RecvTimeout(s.handshakeTimeout)
		} else {
			f, err = conn.Recv()
		}
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Best effort: protocol errors just end the session.
				_ = err
			}
			if subscribed {
				s.dropSubscriber(conn)
			}
			return
		}
		switch f.Type {
		case msgDiscover:
			s.handleDiscover(conn, f.Payload)
		case msgRequest:
			s.handleRequest(conn, f.Payload)
		case msgFileRequest:
			s.handleFileRequest(conn, f.Payload)
		case msgSubscribe:
			if s.handleSubscribe(conn, f.Payload) {
				subscribed = true
			}
		case msgRelease:
			s.handleRelease(conn, f.Payload)
		default:
			s.sendError(conn, ErrCodeInternal, fmt.Sprintf("unexpected frame 0x%04x", f.Type))
		}
	}
}

func (s *Server) sendError(conn *wire.Conn, code ErrorCode, msg string) {
	s.errsSent.Add(1)
	_ = conn.Send(msgError, encodeProtocolError(code, msg))
}

// handleDiscover answers a broadcast probe: matchmaking runs but no
// lease is created; the bootloader then unicasts a REQUEST to one of the
// offering servers (paper §3.1).
func (s *Server) handleDiscover(conn *wire.Conn, payload []byte) {
	req, err := decodeRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed discover")
		return
	}
	s.requests.Add(1)
	if s.auth != nil {
		if err := s.auth(req.Database, req.User, req.Password); err != nil {
			s.sendError(conn, ErrCodeAuth, err.Error())
			return
		}
	}
	g, perr := s.match(req)
	if perr != nil {
		s.sendError(conn, perr.Code, perr.Message)
		return
	}
	if s.route != nil {
		// A fenced cluster member (no quorum: it can neither grant nor
		// name a serving owner) must not advertise itself in discovery;
		// an erroring answer sends the bootloader to its other servers.
		if rt := s.route(g.driverID, req.ClientID); !rt.Local && rt.Addr == "" {
			s.sendError(conn, ErrCodeInternal, "cluster member cannot serve: no quorum")
			return
		}
	}
	s.offers.Add(1)
	s.sendOffer(conn, Offer{
		LeaseTime:        g.leaseTime,
		RenewPolicy:      g.renew,
		ExpirationPolicy: g.expiration,
		TransferMethod:   g.transfer,
		HasDriver:        true,
		DriverChecksum:   g.checksum,
		Format:           g.format,
		Size:             uint32(g.size),
		ServerName:       s.name,
	})
}

// sendOffer encodes through a pooled encoder; offers are the per-grant
// hot path.
func (s *Server) sendOffer(conn *wire.Conn, o Offer) {
	e := wire.GetEncoder(128)
	o.encodeTo(e)
	_ = conn.Send(msgOffer, e.Bytes())
	wire.PutEncoder(e)
}

func (s *Server) handleRequest(conn *wire.Conn, payload []byte) {
	req, err := decodeRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed request")
		return
	}
	s.requests.Add(1)
	if s.auth != nil {
		if err := s.auth(req.Database, req.User, req.Password); err != nil {
			s.sendError(conn, ErrCodeAuth, err.Error())
			return
		}
	}
	offer, perr := s.grantSerialized(req, conn.IsTLS())
	if perr != nil {
		if perr.redirect != nil {
			s.redirects.Add(1)
			_ = conn.Send(msgRedirect, perr.redirect.encode())
			return
		}
		s.sendError(conn, perr.Code, perr.Message)
		return
	}
	s.offers.Add(1)
	s.sendOffer(conn, offer)
}

// jitterLease smears a granted lease period by ±leaseJitter (uniform).
// No-op unless WithLeaseJitter configured the server.
func (s *Server) jitterLease(d time.Duration) time.Duration {
	if s.leaseJitter <= 0 || s.jitterRng == nil {
		return d
	}
	s.jitterMu.Lock()
	u := s.jitterRng.Float64()
	s.jitterMu.Unlock()
	f := 1 + s.leaseJitter*(2*u-1)
	j := time.Duration(float64(d) * f)
	if j <= 0 {
		return d
	}
	return j
}

// grantSerialized runs grant, serialized in license mode: the
// license-free check and the lease insert are separate store
// statements, so without a grant-order lock two concurrent bootstraps
// could both see a driver free and double-grant its license (§5.4.2
// cap breach). Outside license mode grants stay concurrent. Servers
// sharing one store (Figure 6 replication) serialize only their own
// grants; cross-server license enforcement would need a store-side
// transaction.
func (s *Server) grantSerialized(req Request, isTLS bool) (Offer, *ProtocolError) {
	if s.licenseMode {
		s.licenseMu.Lock()
		defer s.licenseMu.Unlock()
	}
	return s.grant(req, isTLS)
}

func (s *Server) handleFileRequest(conn *wire.Conn, payload []byte) {
	fr, err := decodeFileRequest(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed file request")
		return
	}
	s.pendingMu.Lock()
	p, ok := s.pending[fr.LeaseID]
	s.pendingMu.Unlock()
	if !ok {
		s.sendError(conn, ErrCodeNoLease, fmt.Sprintf("no pending transfer for lease %d", fr.LeaseID))
		return
	}
	blob := p.blob
	total := uint32(len(blob))
	e := wire.GetEncoder(16 + transferChunkSize) // one framing buffer for the whole stream
	defer wire.PutEncoder(e)
	for off := uint32(0); ; {
		end := off + transferChunkSize
		if end > total {
			end = total
		}
		chunk := fileChunk{Offset: off, Total: total, Last: end == total, Data: blob[off:end]}
		e.Reset()
		chunk.encodeTo(e)
		if err := conn.Send(msgFileData, e.Bytes()); err != nil {
			return
		}
		s.bytesOut.Add(int64(end - off))
		if chunk.Last {
			break
		}
		off = end
	}
	s.transfers.Add(1)
}

func (s *Server) handleSubscribe(conn *wire.Conn, payload []byte) bool {
	sub, err := decodeSubscribe(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed subscribe")
		return false
	}
	s.subMu.Lock()
	s.subscribers[conn] = sub
	s.subMu.Unlock()
	return true
}

func (s *Server) dropSubscriber(conn *wire.Conn) {
	s.subMu.Lock()
	delete(s.subscribers, conn)
	s.subMu.Unlock()
}

func (s *Server) handleRelease(conn *wire.Conn, payload []byte) {
	rel, err := decodeRelease(payload)
	if err != nil {
		s.sendError(conn, ErrCodeInternal, "malformed release")
		return
	}
	_, execErr := s.exec(
		`UPDATE `+LeasesTable+` SET released = TRUE WHERE lease_id = $id`,
		sqlmini.Args{"id": int64(rel.LeaseID)})
	if execErr != nil {
		s.sendError(conn, ErrCodeInternal, execErr.Error())
		return
	}
	s.dropPending(rel.LeaseID)
	_ = conn.Send(msgReleaseOK, nil)
}

// NotifyUpdate pushes a change notification to dedicated-channel
// subscribers whose (database, api) scope matches; empty strings match
// everything. Admin operations call it automatically.
func (s *Server) NotifyUpdate(database, api string) {
	s.subMu.Lock()
	conns := make([]*wire.Conn, 0, len(s.subscribers))
	for c, sub := range s.subscribers {
		if (sub.Database == "" || database == "" || sub.Database == database) &&
			(sub.API == "" || api == "" || sub.API == api) {
			conns = append(conns, c)
		}
	}
	s.subMu.Unlock()
	payload := subscribeMsg{Database: database, API: api}.encode()
	for _, c := range conns {
		if err := c.Send(msgNotify, payload); err != nil {
			// The conn's write timeout already bounded how long this
			// send could stall the broadcast; a failed subscriber is
			// dead or wedged either way, so drop it and close — its
			// bootloader's push loop redials with backoff.
			s.dropSubscriber(c)
			_ = c.Close()
			continue
		}
		s.notifies.Add(1)
	}
}
