package core

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// GenerateTLSCert creates a self-signed server certificate for the given
// hosts plus a root pool trusting it, so tests and deployments can run
// the paper's default secure configuration without external PKI.
func GenerateTLSCert(hosts ...string) (tls.Certificate, *x509.CertPool, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("core: generate key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("core: serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "drivolution-server"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
			continue
		}
		tmpl.DNSNames = append(tmpl.DNSNames, h)
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("core: create certificate: %w", err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, nil, fmt.Errorf("core: parse certificate: %w", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}
	return cert, pool, nil
}
