package core

import (
	"fmt"
	"time"

	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// grantInfo is the resolved outcome of matchmaking: which driver, under
// which lease terms. The driver's binary is NOT necessarily loaded:
// blob is nil until materializeBlob fetches it, which the grant flow
// does only when a transfer will actually happen. DISCOVER probes and
// the Table-4 renewal-no-change branch never touch the blob.
type grantInfo struct {
	driverID   int64
	blob       []byte // nil = not yet materialized
	checksum   string
	format     string
	size       int // encoded blob length, known without the blob
	leaseTime  time.Duration
	renew      RenewPolicy
	expiration ExpirationPolicy
	transfer   TransferMethod
}

// millis converts a lease_time_in_ms column value.
func millis(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// preferenceSQL is the paper's Sample code 1, adapted to the split
// api/driver version columns of Table 1. The italicized preference
// predicates are the ones dropped by the fallback query.
const preferenceSQL = `SELECT driver_id, api_name, api_version_major,
	api_version_minor, platform, driver_version_major,
	driver_version_minor, driver_version_micro, binary_code, binary_format
FROM ` + DriversTable + `
WHERE api_name LIKE $client_api_name
AND (platform IS NULL OR platform LIKE $client_platform)
AND ($client_api_major IS NULL OR api_version_major IS NULL
     OR api_version_major = $client_api_major)
AND ($client_api_minor IS NULL OR api_version_minor IS NULL
     OR api_version_minor = $client_api_minor)
AND ($client_drv_major IS NULL OR driver_version_major IS NULL
     OR driver_version_major = $client_drv_major)
AND ($client_drv_minor IS NULL OR driver_version_minor IS NULL
     OR driver_version_minor = $client_drv_minor)
AND ($client_drv_micro IS NULL OR driver_version_micro IS NULL
     OR driver_version_micro = $client_drv_micro)
AND ($client_format IS NULL OR binary_format LIKE $client_format)
ORDER BY driver_version_major DESC, driver_version_minor DESC,
	driver_version_micro DESC, driver_id DESC`

// fallbackSQL is the "simple SELECT without preferences" issued when the
// preference query returns nothing (paper §4.1.1).
const fallbackSQL = `SELECT driver_id, api_name, api_version_major,
	api_version_minor, platform, driver_version_major,
	driver_version_minor, driver_version_micro, binary_code, binary_format
FROM ` + DriversTable + `
WHERE api_name LIKE $client_api_name
AND (platform IS NULL OR platform LIKE $client_platform)
ORDER BY driver_version_major DESC, driver_version_minor DESC,
	driver_version_micro DESC, driver_id DESC`

// permissionSQL is the paper's Sample code 2 (the distribution table
// lookup), with its date predicate verbatim, extended to also return the
// lease terms the offer needs.
const permissionSQL = `SELECT permission_id, driver_id, driver_options,
	lease_time_in_ms, renew_policy, expiration_policy, transfer_method
FROM ` + PermissionTable + `
WHERE (database IS NULL OR database LIKE $user_database)
AND (user IS NULL OR user LIKE $client_user)
AND (client_ip IS NULL OR client_ip LIKE $client_client_ip)
AND (start_date IS NULL OR end_date IS NULL
     OR now() BETWEEN start_date AND end_date)
ORDER BY permission_id DESC`

const driverByIDSQL = `SELECT driver_id, api_name, api_version_major,
	api_version_minor, platform, driver_version_major,
	driver_version_minor, driver_version_micro, binary_code, binary_format
FROM ` + DriversTable + ` WHERE driver_id = $id`

// driverBlobSQL fetches just the binary for a transfer; the metadata
// comes from the catalog.
const driverBlobSQL = `SELECT binary_code FROM ` + DriversTable + `
	WHERE driver_id = $id`

// match resolves a request to a driver + lease terms, implementing the
// paper's server logic (§4.1.1): consult the permission/distribution
// table first; otherwise match by client preference with a no-preference
// fallback. License mode additionally skips drivers whose lease is held.
//
// When the store can report a generation (GenerationStore), matching
// runs against the in-memory catalog and performs no SQL at all; the
// SQL path below remains for external stores.
func (s *Server) match(req Request) (*grantInfo, *ProtocolError) {
	cat, perr := s.catalogSnapshot()
	if perr != nil {
		return nil, perr
	}
	if cat != nil {
		return s.matchCatalog(cat, req)
	}
	return s.matchSQL(req)
}

// matchSQL is the per-request Sample-code-1/2 path for stores without
// generation support.
func (s *Server) matchSQL(req Request) (*grantInfo, *ProtocolError) {
	// 1. Permission table (Sample code 2).
	//lint:scan-ok paper Sample code 2 verbatim: LIKE/OR/NULL predicates are not indexable; hot path uses the in-memory catalog
	res, err := s.exec(permissionSQL, sqlmini.Args{
		"user_database":    req.Database,
		"client_user":      nullableStr(req.User),
		"client_client_ip": nullableStr(req.ClientID),
	})
	if err != nil {
		return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	idx := colIndex(res.Cols) // one map per result set, not per row
	for _, row := range res.Rows {
		g, ok, perr := s.grantFromPermissionRow(req, idx, row)
		if perr != nil {
			return nil, perr
		}
		if ok {
			return g, nil
		}
	}

	// 2. Preference query (Sample code 1) then fallback.
	g, perr := s.matchByPreference(req)
	if perr != nil {
		return nil, perr
	}
	return g, nil
}

func colIndex(cols []string) map[string]int {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		idx[c] = i
	}
	return idx
}

func (s *Server) grantFromPermissionRow(req Request, idx map[string]int, row []sqlmini.Value) (*grantInfo, bool, *ProtocolError) {
	driverID := row[idx["driver_id"]].Int()
	rec, ok, err := s.driverByID(driverID)
	if err != nil {
		return nil, false, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	if !ok || !driverMatchesRequest(rec, req) {
		return nil, false, nil // try the next permission row
	}
	renew := RenewPolicy(row[idx["renew_policy"]].Int())
	if renew == RenewRevoke && req.LeaseID == 0 {
		// A REVOKE permission exists to retire the driver: new clients
		// don't get it; renewing clients are told to stop (handled by
		// grant()).
		return nil, false, nil
	}
	g := &grantInfo{
		driverID:   driverID,
		blob:       rec.BinaryCode,
		size:       len(rec.BinaryCode),
		format:     rec.Format,
		renew:      renew,
		expiration: ExpirationPolicy(row[idx["expiration_policy"]].Int()),
		transfer:   TransferMethod(row[idx["transfer_method"]].Int()),
		leaseTime:  s.defaultLease,
	}
	if v := row[idx["lease_time_in_ms"]]; !v.IsNull() && v.Int() > 0 {
		g.leaseTime = millis(v.Int())
	}
	if perr := s.finishGrant(g, req, row[idx["driver_options"]].Str()); perr != nil {
		return nil, false, perr
	}
	if s.licenseMode {
		free, err := s.driverLeaseFree(driverID, req.LeaseID)
		if err != nil {
			return nil, false, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
		}
		if !free {
			return nil, false, nil // license held; try next row
		}
	}
	return g, true, nil
}

func (s *Server) matchByPreference(req Request) (*grantInfo, *ProtocolError) {
	args := sqlmini.Args{
		"client_api_name":  req.API.Name,
		"client_platform":  string(req.ClientPlatform),
		"client_api_major": nullableInt(req.API.Major),
		"client_api_minor": nullableInt(req.API.Minor),
		"client_drv_major": nullableInt(req.PreferredVersion.Major),
		"client_drv_minor": nullableInt(req.PreferredVersion.Minor),
		"client_drv_micro": nullableInt(req.PreferredVersion.Micro),
		"client_format":    nullableStr(req.PreferredFormat),
	}
	//lint:scan-ok paper Sample code 1 verbatim: LIKE/OR/NULL predicates are not indexable; hot path uses the in-memory catalog
	res, err := s.exec(preferenceSQL, args)
	if err != nil {
		return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	if len(res.Rows) == 0 {
		//lint:scan-ok paper fallback query verbatim: LIKE predicates are not indexable; hot path uses the in-memory catalog
		res, err = s.exec(fallbackSQL, sqlmini.Args{
			"client_api_name": req.API.Name,
			"client_platform": string(req.ClientPlatform),
		})
		if err != nil {
			return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
		}
	}
	idx := colIndex(res.Cols)
	for _, row := range res.Rows {
		rec, err := scanDriverRecordIdx(idx, row)
		if err != nil {
			return nil, &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
		}
		if s.licenseMode {
			free, lerr := s.driverLeaseFree(rec.DriverID, req.LeaseID)
			if lerr != nil {
				return nil, &ProtocolError{Code: ErrCodeInternal, Message: lerr.Error()}
			}
			if !free {
				continue
			}
		}
		g := &grantInfo{
			driverID:   rec.DriverID,
			blob:       rec.BinaryCode,
			size:       len(rec.BinaryCode),
			format:     rec.Format,
			leaseTime:  s.defaultLease,
			renew:      s.defaultRenew,
			expiration: s.defaultExpiration,
			transfer:   s.defaultTransfer,
		}
		if perr := s.finishGrant(g, req, ""); perr != nil {
			return nil, perr
		}
		return g, nil
	}
	return nil, noDriverError(req)
}

func noDriverError(req Request) *ProtocolError {
	return &ProtocolError{Code: ErrCodeNoDriver, Message: fmt.Sprintf(
		"no driver for database %q, API %s, platform %q", req.Database, req.API, req.ClientPlatform)}
}

// finishGrant applies on-demand assembly (§5.4.1) and server-side
// pre-configuration (§3.1.1: "Connection options can also be configured
// and enforced on the Drivolution server, which then sends a
// pre-configured driver to the client"), then computes the checksum.
// The common no-rewrite case checksums the encoded blob directly
// without decoding it.
func (s *Server) finishGrant(g *grantInfo, req Request, options string) *ProtocolError {
	if len(req.RequiredPackages) == 0 && options == "" {
		sum, err := driverimg.EncodedChecksum(g.blob)
		if err != nil {
			return corruptDriverError(g.driverID, err)
		}
		g.checksum = sum
		return nil
	}
	img, err := driverimg.Decode(g.blob)
	if err != nil {
		return corruptDriverError(g.driverID, err)
	}
	img, perr := s.rewriteImage(img, req, options)
	if perr != nil {
		return perr
	}
	g.blob = img.Encode()
	g.size = len(g.blob)
	g.checksum = img.Checksum()
	return nil
}

// rewriteImage applies on-demand assembly and option pre-configuration
// to a decoded base image, re-signing the result when the server has a
// key. Shared by the SQL grant path and the catalog's assembly cache.
func (s *Server) rewriteImage(img *driverimg.Image, req Request, options string) (*driverimg.Image, *ProtocolError) {
	if len(req.RequiredPackages) > 0 {
		if s.packages == nil {
			return nil, &ProtocolError{Code: ErrCodeNoDriver, Message: "server has no package store for on-demand assembly"}
		}
		var err error
		img, err = s.packages.Assemble(img, req.RequiredPackages...)
		if err != nil {
			return nil, &ProtocolError{Code: ErrCodeNoDriver, Message: err.Error()}
		}
	}
	if options != "" {
		if img.Manifest.Options == nil {
			img.Manifest.Options = map[string]string{}
		}
		for k, v := range ParseDriverOptions(options) {
			img.Manifest.Options[k] = v
		}
		img.Signature = nil // content changed
	}
	if s.signKey != nil {
		img.Sign(s.signKey)
	}
	return img, nil
}

func corruptDriverError(driverID int64, err error) *ProtocolError {
	return &ProtocolError{Code: ErrCodeInternal,
		Message: fmt.Sprintf("stored driver %d is corrupt: %v", driverID, err)}
}

// materializeBlob loads the driver binary for a grant resolved through
// the catalog; called only when a transfer will actually happen. The
// error is INTERNAL (not NO_DRIVER) so a renewal racing a DeleteDriver
// keeps its working driver instead of revoking it.
func (s *Server) materializeBlob(g *grantInfo) *ProtocolError {
	if g.blob != nil {
		return nil
	}
	res, err := s.exec(driverBlobSQL, sqlmini.Args{"id": g.driverID})
	if err != nil {
		return &ProtocolError{Code: ErrCodeInternal, Message: err.Error()}
	}
	if len(res.Rows) == 0 {
		return &ProtocolError{Code: ErrCodeInternal,
			Message: fmt.Sprintf("driver %d disappeared before transfer", g.driverID)}
	}
	g.blob = res.Rows[0][0].Bytes()
	g.size = len(g.blob)
	return nil
}

// driverByID loads one driver row.
func (s *Server) driverByID(id int64) (DriverRecord, bool, error) {
	res, err := s.exec(driverByIDSQL, sqlmini.Args{"id": id})
	if err != nil {
		return DriverRecord{}, false, err
	}
	if len(res.Rows) == 0 {
		return DriverRecord{}, false, nil
	}
	rec, err := scanDriverRecord(res.Cols, res.Rows[0])
	return rec, err == nil, err
}

// driverMatchesRequest checks the API/platform compatibility of a
// permission-designated driver against the requesting client.
func driverMatchesRequest(rec DriverRecord, req Request) bool {
	if !sqlmini.Like(rec.APIName, req.API.Name) {
		return false
	}
	if rec.Platform != "" && !sqlmini.Like(string(rec.Platform), string(req.ClientPlatform)) {
		return false
	}
	if req.API.Major >= 0 && rec.APIMajor >= 0 && req.API.Major != rec.APIMajor {
		return false
	}
	if req.API.Minor >= 0 && rec.APIMinor >= 0 && req.API.Minor != rec.APIMinor {
		return false
	}
	return true
}

// driverLeaseFreeSQL carries exactly the two conjuncts the composite
// (driver_id, expires_at) index consumes, so the planner runs it
// residual-free: one seek into the requested driver's unexpired window,
// no WHERE re-evaluation. TestHotStatementsPlanIndexed pins the plan.
const driverLeaseFreeSQL = `SELECT lease_id, released FROM ` + LeasesTable + `
	WHERE driver_id = $id AND expires_at > now()`

// driverLeaseFree reports whether no *other* live lease holds driverID
// (license mode). ownLease is the requesting client's lease id (0 for a
// new client). The released flag and the own-lease exclusion are
// filtered here rather than in SQL: keeping the statement to the two
// index-consumed conjuncts makes the plan residual-free, and a driver's
// unexpired window is at most a handful of rows in license mode.
func (s *Server) driverLeaseFree(driverID int64, ownLease uint64) (bool, error) {
	res, err := s.exec(driverLeaseFreeSQL, sqlmini.Args{"id": driverID})
	if err != nil {
		return false, err
	}
	idx := colIndex(res.Cols)
	lid, rel := idx["lease_id"], idx["released"]
	for _, row := range res.Rows {
		if row[rel].Bool() {
			continue
		}
		if uint64(row[lid].Int()) == ownLease {
			continue
		}
		return false, nil
	}
	return true, nil
}

// licenseUsageSQL is the §5.4.2 license-accounting count: how many
// leases are live right now, across all drivers. Its only indexable
// conjunct is the expires_at window, so the planner drives it off the
// ordered expires_at index as a range seek — the count visits only
// unexpired leases instead of scanning the whole (history-bearing)
// lease log. TestHotStatementsPlanIndexed pins the range plan.
const licenseUsageSQL = `SELECT count(*) FROM ` + LeasesTable + `
	WHERE expires_at > now() AND released = FALSE`

// LicensesInUse reports how many leases are currently live — granted,
// unreleased, and unexpired — which in license mode is exactly the
// number of driver licenses checked out (§5.4.2).
func (s *Server) LicensesInUse() (int, error) {
	res, err := s.exec(licenseUsageSQL)
	if err != nil {
		return 0, err
	}
	return int(res.Rows[0][0].Int()), nil
}
