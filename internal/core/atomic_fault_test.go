package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dbver"
	"repro/internal/sqlmini"
)

// The fault-injection suite for the Store API v2 atomicity contract:
// every multi-statement server operation is driven with the k-th
// statement failing, for every k, and the schema is asserted free of
// partial writes afterwards — real rollback on TxStore/BatchStore
// (LocalStore), documented best-effort on the plain-Exec fallback.

var errInjected = errors.New("injected store fault")

// faultCore counts statements crossing the store boundary and fails
// the k-th one after arming.
type faultCore struct {
	mu     sync.Mutex
	armed  bool
	failAt int
	n      int
}

func (f *faultCore) arm(k int) {
	f.mu.Lock()
	f.armed, f.failAt, f.n = true, k, 0
	f.mu.Unlock()
}

func (f *faultCore) disarm() {
	f.mu.Lock()
	f.armed = false
	f.mu.Unlock()
}

// seen reports how many statements crossed since arming.
func (f *faultCore) seen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *faultCore) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		return nil
	}
	f.n++
	if f.n == f.failAt {
		return errInjected
	}
	return nil
}

// faultPlainStore is a capability-free store: the fallback-adapter
// path. Each statement crosses individually.
type faultPlainStore struct {
	faultCore
	inner Store
}

func (f *faultPlainStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Exec(sql, args...)
}

// faultTxStore wraps a LocalStore keeping its Tx and Batch
// capabilities. A batch whose k-th statement is marked to fail errors
// as a whole before executing (matching the atomic-batch contract); a
// transaction statement failing triggers the caller's rollback.
type faultTxStore struct {
	faultCore
	inner *LocalStore
}

func (f *faultTxStore) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.inner.Exec(sql, args...)
}

func (f *faultTxStore) Begin() (Tx, error) {
	tx, err := f.inner.Begin()
	if err != nil {
		return nil, err
	}
	return &faultTx{f: f, tx: tx}, nil
}

type faultTx struct {
	f  *faultTxStore
	tx Tx
}

func (t *faultTx) Exec(sql string, args ...any) (*sqlmini.Result, error) {
	if err := t.f.tick(); err != nil {
		return nil, err
	}
	return t.tx.Exec(sql, args...)
}
func (t *faultTx) Query(sql string, args ...any) (*sqlmini.Result, error) {
	return t.Exec(sql, args...)
}
func (t *faultTx) Commit() error   { return t.tx.Commit() }
func (t *faultTx) Rollback() error { return t.tx.Rollback() }

func (f *faultTxStore) ExecBatch(stmts []Statement) ([]*sqlmini.Result, error) {
	for range stmts {
		if err := f.tick(); err != nil {
			return nil, err // atomic batch: fails whole, applies nothing
		}
	}
	return f.inner.ExecBatch(stmts)
}

// faultFixture builds a server over the given store with one driver
// and two permissions for it, plus n leases (expired when the clock
// says so).
type faultFixture struct {
	srv   *Server
	db    *sqlmini.DB
	drvID int64
}

func newFaultFixture(t *testing.T, mk func(*sqlmini.DB) Store, clock func() time.Time) (*faultFixture, Store) {
	t.Helper()
	db := sqlmini.NewDB()
	st := mk(db)
	opts := []ServerOption{}
	if clock != nil {
		opts = append(opts, WithClock(clock))
	}
	srv, err := NewServer("fault", st, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &faultFixture{srv: srv, db: db}, st
}

func (fx *faultFixture) counts(t *testing.T) (drivers, perms, leases int64) {
	t.Helper()
	for i, table := range []string{DriversTable, PermissionTable, LeasesTable} {
		res, err := fx.db.Query("SELECT count(*) FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			drivers = res.Rows[0][0].Int()
		case 1:
			perms = res.Rows[0][0].Int()
		case 2:
			leases = res.Rows[0][0].Int()
		}
	}
	return
}

// orphanPerms counts permission rows whose driver row is gone — the
// partial-write shape DeleteDriver can leak without atomicity.
func (fx *faultFixture) orphanState(t *testing.T, drvID int64) (driverExists bool, permsLeft int64) {
	t.Helper()
	res, err := fx.db.Query("SELECT count(*) FROM "+DriversTable+" WHERE driver_id = $id",
		sqlmini.Args{"id": drvID})
	if err != nil {
		t.Fatal(err)
	}
	driverExists = res.Rows[0][0].Int() == 1
	res, err = fx.db.Query("SELECT count(*) FROM "+PermissionTable+" WHERE driver_id = $id",
		sqlmini.Args{"id": drvID})
	if err != nil {
		t.Fatal(err)
	}
	return driverExists, res.Rows[0][0].Int()
}

// seedDirect inserts a driver + two permissions straight into the
// embedded db, bypassing the (possibly armed) store.
func (fx *faultFixture) seedDirect(t *testing.T) {
	t.Helper()
	local := NewLocalStore(fx.db)
	rec := DriverRecord{
		DriverID: 1, APIName: "JDBC", APIMajor: 3, APIMinor: -1,
		Platform: "linux-x86_64", Version: dbver.V(1, 0, 0),
		BinaryCode: testImageBlob(t, "JDBC", dbver.V(1, 0, 0)), Format: "IMAGE",
	}
	if err := insertDriver(local, rec); err != nil {
		t.Fatal(err)
	}
	fx.drvID = 1
	for i := int64(1); i <= 2; i++ {
		if err := insertPermission(local, Permission{
			PermissionID: i, DriverID: 1, Database: "prod",
			RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit,
			TransferMethod: TransferAny, LeaseTime: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func grantReq() Request {
	return Request{
		Database: "prod", User: "app",
		API:            dbver.APIOf("JDBC", 3, -1),
		ClientPlatform: "linux-x86_64",
		ClientID:       "fault-test",
	}
}

// runOpFaults drives op with the k-th store statement failing for
// every k the operation actually issues, calling check after each
// failed attempt. mk builds the store under test.
func runOpFaults(t *testing.T, name string, mk func(*sqlmini.DB) Store,
	setup func(*faultFixture), op func(*faultFixture) error,
	check func(t *testing.T, fx *faultFixture, k int)) {
	t.Helper()
	// First pass: count the op's statements with an unarmed store.
	fx, st := newFaultFixture(t, mk, nil)
	if setup != nil {
		setup(fx)
	}
	fc := faultCoreOf(st)
	fc.arm(1 << 30) // count without failing
	if err := op(fx); err != nil {
		t.Fatalf("%s: clean run failed: %v", name, err)
	}
	total := fc.seen()
	if total == 0 {
		t.Fatalf("%s: op issued no statements; fault harness miswired", name)
	}
	for k := 1; k <= total; k++ {
		fx, st := newFaultFixture(t, mk, nil)
		if setup != nil {
			setup(fx)
		}
		fc := faultCoreOf(st)
		fc.arm(k)
		err := op(fx)
		fc.disarm()
		if err == nil {
			// Retries (id-collision loops) can absorb a fault; the op
			// succeeding fully is acceptable — invariants still hold.
			continue
		}
		if !isInjected(err) {
			t.Fatalf("%s k=%d: unexpected error %v", name, k, err)
		}
		check(t, fx, k)
	}
}

// isInjected matches the injected fault through both error wrapping
// and the ProtocolError message flattening the grant path performs.
func isInjected(err error) bool {
	return errors.Is(err, errInjected) ||
		(err != nil && strings.Contains(err.Error(), errInjected.Error()))
}

func faultCoreOf(st Store) *faultCore {
	switch s := st.(type) {
	case *faultTxStore:
		return &s.faultCore
	case *faultPlainStore:
		return &s.faultCore
	}
	panic("not a fault store")
}

func mkFaultTx(db *sqlmini.DB) Store    { return &faultTxStore{inner: NewLocalStore(db)} }
func mkFaultPlain(db *sqlmini.DB) Store { return &faultPlainStore{inner: NewLocalStore(db)} }

// TestFaultInjectionNoPartialWritesOnLocalStore: with the capability
// interfaces in play, no k-th statement failure of any multi-statement
// operation leaves partial rows behind.
func TestFaultInjectionNoPartialWritesOnLocalStore(t *testing.T) {
	t.Run("AddDriver", func(t *testing.T) {
		runOpFaults(t, "AddDriver", mkFaultTx, nil,
			func(fx *faultFixture) error {
				_, err := fx.srv.AddDriver(catalogImage(dbver.V(1, 0, 0)), dbver.FormatImage)
				return err
			},
			func(t *testing.T, fx *faultFixture, k int) {
				drivers, _, _ := fx.counts(t)
				if drivers != 0 {
					t.Fatalf("k=%d: %d partial driver rows", k, drivers)
				}
			})
	})
	t.Run("SetPermission", func(t *testing.T) {
		runOpFaults(t, "SetPermission", mkFaultTx,
			func(fx *faultFixture) { fx.seedDirect(t) },
			func(fx *faultFixture) error {
				_, err := fx.srv.SetPermission(Permission{
					DriverID: fx.drvID, Database: "prod",
					RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit,
					TransferMethod: TransferAny,
				})
				return err
			},
			func(t *testing.T, fx *faultFixture, k int) {
				_, perms, _ := fx.counts(t)
				if perms != 2 {
					t.Fatalf("k=%d: permission rows = %d, want the seeded 2", k, perms)
				}
			})
	})
	t.Run("DeleteDriver", func(t *testing.T) {
		runOpFaults(t, "DeleteDriver", mkFaultTx,
			func(fx *faultFixture) { fx.seedDirect(t) },
			func(fx *faultFixture) error { return fx.srv.DeleteDriver(fx.drvID) },
			func(t *testing.T, fx *faultFixture, k int) {
				driverExists, perms := fx.orphanState(t, fx.drvID)
				if !driverExists || perms != 2 {
					t.Fatalf("k=%d: partial delete survived (driver=%v perms=%d)", k, driverExists, perms)
				}
			})
	})
	t.Run("newLease", func(t *testing.T) {
		runOpFaults(t, "newLease", mkFaultTx,
			func(fx *faultFixture) { fx.seedDirect(t) },
			func(fx *faultFixture) error {
				_, perr := fx.srv.grant(grantReq(), false)
				if perr != nil {
					return errors.New(perr.Message)
				}
				return nil
			},
			func(t *testing.T, fx *faultFixture, k int) {
				_, _, leases := fx.counts(t)
				if leases != 0 {
					t.Fatalf("k=%d: %d partial lease rows", k, leases)
				}
			})
	})
}

// TestFaultInjectionReapAtomicOnLocalStore: a failed sweep (its single
// UPDATE injected to fail) applies nothing and drops no staged blob,
// and a clean retry completes it.
func TestFaultInjectionReapAtomicOnLocalStore(t *testing.T) {
	now := time.Unix(10_000, 0).UTC()
	db := sqlmini.NewDB()
	st := &faultTxStore{inner: NewLocalStore(db)}
	srv, err := NewServer("fault", st, WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		db.MustExec(`INSERT INTO `+LeasesTable+` (lease_id, driver_id, database, user,
			client_id, granted_at, expires_at, released, renewals)
			VALUES ($id, 1, 'prod', 'app', 'c', $g, $e, FALSE, 0)`,
			sqlmini.Args{"id": i, "g": now.Add(-2 * time.Hour), "e": now.Add(-time.Hour)})
		srv.stageTransfer(uint64(i), []byte{1, 2, 3}, now.Add(-time.Hour))
	}
	st.arm(1)
	_, err = srv.ReapExpiredLeases()
	st.disarm()
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	res := db.MustExec(`SELECT count(*) FROM ` + LeasesTable + ` WHERE released = TRUE`)
	if n := res.Rows[0][0].Int(); n != 0 {
		t.Fatalf("failed sweep must apply nothing, released = %d", n)
	}
	srv.pendingMu.Lock()
	pending := len(srv.pending)
	srv.pendingMu.Unlock()
	if pending != 5 {
		t.Fatalf("failed sweep dropped staged blobs (%d left)", pending)
	}
	// Clean retry completes.
	n, err := srv.ReapExpiredLeases()
	if err != nil || n != 5 {
		t.Fatalf("clean sweep: n=%d err=%v", n, err)
	}
	srv.pendingMu.Lock()
	pending = len(srv.pending)
	srv.pendingMu.Unlock()
	if pending != 0 {
		t.Fatalf("swept leases must drop staged blobs, %d left", pending)
	}
}

// TestFaultInjectionFallbackIsBestEffort pins the DOCUMENTED degraded
// semantics of the plain-Exec fallback adapter: DeleteDriver's first
// statement (permissions) lands, its second (driver row) fails, and
// the partial state persists — exactly what RunAtomic's best-effort
// contract says, and why hard atomicity requires TxStore.
func TestFaultInjectionFallbackIsBestEffort(t *testing.T) {
	fx, st := newFaultFixture(t, mkFaultPlain, nil)
	fx.seedDirect(t)
	fc := faultCoreOf(st)
	// DeleteDriver on a plain store: statement 1 deletes permissions,
	// statement 2 deletes the driver. Fail statement 2.
	fc.arm(2)
	err := fx.srv.DeleteDriver(fx.drvID)
	fc.disarm()
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	driverExists, perms := fx.orphanState(t, fx.drvID)
	if !driverExists || perms != 0 {
		t.Fatalf("best-effort fallback should leave the documented partial state "+
			"(driver kept, permissions gone); got driver=%v perms=%d", driverExists, perms)
	}
}
