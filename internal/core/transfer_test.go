package core

import (
	"crypto/tls"
	"errors"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/dbver"
	"repro/internal/wire"
)

// TestTransferMethodEnforced: a permission demanding the TLS channel
// (Table 2 transfer_method) refuses plaintext bootstraps and serves the
// same client over TLS.
func TestTransferMethodEnforced(t *testing.T) {
	f := newFixture(t, 1)
	id := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit,
		TransferMethod: TransferTLS,
	}); err != nil {
		t.Fatal(err)
	}

	// Plaintext bootstrap is rejected with a clear error and no lease.
	b := f.bootloader(t)
	_, err := b.Connect(f.appURL(), nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeTransfer {
		t.Fatalf("err = %v, want TRANSFER", err)
	}
	leases, err := f.drv.Leases()
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Fatalf("rejected bootstrap must not leave a lease: %+v", leases)
	}

	// The same store behind a TLS listener serves the driver.
	cert, roots, err := GenerateTLSCert("127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	tlsSrv, err := NewServer("tls", NewLocalStore(f.drv.Store().(*LocalStore).DB))
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsSrv.StartTLS("127.0.0.1:0", cert); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tlsSrv.Stop)

	bt := NewBootloader(dbver.APIOf("JDBC", 3, 0), dbver.PlatformLinuxAMD64,
		[]string{tlsSrv.Addr()}, f.rt,
		WithCredentials("app", "app-pw"),
		WithDialTimeout(2*time.Second),
		WithTLS(&tls.Config{RootCAs: roots, ServerName: "127.0.0.1"}))
	t.Cleanup(bt.Close)
	c, err := bt.Connect(f.appURL(), nil)
	if err != nil {
		t.Fatalf("TLS bootstrap should succeed: %v", err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}

// TestRenewalTransferRejectionKeepsDriver: a renewal bounced by the
// transfer policy must not revoke the running driver.
func TestRenewalTransferRejectionKeepsDriver(t *testing.T) {
	f := newFixture(t, 1)
	id := f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c := mustConnect(t, b, f.appURL())

	// Tighten the policy after the fact: now the driver is TLS-only.
	if _, err := f.drv.SetPermission(Permission{
		DriverID: id, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit,
		TransferMethod: TransferTLS,
	}); err != nil {
		t.Fatal(err)
	}
	err := b.ForceRenew("prod")
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ErrCodeTransfer {
		t.Fatalf("err = %v", err)
	}
	// Driver retained; existing connection unaffected.
	if b.Version() != dbver.V(1, 0, 0) {
		t.Fatal("driver must be retained after a transfer-policy rejection")
	}
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("existing conn must keep working: %v", err)
	}
	if m := b.Stats(); m.Revocations != 0 || m.RenewFailures != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestPoolIntegration: a client.Pool over the bootloader transparently
// replaces connections drained by an upgrade (revoked conns fail Ping,
// the pool discards and redials through the new driver).
func TestPoolIntegration(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)

	pool, err := client.NewPool(func() (client.Conn, error) {
		return b.Connect(f.appURL(), nil)
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)

	// Warm the pool.
	var conns []client.Conn
	for i := 0; i < 3; i++ {
		c, err := pool.Get()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		pool.Put(c)
	}

	// Central upgrade drains idle conns (AFTER_COMMIT default).
	f.addDriver(t, f.driverImage(dbver.V(2, 0, 0), 1, 256))
	if err := b.ForceRenew("prod"); err != nil {
		t.Fatal(err)
	}

	// The pool hands out working connections (replacing revoked ones),
	// now through driver v2.
	for i := 0; i < 3; i++ {
		c, err := pool.Get()
		if err != nil {
			t.Fatalf("pool.Get after upgrade: %v", err)
		}
		if _, err := c.Query("SELECT 1"); err != nil {
			t.Fatalf("query after upgrade: %v", err)
		}
		pool.Put(c)
	}
	if b.Version() != dbver.V(2, 0, 0) {
		t.Fatalf("Version = %v", b.Version())
	}
}

// TestConcurrentFirstConnect: many goroutines race the initial
// bootstrap; exactly one download happens and every connect succeeds.
func TestConcurrentFirstConnect(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 64<<10))
	b := f.bootloader(t)

	const n = 12
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			c, err := b.Connect(f.appURL(), nil)
			if err != nil {
				errs <- err
				return
			}
			_, err = c.Query("SELECT 1")
			c.Close()
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Concurrent racers may bootstrap redundantly, but only one install
	// wins and the count stays far below one-per-connect.
	if m := b.Stats(); m.Bootstraps != 1 {
		// The race guard serializes after the first winner; losers adopt
		// the winner's driver. Allow the winner only.
		t.Fatalf("Bootstraps = %d, want 1", m.Bootstraps)
	}
}

// TestPendingBlobReleasedAfterRenewalAck: a staged driver blob may be
// re-requested any number of times before the client confirms it, but
// the first renewal carrying the driver's checksum acknowledges the
// transfer and must release the staged copy — completed transfers no
// longer pin whole driver blobs in server memory for the lease's
// lifetime.
func TestPendingBlobReleasedAfterRenewalAck(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 8<<10))

	conn, err := wire.Dial(f.drv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := Request{
		Database: "prod", User: "app", Password: "app-pw",
		API: dbver.APIOf("JDBC", 3, 0), ClientPlatform: dbver.PlatformLinuxAMD64,
		ClientID: "pending-test",
	}
	if err := conn.Send(msgRequest, req.encode()); err != nil {
		t.Fatal(err)
	}
	fr, err := conn.RecvTimeout(2 * time.Second)
	if err != nil || fr.Type != msgOffer {
		t.Fatalf("frame=0x%04x err=%v", fr.Type, err)
	}
	offer, err := decodeOffer(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// The staged blob survives repeated FILE_REQUESTs (a bootloader may
	// retry a failed verify before renewing).
	fetchFile := func() bool {
		t.Helper()
		if err := conn.Send(msgFileRequest, fileRequest{LeaseID: offer.LeaseID}.encode()); err != nil {
			t.Fatal(err)
		}
		for {
			fr, err := conn.RecvTimeout(2 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if fr.Type == msgError {
				return false
			}
			if fr.Type != msgFileData {
				t.Fatalf("unexpected frame 0x%04x", fr.Type)
			}
			chunk, err := decodeFileChunk(fr.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if chunk.Last {
				return true
			}
		}
	}
	for i := 0; i < 2; i++ {
		if !fetchFile() {
			t.Fatalf("re-request %d before renewal must succeed", i)
		}
	}
	f.drv.pendingMu.Lock()
	staged := len(f.drv.pending)
	f.drv.pendingMu.Unlock()
	if staged != 1 {
		t.Fatalf("pending transfers = %d, want 1", staged)
	}

	// Renewal carrying the checksum acks the transfer.
	renew := req
	renew.LeaseID = offer.LeaseID
	renew.CurrentChecksum = offer.DriverChecksum
	if err := conn.Send(msgRequest, renew.encode()); err != nil {
		t.Fatal(err)
	}
	fr, err = conn.RecvTimeout(2 * time.Second)
	if err != nil || fr.Type != msgOffer {
		t.Fatalf("renewal frame=0x%04x err=%v", fr.Type, err)
	}
	ro, err := decodeOffer(fr.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ro.HasDriver {
		t.Fatal("no-change renewal must not re-offer the driver")
	}

	f.drv.pendingMu.Lock()
	staged = len(f.drv.pending)
	f.drv.pendingMu.Unlock()
	if staged != 0 {
		t.Fatalf("pending transfers after renewal ack = %d, want 0", staged)
	}
	if fetchFile() {
		t.Fatal("FILE_REQUEST after the renewal ack must be refused")
	}
}

// TestInEngineRevocation: the DBMS-side disconnect (§3.2) kills every
// session of a user at once.
func TestInEngineRevocation(t *testing.T) {
	f := newFixture(t, 1)
	f.addDriver(t, f.driverImage(dbver.V(1, 0, 0), 1, 256))
	b := f.bootloader(t)
	c1 := mustConnect(t, b, f.appURL())
	c2 := mustConnect(t, b, f.appURL())

	if n := f.target.DisconnectUser("app"); n != 2 {
		t.Fatalf("DisconnectUser = %d, want 2", n)
	}
	if _, err := c1.Query("SELECT 1"); err == nil {
		t.Fatal("c1 should be dead after in-engine revocation")
	}
	if _, err := c2.Query("SELECT 1"); err == nil {
		t.Fatal("c2 should be dead after in-engine revocation")
	}
	// New connections still work (the driver itself is fine).
	c3 := mustConnect(t, b, f.appURL())
	if _, err := c3.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
}
