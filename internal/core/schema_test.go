package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dbver"
	"repro/internal/driverimg"
	"repro/internal/sqlmini"
)

// TestDriversTable verifies the Table 1 schema is created verbatim:
// every column from the paper, with its constraints enforced.
func TestDriversTable(t *testing.T) {
	db := sqlmini.NewDB()
	st := NewLocalStore(db)
	if err := EnsureSchema(st); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := EnsureSchema(st); err != nil {
		t.Fatal(err)
	}

	// All Table 1 columns accept a full row.
	_, err := st.Exec(`INSERT INTO ` + DriversTable + `
		(driver_id, api_name, api_version_major, api_version_minor,
		 platform, driver_version_major, driver_version_minor,
		 driver_version_micro, binary_code, binary_format)
		VALUES (1, 'JDBC', 3, 0, 'linux-x86_64', 1, 2, 3, ?, 'IMAGE')`)
	if err == nil {
		t.Fatal("positional param unbound should error") // sanity: params work
	}
	_, err = db.Exec(`INSERT INTO `+DriversTable+`
		(driver_id, api_name, api_version_major, api_version_minor,
		 platform, driver_version_major, driver_version_minor,
		 driver_version_micro, binary_code, binary_format)
		VALUES (1, 'JDBC', 3, 0, 'linux-x86_64', 1, 2, 3, ?, 'IMAGE')`,
		[]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}

	// PRIMARY KEY on driver_id (Table 1).
	_, err = db.Exec(`INSERT INTO `+DriversTable+`
		(driver_id, api_name, binary_code, binary_format)
		VALUES (1, 'ODBC', ?, 'IMAGE')`, []byte{9})
	if err == nil {
		t.Fatal("duplicate driver_id must violate the primary key")
	}

	// NOT NULL on binary_code (Table 1).
	_, err = db.Exec(`INSERT INTO ` + DriversTable + `
		(driver_id, api_name, binary_format) VALUES (2, 'ODBC', 'IMAGE')`)
	if err == nil {
		t.Fatal("NULL binary_code must be rejected")
	}

	// NULL platform/api_version mean "all" and are storable.
	if _, err := db.Exec(`INSERT INTO `+DriversTable+`
		(driver_id, api_name, binary_code, binary_format)
		VALUES (2, 'ODBC', ?, 'IMAGE')`, []byte{9}); err != nil {
		t.Fatal(err)
	}
}

// TestPermissionTableForeignKey verifies Table 2's REFERENCES
// driver(driver_id) is enforced.
func TestPermissionTableForeignKey(t *testing.T) {
	db := sqlmini.NewDB()
	st := NewLocalStore(db)
	if err := EnsureSchema(st); err != nil {
		t.Fatal(err)
	}
	err := insertPermission(st, Permission{
		PermissionID: 1,
		DriverID:     42, // no such driver
		LeaseTime:    time.Hour,
	})
	if err == nil {
		t.Fatal("permission with dangling driver_id must be rejected")
	}
}

func TestDriverOptionsRoundTrip(t *testing.T) {
	opts := map[string]string{"user": "app", "fetchSize": "100", "tz": "UTC"}
	s := FormatDriverOptions(opts)
	if s != "fetchSize=100,tz=UTC,user=app" {
		t.Errorf("FormatDriverOptions = %q", s)
	}
	back := ParseDriverOptions(s)
	if len(back) != 3 || back["user"] != "app" || back["fetchSize"] != "100" {
		t.Errorf("ParseDriverOptions = %v", back)
	}
	if got := ParseDriverOptions(""); len(got) != 0 {
		t.Errorf("empty options = %v", got)
	}
	if got := FormatDriverOptions(nil); got != "" {
		t.Errorf("nil options = %q", got)
	}
	if got := ParseDriverOptions(" a = 1 , b = 2 "); got["a"] != "1" || got["b"] != "2" {
		t.Errorf("whitespace handling = %v", got)
	}
}

func TestPolicyEnumsMatchPaperEncoding(t *testing.T) {
	// Table 2 encodes: RENEW=0 UPGRADE=1 REVOKE=2;
	// AFTER_CLOSE=0 AFTER_COMMIT=1 IMMEDIATE=2.
	if int(RenewKeep) != 0 || int(RenewUpgrade) != 1 || int(RenewRevoke) != 2 {
		t.Error("RenewPolicy values diverge from the paper's Table 2")
	}
	if int(AfterClose) != 0 || int(AfterCommit) != 1 || int(Immediate) != 2 {
		t.Error("ExpirationPolicy values diverge from the paper's Table 2")
	}
	if RenewKeep.String() != "RENEW" || RenewUpgrade.String() != "UPGRADE" || RenewRevoke.String() != "REVOKE" {
		t.Error("RenewPolicy names diverge")
	}
	if AfterClose.String() != "AFTER_CLOSE" || AfterCommit.String() != "AFTER_COMMIT" || Immediate.String() != "IMMEDIATE" {
		t.Error("ExpirationPolicy names diverge")
	}
	if int(TransferAny) != -1 {
		t.Error("TransferMethod ANY must be -1 per Table 2")
	}
	if RenewPolicy(3).Valid() || ExpirationPolicy(-1).Valid() {
		t.Error("Valid() accepts out-of-range policies")
	}
}

// TestMatchmakingSampleCode1 exercises the preference query directly:
// the paper's NULL-as-wildcard semantics for platform and versions.
func TestMatchmakingSampleCode1(t *testing.T) {
	db := sqlmini.NewDB()
	st := NewLocalStore(db)
	srv, err := NewServer("s", st)
	if err != nil {
		t.Fatal(err)
	}

	insert := func(id int64, api string, apiMaj int, platform string, ver dbver.Version) {
		t.Helper()
		rec := DriverRecord{
			DriverID: id, APIName: api, APIMajor: apiMaj, APIMinor: -1,
			Platform: dbver.Platform(platform), Version: ver,
			BinaryCode: testImageBlob(t, api, ver), Format: "IMAGE",
		}
		if err := insertDriver(st, rec); err != nil {
			t.Fatal(err)
		}
	}

	insert(1, "JDBC", 3, "linux-x86_64", dbver.V(1, 0, 0))
	insert(2, "JDBC", 3, "", dbver.V(1, 1, 0)) // NULL platform = all
	insert(3, "JDBC", 4, "windows-i586", dbver.V(2, 0, 0))
	insert(4, "ODBC", -1, "", dbver.V(5, 0, 0)) // NULL api version = all

	cases := []struct {
		name   string
		req    Request
		wantID int64
		wantNo bool
	}{
		{
			name:   "exact platform prefers newest matching",
			req:    Request{API: dbver.APIOf("JDBC", 3, -1), ClientPlatform: "linux-x86_64"},
			wantID: 2, // driver 2 matches via NULL platform and is newer (1.1.0)
		},
		{
			name:   "preferred version pins older driver",
			req:    Request{API: dbver.APIOf("JDBC", 3, -1), ClientPlatform: "linux-x86_64", PreferredVersion: dbver.V(1, 0, 0)},
			wantID: 1,
		},
		{
			name:   "windows client gets api-4 build",
			req:    Request{API: dbver.APIOf("JDBC", 4, -1), ClientPlatform: "windows-i586"},
			wantID: 3,
		},
		{
			name:   "odbc any version",
			req:    Request{API: dbver.AnyVersionAPI("ODBC"), ClientPlatform: "solaris-sparc"},
			wantID: 4,
		},
		{
			name:   "no driver for unknown api",
			req:    Request{API: dbver.AnyVersionAPI("TCL"), ClientPlatform: "linux-x86_64"},
			wantNo: true,
		},
		{
			name: "fallback drops unsatisfiable preferences",
			req: Request{API: dbver.APIOf("JDBC", 3, -1), ClientPlatform: "linux-x86_64",
				PreferredVersion: dbver.V(9, 9, 9)},
			wantID: 2, // preference query empty → fallback picks newest compatible
		},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			g, perr := srv.match(tt.req)
			if tt.wantNo {
				if perr == nil {
					t.Fatalf("expected NO_DRIVER, got driver %d", g.driverID)
				}
				if perr.Code != ErrCodeNoDriver {
					t.Fatalf("code = %v", perr.Code)
				}
				return
			}
			if perr != nil {
				t.Fatal(perr)
			}
			if g.driverID != tt.wantID {
				t.Fatalf("matched driver %d, want %d", g.driverID, tt.wantID)
			}
		})
	}
}

// TestMatchmakingSampleCode2 exercises the permission/distribution path:
// user/db/client_ip LIKE filters and the date window.
func TestMatchmakingSampleCode2(t *testing.T) {
	now := time.Date(2026, 6, 13, 12, 0, 0, 0, time.UTC)
	db := sqlmini.NewDB(sqlmini.WithClock(func() time.Time { return now }))
	st := NewLocalStore(db)
	srv, err := NewServer("s", st, WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}

	insert := func(id int64, ver dbver.Version) {
		t.Helper()
		rec := DriverRecord{
			DriverID: id, APIName: "JDBC", APIMajor: -1, APIMinor: -1,
			Version: ver, BinaryCode: testImageBlob(t, "JDBC", ver), Format: "IMAGE",
		}
		if err := insertDriver(st, rec); err != nil {
			t.Fatal(err)
		}
	}
	insert(1, dbver.V(1, 0, 0))
	insert(2, dbver.V(2, 0, 0))

	// Per Sample code 2 the stored column is the LIKE *string* and the
	// client value the pattern, so admins store exact users (or NULL for
	// any). User gis-batch gets driver 1; everyone on db "geo" driver 2.
	mustPerm := func(p Permission) {
		t.Helper()
		p.PermissionID = 0
		if _, err := srv.SetPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	mustPerm(Permission{User: "gis-batch", DriverID: 1, LeaseTime: time.Hour,
		RenewPolicy: RenewUpgrade, ExpirationPolicy: AfterCommit, TransferMethod: TransferAny})
	mustPerm(Permission{Database: "geo", DriverID: 2, LeaseTime: 30 * time.Minute,
		RenewPolicy: RenewKeep, ExpirationPolicy: AfterClose, TransferMethod: TransferAny,
		StartDate: now.Add(-time.Hour), EndDate: now.Add(time.Hour)})

	// Permission rows are consulted newest-first: a "geo" database
	// client matches permission 2.
	g, perr := srv.match(Request{Database: "geo", User: "web1", API: dbver.AnyVersionAPI("JDBC"), ClientPlatform: "linux-x86_64"})
	if perr != nil {
		t.Fatal(perr)
	}
	if g.driverID != 2 || g.renew != RenewKeep || g.expiration != AfterClose || g.leaseTime != 30*time.Minute {
		t.Fatalf("grant = %+v", g)
	}

	// A gis user on another database matches permission 1.
	g, perr = srv.match(Request{Database: "other", User: "gis-batch", API: dbver.AnyVersionAPI("JDBC"), ClientPlatform: "linux-x86_64"})
	if perr != nil {
		t.Fatal(perr)
	}
	if g.driverID != 1 {
		t.Fatalf("driver = %d, want 1", g.driverID)
	}

	// Outside the date window the geo permission stops matching and the
	// preference path takes over (newest driver = 2 anyway). Shift the
	// clock past end_date.
	now = now.Add(2 * time.Hour)
	g, perr = srv.match(Request{Database: "geo", User: "web1", API: dbver.AnyVersionAPI("JDBC"), ClientPlatform: "linux-x86_64"})
	if perr != nil {
		t.Fatal(perr)
	}
	if g.renew != srv.defaultRenew {
		t.Fatalf("expected default policies after permission window closed, got %+v", g)
	}
}

// testImageBlob builds a minimal encodable driver image blob.
func testImageBlob(t *testing.T, api string, ver dbver.Version) []byte {
	t.Helper()
	img := &driverimg.Image{
		Manifest: driverimg.Manifest{
			Kind:    "dbms-native",
			API:     dbver.AnyVersionAPI(api),
			Version: ver,
		},
	}
	return img.Encode()
}

// TestHotStatementsPlanIndexed pins the server's per-request lease and
// blob statements to index execution: if a schema or sqlmini change
// silently demotes one of these to a full scan, lease traffic becomes
// O(active leases) again and this test fails. Range-planned statements
// pin by prefix, because Explain embeds the evaluated now() bound.
func TestHotStatementsPlanIndexed(t *testing.T) {
	db := sqlmini.NewDB()
	if err := EnsureSchema(NewLocalStore(db)); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sql  string
		args sqlmini.Args
		want string
	}{
		{"renewal-no-change", renewNoChangeSQL,
			sqlmini.Args{"exp": time.Unix(1, 0), "drv": int64(1), "id": int64(1)},
			"point lookup on " + LeasesTable + "(lease_id) [primary key]"},
		{"release", `UPDATE ` + LeasesTable + ` SET released = TRUE WHERE lease_id = $id`,
			sqlmini.Args{"id": int64(1)},
			"point lookup on " + LeasesTable + "(lease_id) [primary key]"},
		{"lease-by-id", `SELECT lease_id FROM ` + LeasesTable + ` WHERE lease_id = $id`,
			sqlmini.Args{"id": int64(1)},
			"point lookup on " + LeasesTable + "(lease_id) [primary key]"},
		// The license-mode is-driver-free probe consumes both of its
		// conjuncts on the composite (driver_id, expires_at) index: one
		// seek into the driver's unexpired window, residual-free.
		{"license-count", driverLeaseFreeSQL,
			sqlmini.Args{"id": int64(1)},
			"range scan on " + LeasesTable + "(driver_id, expires_at) [leases_driver_expires_idx] (driver_id = 1 AND expires_at > "},
		{"driver-blob", driverBlobSQL,
			sqlmini.Args{"id": int64(1)},
			"point lookup on " + DriversTable + "(driver_id) [primary key]"},
		{"permissions-by-driver", `SELECT permission_id FROM ` + PermissionTable + ` WHERE driver_id = $id`,
			sqlmini.Args{"id": int64(1)},
			"index lookup on " + PermissionTable + "(driver_id) [driver_permission_driver_id_idx]"},
		// The time-window statements: the §5.4.2 license usage count and
		// the two halves of the expiry sweep must seek the ordered
		// expires_at index, not scan the lease log.
		{"license-usage-count", licenseUsageSQL, nil,
			"range scan on " + LeasesTable + "(expires_at) [leases_expires_at_idx] (expires_at > "},
		{"expiry-sweep-update", reapExpiredSQL,
			sqlmini.Args{"now": time.Unix(1, 0)},
			"range scan on " + LeasesTable + "(expires_at) [leases_expires_at_idx] (expires_at <= "},
	} {
		var got string
		var err error
		if tc.args != nil {
			got, err = db.Explain(tc.sql, tc.args)
		} else {
			got, err = db.Explain(tc.sql)
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want && !strings.HasPrefix(got, tc.want) {
			t.Fatalf("%s plans as %q, want %q", tc.name, got, tc.want)
		}
	}
	// The prefix match above cannot see the plan's tail; pin the
	// residual-free stamp on the license probe separately.
	got, err := db.Explain(driverLeaseFreeSQL, sqlmini.Args{"id": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(got, "(residual-free)") {
		t.Fatalf("license probe plans as %q, want a residual-free plan", got)
	}
}

// TestLeaseStatementsPlanAtScale re-verifies the three population-
// sensitive lease statements — the expiry sweep, the §5.4.2 license
// usage count, and the license-mode driver-free probe — against tables
// actually holding 100 and then 10000 lease rows. The planner is
// schema-driven, but this is the contract the flat-scaling benchmarks
// (BenchmarkExpirySweepAt{100,10000}Leases) rest on: if row volume ever
// started demoting these to scans, O(n) would creep back silently.
func TestLeaseStatementsPlanAtScale(t *testing.T) {
	db := sqlmini.NewDB()
	store := NewLocalStore(db)
	if err := EnsureSchema(store); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	seeded := 0
	seedTo := func(n int) {
		t.Helper()
		args := sqlmini.Args{"g": now.Add(-time.Hour), "e": now.Add(24 * time.Hour)}
		const batch = 200
		for seeded < n {
			hi := seeded + batch
			if hi > n {
				hi = n
			}
			var sb strings.Builder
			sb.WriteString(`INSERT INTO ` + LeasesTable + ` (lease_id, driver_id,
				database, user, client_id, granted_at, expires_at, released, renewals) VALUES `)
			for i := seeded; i < hi; i++ {
				if i > seeded {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "(%d, %d, 'prod', 'app', 'c%d', $g, $e, FALSE, 0)",
					1_000_000+i, 1+int64(i%100), i)
			}
			if _, err := store.Exec(sb.String(), args); err != nil {
				t.Fatal(err)
			}
			seeded = hi
		}
	}
	for _, scale := range []int{100, 10000} {
		seedTo(scale)
		for _, tc := range []struct {
			name string
			sql  string
			args sqlmini.Args
			want string
		}{
			{"expiry-sweep", reapExpiredSQL, sqlmini.Args{"now": now},
				"range scan on " + LeasesTable + "(expires_at) [leases_expires_at_idx] (expires_at <= "},
			{"license-usage-count", licenseUsageSQL, nil,
				"range scan on " + LeasesTable + "(expires_at) [leases_expires_at_idx] (expires_at > "},
			{"driver-free-probe", driverLeaseFreeSQL, sqlmini.Args{"id": int64(7)},
				"range scan on " + LeasesTable + "(driver_id, expires_at) [leases_driver_expires_idx] (driver_id = 7 AND expires_at > "},
		} {
			var got string
			var err error
			if tc.args != nil {
				got, err = db.Explain(tc.sql, tc.args)
			} else {
				got, err = db.Explain(tc.sql)
			}
			if err != nil {
				t.Fatalf("%s at %d leases: %v", tc.name, scale, err)
			}
			if !strings.HasPrefix(got, tc.want) {
				t.Fatalf("%s at %d leases plans as %q, want prefix %q", tc.name, scale, got, tc.want)
			}
		}
		// The probe's semantics must hold at scale too: driver 7 has
		// live leases, a fresh driver id has none.
		free, err := NewServerMust(t, store).driverLeaseFree(7, 0)
		if err != nil {
			t.Fatal(err)
		}
		if free {
			t.Fatalf("driver 7 reported free with %d seeded leases", scale)
		}
		free, err = NewServerMust(t, store).driverLeaseFree(999999, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !free {
			t.Fatal("unleased driver reported busy")
		}
	}
}

// NewServerMust wraps NewServer for tests.
func NewServerMust(t *testing.T, store Store) *Server {
	t.Helper()
	srv, err := NewServer("plan-scale-test", store)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestReapExpiredLeases covers the lease-reaper helper: expired leases
// flip to released (freeing their license), live ones survive, and the
// sweep is idempotent.
func TestReapExpiredLeases(t *testing.T) {
	now := time.Now()
	db := sqlmini.NewDB()
	store := NewLocalStore(db)
	if err := EnsureSchema(store); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("reaper-test", store)
	if err != nil {
		t.Fatal(err)
	}
	insert := func(id int64, exp time.Time, released bool) {
		t.Helper()
		if _, err := store.Exec(`INSERT INTO `+LeasesTable+`
			(lease_id, driver_id, database, user, client_id, granted_at,
			 expires_at, released, renewals)
			VALUES ($id, 1, 'prod', 'app', 'c', $g, $e, $r, 0)`,
			sqlmini.Args{"id": id, "g": now.Add(-time.Hour), "e": exp, "r": released}); err != nil {
			t.Fatal(err)
		}
	}
	insert(1, now.Add(-time.Minute), false) // expired, live → swept
	insert(2, now.Add(time.Hour), false)    // unexpired → kept
	insert(3, now.Add(-time.Hour), true)    // expired but already released → untouched
	insert(4, now.Add(-time.Second), false) // expired, live → swept

	// A staged transfer for a swept lease must be dropped.
	srv.stageTransfer(1, []byte{1, 2, 3}, now.Add(-time.Minute))

	n, err := srv.ReapExpiredLeases()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d leases, want 2", n)
	}
	srv.pendingMu.Lock()
	_, staged := srv.pending[1]
	srv.pendingMu.Unlock()
	if staged {
		t.Fatal("reaper must drop staged transfers of swept leases")
	}
	inUse, err := srv.LicensesInUse()
	if err != nil {
		t.Fatal(err)
	}
	if inUse != 1 {
		t.Fatalf("licenses in use = %d, want 1", inUse)
	}
	// Idempotent: a second sweep finds nothing.
	if n, err = srv.ReapExpiredLeases(); err != nil || n != 0 {
		t.Fatalf("second sweep = (%d, %v), want (0, nil)", n, err)
	}
	lease, ok, err := srv.leaseByID(2)
	if err != nil || !ok || lease.Released {
		t.Fatalf("live lease 2 disturbed: %+v ok=%v err=%v", lease, ok, err)
	}
}
